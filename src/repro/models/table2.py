"""Table 2: per-algorithm communication overheads.

Every entry is an ``(a, b)`` coefficient pair — communication time is
``a·t_s + b·t_w`` — as a function of matrix size ``n`` and processor count
``p``.  These are the exact closed forms printed in Table 2 of the paper
and are what the paper's own analysis program (and therefore Figures 13 and
14) evaluates.

Formulas are continuous in ``n`` and ``p``; applicability *conditions*
(the ``p ≤ n^k`` structural limits of Table 3 and the minimum message sizes
for multi-port bandwidth in Table 2's last column) are modelled separately
and consulted by :func:`overhead_coefficients`.

Multi-port fallback: where a Table 2 multi-port entry carries a message-
size condition (e.g. 3D All needs ``n² ≥ p^{4/3} log ∛p`` to split phase-1
messages across all links), we fall back to the paper's stated degraded
variant when available (3D All's second multi-port row) and otherwise to
the one-port coefficients, since rotated-tree chunking buys nothing once
messages are shorter than the link count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.models.params import check_np, lg
from repro.sim.machine import PortModel

__all__ = [
    "OverheadModel",
    "OVERHEAD_MODELS",
    "overhead_coefficients",
    "resolve_overhead",
    "communication_overhead",
    "structurally_applicable",
]

Coeffs = tuple[float, float]


# ---------------------------------------------------------------------------
# one-port entries
# ---------------------------------------------------------------------------


def _simple_one(n: float, p: float) -> Coeffs:
    sq = p ** 0.5
    return (lg(p), 2 * n * n / sq * (1 - 1 / sq))


def _cannon_one(n: float, p: float) -> Coeffs:
    sq = p ** 0.5
    return (
        2 * (sq - 1) + lg(p),
        n * n / sq * (2 - 2 / sq + lg(p) / sq),
    )


def _berntsen_one(n: float, p: float) -> Coeffs:
    cb = p ** (1 / 3)
    return (
        2 * (cb - 1) + lg(p),
        n * n / p ** (2 / 3) * (3 * (1 - 1 / cb) + 2 * lg(p) / (3 * cb)),
    )


def _dns_one(n: float, p: float) -> Coeffs:
    return (5 / 3 * lg(p), n * n / p ** (2 / 3) * (5 / 3) * lg(p))


def _3dd_one(n: float, p: float) -> Coeffs:
    return (4 / 3 * lg(p), n * n / p ** (2 / 3) * (4 / 3) * lg(p))


def _all_trans_one(n: float, p: float) -> Coeffs:
    cb = p ** (1 / 3)
    return (
        4 / 3 * lg(p),
        n * n / p ** (2 / 3) * (3 * (1 - 1 / cb) + lg(p) / 3),
    )


def _3d_all_one(n: float, p: float) -> Coeffs:
    cb = p ** (1 / 3)
    return (
        4 / 3 * lg(p),
        n * n / p ** (2 / 3) * (3 * (1 - 1 / cb) + lg(p) / (6 * cb)),
    )


# ---------------------------------------------------------------------------
# multi-port entries
# ---------------------------------------------------------------------------


def _simple_multi(n: float, p: float) -> Coeffs:
    sq = p ** 0.5
    return (lg(p) / 2, n * n / (sq * lg(sq)) * (1 - 1 / sq))


def _cannon_multi(n: float, p: float) -> Coeffs:
    sq = p ** 0.5
    return (
        sq - 1 + lg(p) / 2,
        n * n / sq * (1 - 1 / sq + lg(p) / (2 * sq)),
    )


def _hje_multi(n: float, p: float) -> Coeffs:
    sq = p ** 0.5
    return (
        sq - 1 + lg(p) / 2,
        n * n / sq * (2 / lg(p) - 2 / (sq * lg(p)) + lg(p) / (2 * sq)),
    )


def _berntsen_multi(n: float, p: float) -> Coeffs:
    cb = p ** (1 / 3)
    return (
        cb - 1 + 2 / 3 * lg(p),
        n * n / p ** (2 / 3)
        * ((1 + 3 / lg(p)) * (1 - 1 / cb) + lg(p) / (3 * cb)),
    )


def _dns_multi(n: float, p: float) -> Coeffs:
    return (4 / 3 * lg(p), 4 * n * n / p ** (2 / 3))


def _3dd_multi(n: float, p: float) -> Coeffs:
    return (lg(p), 3 * n * n / p ** (2 / 3))


def _all_trans_multi(n: float, p: float) -> Coeffs:
    cb = p ** (1 / 3)
    return (
        lg(p),
        n * n / p ** (2 / 3) * (6 / lg(p) * (1 - 1 / cb) + 1),
    )


def _3d_all_multi_full(n: float, p: float) -> Coeffs:
    cb = p ** (1 / 3)
    return (
        lg(p),
        n * n / p ** (2 / 3) * (6 / lg(p) * (1 - 1 / cb) + 1 / (2 * cb)),
    )


def _3d_all_multi_partial(n: float, p: float) -> Coeffs:
    # Multi-port usable only for phases 2/3; phase 1 keeps its one-port
    # t_w term log p/(6·∛p) — the second 3D All row of Table 2.
    cb = p ** (1 / 3)
    return (
        lg(p),
        n * n / p ** (2 / 3) * (6 / lg(p) * (1 - 1 / cb) + lg(p) / (6 * cb)),
    )


# ---------------------------------------------------------------------------
# conditions (Table 2 last column: minimum sizes for multi-port bandwidth)
# ---------------------------------------------------------------------------


def _cond_simple(n: float, p: float) -> bool:
    return n * n >= p * lg(p ** 0.5)


def _cond_hje(n: float, p: float) -> bool:
    sq = p ** 0.5
    return n >= sq * lg(sq)


def _cond_p_logcb(n: float, p: float) -> bool:
    return n * n >= p * lg(p ** (1 / 3))


def _cond_p23_logcb(n: float, p: float) -> bool:
    return n * n >= p ** (2 / 3) * lg(p ** (1 / 3))


def _cond_3d_all_full(n: float, p: float) -> bool:
    return n * n >= p ** (4 / 3) * lg(p ** (1 / 3))


@dataclass(frozen=True)
class OverheadModel:
    """Table 2 row for one algorithm.

    ``one_port`` is ``None`` for Ho-Johnsson-Edelman, which Table 2 lists
    for multi-port machines only (one-port it degenerates to Cannon with
    extra start-ups).  ``multi_port_condition`` is the Table 2 "Conditions"
    entry — when it fails, ``multi_port_fallback`` (if any) is used, then
    the one-port coefficients.
    """

    key: str
    one_port: Callable[[float, float], Coeffs] | None
    multi_port: Callable[[float, float], Coeffs] | None
    multi_port_condition: Callable[[float, float], bool] | None = None
    multi_port_fallback: Callable[[float, float], Coeffs] | None = None
    fallback_condition: Callable[[float, float], bool] | None = None
    #: Table 3 structural limit: p <= n**p_limit_exponent
    p_limit_exponent: float = 2.0
    #: smallest processor count forming the algorithm's grid
    min_p: int = 4


OVERHEAD_MODELS: dict[str, OverheadModel] = {
    m.key: m
    for m in [
        OverheadModel(
            "simple", _simple_one, _simple_multi, _cond_simple,
            p_limit_exponent=2.0, min_p=4,
        ),
        OverheadModel(
            "cannon", _cannon_one, _cannon_multi, None,
            p_limit_exponent=2.0, min_p=4,
        ),
        OverheadModel(
            "hje", None, _hje_multi, _cond_hje,
            p_limit_exponent=2.0, min_p=4,
        ),
        OverheadModel(
            "berntsen", _berntsen_one, _berntsen_multi, _cond_p_logcb,
            p_limit_exponent=1.5, min_p=8,
        ),
        OverheadModel(
            "dns", _dns_one, _dns_multi, _cond_p23_logcb,
            p_limit_exponent=3.0, min_p=8,
        ),
        OverheadModel(
            "3dd", _3dd_one, _3dd_multi, _cond_p23_logcb,
            p_limit_exponent=3.0, min_p=8,
        ),
        OverheadModel(
            "3d_all_trans", _all_trans_one, _all_trans_multi, _cond_p_logcb,
            p_limit_exponent=1.5, min_p=8,
        ),
        OverheadModel(
            "3d_all", _3d_all_one, _3d_all_multi_full, _cond_3d_all_full,
            multi_port_fallback=_3d_all_multi_partial,
            fallback_condition=_cond_p_logcb,
            p_limit_exponent=1.5, min_p=8,
        ),
    ]
}


def structurally_applicable(key: str, n: float, p: float) -> bool:
    """Table 3's ``p ≤ n^k`` limit plus the minimum grid size."""
    model = OVERHEAD_MODELS.get(key)
    if model is None:
        return False
    return p >= model.min_p and p <= n ** model.p_limit_exponent


def _build_evaluator(
    key: str, port: PortModel
) -> Callable[[float, float], Coeffs | None] | None:
    model = OVERHEAD_MODELS.get(key)
    if model is None:
        # The 2-D Diagonal stepping stone has no Table 2 row.
        return None
    min_p, p_exp = model.min_p, model.p_limit_exponent
    if port is PortModel.ONE_PORT:
        one = model.one_port
        if one is None:  # HJE: no one-port entry
            return None

        def evaluate_one(n: float, p: float) -> Coeffs | None:
            if p < min_p or p > n ** p_exp:
                return None
            return one(n, p)

        return evaluate_one
    multi = model.multi_port
    if multi is None:  # pragma: no cover - no such row today
        return None
    cond = model.multi_port_condition
    fallback = model.multi_port_fallback
    fb_cond = model.fallback_condition
    one = model.one_port

    def evaluate_multi(n: float, p: float) -> Coeffs | None:
        if p < min_p or p > n ** p_exp:
            return None
        if cond is None or cond(n, p):
            return multi(n, p)
        if fallback is not None and (fb_cond is None or fb_cond(n, p)):
            return fallback(n, p)
        return one(n, p) if one else multi(n, p)

    return evaluate_multi


#: resolved (key, port) -> evaluator; the registry is immutable so the
#: cache can never go stale.
_RESOLVED: dict[tuple[str, PortModel], Callable | None] = {}


def resolve_overhead(
    key: str, port: PortModel
) -> Callable[[float, float], Coeffs | None] | None:
    """Pre-resolve the Table 2 dispatch for one ``(algorithm, port)``.

    Returns a callable ``(n, p) -> (a, b) | None`` behaving exactly like
    ``overhead_coefficients(key, n, p, port)`` (minus the ``n, p >= 1``
    domain check), with the registry lookup, port branching, and fallback
    wiring resolved once instead of at every call.  Region maps evaluate
    the same dispatch at thousands of lattice points, which makes this the
    analytic layer's fast path.  Returns ``None`` when the combination can
    never yield coefficients (unknown key, or HJE one-port).
    """
    cache_key = (key, port)
    try:
        return _RESOLVED[cache_key]
    except KeyError:
        fn = _build_evaluator(key, port)
        _RESOLVED[cache_key] = fn
        return fn


def overhead_coefficients(
    key: str, n: float, p: float, port: PortModel
) -> Coeffs | None:
    """The Table 2 ``(a, b)`` pair, or ``None`` when not applicable.

    ``None`` is returned when the algorithm cannot run at all at this
    ``(n, p)`` (structural limit) or has no entry for the port model (HJE
    one-port).  Multi-port message-size conditions trigger the documented
    fallbacks rather than ``None``.
    """
    check_np(n, p)
    fn = resolve_overhead(key, port)
    return fn(n, p) if fn is not None else None


def communication_overhead(
    key: str, n: float, p: float, port: PortModel, t_s: float, t_w: float
) -> float | None:
    """Total modelled communication time, or ``None`` if not applicable."""
    coeffs = overhead_coefficients(key, n, p, port)
    if coeffs is None:
        return None
    a, b = coeffs
    return a * t_s + b * t_w
