"""Table-2-style closed forms for the extension algorithms (ours).

The paper stops at its eight algorithms; these derive the same
``(a, b)``-coefficient models for the supernode combinations and the Fox
baseline, using the identical phase-sum accounting (store-and-forward
point-to-point, one-port column).  Because the simulator overlaps
independent phases, measured values are *at most* these sums — the same
relation the paper's own DNS/3DD rows exhibit — which is what the
validation tests assert.

Derivations (``σ = ∛s`` supernode side, ``ρ = √r`` mesh side,
``m = n²/(σρ)²`` words per processor block, one-port):

**DNS × Cannon** — the four phases move a processor block each:

* lift: two sequential sends over ≤ ``log σ`` hops → ``2 log σ (1 + m)``
* broadcasts: two serialized supernode SBT broadcasts → ``2 log σ (1 + m)``
* Cannon: alignment ``2 log ρ (1 + m)`` + ``2(ρ-1)(1 + m)``
* reduce: combining tree → ``log σ (1 + m)``

Total ``a = 5 log σ + 2 log ρ + 2(ρ-1)`` and ``b = a·m``.

**3DD × Cannon** — replaces lift+broadcasts (4 log σ) with the 3DD
pattern: point-to-point ``log σ`` + two serialized broadcasts
``2 log σ``: total ``a = 4 log σ + 2 log ρ + 2(ρ-1)``, ``b = a·m`` —
uniformly one ``log σ (1 + m)`` cheaper than DNS × Cannon, which is the
§3.5 domination claim in closed form.

**Fox** — ``√p`` row broadcasts of ``n²/p``-word blocks plus ``√p - 1``
unit rolls: ``a = √p·log √p + √p - 1``,
``b = (n²/p)(√p·log √p + √p - 1)``.
"""

from __future__ import annotations

from repro.models.params import check_np, lg

__all__ = [
    "dns_cannon_one_port",
    "diag3d_cannon_one_port",
    "fox_one_port",
]

Coeffs = tuple[float, float]


def _supernode_block_words(n: float, sigma: float, rho: float) -> float:
    return (n / (sigma * rho)) ** 2


def dns_cannon_one_port(n: float, sigma: float, rho: float) -> Coeffs:
    """(a, b) for DNS × Cannon with ``σ³`` supernodes of ``ρ²`` meshes."""
    check_np(n, sigma * sigma * sigma * rho * rho)
    m = _supernode_block_words(n, sigma, rho)
    a = 5 * lg(sigma) + 2 * lg(rho) + 2 * (rho - 1)
    return (a, a * m)


def diag3d_cannon_one_port(n: float, sigma: float, rho: float) -> Coeffs:
    """(a, b) for 3DD × Cannon — one ``log σ`` phase cheaper than DNS×C."""
    check_np(n, sigma * sigma * sigma * rho * rho)
    m = _supernode_block_words(n, sigma, rho)
    a = 4 * lg(sigma) + 2 * lg(rho) + 2 * (rho - 1)
    return (a, a * m)


def fox_one_port(n: float, p: float) -> Coeffs:
    """(a, b) for the Fox-Otto-Hey baseline on the ``√p × √p`` grid."""
    check_np(n, p)
    sq = p ** 0.5
    m = n * n / p
    a = sq * lg(sq) + (sq - 1)
    return (a, a * m)
