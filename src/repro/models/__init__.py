"""Closed-form cost/space models: the paper's Tables 1-3."""

from repro.models.extensions import (
    diag3d_cannon_one_port,
    dns_cannon_one_port,
    fox_one_port,
)
from repro.models.params import evaluate
from repro.models.table2 import (
    OVERHEAD_MODELS,
    OverheadModel,
    communication_overhead,
    overhead_coefficients,
)
from repro.models.table2_vec import (
    LatticeAxes,
    coefficient_grids,
    overhead_grid,
    winner_grids,
)
from repro.models.table3 import SPACE_MODELS, SpaceModel, overall_space, processor_limit

__all__ = [
    "evaluate",
    "diag3d_cannon_one_port",
    "dns_cannon_one_port",
    "fox_one_port",
    "OVERHEAD_MODELS",
    "OverheadModel",
    "communication_overhead",
    "overhead_coefficients",
    "LatticeAxes",
    "coefficient_grids",
    "overhead_grid",
    "winner_grids",
    "SPACE_MODELS",
    "SpaceModel",
    "overall_space",
    "processor_limit",
]
