"""Vectorized Table 2: coefficient *grids* over whole (n, p) lattices.

:mod:`repro.models.table2` evaluates one ``(n, p)`` point per call; region
maps (Figures 13/14) evaluate the same closed forms at thousands of lattice
points, which makes the pure-Python dispatch the analytic layer's hot loop.
This module produces the full ``(a, b)`` coefficient grids for a lattice in
one shot: applicability conditions, multi-port fallback chains, and the
``p > n³`` holes become boolean masks, and winner selection becomes a
masked argmin.

Bit-exactness contract
----------------------
Every cell of every grid is **bit-identical** (``==``, not ``allclose``) to
what :func:`repro.models.table2.resolve_overhead` computes at that point,
including which cells are holes (``NaN`` here, ``None`` there).  Two rules
make that hold by construction:

* The transcendental primitives (``p**0.5``, ``p**(1/3)``, ``log₂``, …)
  are *not* vectorized: they are computed per lattice **axis** with the
  same Python scalar expressions as the scalar path (``pow``/``log2`` are
  not guaranteed identically rounded between libm entry points, so we do
  not mix implementations).  The axes are tiny — the 13×19 default lattice
  needs 19 square roots, not 247.
* Everything combined *across* axes uses only IEEE-exact elementwise ops
  (``+ - * /`` and comparisons), each correctly rounded and therefore
  identical to the scalar evaluation order, which every formula here
  transcribes operator for operator.

The scalar path stays the reference oracle: the equivalence suite
(``tests/models/test_table2_vec.py``) asserts bit-identity for every
``(algorithm, port)`` pair over the default lattice, and the region-map
layer can be forced back onto the scalar path with ``backend="scalar"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.models.params import lg
from repro.models.table2 import OVERHEAD_MODELS
from repro.sim.machine import PortModel

__all__ = [
    "LatticeAxes",
    "coefficient_grids",
    "overhead_grid",
    "winner_grids",
]


class LatticeAxes:
    """Per-axis primitive vectors for one ``(n_values, p_values)`` lattice.

    Holds every power/log primitive the Table 2 formulas need, computed
    with Python scalar arithmetic (see the module docstring for why), as
    NumPy vectors: ``p``-derived primitives are rows of shape ``(P,)``,
    ``n``-derived ones columns of shape ``(N, 1)``, so formula code
    broadcasts them straight into ``(N, P)`` grids.
    """

    def __init__(self, n_values, p_values):
        """Build the axes from iterables of ``n`` and ``p`` values."""
        n = [float(v) for v in n_values]
        p = [float(v) for v in p_values]
        self.shape = (len(n), len(p))
        #: n as a column, p as a row
        self.n = np.array(n)[:, None]
        self.p = np.array(p)
        #: n² as a column (exactly the scalar path's ``n * n``)
        self.n2 = self.n * self.n
        # p-derived primitives, Python-scalar computed per axis value;
        # each expression matches the scalar formulas' inline spelling.
        self.sq = np.array([v ** 0.5 for v in p])
        self.cb = np.array([v ** (1 / 3) for v in p])
        self.p23 = np.array([v ** (2 / 3) for v in p])
        self.p43 = np.array([v ** (4 / 3) for v in p])
        self.lgp = np.array([lg(v) for v in p])
        self.lgsq = np.array([lg(v ** 0.5) for v in p])
        self.lgcb = np.array([lg(v ** (1 / 3)) for v in p])
        self._n_pow: dict[float, np.ndarray] = {}
        self._n_list = n

    def n_pow(self, exponent: float) -> np.ndarray:
        """``n ** exponent`` as a column (Python scalar pow, memoized)."""
        col = self._n_pow.get(exponent)
        if col is None:
            col = np.array([v ** exponent for v in self._n_list])[:, None]
            self._n_pow[exponent] = col
        return col


# ---------------------------------------------------------------------------
# vectorized formulas — operator-for-operator transcriptions of table2.py
# (``ax.sq`` = p**0.5, ``ax.cb`` = p**(1/3), ``ax.p23`` = p**(2/3), …)
# ---------------------------------------------------------------------------


def _v_simple_one(ax):
    return (ax.lgp, 2 * ax.n * ax.n / ax.sq * (1 - 1 / ax.sq))


def _v_cannon_one(ax):
    return (
        2 * (ax.sq - 1) + ax.lgp,
        ax.n * ax.n / ax.sq * (2 - 2 / ax.sq + ax.lgp / ax.sq),
    )


def _v_berntsen_one(ax):
    return (
        2 * (ax.cb - 1) + ax.lgp,
        ax.n * ax.n / ax.p23 * (3 * (1 - 1 / ax.cb) + 2 * ax.lgp / (3 * ax.cb)),
    )


def _v_dns_one(ax):
    return (5 / 3 * ax.lgp, ax.n * ax.n / ax.p23 * (5 / 3) * ax.lgp)


def _v_3dd_one(ax):
    return (4 / 3 * ax.lgp, ax.n * ax.n / ax.p23 * (4 / 3) * ax.lgp)


def _v_all_trans_one(ax):
    return (
        4 / 3 * ax.lgp,
        ax.n * ax.n / ax.p23 * (3 * (1 - 1 / ax.cb) + ax.lgp / 3),
    )


def _v_3d_all_one(ax):
    return (
        4 / 3 * ax.lgp,
        ax.n * ax.n / ax.p23 * (3 * (1 - 1 / ax.cb) + ax.lgp / (6 * ax.cb)),
    )


def _v_simple_multi(ax):
    return (
        ax.lgp / 2,
        ax.n * ax.n / (ax.sq * ax.lgsq) * (1 - 1 / ax.sq),
    )


def _v_cannon_multi(ax):
    return (
        ax.sq - 1 + ax.lgp / 2,
        ax.n * ax.n / ax.sq * (1 - 1 / ax.sq + ax.lgp / (2 * ax.sq)),
    )


def _v_hje_multi(ax):
    return (
        ax.sq - 1 + ax.lgp / 2,
        ax.n * ax.n / ax.sq
        * (2 / ax.lgp - 2 / (ax.sq * ax.lgp) + ax.lgp / (2 * ax.sq)),
    )


def _v_berntsen_multi(ax):
    return (
        ax.cb - 1 + 2 / 3 * ax.lgp,
        ax.n * ax.n / ax.p23
        * ((1 + 3 / ax.lgp) * (1 - 1 / ax.cb) + ax.lgp / (3 * ax.cb)),
    )


def _v_dns_multi(ax):
    return (4 / 3 * ax.lgp, 4 * ax.n * ax.n / ax.p23)


def _v_3dd_multi(ax):
    return (ax.lgp, 3 * ax.n * ax.n / ax.p23)


def _v_all_trans_multi(ax):
    return (
        ax.lgp,
        ax.n * ax.n / ax.p23 * (6 / ax.lgp * (1 - 1 / ax.cb) + 1),
    )


def _v_3d_all_multi_full(ax):
    return (
        ax.lgp,
        ax.n * ax.n / ax.p23 * (6 / ax.lgp * (1 - 1 / ax.cb) + 1 / (2 * ax.cb)),
    )


def _v_3d_all_multi_partial(ax):
    return (
        ax.lgp,
        ax.n * ax.n / ax.p23
        * (6 / ax.lgp * (1 - 1 / ax.cb) + ax.lgp / (6 * ax.cb)),
    )


# conditions (Table 2 last column) as (N, P) boolean masks


def _m_cond_simple(ax):
    return ax.n2 >= np.array([v * lg(v ** 0.5) for v in ax.p])


def _m_cond_hje(ax):
    return ax.n >= np.array([v ** 0.5 * lg(v ** 0.5) for v in ax.p])


def _m_cond_p_logcb(ax):
    return ax.n2 >= np.array([v * lg(v ** (1 / 3)) for v in ax.p])


def _m_cond_p23_logcb(ax):
    return ax.n2 >= np.array([v ** (2 / 3) * lg(v ** (1 / 3)) for v in ax.p])


def _m_cond_3d_all_full(ax):
    return ax.n2 >= np.array([v ** (4 / 3) * lg(v ** (1 / 3)) for v in ax.p])


@dataclass(frozen=True)
class _VecModel:
    """Vectorized Table 2 row; structure mirrors ``OverheadModel``."""

    key: str
    one_port: Callable | None
    multi_port: Callable | None
    multi_port_condition: Callable | None = None
    multi_port_fallback: Callable | None = None
    fallback_condition: Callable | None = None


_VEC_MODELS: dict[str, _VecModel] = {
    m.key: m
    for m in [
        _VecModel("simple", _v_simple_one, _v_simple_multi, _m_cond_simple),
        _VecModel("cannon", _v_cannon_one, _v_cannon_multi, None),
        _VecModel("hje", None, _v_hje_multi, _m_cond_hje),
        _VecModel("berntsen", _v_berntsen_one, _v_berntsen_multi, _m_cond_p_logcb),
        _VecModel("dns", _v_dns_one, _v_dns_multi, _m_cond_p23_logcb),
        _VecModel("3dd", _v_3dd_one, _v_3dd_multi, _m_cond_p23_logcb),
        _VecModel(
            "3d_all_trans", _v_all_trans_one, _v_all_trans_multi, _m_cond_p_logcb
        ),
        _VecModel(
            "3d_all", _v_3d_all_one, _v_3d_all_multi_full, _m_cond_3d_all_full,
            multi_port_fallback=_v_3d_all_multi_partial,
            fallback_condition=_m_cond_p_logcb,
        ),
    ]
}

assert set(_VEC_MODELS) == set(OVERHEAD_MODELS), "vector registry out of sync"


def _grids_of(fn, ax) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate one formula pair and broadcast both grids to ``ax.shape``."""
    a, b = fn(ax)
    return np.broadcast_to(a, ax.shape), np.broadcast_to(b, ax.shape)


def coefficient_grids(
    key: str,
    n_values,
    p_values,
    port: PortModel,
    *,
    axes: LatticeAxes | None = None,
) -> tuple[np.ndarray, np.ndarray] | None:
    """Table 2 ``(a, b)`` grids over a lattice, or ``None`` for no entry.

    Returns two float arrays of shape ``(len(n_values), len(p_values))``
    with ``NaN`` at every cell where :func:`~repro.models.table2
    .overhead_coefficients` would return ``None`` (the ``p < min_p`` /
    ``p > n^k`` structural holes).  Returns ``None`` when the combination
    can never yield coefficients (unknown key, or HJE one-port) — exactly
    when :func:`~repro.models.table2.resolve_overhead` returns ``None``.

    ``axes`` lets callers share one :class:`LatticeAxes` across the whole
    algorithm set instead of recomputing the primitives per algorithm.
    """
    model = OVERHEAD_MODELS.get(key)
    if model is None:
        return None
    vec = _VEC_MODELS[key]
    if port is PortModel.ONE_PORT and vec.one_port is None:
        return None
    ax = axes if axes is not None else LatticeAxes(n_values, p_values)
    # Formula cells outside the structural domain are computed then masked;
    # divisions there may hit lg(p) = 0 etc., hence the errstate guard.
    with np.errstate(all="ignore"):
        applicable = (ax.p >= model.min_p) & (
            ax.p <= ax.n_pow(model.p_limit_exponent)
        )
        if port is PortModel.ONE_PORT:
            a, b = _grids_of(vec.one_port, ax)
        else:
            a, b = _grids_of(vec.multi_port, ax)
            if vec.multi_port_condition is not None:
                cond = vec.multi_port_condition(ax)
                # fallback chain: degraded multi-port row, then one-port,
                # then (HJE) the multi-port row itself — as in table2.py
                fb_a = fb_b = None
                if vec.multi_port_fallback is not None:
                    fb_a, fb_b = _grids_of(vec.multi_port_fallback, ax)
                    fb_ok = (
                        vec.fallback_condition(ax)
                        if vec.fallback_condition is not None
                        else np.ones(ax.shape, dtype=bool)
                    )
                if vec.one_port is not None:
                    one_a, one_b = _grids_of(vec.one_port, ax)
                else:
                    one_a, one_b = a, b
                if fb_a is not None:
                    one_a = np.where(fb_ok, fb_a, one_a)
                    one_b = np.where(fb_ok, fb_b, one_b)
                a = np.where(cond, a, one_a)
                b = np.where(cond, b, one_b)
        a = np.where(applicable, a, np.nan)
        b = np.where(applicable, b, np.nan)
    return a, b


def overhead_grid(
    key: str,
    n_values,
    p_values,
    port: PortModel,
    t_s: float,
    t_w: float,
    *,
    axes: LatticeAxes | None = None,
) -> np.ndarray | None:
    """Modelled communication-time grid ``a·t_s + b·t_w`` (``NaN`` holes).

    ``None`` when the ``(key, port)`` combination has no Table 2 entry;
    otherwise bit-identical per cell to the scalar
    :func:`~repro.models.table2.communication_overhead`.
    """
    grids = coefficient_grids(key, n_values, p_values, port, axes=axes)
    if grids is None:
        return None
    a, b = grids
    return a * t_s + b * t_w


def winner_grids(
    algorithms: tuple[str, ...],
    n_values,
    p_values,
    port: PortModel,
    t_s: float,
    t_w: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Masked-argmin winner selection over a candidate set.

    Returns ``(winner_idx, times)`` of shape ``(len(n_values),
    len(p_values))``: ``winner_idx[i, j]`` indexes into ``algorithms``
    (``-1`` where no candidate applies) and ``times[i, j]`` is the winning
    modelled time (``NaN`` at holes).  Ties resolve to the earliest
    algorithm in ``algorithms`` — the same rule as the scalar loop's
    strict ``<`` comparison — so the result is bit-identical to
    :func:`repro.analysis.regions.best_algorithm` applied cellwise.
    """
    ax = LatticeAxes(n_values, p_values)
    stack = np.full((len(algorithms),) + ax.shape, np.inf)
    any_applicable = np.zeros(ax.shape, dtype=bool)
    for k, key in enumerate(algorithms):
        t = overhead_grid(key, n_values, p_values, port, t_s, t_w, axes=ax)
        if t is None:
            continue
        valid = ~np.isnan(t)
        stack[k][valid] = t[valid]
        any_applicable |= valid
    winner_idx = np.where(
        any_applicable, np.argmin(stack, axis=0), -1
    ).astype(np.int16)
    times = np.where(any_applicable, np.min(stack, axis=0), np.nan)
    return winner_idx, times
