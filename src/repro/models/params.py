"""Small helpers shared by the analytic models."""

from __future__ import annotations

import math

from repro.errors import ModelError

__all__ = ["lg", "evaluate", "check_np"]


def lg(x: float) -> float:
    """Base-2 logarithm (the paper's ``log``)."""
    if x <= 0:
        raise ModelError(f"log of non-positive value {x}")
    return math.log2(x)


def check_np(n: float, p: float) -> None:
    """Validate the model domain (n, p >= 1)."""
    if n < 1 or p < 1:
        raise ModelError(f"need n >= 1 and p >= 1, got n={n}, p={p}")


def evaluate(coeffs: tuple[float, float], t_s: float, t_w: float) -> float:
    """Total communication time ``a·t_s + b·t_w`` from an ``(a, b)`` pair."""
    a, b = coeffs
    return a * t_s + b * t_w
