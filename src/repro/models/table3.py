"""Table 3: architecture-independent characteristics.

Overall space (words, summed over all processors) and the structural
processor-count limit for each algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ModelError
from repro.models.params import check_np

__all__ = ["SpaceModel", "SPACE_MODELS", "overall_space", "processor_limit"]


@dataclass(frozen=True)
class SpaceModel:
    """One Table 3 row."""

    key: str
    #: p <= n**limit_exponent
    limit_exponent: float
    #: overall space in words as f(n, p)
    space: Callable[[float, float], float]
    #: display form of the space expression
    formula: str


SPACE_MODELS: dict[str, SpaceModel] = {
    m.key: m
    for m in [
        SpaceModel("simple", 2.0, lambda n, p: 2 * n * n * p ** 0.5, "2·n²·√p"),
        SpaceModel("cannon", 2.0, lambda n, p: 3 * n * n, "3·n²"),
        SpaceModel("hje", 2.0, lambda n, p: 3 * n * n, "3·n²"),
        SpaceModel(
            "berntsen", 1.5,
            lambda n, p: 2 * n * n + n * n * p ** (1 / 3), "2·n² + n²·∛p",
        ),
        SpaceModel("dns", 3.0, lambda n, p: 2 * n * n * p ** (1 / 3), "2·n²·∛p"),
        SpaceModel("3dd", 3.0, lambda n, p: 2 * n * n * p ** (1 / 3), "2·n²·∛p"),
        SpaceModel(
            "3d_all_trans", 1.5,
            lambda n, p: 2 * n * n * p ** (1 / 3), "2·n²·∛p",
        ),
        SpaceModel("3d_all", 1.5, lambda n, p: 2 * n * n * p ** (1 / 3), "2·n²·∛p"),
    ]
}


def overall_space(key: str, n: float, p: float) -> float:
    """Table 3's overall space (words over all processors)."""
    check_np(n, p)
    try:
        model = SPACE_MODELS[key]
    except KeyError:
        raise ModelError(f"no Table 3 row for algorithm {key!r}") from None
    return model.space(n, p)


def processor_limit(key: str, n: float) -> float:
    """Largest ``p`` the algorithm admits for matrices of size ``n``."""
    try:
        model = SPACE_MODELS[key]
    except KeyError:
        raise ModelError(f"no Table 3 row for algorithm {key!r}") from None
    return n ** model.limit_exponent
