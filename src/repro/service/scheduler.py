"""Fair multi-tenant scheduling: weighted round-robin with deficit
counters over the pending job queue.

PR 7's service drained its queue FIFO, which lets one chatty tenant's
backlog starve everyone behind it.  :class:`DeficitScheduler` replaces
FIFO with the classic deficit-round-robin discipline at job granularity:

* every tenant carries a **deficit counter**; each scheduling *round*
  credits every backlogged tenant with its **weight** (default 1.0);
* a tenant whose deficit reaches one job's cost (1.0) becomes eligible;
  among eligible tenants the largest deficit wins (ties break on tenant
  name, so the schedule is a pure function of the queue state — no
  clocks, no randomness);
* serving a job debits 1.0 from the winner; a tenant whose backlog
  empties forfeits its accumulated deficit (classic DRR — you cannot
  bank credit while idle and then burst past everyone).

This yields the textbook starvation bound: over any window of ``N``
consecutive decisions in which tenant *i* stays backlogged, tenant *i*
is served at least ``floor(N * w_i / W) - 1`` times (``W`` the total
weight of backlogged tenants) — pinned by the seeded test in
``tests/service/test_scheduler.py``.

Determinism across restarts: the scheduler itself is stateless between
decisions except for the deficit map, and the service journals every
decision (a ``sched`` record carrying the post-decision deficits).
Replay restores the deficit map from the last journaled decision and
executes already-decided jobs in their journaled order, so a resumed
daemon replays **exactly** the interleaving the dead one chose.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ServiceError

__all__ = ["DeficitScheduler"]

#: serving one job costs one unit of deficit
_JOB_COST = 1.0


class DeficitScheduler:
    """Deficit round-robin over tenants, at job granularity."""

    def __init__(self, weights: Mapping[str, float] | None = None):
        self.weights: dict[str, float] = {}
        for tenant, weight in (weights or {}).items():
            weight = float(weight)
            if weight <= 0:
                raise ServiceError(
                    f"tenant weight must be > 0, got {tenant!r}={weight}"
                )
            self.weights[tenant] = weight
        self.deficits: dict[str, float] = {}
        self.rounds = 0

    def weight(self, tenant: str) -> float:
        """The tenant's configured weight (unknown tenants weigh 1.0)."""
        return self.weights.get(tenant, 1.0)

    def select(self, backlog: Mapping[str, Sequence]) -> object | None:
        """Pick the next job from ``backlog`` (tenant -> jobs, oldest
        first); returns ``None`` when nothing is pending.

        Mutates the deficit map: idle tenants forfeit their credit,
        backlogged tenants accrue one weight per round until someone is
        eligible, and the winner pays one job's cost.
        """
        tenants = sorted(t for t, jobs in backlog.items() if jobs)
        if not tenants:
            return None
        # Classic DRR: an empty queue forfeits its accumulated deficit.
        for tenant in list(self.deficits):
            if tenant not in tenants:
                del self.deficits[tenant]
        while True:
            eligible = [
                t for t in tenants
                if self.deficits.get(t, 0.0) >= _JOB_COST
            ]
            if eligible:
                # Largest deficit first; tenant name breaks ties so the
                # decision is a deterministic function of the state.
                eligible.sort(key=lambda t: (-self.deficits[t], t))
                winner = eligible[0]
                self.deficits[winner] -= _JOB_COST
                return backlog[winner][0]
            self.rounds += 1
            for tenant in tenants:
                self.deficits[tenant] = (
                    self.deficits.get(tenant, 0.0) + self.weight(tenant)
                )

    # -- journal integration -------------------------------------------------

    def snapshot(self) -> dict:
        """Journal-ready state: everything a resume needs to continue the
        same schedule (weights are configuration, not state)."""
        return {
            "deficits": {t: round(d, 9) for t, d in sorted(self.deficits.items())},
            "rounds": self.rounds,
        }

    def restore(self, snapshot: Mapping) -> None:
        """Adopt a journaled :meth:`snapshot` (last writer wins)."""
        self.deficits = {
            str(t): float(d)
            for t, d in dict(snapshot.get("deficits", {})).items()
        }
        self.rounds = int(snapshot.get("rounds", 0))
