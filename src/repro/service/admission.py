"""Admission control for the sweep service: bounded queues, token
buckets, and explicit load shedding.

A service that accepts unbounded work does not degrade, it collapses:
the queue grows until memory runs out and *every* request — old and new
— dies together.  The admission controller keeps the failure mode
honest instead:

* a **bounded pending queue** (``max_pending``) caps how much work the
  service will promise at once;
* a **per-tenant token bucket** (``tenant_rate`` jobs/second, burst
  ``tenant_burst``) keeps one aggressive tenant from starving the rest;
* any request past either limit is **shed** with
  :class:`~repro.errors.ServiceOverloadError`, which carries a concrete
  ``retry_after`` hint instead of leaving the client to guess.

Request **coalescing** lives one level up (the service owns the job
table): submissions whose task digest matches a pending/running job
attach to it as waiters — one in-flight computation, many subscribers —
and are never charged admission (they add no work).

Time is injected (``now`` parameters) so tests and journal replay can
drive the bucket deterministically; nothing here reads the wall clock
on its own.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ServiceError, ServiceOverloadError

__all__ = ["TokenBucket", "AdmissionController"]


@dataclass
class TokenBucket:
    """Classic leaky-bucket rate limiter with injected time.

    ``rate`` tokens accrue per second up to ``burst``; a job costs one
    token.  ``rate=0`` disables refill (the burst is all you ever get) —
    useful for tests; ``rate=None`` disables the bucket entirely.
    """

    rate: float | None = 2.0
    burst: float = 8.0
    tokens: float = field(init=False)
    last: float | None = field(init=False, default=None)

    def __post_init__(self):
        if self.rate is not None and self.rate < 0:
            raise ServiceError(f"token rate must be >= 0, got {self.rate}")
        if self.burst <= 0:
            raise ServiceError(f"token burst must be > 0, got {self.burst}")
        self.tokens = float(self.burst)

    def _refill(self, now: float) -> None:
        if self.last is not None and now > self.last:
            self.tokens = min(
                float(self.burst), self.tokens + (now - self.last) * self.rate
            )
        if self.last is None or now > self.last:
            self.last = now

    def try_take(self, now: float) -> float:
        """Take one token at time ``now``.

        Returns ``0.0`` on success, else the seconds until a token will
        be available (the ``retry_after`` hint).  The bucket state only
        changes on success, so probing is free.
        """
        if self.rate is None:
            return 0.0
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        if self.rate == 0:
            return float("inf")
        return (1.0 - self.tokens) / self.rate


class AdmissionController:
    """Decides, per submission, between *admit* and *shed* — never *queue
    forever*.

    One instance per service.  ``admit`` raises
    :class:`~repro.errors.ServiceOverloadError` on shed; counters
    (``admitted``/``sheds``) feed the ``repro jobs`` report.
    """

    def __init__(
        self,
        *,
        max_pending: int = 32,
        tenant_rate: float | None = 2.0,
        tenant_burst: float = 8.0,
    ):
        if max_pending < 1:
            raise ServiceError(f"max_pending must be >= 1, got {max_pending}")
        self.max_pending = int(max_pending)
        self.tenant_rate = tenant_rate
        self.tenant_burst = float(tenant_burst)
        self._buckets: dict[str, TokenBucket] = {}
        self.admitted = 0
        self.sheds = 0

    def bucket(self, tenant: str) -> TokenBucket:
        if tenant not in self._buckets:
            self._buckets[tenant] = TokenBucket(
                rate=self.tenant_rate, burst=self.tenant_burst
            )
        return self._buckets[tenant]

    def admit(self, tenant: str, pending: int, now: float) -> None:
        """Admit one job for ``tenant`` given ``pending`` queued jobs.

        Queue pressure is checked first (it protects *everyone*), then
        the tenant's bucket (it protects everyone *else*).  On shed the
        raised error's ``retry_after`` is a concrete wait estimate: one
        expected job drain for queue pressure, the bucket's own refill
        time for rate limiting.
        """
        if pending >= self.max_pending:
            self.sheds += 1
            raise ServiceOverloadError(
                f"pending queue full ({pending}/{self.max_pending})",
                retry_after=1.0,
                tenant=tenant,
            )
        wait = self.bucket(tenant).try_take(now)
        if wait > 0.0:
            self.sheds += 1
            raise ServiceOverloadError(
                f"tenant rate limit ({self.tenant_rate}/s, "
                f"burst {self.tenant_burst:g})",
                retry_after=min(wait, 3600.0),
                tenant=tenant,
            )
        self.admitted += 1
