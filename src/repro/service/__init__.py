"""Crash-safe sweep service: WAL journal, supervised workers, admission.

See :mod:`repro.service.service` for the façade and ``docs/SERVICE.md``
for the architecture tour.
"""

from repro.service.admission import AdmissionController, TokenBucket
from repro.service.chaos import (
    ChaosPolicy,
    InjectedServiceCrash,
    parse_injections,
)
from repro.service.hostpool import HostAgent, HostPool, host_status
from repro.service.jobs import JobSpec, build_cells, finalize, make_spec
from repro.service.journal import Journal
from repro.service.scheduler import DeficitScheduler
from repro.service.service import JobState, SweepService
from repro.service.streaming import StreamWriter, is_byte_prefix, read_stream
from repro.service.supervisor import ChunkOutcome, Supervisor, seeded_backoff

__all__ = [
    "AdmissionController",
    "TokenBucket",
    "ChaosPolicy",
    "InjectedServiceCrash",
    "parse_injections",
    "JobSpec",
    "make_spec",
    "build_cells",
    "finalize",
    "Journal",
    "JobState",
    "SweepService",
    "ChunkOutcome",
    "Supervisor",
    "seeded_backoff",
    "DeficitScheduler",
    "StreamWriter",
    "read_stream",
    "is_byte_prefix",
    "HostPool",
    "HostAgent",
    "host_status",
]
