"""The durable sweep service: submit / execute / inspect, crash-safely.

:class:`SweepService` ties the subsystem together around a state
directory::

    <state>/wal/        write-ahead journal (facts, before actions)
    <state>/cache/      content-addressed chunk + result payloads
    <state>/results/    one JSON report per completed job
    <state>/LOCK        single-writer guard (pid; stale locks are stolen)

The contract, end to end:

* ``submit`` runs the admission gauntlet (bounded queue, per-tenant
  token bucket), **coalesces** submissions whose content-addressed task
  key matches a job already pending or running (one in-flight
  computation, many waiters), journals the accepted submission, and
  returns a job id — it never executes anything.
* ``run_pending`` executes journaled-but-unfinished jobs in submission
  order: the chunk plan is journaled *before* the first lease (a
  resumed job re-uses the recorded plan even if ``REPRO_JOBS`` changed
  meanwhile), every completed chunk's records go to the content-
  addressed cache *before* the completion fact is journaled, and the
  supervisor re-leases chunks across worker deaths, hangs, and
  quarantines.
* a killed service (crash, power cut, ``crash-service`` injection)
  restarts, replays the journal, and resumes **exactly** the unfinished
  chunks — completed chunk payloads come back from the cache, so the
  final report digest is bit-identical to an undisturbed run.

Everything the robustness machinery counts (retries, expiries, sheds,
coalesces) is surfaced by :meth:`jobs` and deliberately excluded from
every report digest.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.cache import ResultCache, task_digest
from repro.analysis.parallel import plan_chunks, resolve_jobs
from repro.errors import ServiceError, ServiceOverloadError
from repro.service.admission import AdmissionController
from repro.service.chaos import (
    ChaosPolicy,
    InjectedServiceCrash,
    corrupt_tail_bytes,
)
from repro.service.jobs import JobSpec, build_cells, finalize, make_spec
from repro.service.journal import Journal
from repro.service.supervisor import Supervisor

__all__ = ["SweepService", "JobState"]


@dataclass
class JobState:
    """Replayed state of one job (everything ``repro jobs`` shows)."""

    id: str
    key: str
    kind: str
    params: dict
    tenant: str
    submitted_ts: float
    status: str = "pending"  # pending | running | done | degraded | failed
    plan: list[list[int]] | None = None
    planned_workers: int | None = None
    cells: int | None = None
    done_chunks: set = field(default_factory=set)
    quarantined: set = field(default_factory=set)
    digest: str | None = None
    error: str | None = None
    coalesced: int = 0
    retries: int = 0
    leases: int = 0

    def summary(self) -> dict[str, Any]:
        total = len(self.plan) if self.plan is not None else None
        return {
            "id": self.id,
            "kind": self.kind,
            "tenant": self.tenant,
            "status": self.status,
            "key": self.key[:16],
            "chunks_done": len(self.done_chunks),
            "chunks_total": total,
            "quarantined": sorted(self.quarantined),
            "digest": self.digest,
            "coalesced": self.coalesced,
            "retries": self.retries,
            "leases": self.leases,
            "error": self.error,
        }


class SweepService:
    """Crash-safe executor for sweep / region-map / degrade / chaos jobs."""

    #: cache kind namespacing per-chunk payloads
    CHUNK_KIND = "service_chunk"
    #: cache kind namespacing whole-job reports
    REPORT_KIND = "service_report"

    def __init__(
        self,
        state_dir: str | os.PathLike,
        *,
        workers: int | None = None,
        chunk_size: int | None = None,
        chunk_deadline_s: float = 30.0,
        max_attempts: int = 3,
        backoff_base_s: float = 0.05,
        max_pending: int = 32,
        tenant_rate: float | None = 2.0,
        tenant_burst: float = 8.0,
        inject: ChaosPolicy | None = None,
        read_only: bool = False,
        clock=time.time,
    ):
        self.state_dir = pathlib.Path(state_dir)
        self.workers = workers
        self.chunk_size = chunk_size
        self.chunk_deadline_s = float(chunk_deadline_s)
        self.max_attempts = int(max_attempts)
        self.backoff_base_s = float(backoff_base_s)
        self.inject = inject
        self.read_only = read_only
        self.clock = clock
        self._lock_fd: int | None = None

        if not read_only:
            self._acquire_lock()
        self.journal = Journal(self.state_dir / "wal")
        if inject is not None and inject.corrupt_journal_tail:
            # Chaos hook: bit-rot the journal tail *before* replay, as a
            # real torn write would present itself.
            segs = self.journal.segments()
            if segs:
                corrupt_tail_bytes(segs[-1])
        self.cache = ResultCache(self.state_dir / "cache")
        self.admission = AdmissionController(
            max_pending=max_pending,
            tenant_rate=tenant_rate,
            tenant_burst=tenant_burst,
        )
        self.warnings: list[str] = []
        self.jobs_by_id: dict[str, JobState] = {}
        self.counters: dict[str, int] = {
            "submitted": 0, "coalesced": 0, "sheds": 0,
            "retries": 0, "leases": 0, "quarantined": 0,
            "worker_deaths": 0, "lease_expiries": 0,
        }
        self._replay()
        if not read_only:
            # Crash debris audit: a predecessor killed between tmp-write
            # and rename must not leak files forever.
            audit = self.cache.verify(prune_tmp=True)
            if audit["tmp_found"]:
                self.warnings.append(
                    f"cache verify: {audit['tmp_found']} orphaned tmp "
                    f"file(s), removed {audit['tmp_removed']}"
                )
            if audit["corrupt"]:
                self.warnings.append(
                    f"cache verify: {audit['corrupt']} corrupt cache "
                    f"entr(ies) (run `repro cache prune`)"
                )

    # -- lifecycle ----------------------------------------------------------

    def _acquire_lock(self) -> None:
        """Single-writer guard with stale-lock recovery."""
        self.state_dir.mkdir(parents=True, exist_ok=True)
        lock = self.state_dir / "LOCK"
        for _ in range(2):
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.write(fd, str(os.getpid()).encode())
                self._lock_fd = fd
                return
            except FileExistsError:
                try:
                    pid = int(lock.read_text() or "0")
                except (OSError, ValueError):
                    pid = 0
                if pid > 0 and _pid_alive(pid):
                    raise ServiceError(
                        f"service state {self.state_dir} is locked by live "
                        f"pid {pid} (one writer at a time)"
                    ) from None
                # Stale lock from a crashed predecessor: steal it.
                lock.unlink(missing_ok=True)
        raise ServiceError(f"could not acquire lock {lock}")

    def close(self) -> None:
        self.journal.close()
        if self._lock_fd is not None:
            os.close(self._lock_fd)
            (self.state_dir / "LOCK").unlink(missing_ok=True)
            self._lock_fd = None

    def __enter__(self) -> "SweepService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- journal replay -----------------------------------------------------

    def _replay(self) -> None:
        records, warnings = self.journal.replay()
        self.warnings.extend(warnings)
        for rec in records:
            t = rec.get("t")
            if t == "submit":
                state = JobState(
                    id=rec["job"], key=rec["key"], kind=rec["kind"],
                    params=rec["params"], tenant=rec.get("tenant", "default"),
                    submitted_ts=rec.get("ts", 0.0),
                )
                self.jobs_by_id[state.id] = state
                self.counters["submitted"] += 1
                # Rebuild the tenant's token-bucket history so a service
                # restart does not refill everyone's burst for free.
                self.admission.bucket(state.tenant).try_take(
                    rec.get("ts", 0.0)
                )
                continue
            if t == "shed":
                self.counters["sheds"] += 1
                self.admission.sheds += 1
                continue
            job = self.jobs_by_id.get(rec.get("job", ""))
            if job is None:
                continue
            if t == "coalesce":
                job.coalesced += 1
                self.counters["coalesced"] += 1
            elif t == "plan":
                job.plan = [list(c) for c in rec["chunks"]]
                job.planned_workers = rec.get("workers")
                job.cells = rec.get("cells")
                job.status = "running"
            elif t == "lease":
                job.leases += 1
                self.counters["leases"] += 1
            elif t == "retry":
                job.retries += 1
                self.counters["retries"] += 1
                if rec.get("reason") == "worker-died":
                    self.counters["worker_deaths"] += 1
                elif rec.get("reason") == "lease-expired":
                    self.counters["lease_expiries"] += 1
            elif t == "done":
                job.done_chunks.add(int(rec["chunk"]))
            elif t == "quarantine":
                job.quarantined.add(int(rec["chunk"]))
                self.counters["quarantined"] += 1
            elif t == "job_done":
                job.digest = rec.get("digest")
                job.status = "degraded" if rec.get("quarantined") else "done"
            elif t == "job_failed":
                job.status = "failed"
                job.error = rec.get("error")

    # -- submission ---------------------------------------------------------

    def pending_jobs(self) -> list[JobState]:
        """Unfinished jobs in submission (= journal) order."""
        return [
            job for job in self.jobs_by_id.values()
            if job.status in ("pending", "running")
        ]

    def submit(
        self, kind: str, params: dict, *, tenant: str = "default"
    ) -> tuple[str, bool]:
        """Admit one job; returns ``(job_id, coalesced)``.

        Raises :class:`~repro.errors.ServiceOverloadError` (after
        journaling the shed) when admission declines.  A submission
        whose task key matches a pending/running job attaches to it
        instead of queueing duplicate work.
        """
        if self.read_only:
            raise ServiceError("service opened read-only")
        spec = make_spec(kind, params)
        key = spec.key()
        now = float(self.clock())
        for job in self.pending_jobs():
            if job.key == key:
                job.coalesced += 1
                self.counters["coalesced"] += 1
                self.journal.append({
                    "t": "coalesce", "job": job.id, "tenant": tenant,
                    "ts": now,
                })
                return job.id, True
        try:
            self.admission.admit(tenant, len(self.pending_jobs()), now)
        except ServiceOverloadError as exc:
            self.counters["sheds"] += 1
            self.journal.append({
                "t": "shed", "tenant": tenant, "reason": exc.reason,
                "retry_after": exc.retry_after, "ts": now,
            })
            raise
        job_id = self._next_job_id()
        self.journal.append({
            "t": "submit", "job": job_id, "key": key, "kind": spec.kind,
            "params": spec.params, "tenant": tenant, "ts": now,
        })
        state = JobState(
            id=job_id, key=key, kind=spec.kind, params=spec.params,
            tenant=tenant, submitted_ts=now,
        )
        self.jobs_by_id[job_id] = state
        self.counters["submitted"] += 1
        return job_id, False

    def _next_job_id(self) -> str:
        top = 0
        for job_id in self.jobs_by_id:
            try:
                top = max(top, int(job_id.lstrip("j")))
            except ValueError:
                continue
        return f"j{top + 1:06d}"

    # -- execution ----------------------------------------------------------

    def run_pending(self) -> list[dict]:
        """Execute every unfinished job in submission order.

        Returns the completed reports.  An
        :class:`~repro.service.chaos.InjectedServiceCrash` propagates
        (that is the point of the injection); per-job *task* errors mark
        the job failed and execution moves on.
        """
        if self.read_only:
            raise ServiceError("service opened read-only")
        reports = []
        for job in list(self.pending_jobs()):
            try:
                reports.append(self._execute(job))
            except InjectedServiceCrash:
                raise
            except ServiceError as exc:
                job.status = "failed"
                job.error = str(exc)
                self.journal.append({
                    "t": "job_failed", "job": job.id, "error": str(exc),
                })
        return reports

    def _chunk_descriptor(self, job: JobState, chunk: int) -> dict:
        return {"job_key": job.key, "chunk": chunk, "plan": job.plan}

    def _chunk_cache_key(self, job: JobState, chunk: int) -> str:
        return task_digest(self.cache._envelope(
            self.CHUNK_KIND, self._chunk_descriptor(job, chunk)
        ))

    def _execute(self, job: JobState) -> dict:
        spec = JobSpec(kind=job.kind, params=job.params)
        cells = build_cells(spec)

        if job.plan is None:
            # First execution: resolve the worker count *now*, derive the
            # chunk plan from it, and journal both before leasing
            # anything.  A resume re-uses this exact plan — environment
            # changes (REPRO_JOBS) can never re-shard recorded work.
            workers = resolve_jobs(self.workers)
            plan = plan_chunks(len(cells), workers, self.chunk_size)
            job.plan = [list(c) for c in plan]
            job.planned_workers = workers
            job.cells = len(cells)
            job.status = "running"
            self.journal.append({
                "t": "plan", "job": job.id, "cells": len(cells),
                "chunks": job.plan, "workers": workers,
                "chunk_deadline_s": self.chunk_deadline_s,
                "max_attempts": self.max_attempts,
            })
        elif job.cells is not None and job.cells != len(cells):
            raise ServiceError(
                f"job {job.id}: journaled plan covers {job.cells} cells but "
                f"the task now builds {len(cells)} — the engine or task "
                f"definition changed under a live job; resubmit it"
            )
        plan = [tuple(c) for c in job.plan]

        # Resume: chunks the journal says are done come back from the
        # content-addressed cache.  A missing/pruned payload simply
        # demotes the chunk to "not done" — recomputing is idempotent.
        records_by_chunk: dict[int, list | None] = {}
        for chunk in sorted(job.done_chunks):
            payload = self.cache.get(
                self.CHUNK_KIND, self._chunk_descriptor(job, chunk),
                default=None,
            )
            if payload is not None:
                records_by_chunk[chunk] = payload
            else:
                self.warnings.append(
                    f"{job.id}: journaled chunk {chunk} payload missing "
                    f"from cache — recomputing (idempotent)"
                )
        for chunk in job.quarantined:
            records_by_chunk.setdefault(chunk, None)

        crash_after = None
        if self.inject is not None and self.inject.crash_after_chunks is not None:
            crash_after = max(1, self.inject.crash_after_chunks)
        completed_this_run = 0

        def on_chunk_done(chunk: int, records: list) -> None:
            nonlocal completed_this_run
            # Cache first, journal second: if we die between the two the
            # journal simply lacks the fact and the chunk recomputes into
            # the same content address.
            self.cache.put(
                self.CHUNK_KIND, self._chunk_descriptor(job, chunk), records
            )
            self.journal.append({
                "t": "done", "job": job.id, "chunk": chunk,
                "cache": self._chunk_cache_key(job, chunk),
            })
            job.done_chunks.add(chunk)
            records_by_chunk[chunk] = records
            completed_this_run += 1
            if crash_after is not None and completed_this_run >= crash_after:
                raise InjectedServiceCrash(completed_this_run)

        def on_event(event: dict) -> None:
            body = dict(event)
            body["job"] = job.id
            self.journal.append(body)
            if event["t"] == "lease":
                job.leases += 1
                self.counters["leases"] += 1
            elif event["t"] == "retry":
                job.retries += 1
                self.counters["retries"] += 1
                if event.get("reason") == "worker-died":
                    self.counters["worker_deaths"] += 1
                elif event.get("reason") == "lease-expired":
                    self.counters["lease_expiries"] += 1

        todo = set(range(len(plan))) - set(records_by_chunk)
        if todo:
            supervisor = Supervisor(
                workers=resolve_jobs(self.workers),
                chunk_deadline_s=self.chunk_deadline_s,
                max_attempts=self.max_attempts,
                backoff_base_s=self.backoff_base_s,
                chaos=self.inject,
                on_event=on_event,
                on_chunk_done=on_chunk_done,
            )
            outcomes = supervisor.run(
                spec.kind, spec.params, cells, list(plan),
                skip_chunks=set(records_by_chunk),
            )
            for chunk, outcome in outcomes.items():
                if outcome.quarantined:
                    job.quarantined.add(chunk)
                    self.counters["quarantined"] += 1
                    records_by_chunk[chunk] = None

        # Reassemble per-cell records in cell order; quarantined chunks
        # contribute explicit holes.
        full_records: list = []
        for i, (start, stop) in enumerate(plan):
            chunk_records = records_by_chunk.get(i)
            if chunk_records is None:
                full_records.extend([None] * (stop - start))
            else:
                full_records.extend(chunk_records)

        report = finalize(spec, full_records)
        report["job"] = job.id
        report["quarantined_chunks"] = sorted(job.quarantined)
        job.digest = report.get("digest")
        job.status = "degraded" if job.quarantined else "done"
        self.journal.append({
            "t": "job_done", "job": job.id, "digest": job.digest,
            "quarantined": sorted(job.quarantined),
            "counters": {
                "retries": job.retries, "leases": job.leases,
            },
        })
        self._write_report(job, report)
        return report

    def _write_report(self, job: JobState, report: dict) -> None:
        results = self.state_dir / "results"
        results.mkdir(parents=True, exist_ok=True)
        path = results / f"{job.id}.json"
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w") as fh:
            json.dump(report, fh, indent=2, default=repr)
        os.replace(tmp, path)

    # -- inspection ---------------------------------------------------------

    def jobs(self) -> dict[str, Any]:
        """The ``repro jobs`` payload: states, counters, warnings."""
        return {
            "state_dir": str(self.state_dir),
            "jobs": [
                job.summary() for job in self.jobs_by_id.values()
            ],
            "counters": dict(self.counters),
            "warnings": list(self.warnings),
        }


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    return True
