"""The durable sweep service: submit / execute / inspect, crash-safely.

:class:`SweepService` ties the subsystem together around a state
directory::

    <state>/wal/        write-ahead journal (facts, before actions)
    <state>/cache/      content-addressed chunk + result payloads
    <state>/results/    one JSON report per completed job
    <state>/LOCK        single-writer guard (pid; stale locks are stolen)

The contract, end to end:

* ``submit`` runs the admission gauntlet (bounded queue, per-tenant
  token bucket), **coalesces** submissions whose content-addressed task
  key matches a job already pending or running (one in-flight
  computation, many waiters), journals the accepted submission, and
  returns a job id — it never executes anything.
* ``run_pending`` executes journaled-but-unfinished jobs in submission
  order: the chunk plan is journaled *before* the first lease (a
  resumed job re-uses the recorded plan even if ``REPRO_JOBS`` changed
  meanwhile), every completed chunk's records go to the content-
  addressed cache *before* the completion fact is journaled, and the
  supervisor re-leases chunks across worker deaths, hangs, and
  quarantines.
* a killed service (crash, power cut, ``crash-service`` injection)
  restarts, replays the journal, and resumes **exactly** the unfinished
  chunks — completed chunk payloads come back from the cache, so the
  final report digest is bit-identical to an undisturbed run.

Everything the robustness machinery counts (retries, expiries, sheds,
coalesces) is surfaced by :meth:`jobs` and deliberately excluded from
every report digest.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.cache import ResultCache, task_digest
from repro.analysis.parallel import contiguous_spans, plan_chunks, resolve_jobs
from repro.errors import ServiceError, ServiceOverloadError
from repro.service.admission import AdmissionController
from repro.service.chaos import (
    ChaosPolicy,
    InjectedServiceCrash,
    corrupt_tail_bytes,
)
from repro.service.hostpool import HostPool, host_status
from repro.service.jobs import JobSpec, build_cells, finalize, make_spec
from repro.service.journal import Journal
from repro.service.scheduler import DeficitScheduler
from repro.service.streaming import StreamWriter
from repro.service.supervisor import Supervisor

__all__ = ["SweepService", "JobState"]


@dataclass
class JobState:
    """Replayed state of one job (everything ``repro jobs`` shows)."""

    id: str
    key: str
    kind: str
    params: dict
    tenant: str
    submitted_ts: float
    status: str = "pending"  # pending | running | done | degraded | failed
    plan: list[list[int]] | None = None
    planned_workers: int | None = None
    cells: int | None = None
    done_chunks: set = field(default_factory=set)
    quarantined: set = field(default_factory=set)
    digest: str | None = None
    error: str | None = None
    coalesced: int = 0
    retries: int = 0
    leases: int = 0
    # chunk -> the attempt number its *next* lease carries; rebuilt from
    # journaled 'retry' records so the seeded backoff schedule survives
    # a daemon restart instead of resetting to attempt 1.
    attempts: dict = field(default_factory=dict)

    def summary(self) -> dict[str, Any]:
        total = len(self.plan) if self.plan is not None else None
        return {
            "id": self.id,
            "kind": self.kind,
            "tenant": self.tenant,
            "status": self.status,
            "key": self.key[:16],
            "chunks_done": len(self.done_chunks),
            "chunks_total": total,
            "spans": [list(s) for s in contiguous_spans(self.done_chunks)],
            "quarantined": sorted(self.quarantined),
            "digest": self.digest,
            "coalesced": self.coalesced,
            "retries": self.retries,
            "leases": self.leases,
            "error": self.error,
        }


class SweepService:
    """Crash-safe executor for sweep / region-map / degrade / chaos jobs."""

    #: cache kind namespacing per-chunk payloads
    CHUNK_KIND = "service_chunk"
    #: cache kind namespacing whole-job reports
    REPORT_KIND = "service_report"

    def __init__(
        self,
        state_dir: str | os.PathLike,
        *,
        workers: int | None = None,
        chunk_size: int | None = None,
        chunk_deadline_s: float = 30.0,
        max_attempts: int = 3,
        backoff_base_s: float = 0.05,
        max_pending: int = 32,
        tenant_rate: float | None = 2.0,
        tenant_burst: float = 8.0,
        tenant_weights: dict[str, float] | None = None,
        inject: ChaosPolicy | None = None,
        read_only: bool = False,
        use_hosts: bool | None = None,
        stale_after_s: float = 5.0,
        host_span: int = 4,
        host_rate: float | None = None,
        host_burst: float = 4.0,
        stream: bool = True,
        clock=time.time,
    ):
        self.state_dir = pathlib.Path(state_dir)
        self.workers = workers
        self.chunk_size = chunk_size
        self.chunk_deadline_s = float(chunk_deadline_s)
        self.max_attempts = int(max_attempts)
        self.backoff_base_s = float(backoff_base_s)
        self.inject = inject
        self.read_only = read_only
        # Multi-host tier: None = auto (use agents when <state>/hosts/
        # has any registered host), True/False force either way.
        self.use_hosts = use_hosts
        self.stale_after_s = float(stale_after_s)
        self.host_span = int(host_span)
        self.host_rate = host_rate
        self.host_burst = float(host_burst)
        self.stream = stream
        self.clock = clock
        self._lock_fd: int | None = None
        self._stop = False

        if not read_only:
            self._acquire_lock()
        self.journal = Journal(self.state_dir / "wal")
        if inject is not None and inject.corrupt_journal_tail:
            # Chaos hook: bit-rot the journal tail *before* replay, as a
            # real torn write would present itself.
            segs = self.journal.segments()
            if segs:
                corrupt_tail_bytes(segs[-1])
        self.cache = ResultCache(self.state_dir / "cache")
        self.admission = AdmissionController(
            max_pending=max_pending,
            tenant_rate=tenant_rate,
            tenant_burst=tenant_burst,
        )
        self.scheduler = DeficitScheduler(tenant_weights)
        self.warnings: list[str] = []
        self.jobs_by_id: dict[str, JobState] = {}
        self.last_shed: dict[str, Any] | None = None
        self.counters: dict[str, int] = {
            "submitted": 0, "coalesced": 0, "sheds": 0,
            "retries": 0, "leases": 0, "quarantined": 0,
            "worker_deaths": 0, "lease_expiries": 0,
            "host_leases": 0, "host_revocations": 0,
        }
        # Journaled scheduling decisions whose jobs are still unfinished,
        # in decision order — a resumed daemon replays this interleaving
        # before asking the scheduler for anything new.
        self._sched_decided: list[str] = []
        self._sched_snapshot: dict | None = None
        self._replay()
        if self._sched_snapshot is not None:
            self.scheduler.restore(self._sched_snapshot)
        if not read_only:
            # Crash debris audit: a predecessor killed between tmp-write
            # and rename must not leak files forever.  Partial streaming
            # snapshots without a live job are counted, not deleted —
            # they are a dead daemon's last visible progress.
            audit = self.cache.verify(
                prune_tmp=True,
                partials_dir=self.state_dir / "results",
                live_jobs=[j.id for j in self.pending_jobs()],
            )
            if audit["tmp_found"]:
                self.warnings.append(
                    f"cache verify: {audit['tmp_found']} orphaned tmp "
                    f"file(s), removed {audit['tmp_removed']}"
                )
            if audit["corrupt"]:
                self.warnings.append(
                    f"cache verify: {audit['corrupt']} corrupt cache "
                    f"entr(ies) (run `repro cache prune`)"
                )
            if audit["orphan_partials"]:
                self.warnings.append(
                    f"cache verify: {audit['orphan_partials']} orphaned "
                    f"partial snapshot(s) in results/ (no live job — "
                    f"crash debris from a dead daemon)"
                )

    # -- lifecycle ----------------------------------------------------------

    def _acquire_lock(self) -> None:
        """Single-writer guard with stale-lock recovery."""
        self.state_dir.mkdir(parents=True, exist_ok=True)
        lock = self.state_dir / "LOCK"
        for _ in range(2):
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.write(fd, str(os.getpid()).encode())
                self._lock_fd = fd
                return
            except FileExistsError:
                try:
                    pid = int(lock.read_text() or "0")
                except (OSError, ValueError):
                    pid = 0
                if pid > 0 and _pid_alive(pid):
                    raise ServiceError(
                        f"service state {self.state_dir} is locked by live "
                        f"pid {pid} (one writer at a time)"
                    ) from None
                # Stale lock from a crashed predecessor: steal it.
                lock.unlink(missing_ok=True)
        raise ServiceError(f"could not acquire lock {lock}")

    def close(self) -> None:
        self.journal.close()
        if self._lock_fd is not None:
            os.close(self._lock_fd)
            (self.state_dir / "LOCK").unlink(missing_ok=True)
            self._lock_fd = None

    def __enter__(self) -> "SweepService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- journal replay -----------------------------------------------------

    def _replay(self) -> None:
        records, warnings = self.journal.replay()
        self.warnings.extend(warnings)
        for rec in records:
            t = rec.get("t")
            if t == "submit":
                state = JobState(
                    id=rec["job"], key=rec["key"], kind=rec["kind"],
                    params=rec["params"], tenant=rec.get("tenant", "default"),
                    submitted_ts=rec.get("ts", 0.0),
                )
                self.jobs_by_id[state.id] = state
                self.counters["submitted"] += 1
                # Rebuild the tenant's token-bucket history so a service
                # restart does not refill everyone's burst for free.
                self.admission.bucket(state.tenant).try_take(
                    rec.get("ts", 0.0)
                )
                continue
            if t == "shed":
                self.counters["sheds"] += 1
                self.admission.sheds += 1
                self.last_shed = {
                    "tenant": rec.get("tenant"),
                    "reason": rec.get("reason"),
                    "retry_after": rec.get("retry_after"),
                    "ts": rec.get("ts"),
                }
                continue
            if t == "sched":
                # Replay the fair scheduler's journaled interleaving: the
                # decision order is authoritative, and the last snapshot
                # restores the deficit counters for *new* decisions.
                self._sched_snapshot = rec.get("state")
                self._sched_decided.append(rec.get("job", ""))
                continue
            job = self.jobs_by_id.get(rec.get("job", ""))
            if job is None:
                continue
            if t == "coalesce":
                job.coalesced += 1
                self.counters["coalesced"] += 1
            elif t == "plan":
                job.plan = [list(c) for c in rec["chunks"]]
                job.planned_workers = rec.get("workers")
                job.cells = rec.get("cells")
                job.status = "running"
            elif t == "lease":
                job.leases += 1
                self.counters["leases"] += 1
            elif t == "hlease":
                self.counters["host_leases"] += 1
            elif t == "hrevoke":
                self.counters["host_revocations"] += 1
            elif t == "retry":
                job.retries += 1
                self.counters["retries"] += 1
                job.attempts[int(rec["chunk"])] = int(rec["attempt"])
                if rec.get("reason") == "worker-died":
                    self.counters["worker_deaths"] += 1
                elif rec.get("reason") == "lease-expired":
                    self.counters["lease_expiries"] += 1
            elif t == "done":
                job.done_chunks.add(int(rec["chunk"]))
                job.attempts.pop(int(rec["chunk"]), None)
            elif t == "quarantine":
                job.quarantined.add(int(rec["chunk"]))
                job.attempts.pop(int(rec["chunk"]), None)
                self.counters["quarantined"] += 1
            elif t == "job_done":
                job.digest = rec.get("digest")
                job.status = "degraded" if rec.get("quarantined") else "done"
            elif t == "job_failed":
                job.status = "failed"
                job.error = rec.get("error")

    # -- submission ---------------------------------------------------------

    def pending_jobs(self) -> list[JobState]:
        """Unfinished jobs in submission (= journal) order."""
        return [
            job for job in self.jobs_by_id.values()
            if job.status in ("pending", "running")
        ]

    def submit(
        self, kind: str, params: dict, *, tenant: str = "default"
    ) -> tuple[str, bool]:
        """Admit one job; returns ``(job_id, coalesced)``.

        Raises :class:`~repro.errors.ServiceOverloadError` (after
        journaling the shed) when admission declines.  A submission
        whose task key matches a pending/running job attaches to it
        instead of queueing duplicate work.
        """
        if self.read_only:
            raise ServiceError("service opened read-only")
        spec = make_spec(kind, params)
        key = spec.key()
        now = float(self.clock())
        for job in self.pending_jobs():
            if job.key == key:
                job.coalesced += 1
                self.counters["coalesced"] += 1
                self.journal.append({
                    "t": "coalesce", "job": job.id, "tenant": tenant,
                    "ts": now,
                })
                return job.id, True
        try:
            self.admission.admit(tenant, len(self.pending_jobs()), now)
        except ServiceOverloadError as exc:
            self.counters["sheds"] += 1
            self.last_shed = {
                "tenant": tenant, "reason": exc.reason,
                "retry_after": exc.retry_after, "ts": now,
            }
            self.journal.append({
                "t": "shed", "tenant": tenant, "reason": exc.reason,
                "retry_after": exc.retry_after, "ts": now,
            })
            raise
        job_id = self._next_job_id()
        self.journal.append({
            "t": "submit", "job": job_id, "key": key, "kind": spec.kind,
            "params": spec.params, "tenant": tenant, "ts": now,
        })
        state = JobState(
            id=job_id, key=key, kind=spec.kind, params=spec.params,
            tenant=tenant, submitted_ts=now,
        )
        self.jobs_by_id[job_id] = state
        self.counters["submitted"] += 1
        return job_id, False

    def _next_job_id(self) -> str:
        top = 0
        for job_id in self.jobs_by_id:
            try:
                top = max(top, int(job_id.lstrip("j")))
            except ValueError:
                continue
        return f"j{top + 1:06d}"

    # -- execution ----------------------------------------------------------

    def request_stop(self) -> None:
        """Ask the service to drain: the running supervisor/host pool
        stops leasing, in-flight chunks are abandoned (their completions
        are simply never journaled, so a resume re-leases exactly them),
        and the execution loop returns.  Signal-handler safe."""
        self._stop = True

    def next_job(self) -> JobState | None:
        """The next job under the fair-scheduling discipline.

        Journaled-but-unfinished decisions replay first (in their
        recorded order — a resumed daemon reproduces the dead daemon's
        interleaving exactly); only then is the deficit scheduler asked
        for a fresh decision, which is journaled before being returned.
        """
        while self._sched_decided:
            job = self.jobs_by_id.get(self._sched_decided[0])
            if job is not None and job.status in ("pending", "running"):
                return job
            self._sched_decided.pop(0)
        backlog: dict[str, list[JobState]] = {}
        for job in self.pending_jobs():
            backlog.setdefault(job.tenant, []).append(job)
        picked = self.scheduler.select(backlog)
        if picked is None:
            return None
        self._sched_decided.append(picked.id)
        self.journal.append({
            "t": "sched", "job": picked.id, "tenant": picked.tenant,
            "state": self.scheduler.snapshot(),
        })
        return picked

    def run_pending(self) -> list[dict]:
        """Execute every unfinished job under fair scheduling.

        Returns the completed reports.  An
        :class:`~repro.service.chaos.InjectedServiceCrash` propagates
        (that is the point of the injection); per-job *task* errors mark
        the job failed and execution moves on.  A drain request stops
        the loop with the current job handed back to the journal.
        """
        if self.read_only:
            raise ServiceError("service opened read-only")
        reports = []
        while not self._stop:
            job = self.next_job()
            if job is None:
                break
            report = self._execute_guarded(job)
            if report is not None:
                reports.append(report)
            elif job.status in ("pending", "running"):
                break  # drained mid-job; the journal has the rest
        return reports

    def _execute_guarded(self, job: JobState) -> dict | None:
        """Run one job; returns its report, or ``None`` when the job
        failed (status ``failed``) or was drained (still ``running``)."""
        try:
            return self._execute(job)
        except InjectedServiceCrash:
            raise
        except ServiceError as exc:
            job.status = "failed"
            job.error = str(exc)
            self.journal.append({
                "t": "job_failed", "job": job.id, "error": str(exc),
            })
            return None

    # -- daemon mode ---------------------------------------------------------

    def ingest_spool(self) -> int:
        """Absorb submissions spooled by ``repro submit`` while this
        daemon holds the LOCK.

        Each ``spool/req-<nonce>.json`` goes through the normal
        admission/coalescing path; the outcome is published as
        ``spool/ack-<nonce>.json`` (job id, or shed with ``retry_after``)
        for the submitting process to pick up.  Returns the number of
        requests processed.
        """
        spool = self.state_dir / "spool"
        if not spool.is_dir():
            return 0
        processed = 0
        for req_path in sorted(spool.glob("req-*.json")):
            try:
                req = json.loads(req_path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue  # mid-rename; next tick
            nonce = str(req.get("nonce") or req_path.stem[len("req-"):])
            ack: dict[str, Any] = {"nonce": nonce}
            try:
                job_id, coalesced = self.submit(
                    req["kind"], req.get("params", {}),
                    tenant=req.get("tenant", "default"),
                )
                ack.update(job=job_id, coalesced=coalesced)
            except ServiceOverloadError as exc:
                ack.update(
                    shed=True, reason=exc.reason,
                    retry_after=exc.retry_after,
                )
            except ServiceError as exc:
                ack.update(error=str(exc))
            tmp = spool / f".ack-{nonce}.tmp.{os.getpid()}"
            tmp.write_text(json.dumps(ack), encoding="utf-8")
            os.replace(tmp, spool / f"ack-{nonce}.json")
            req_path.unlink(missing_ok=True)
            processed += 1
        return processed

    def serve_follow(
        self,
        *,
        poll_s: float = 0.1,
        max_seconds: float | None = None,
        sleep=time.sleep,
        monotonic=time.monotonic,
    ) -> dict[str, Any]:
        """Daemon loop: tail the spool, execute under fair scheduling,
        stream partial results, drain on :meth:`request_stop`.

        Unlike :meth:`run_pending` this does not return when the queue
        empties — it keeps following the spool until a stop request (the
        CLI wires SIGTERM/SIGINT here) or ``max_seconds`` elapses.
        ``InjectedServiceCrash`` propagates, as everywhere.
        """
        if self.read_only:
            raise ServiceError("service opened read-only")
        started = monotonic()
        completed = 0
        failed = 0
        while not self._stop:
            if (max_seconds is not None
                    and monotonic() - started >= max_seconds):
                break
            self.ingest_spool()
            job = self.next_job()
            if job is None:
                sleep(poll_s)
                continue
            report = self._execute_guarded(job)
            if report is not None:
                completed += 1
            elif job.status == "failed":
                failed += 1
        return {
            "completed": completed,
            "failed": failed,
            "drained": self._stop,
            "elapsed_s": monotonic() - started,
        }

    def hosts_enabled(self) -> bool:
        """Whether jobs execute on the multi-host tier (``repro work``
        agents over the shared ``<state>/hosts/`` directory) instead of
        the in-process worker pool."""
        if self.use_hosts is not None:
            return self.use_hosts
        hosts = self.state_dir / "hosts"
        return hosts.is_dir() and any(p.is_dir() for p in hosts.iterdir())

    def _executor(self, on_event, on_chunk_done):
        """The chunk executor for one job: host pool or worker pool,
        same ``run()`` contract either way."""
        if self.hosts_enabled():
            return HostPool(
                self.state_dir / "hosts",
                stale_after_s=self.stale_after_s,
                max_attempts=self.max_attempts,
                backoff_base_s=self.backoff_base_s,
                span=self.host_span,
                host_rate=self.host_rate,
                host_burst=self.host_burst,
                on_event=on_event,
                on_chunk_done=on_chunk_done,
                should_stop=lambda: self._stop,
            )
        return Supervisor(
            workers=resolve_jobs(self.workers),
            chunk_deadline_s=self.chunk_deadline_s,
            max_attempts=self.max_attempts,
            backoff_base_s=self.backoff_base_s,
            chaos=self.inject,
            on_event=on_event,
            on_chunk_done=on_chunk_done,
            should_stop=lambda: self._stop,
        )

    def _chunk_descriptor(self, job: JobState, chunk: int) -> dict:
        return {"job_key": job.key, "chunk": chunk, "plan": job.plan}

    def _chunk_cache_key(self, job: JobState, chunk: int) -> str:
        return task_digest(self.cache._envelope(
            self.CHUNK_KIND, self._chunk_descriptor(job, chunk)
        ))

    def _execute(self, job: JobState) -> dict:
        spec = JobSpec(kind=job.kind, params=job.params)
        cells = build_cells(spec)

        if job.plan is None:
            # First execution: resolve the worker count *now*, derive the
            # chunk plan from it, and journal both before leasing
            # anything.  A resume re-uses this exact plan — environment
            # changes (REPRO_JOBS) can never re-shard recorded work.
            workers = resolve_jobs(self.workers)
            plan = plan_chunks(len(cells), workers, self.chunk_size)
            job.plan = [list(c) for c in plan]
            job.planned_workers = workers
            job.cells = len(cells)
            job.status = "running"
            self.journal.append({
                "t": "plan", "job": job.id, "cells": len(cells),
                "chunks": job.plan, "workers": workers,
                "chunk_deadline_s": self.chunk_deadline_s,
                "max_attempts": self.max_attempts,
            })
        elif job.cells is not None and job.cells != len(cells):
            raise ServiceError(
                f"job {job.id}: journaled plan covers {job.cells} cells but "
                f"the task now builds {len(cells)} — the engine or task "
                f"definition changed under a live job; resubmit it"
            )
        plan = [tuple(c) for c in job.plan]

        # Resume: chunks the journal says are done come back from the
        # content-addressed cache.  A missing/pruned payload simply
        # demotes the chunk to "not done" — recomputing is idempotent.
        records_by_chunk: dict[int, list | None] = {}
        for chunk in sorted(job.done_chunks):
            payload = self.cache.get(
                self.CHUNK_KIND, self._chunk_descriptor(job, chunk),
                default=None,
            )
            if payload is not None:
                records_by_chunk[chunk] = payload
            else:
                self.warnings.append(
                    f"{job.id}: journaled chunk {chunk} payload missing "
                    f"from cache — recomputing (idempotent)"
                )
        for chunk in job.quarantined:
            records_by_chunk.setdefault(chunk, None)

        crash_after = None
        if self.inject is not None and self.inject.crash_after_chunks is not None:
            crash_after = max(1, self.inject.crash_after_chunks)
        completed_this_run = 0

        # Streaming: publish the completed contiguous chunk prefix after
        # every completion.  The writer is rebuilt here on every
        # (re)execution from the same cached records, so each published
        # snapshot — including across daemon crashes — is a byte prefix
        # of the final stream.
        writer = None
        if self.stream:
            writer = StreamWriter(
                self.state_dir / "results", job.id,
                kind=job.kind, key=job.key, chunks_total=len(plan),
            )
            for chunk in sorted(records_by_chunk):
                writer.offer(chunk, records_by_chunk[chunk])
            writer.refresh()

        def on_chunk_done(chunk: int, records: list) -> None:
            nonlocal completed_this_run
            # Cache first, journal second: if we die between the two the
            # journal simply lacks the fact and the chunk recomputes into
            # the same content address.
            self.cache.put(
                self.CHUNK_KIND, self._chunk_descriptor(job, chunk), records
            )
            self.journal.append({
                "t": "done", "job": job.id, "chunk": chunk,
                "cache": self._chunk_cache_key(job, chunk),
            })
            job.done_chunks.add(chunk)
            job.attempts.pop(chunk, None)
            records_by_chunk[chunk] = records
            completed_this_run += 1
            if writer is not None and writer.offer(chunk, records):
                writer.refresh()
            if crash_after is not None and completed_this_run >= crash_after:
                raise InjectedServiceCrash(completed_this_run)

        def on_event(event: dict) -> None:
            body = dict(event)
            body["job"] = job.id
            self.journal.append(body)
            if event["t"] == "lease":
                job.leases += 1
                self.counters["leases"] += 1
            elif event["t"] == "hlease":
                self.counters["host_leases"] += 1
            elif event["t"] == "hrevoke":
                self.counters["host_revocations"] += 1
            elif event["t"] == "retry":
                job.retries += 1
                self.counters["retries"] += 1
                job.attempts[int(event["chunk"])] = int(event["attempt"])
                if event.get("reason") == "worker-died":
                    self.counters["worker_deaths"] += 1
                elif event.get("reason") == "lease-expired":
                    self.counters["lease_expiries"] += 1

        todo = set(range(len(plan))) - set(records_by_chunk)
        if todo:
            initial_attempts = {
                c: a for c, a in job.attempts.items()
                if c not in records_by_chunk
            }
            executor = self._executor(on_event, on_chunk_done)
            outcomes = executor.run(
                spec.kind, spec.params, cells, list(plan),
                skip_chunks=set(records_by_chunk),
                initial_attempts=initial_attempts,
            )
            for chunk, outcome in outcomes.items():
                if outcome.quarantined:
                    job.quarantined.add(chunk)
                    job.attempts.pop(chunk, None)
                    self.counters["quarantined"] += 1
                    records_by_chunk[chunk] = None
            if executor.drained:
                # Drain hand-back: no job_done record, no report — the
                # journal holds every completed chunk, so the next run
                # (or daemon) resumes exactly the remainder.
                return None

        # Reassemble per-cell records in cell order; quarantined chunks
        # contribute explicit holes.
        full_records: list = []
        for i, (start, stop) in enumerate(plan):
            chunk_records = records_by_chunk.get(i)
            if chunk_records is None:
                full_records.extend([None] * (stop - start))
            else:
                full_records.extend(chunk_records)

        report = finalize(spec, full_records)
        report["job"] = job.id
        report["quarantined_chunks"] = sorted(job.quarantined)
        job.digest = report.get("digest")
        job.status = "degraded" if job.quarantined else "done"
        self.journal.append({
            "t": "job_done", "job": job.id, "digest": job.digest,
            "quarantined": sorted(job.quarantined),
            "counters": {
                "retries": job.retries, "leases": job.leases,
            },
        })
        self._write_report(job, report)
        if writer is not None:
            # Quarantined chunks stream as explicit nulls, then the
            # footer (report digest) seals the file as <job>.stream.jsonl
            # and the .partial.json disappears.
            for chunk in sorted(records_by_chunk):
                writer.offer(chunk, records_by_chunk[chunk])
            writer.finish(job.digest, sorted(job.quarantined))
        return report

    def _write_report(self, job: JobState, report: dict) -> None:
        results = self.state_dir / "results"
        results.mkdir(parents=True, exist_ok=True)
        path = results / f"{job.id}.json"
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w") as fh:
            json.dump(report, fh, indent=2, default=repr)
        os.replace(tmp, path)

    # -- inspection ---------------------------------------------------------

    def jobs(self) -> dict[str, Any]:
        """The ``repro jobs`` payload: states, counters, scheduler and
        host health, the last shed (with its ``retry_after``), warnings."""
        summaries = []
        results = self.state_dir / "results"
        for job in self.jobs_by_id.values():
            summary = job.summary()
            summary["partial"] = (
                results / f"{job.id}.partial.json").is_file()
            summaries.append(summary)
        return {
            "state_dir": str(self.state_dir),
            "jobs": summaries,
            "counters": dict(self.counters),
            "scheduler": self.scheduler.snapshot(),
            "hosts": host_status(
                self.state_dir / "hosts",
                stale_after_s=self.stale_after_s,
            ),
            "last_shed": self.last_shed,
            "warnings": list(self.warnings),
        }


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    return True
