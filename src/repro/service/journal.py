"""Write-ahead journal for the sweep service (format v1).

Every durable fact about a job — submission, the chunk plan, chunk
leases, chunk completions, quarantines, job completion — is appended
here *before* the service acts on it, so a killed service process can
restart, replay the journal, and resume exactly the unfinished chunks.
The journal records only facts plus the content-addressed cache keys of
chunk payloads; the payloads themselves live in the
:class:`~repro.analysis.cache.ResultCache`, which makes replay
idempotent (a duplicated completion record is a no-op, a lost one just
recomputes a chunk into the same cache slot).

Format v1
---------
A journal is a directory of append-only **segments** named
``wal-NNNNNN.jsonl``.  Each line is one record: a JSON object with
sorted keys and compact separators carrying

* the caller's fields (``t`` is the record type by convention),
* ``seq`` — a strictly-increasing sequence number across segments,
* ``c`` — the CRC-32 of the canonical JSON encoding of every *other*
  field, tagged on at append time and checked on replay.

Appends flush to the OS on every record (``fsync=True`` additionally
forces the record to the platter — slower, but survives power loss, not
just process death).  When the active segment exceeds
``segment_max_bytes`` the journal **rotates**: the active file is closed
and the next record opens ``wal-(N+1).jsonl``.  Rotation is atomic by
construction — records are never split across segments, and replay walks
segments in name order.

Replay semantics (pinned by ``tests/service/test_journal.py``):

* an empty or absent journal replays to ``[]`` — a fresh start, never an
  error;
* a torn **final** record (crash mid-append: truncated JSON or a CRC
  mismatch on the very last line) is dropped with a warning and replay
  succeeds — losing the tail fact is safe because every action it
  described is idempotent;
* damage anywhere **before** the final record raises
  :class:`~repro.errors.JournalCorruptError` — resuming from falsified
  history is never safe;
* duplicate records replay verbatim; deduplication is the state
  builder's job (completions are a set).
"""

from __future__ import annotations

import json
import os
import pathlib
import zlib
from typing import Any, Iterator

from repro.errors import JournalCorruptError, ServiceError

__all__ = ["Journal", "JOURNAL_VERSION", "encode_record", "decode_line"]

#: bump on any incompatible change to the record framing
JOURNAL_VERSION = 1

_SEGMENT_FMT = "wal-{:06d}.jsonl"


def _crc(body: dict[str, Any]) -> int:
    """CRC-32 over the canonical JSON encoding of ``body`` (sans ``c``)."""
    canon = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canon.encode()) & 0xFFFFFFFF


def encode_record(body: dict[str, Any]) -> str:
    """One journal line (no newline): ``body`` plus its ``c`` CRC tag."""
    tagged = dict(body)
    tagged["c"] = _crc(body)
    return json.dumps(tagged, sort_keys=True, separators=(",", ":"))


def decode_line(line: str) -> dict[str, Any]:
    """Parse and CRC-check one journal line; raises ``ValueError`` on any
    damage (truncated JSON, missing tag, CRC mismatch)."""
    record = json.loads(line)
    if not isinstance(record, dict) or "c" not in record:
        raise ValueError("record is not a CRC-tagged object")
    tag = record.pop("c")
    want = _crc(record)
    if tag != want:
        raise ValueError(f"CRC mismatch (stored {tag:#010x}, computed {want:#010x})")
    return record


class Journal:
    """Append-only CRC-tagged JSONL write-ahead log with segment rotation."""

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        segment_max_bytes: int = 1 << 20,
        fsync: bool = False,
    ):
        self.root = pathlib.Path(root)
        self.segment_max_bytes = int(segment_max_bytes)
        self.fsync = fsync
        self._fh = None
        self._active: pathlib.Path | None = None
        self._seq = 0  # last sequence number handed out
        # Late-open: nothing touches disk until the first append/replay.

    # -- segment bookkeeping -------------------------------------------------

    def segments(self) -> list[pathlib.Path]:
        """Existing segment files, oldest first."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("wal-*.jsonl"))

    def _segment_index(self, path: pathlib.Path) -> int:
        stem = path.stem  # "wal-000001"
        try:
            return int(stem.split("-", 1)[1])
        except (IndexError, ValueError) as exc:
            raise ServiceError(f"alien file in journal dir: {path}") from exc

    def _open_for_append(self) -> None:
        if self._fh is not None:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        segs = self.segments()
        if segs:
            self._active = segs[-1]
            # Seed seq from existing history so appends keep increasing —
            # this also fails loudly on mid-file corruption before we
            # would write anything after it.
            records, _ = self.replay()
            self._seq = max((r.get("seq", 0) for r in records), default=0)
            # A torn/corrupt tail record must be *physically* removed
            # before appending: writing after it would glue the new
            # record onto the damaged line, turning recoverable tail
            # damage into unrecoverable mid-file corruption.  The
            # journal's logical tail lives in the last *non-empty*
            # segment — a crash between rotation and the first append
            # leaves an empty final segment, and appending to it while a
            # torn record lingers one segment back would freeze that
            # damage mid-history.
            tail_seg = self._last_nonempty_segment(segs)
            if tail_seg is not None:
                self._truncate_damaged_tail(tail_seg)
        else:
            self._active = self.root / _SEGMENT_FMT.format(1)
        self._fh = open(self._active, "a", encoding="utf-8")

    @staticmethod
    def _last_nonempty_segment(
        segs: list[pathlib.Path],
    ) -> pathlib.Path | None:
        """The segment holding the journal's logical tail record."""
        for seg in reversed(segs):
            if seg.stat().st_size > 0:
                return seg
        return None

    @staticmethod
    def _truncate_damaged_tail(segment: pathlib.Path) -> None:
        """Trim ``segment`` back to its last intact record boundary."""
        data = segment.read_bytes()
        keep = 0
        offset = 0
        for raw in data.split(b"\n")[:-1]:  # complete lines only
            end = offset + len(raw) + 1
            try:
                decode_line(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                break
            keep = end
            offset = end
        if keep < len(data):
            with open(segment, "r+b") as fh:
                fh.truncate(keep)

    def rotate(self) -> pathlib.Path:
        """Close the active segment and start the next one; returns the
        new segment's path.  Records never straddle segments."""
        self._open_for_append()
        index = self._segment_index(self._active)
        self.close()
        self._active = self.root / _SEGMENT_FMT.format(index + 1)
        self._fh = open(self._active, "a", encoding="utf-8")
        return self._active

    def close(self) -> None:
        """Flush and close the active segment (appends reopen it)."""
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- append --------------------------------------------------------------

    def append(self, body: dict[str, Any]) -> int:
        """Durably append one record; returns its sequence number.

        ``body`` must be JSON-safe and must not contain the reserved
        ``c``/``seq`` keys.  The record is flushed before return (plus
        ``fsync`` when configured), so once this returns the fact
        survives a service crash.
        """
        if "c" in body or "seq" in body:
            raise ServiceError("'c' and 'seq' are reserved journal fields")
        self._open_for_append()
        if self._fh.tell() > self.segment_max_bytes:
            self.rotate()
        self._seq += 1
        tagged = dict(body)
        tagged["seq"] = self._seq
        self._fh.write(encode_record(tagged) + "\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        return self._seq

    # -- replay --------------------------------------------------------------

    def _lines(self) -> Iterator[tuple[pathlib.Path, int, str, bool]]:
        """Yield ``(segment, lineno, line, is_final)`` across all segments.

        Exactly one line is ever final: the last line of the last
        *non-empty* segment.  Rotation can leave an empty trailing
        segment (crash between ``rotate()`` and the first append); that
        empty file must not strip finality from the journal's true tail
        record — a torn write there is still the recoverable
        dropped-with-a-warning case, not mid-file corruption.
        """
        per_segment: list[tuple[pathlib.Path, list[str]]] = []
        for seg in self.segments():
            with open(seg, "r", encoding="utf-8", errors="replace") as fh:
                lines = fh.read().split("\n")
            # A well-formed file ends with "\n" -> last split element "".
            if lines and lines[-1] == "":
                lines.pop()
            per_segment.append((seg, lines))
        tail_idx = max(
            (i for i, (_, lines) in enumerate(per_segment) if lines),
            default=-1,
        )
        for s_idx, (seg, lines) in enumerate(per_segment):
            for l_idx, line in enumerate(lines):
                is_final = s_idx == tail_idx and l_idx == len(lines) - 1
                yield seg, l_idx + 1, line, is_final

    def replay(self) -> tuple[list[dict[str, Any]], list[str]]:
        """All surviving records in order, plus human-readable warnings.

        Implements the v1 damage policy: a damaged *final* record is
        dropped with a warning (torn write — the crash the WAL exists
        for); damage anywhere else raises
        :class:`~repro.errors.JournalCorruptError`.
        """
        records: list[dict[str, Any]] = []
        warnings: list[str] = []
        for seg, lineno, line, is_final in self._lines():
            if line == "":
                # A bare empty line can only be crash debris; mid-file it
                # means history was edited -> corrupt.
                if is_final:
                    warnings.append(
                        f"journal: dropped empty tail line {seg.name}:{lineno}"
                    )
                    continue
                raise JournalCorruptError(seg.name, lineno, "empty record")
            try:
                record = decode_line(line)
            except ValueError as exc:
                if is_final:
                    warnings.append(
                        f"journal: dropped corrupt tail record "
                        f"{seg.name}:{lineno} ({exc}) — resuming from the "
                        f"last intact record"
                    )
                    continue
                raise JournalCorruptError(seg.name, lineno, str(exc)) from exc
            records.append(record)
        return records, warnings
