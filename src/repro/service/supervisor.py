"""Supervised worker pool: chunk leases, deadlines, retries, quarantine.

The supervisor turns *"a pool of processes that dies with its weakest
member"* into *"a pool that outlives any of them"*.  It owns real
worker processes and leases grid chunks to them one at a time:

* each lease carries a **deadline** (``chunk_deadline_s``); a worker
  that neither finishes nor dies by then is declared hung, SIGKILLed,
  and replaced — the discrete-event engine's timeout discipline applied
  to the host;
* a worker that **dies** mid-lease (crash, OOM kill, injected
  ``kill-worker``) is detected by process liveness, its chunk is
  re-leased, and a fresh worker replaces it;
* re-leases happen after a **seeded exponential backoff** (deterministic
  per ``(backoff_seed, chunk, attempt)`` — replayable, like every other
  randomized policy in this repo);
* a chunk that keeps failing is **quarantined** after ``max_attempts``
  and surfaces as a ``None`` record — a poisoned cell degrades the
  report, it never hangs the sweep.

Determinism: chunk payloads are pure functions of ``(kind, params,
cells)``, and the supervisor merges them by chunk index, so the result
list — and any digest over it — is bit-identical whether a run was
undisturbed or survived any number of kills and stalls.  Only the
*counters* (retries, expiries) differ, and they are deliberately kept
out of every digest.

The supervisor is deliberately journal-agnostic: it reports lease /
retry / quarantine events and chunk completions through callbacks, and
the service layer decides what to persist.  That keeps this module
testable with plain lists and keeps WAL policy in one place.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue as queue_mod
import random
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ServiceError
from repro.service.chaos import ChaosPolicy, worker_chaos_hook
from repro.service.jobs import evaluate_chunk

__all__ = [
    "Supervisor", "ChunkOutcome", "SupervisorCounters", "seeded_backoff",
]

#: how often the supervisor polls results / liveness / deadlines
_POLL_S = 0.02


def seeded_backoff(seed: int, chunk: int, attempt: int, base_s: float) -> float:
    """Re-lease delay: ``base * 2**(attempt-1) * u``, ``u`` uniform in
    [0.5, 1.5) from a generator seeded by ``(seed, chunk, attempt)``.

    A pure function of its arguments — the whole retry schedule is
    replayable from the journal, so a daemon that crashes mid-backoff
    resumes the *same* schedule (pinned by
    ``tests/service/test_supervisor.py``).  Shared by the in-process
    supervisor and the multi-host pool so both tiers retry identically.
    """
    rng = random.Random(seed * 1_000_003 + chunk * 8191 + attempt)
    return base_s * (2 ** (attempt - 1)) * (0.5 + rng.random())


def _worker_main(worker_id, task_q, result_q, chaos):
    """Worker process loop: lease -> (chaos hook) -> evaluate -> report.

    Results travel as pickled bytes so the parent controls the protocol
    version (digests over payload bytes stay comparable).  A ``None``
    task is the shutdown sentinel.
    """
    while True:
        task = task_q.get()
        if task is None:
            return
        chunk_id, attempt, kind, params, cells = task
        worker_chaos_hook(chaos, chunk_id, attempt)
        try:
            records = evaluate_chunk(kind, params, cells)
            result_q.put(("done", worker_id, chunk_id, attempt,
                          pickle.dumps(records, protocol=4)))
        except BaseException as exc:  # noqa: BLE001 — report, don't die
            result_q.put(("error", worker_id, chunk_id, attempt,
                          f"{type(exc).__name__}: {exc}"))


@dataclass
class ChunkOutcome:
    """Terminal state of one chunk: its records, or quarantine."""

    chunk: int
    records: list | None
    attempts: int
    quarantined: bool = False
    last_error: str | None = None


@dataclass
class SupervisorCounters:
    """Robustness bookkeeping for one run (never part of any digest)."""

    leases: int = 0
    retries: int = 0
    worker_deaths: int = 0
    lease_expiries: int = 0
    quarantined: int = 0
    backoff_s: float = 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "leases": self.leases,
            "retries": self.retries,
            "worker_deaths": self.worker_deaths,
            "lease_expiries": self.lease_expiries,
            "quarantined": self.quarantined,
            "backoff_s": round(self.backoff_s, 4),
        }


@dataclass
class _Worker:
    proc: Any
    task_q: Any
    busy: tuple[int, int] | None = None  # (chunk_id, attempt)
    lease_deadline: float = 0.0


@dataclass
class _PendingChunk:
    chunk: int
    attempt: int
    not_before: float = 0.0
    last_error: str | None = None


def _mp_context():
    """Fork where available (fast, Linux CI), spawn elsewhere."""
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return mp.get_context()


class Supervisor:
    """Run one job's chunks to completion over a supervised worker pool.

    Parameters
    ----------
    workers:
        Pool size.  Replacement workers keep the pool at this size for
        as long as work remains.
    chunk_deadline_s:
        Lease duration: a chunk not completed this many (wall-clock)
        seconds after assignment is considered hung.
    max_attempts:
        Per-chunk attempt budget before quarantine.
    backoff_base_s / backoff_seed:
        Re-lease delay: ``base * 2**(attempt-1) * u`` with ``u`` drawn
        uniformly from [0.5, 1.5) by a generator seeded from
        ``(backoff_seed, chunk, attempt)`` — jittered so retry storms
        decorrelate, seeded so runs replay.
    chaos:
        Optional :class:`~repro.service.chaos.ChaosPolicy` handed to
        every worker (and consulted nowhere else — the supervisor must
        not "know" when an injection is coming).
    on_event:
        Callback for lease/retry/quarantine facts (journal hook).
    on_chunk_done:
        Callback ``(chunk_id, records)`` fired exactly once per
        completed chunk, in completion order.  Exceptions propagate
        (the ``crash-service`` injection rides on this).
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        chunk_deadline_s: float = 30.0,
        max_attempts: int = 3,
        backoff_base_s: float = 0.05,
        backoff_seed: int = 0,
        chaos: ChaosPolicy | None = None,
        on_event: Callable[[dict], None] | None = None,
        on_chunk_done: Callable[[int, list], None] | None = None,
        clock: Callable[[], float] | None = None,
        sleep: Callable[[float], None] | None = None,
        should_stop: Callable[[], bool] | None = None,
    ):
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        if max_attempts < 1:
            raise ServiceError(f"max_attempts must be >= 1, got {max_attempts}")
        if chunk_deadline_s <= 0:
            raise ServiceError(
                f"chunk_deadline_s must be > 0, got {chunk_deadline_s}"
            )
        self.workers = int(workers)
        self.chunk_deadline_s = float(chunk_deadline_s)
        self.max_attempts = int(max_attempts)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_seed = int(backoff_seed)
        self.chaos = chaos
        self.on_event = on_event or (lambda record: None)
        self.on_chunk_done = on_chunk_done or (lambda chunk, records: None)
        # Lease time is injected (same discipline as admission.py): tests
        # drive deadlines and backoffs from a virtual clock instead of
        # racing the wall clock.  Worker liveness and pool teardown stay
        # on real time — they guard host resources, not lease policy.
        self._clock = clock or time.monotonic
        self._sleep = sleep or time.sleep
        # Drain hook: when it turns true the run loop stops leasing,
        # abandons in-flight work (idempotent — it just re-runs later),
        # and returns the outcomes gathered so far.
        self._should_stop = should_stop or (lambda: False)
        self.drained = False
        self.counters = SupervisorCounters()
        self._ctx = _mp_context()
        self._next_worker_id = 0

    # -- pool plumbing ------------------------------------------------------

    def _spawn_worker(self, result_q) -> _Worker:
        wid = self._next_worker_id
        self._next_worker_id += 1
        task_q = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(wid, task_q, result_q, self.chaos),
            daemon=True,
            name=f"repro-sweep-worker-{wid}",
        )
        proc.start()
        return _Worker(proc=proc, task_q=task_q)

    @staticmethod
    def _reap(worker: _Worker) -> None:
        """Hard-stop a worker and release its queue resources."""
        if worker.proc.is_alive():
            worker.proc.kill()
        worker.proc.join(timeout=5.0)
        worker.task_q.cancel_join_thread()
        worker.task_q.close()

    def _backoff(self, chunk: int, attempt: int) -> float:
        return seeded_backoff(
            self.backoff_seed, chunk, attempt, self.backoff_base_s
        )

    # -- main loop ----------------------------------------------------------

    def run(
        self,
        kind: str,
        params: dict,
        cells: list,
        plan: list[tuple[int, int]],
        *,
        skip_chunks: set[int] | None = None,
        initial_attempts: dict[int, int] | None = None,
    ) -> dict[int, ChunkOutcome]:
        """Execute every chunk of ``plan`` not in ``skip_chunks``.

        Returns ``{chunk_id: ChunkOutcome}`` for the chunks this run
        executed.  ``skip_chunks`` is the resume path: chunks the
        journal already records as complete are simply never leased.
        ``initial_attempts`` maps chunks to the attempt number their
        next lease should carry (journaled ``retry`` records replay
        here), so the seeded backoff schedule continues across a daemon
        restart instead of starting over at attempt 1.
        """
        todo = [
            i for i in range(len(plan))
            if not skip_chunks or i not in skip_chunks
        ]
        outcomes: dict[int, ChunkOutcome] = {}
        self.drained = False
        if not todo:
            return outcomes

        initial_attempts = initial_attempts or {}
        result_q = self._ctx.Queue()
        pool: list[_Worker] = [
            self._spawn_worker(result_q)
            for _ in range(min(self.workers, len(todo)))
        ]
        pending: list[_PendingChunk] = [
            _PendingChunk(chunk=i, attempt=initial_attempts.get(i, 1))
            for i in todo
        ]
        inflight: dict[int, _Worker] = {}  # chunk -> worker holding lease

        try:
            while len(outcomes) < len(todo):
                if self._should_stop():
                    # Graceful drain: abandoned leases are handed back by
                    # construction — the journal has no 'done' for them,
                    # so the next run re-leases exactly these chunks.
                    self.drained = True
                    break
                now = self._clock()
                self._assign(pool, pending, inflight, cells, plan,
                             kind, params, now)
                self._drain_results(result_q, outcomes, inflight, pending, now)
                self._police_leases(pool, pending, inflight, outcomes,
                                    result_q, now)
                if len(outcomes) < len(todo):
                    self._sleep(_POLL_S)
        finally:
            for worker in pool:
                if worker.busy is None and worker.proc.is_alive():
                    worker.task_q.put(None)
            deadline = time.monotonic() + 2.0
            for worker in pool:
                worker.proc.join(timeout=max(0.0, deadline - time.monotonic()))
            for worker in pool:
                self._reap(worker)
            result_q.cancel_join_thread()
            result_q.close()
        return outcomes

    # -- loop phases --------------------------------------------------------

    def _assign(self, pool, pending, inflight, cells, plan, kind, params, now):
        """Lease ready pending chunks to idle workers (deterministic order)."""
        if not pending:
            return
        pending.sort(key=lambda c: (c.not_before, c.chunk))
        for worker in pool:
            if worker.busy is not None or not worker.proc.is_alive():
                continue
            ready = next((c for c in pending if c.not_before <= now), None)
            if ready is None:
                return
            pending.remove(ready)
            start, stop = plan[ready.chunk]
            worker.busy = (ready.chunk, ready.attempt)
            worker.lease_deadline = now + self.chunk_deadline_s
            inflight[ready.chunk] = worker
            self.counters.leases += 1
            self.on_event({
                "t": "lease", "chunk": ready.chunk,
                "attempt": ready.attempt, "cells": [start, stop],
            })
            worker.task_q.put(
                (ready.chunk, ready.attempt, kind, params, cells[start:stop])
            )

    def _drain_results(self, result_q, outcomes, inflight, pending, now):
        """Absorb every queued worker report."""
        while True:
            try:
                msg = result_q.get_nowait()
            except queue_mod.Empty:
                return
            status, wid, chunk_id, attempt, payload = msg
            worker = inflight.get(chunk_id)
            if worker is None or worker.busy != (chunk_id, attempt):
                # Late report from a lease we already revoked (e.g. a
                # stalled worker finishing just before the SIGKILL
                # landed).  Payloads are pure, so dropping is safe.
                continue
            worker.busy = None
            del inflight[chunk_id]
            if status == "done":
                outcomes[chunk_id] = ChunkOutcome(
                    chunk=chunk_id,
                    records=pickle.loads(payload),
                    attempts=attempt,
                )
                self.on_chunk_done(chunk_id, outcomes[chunk_id].records)
            else:  # evaluation raised inside the worker
                self._retry_or_quarantine(
                    pending, outcomes, chunk_id, attempt,
                    reason="error", detail=payload, now=now,
                )

    def _police_leases(self, pool, pending, inflight, outcomes, result_q, now):
        """Detect dead and hung workers; re-lease or quarantine their chunks."""
        for idx, worker in enumerate(pool):
            if worker.busy is None:
                if not worker.proc.is_alive() and (pending or inflight):
                    # An idle worker died (shouldn't happen, but a pool
                    # that shrinks silently is a pool that deadlocks).
                    self._reap(worker)
                    pool[idx] = self._spawn_worker(result_q)
                continue
            chunk_id, attempt = worker.busy
            died = not worker.proc.is_alive()
            expired = now >= worker.lease_deadline
            if not died and not expired:
                continue
            if died:
                self.counters.worker_deaths += 1
                reason = "worker-died"
                detail = f"exit code {worker.proc.exitcode}"
            else:
                self.counters.lease_expiries += 1
                reason = "lease-expired"
                detail = (
                    f"no result within {self.chunk_deadline_s:g}s "
                    f"(attempt {attempt})"
                )
            self._reap(worker)
            del inflight[chunk_id]
            pool[idx] = self._spawn_worker(result_q)
            self._retry_or_quarantine(
                pending, outcomes, chunk_id, attempt,
                reason=reason, detail=detail, now=now,
            )

    def _retry_or_quarantine(
        self, pending, outcomes, chunk_id, attempt, *, reason, detail, now
    ):
        if attempt >= self.max_attempts:
            self.counters.quarantined += 1
            outcomes[chunk_id] = ChunkOutcome(
                chunk=chunk_id, records=None, attempts=attempt,
                quarantined=True, last_error=f"{reason}: {detail}",
            )
            self.on_event({
                "t": "quarantine", "chunk": chunk_id,
                "attempts": attempt, "reason": reason, "detail": detail,
            })
            return
        delay = self._backoff(chunk_id, attempt)
        self.counters.retries += 1
        self.counters.backoff_s += delay
        self.on_event({
            "t": "retry", "chunk": chunk_id, "attempt": attempt + 1,
            "reason": reason, "detail": detail,
            "backoff_s": round(delay, 4),
        })
        pending.append(_PendingChunk(
            chunk=chunk_id, attempt=attempt + 1,
            not_before=now + delay, last_error=detail,
        ))
