"""Fault-injection hooks for the sweep service itself.

The simulator's robustness is tested by seeded fault plans; the service
that *runs* the simulator deserves the same treatment.  A
:class:`ChaosPolicy` describes deterministic, replayable injections into
the host-side execution path:

``kill-worker:K``
    The worker process leased chunk ``K`` calls ``os._exit`` the first
    time it starts that chunk (attempt 1 only) — a hard crash with no
    cleanup, exactly what OOM killers and segfaults look like from the
    supervisor's side.
``stall-worker:K``
    The worker sleeps past any reasonable deadline on its first attempt
    at chunk ``K`` — a hang.  The supervisor must detect the expired
    lease, kill the worker, and re-lease the chunk.
``poison-chunk:K``
    The worker crashes on *every* attempt at chunk ``K`` — a chunk that
    can never complete.  Exercises the quarantine path: after
    ``max_attempts`` the chunk is surfaced in the report instead of
    hanging the sweep forever.
``crash-service:K``
    The *service* process raises :class:`InjectedServiceCrash`
    immediately after journaling the ``K``-th chunk completion — the
    moral equivalent of ``kill -9`` on the supervisor with the journal
    intact.  A subsequent ``repro serve`` must resume exactly the
    unfinished chunks.
``corrupt-journal-tail``
    Before replay, flip bytes in the last record of the journal —
    simulating a torn/bit-rotted tail.  The service must drop the tail
    record with a warning and recover (idempotently recomputing or
    re-finalizing whatever the lost record described).

Because kill/stall injections fire only on attempt 1 (and the retry path
recomputes the identical pure cells), a run that survives them must
produce a report digest bit-identical to an undisturbed run — the
service-level analogue of the simulator's replay-determinism gates.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.errors import ServiceError

__all__ = [
    "ChaosPolicy",
    "InjectedServiceCrash",
    "parse_injections",
    "worker_chaos_hook",
    "KILLED_EXIT_CODE",
]

#: exit status an injected worker kill uses (mimics SIGKILL's 128+9)
KILLED_EXIT_CODE = 137


class InjectedServiceCrash(ServiceError):
    """The ``crash-service:K`` injection fired (simulated supervisor death)."""

    def __init__(self, after_chunks: int):
        self.after_chunks = after_chunks
        super().__init__(
            f"injected service crash after {after_chunks} journaled chunk "
            f"completion(s) — restart `repro serve` to resume from the journal"
        )


@dataclass(frozen=True)
class ChaosPolicy:
    """Deterministic injection plan for one service run (picklable —
    worker processes receive it at spawn)."""

    kill_at_chunks: frozenset = frozenset()
    stall_at_chunks: frozenset = frozenset()
    poison_chunks: frozenset = frozenset()
    crash_after_chunks: int | None = None
    corrupt_journal_tail: bool = False
    stall_seconds: float = 60.0
    injections: tuple = field(default=())  # original specs, for reports

    def is_noop(self) -> bool:
        return (
            not self.kill_at_chunks
            and not self.stall_at_chunks
            and not self.poison_chunks
            and self.crash_after_chunks is None
            and not self.corrupt_journal_tail
        )


def parse_injections(specs: list[str] | tuple[str, ...]) -> ChaosPolicy:
    """Build a :class:`ChaosPolicy` from ``--inject`` CLI specs.

    Unknown kinds or malformed chunk indices raise
    :class:`~repro.errors.ServiceError` (fail at parse time, not
    mid-sweep).
    """
    kill: set[int] = set()
    stall: set[int] = set()
    poison: set[int] = set()
    crash_after: int | None = None
    corrupt_tail = False
    for spec in specs:
        kind, _, arg = spec.partition(":")
        if kind == "corrupt-journal-tail":
            if arg:
                raise ServiceError(
                    f"corrupt-journal-tail takes no argument, got {spec!r}"
                )
            corrupt_tail = True
            continue
        try:
            value = int(arg)
        except ValueError:
            raise ServiceError(
                f"injection {spec!r} needs an integer chunk index"
            ) from None
        if value < 0:
            raise ServiceError(f"injection {spec!r}: chunk index must be >= 0")
        if kind == "kill-worker":
            kill.add(value)
        elif kind == "stall-worker":
            stall.add(value)
        elif kind == "poison-chunk":
            poison.add(value)
        elif kind == "crash-service":
            crash_after = value
        else:
            raise ServiceError(
                f"unknown injection kind {kind!r} (expected kill-worker, "
                f"stall-worker, poison-chunk, crash-service or "
                f"corrupt-journal-tail)"
            )
    return ChaosPolicy(
        kill_at_chunks=frozenset(kill),
        stall_at_chunks=frozenset(stall),
        poison_chunks=frozenset(poison),
        crash_after_chunks=crash_after,
        corrupt_journal_tail=corrupt_tail,
        injections=tuple(specs),
    )


def worker_chaos_hook(
    policy: ChaosPolicy | None, chunk_id: int, attempt: int
) -> None:
    """Called by a worker right after it leases ``chunk_id``.

    Implements the worker-side injections; a ``None`` policy is a no-op
    (the production path pays one ``is None`` check).
    """
    if policy is None:
        return
    if chunk_id in policy.poison_chunks:
        os._exit(KILLED_EXIT_CODE)
    if attempt == 1 and chunk_id in policy.kill_at_chunks:
        os._exit(KILLED_EXIT_CODE)
    if attempt == 1 and chunk_id in policy.stall_at_chunks:
        # Sleep "forever" in small slices; the supervisor SIGKILLs this
        # worker once the chunk's lease expires.
        deadline = time.monotonic() + policy.stall_seconds
        while time.monotonic() < deadline:
            time.sleep(0.05)


def corrupt_tail_bytes(path, nbytes: int = 8) -> bool:
    """Flip the last ``nbytes`` payload bytes of ``path`` (chaos helper).

    Returns ``False`` when the file is missing/empty.  XOR with 0x5A
    guarantees the bytes actually change, so the tail record's CRC (or
    its JSON framing) no longer verifies.
    """
    try:
        with open(path, "r+b") as fh:
            fh.seek(0, os.SEEK_END)
            size = fh.tell()
            if size <= 1:
                return False
            # Skip the trailing newline so the damage lands in the record.
            start = max(0, size - 1 - nbytes)
            fh.seek(start)
            chunk = fh.read(nbytes)
            fh.seek(start)
            # Never turn a payload byte into "\n": that would split the
            # record and relocate the damage to mid-file (unrecoverable)
            # instead of the tail (recoverable), which is what this hook
            # is meant to simulate.
            fh.write(bytes(0x0B if b ^ 0x5A == 0x0A else b ^ 0x5A for b in chunk))
        return True
    except OSError:
        return False
