"""Multi-host worker sharding over a shared filesystem.

The supervised worker pool (:mod:`repro.service.supervisor`) scales to
one machine.  This module scales the same chunk-lease discipline across
*hosts* that share nothing but a filesystem (NFS scratch, a bind-mounted
volume, or plain ``/tmp`` in tests): the daemon owns the chunk plan and
grants leases; ``repro work --host-id H`` agents execute them.

Protocol (everything under ``<state>/hosts/<host>/``, every write
tmp + rename so readers never see torn files):

``heartbeat.json``
    Written by the agent every ``heartbeat_s``: ``{host, pid, ts,
    done}``.  The daemon treats a heartbeat older than
    ``stale_after_s`` as a dead host.
``LEASE``
    Written by the **daemon**: ``{host, epoch}``.  The epoch is the
    split-brain fence — the generalization of the service's pid lock to
    hosts the daemon cannot signal.  Every task carries the epoch it was
    granted under; every result echoes it.  When the daemon revokes a
    stale host it bumps the epoch, so a not-actually-dead host (network
    partition, paused VM) that later finishes its chunk produces a
    result with a stale epoch, which the daemon discards.  The chunk was
    already re-leased elsewhere; accepting both could double-fire
    ``on_chunk_done``.
``inbox/task-NNNNNN.json``
    Daemon -> agent: one chunk of work (chunk id, attempt, epoch, and
    the base64-pickled kind/params/cells payload, so cells round-trip
    exactly).
``outbox/res-NNNNNN.json``
    Agent -> daemon: ``done`` with base64-pickled records, or ``error``
    with a detail string.
``STOP``
    Daemon -> agent: finish the current task and exit (drain).

Leases are granted as **contiguous chunk spans** (one token, several
task files) — fewer grants, and each host reads a contiguous cell range.
Per-host :class:`~repro.service.admission.TokenBucket` instances pace
grants so one fast host cannot monopolize the backlog while a slow
host's lease is still maturing.

Fault model mirrors the supervisor: a revoked host's chunks re-enter the
pending list with the same seeded exponential backoff
(:func:`~repro.service.supervisor.seeded_backoff` — shared, so retry
schedules are identical whichever tier retries) and the same
``max_attempts`` -> quarantine ladder.  When **no** live host exists and
nothing is in flight, the pool falls back to evaluating one chunk
inline per poll — a daemon with zero agents degrades to a slow
single-process run instead of deadlocking.

Chunk payloads are pure functions of ``(kind, params, cells)``, so none
of this — host deaths, revocations, fallback — can perturb the report
digest; the acceptance test pins that.
"""

from __future__ import annotations

import base64
import json
import os
import pathlib
import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ServiceError
from repro.service.admission import TokenBucket
from repro.service.jobs import evaluate_chunk
from repro.service.supervisor import ChunkOutcome, seeded_backoff
from repro.analysis.parallel import contiguous_spans

__all__ = ["HostPool", "HostAgent", "HostPoolCounters", "host_status"]

#: daemon-side poll cadence (agents poll at their own ``poll_s``)
_POLL_S = 0.05


def _write_json(path: pathlib.Path, body: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    tmp.write_text(
        json.dumps(body, sort_keys=True, separators=(",", ":")),
        encoding="utf-8",
    )
    os.replace(tmp, path)


def _read_json(path: pathlib.Path) -> dict | None:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None  # mid-rename or torn — poll again next round


def _pack(obj: Any) -> str:
    return base64.b64encode(pickle.dumps(obj, protocol=4)).decode("ascii")


def _unpack(blob: str) -> Any:
    return pickle.loads(base64.b64decode(blob.encode("ascii")))


def host_status(hosts_root: str | os.PathLike, *, stale_after_s: float,
                now: float | None = None) -> list[dict]:
    """Heartbeat summary for every known host dir (``repro jobs``)."""
    root = pathlib.Path(hosts_root)
    if not root.is_dir():
        return []
    now = time.time() if now is None else now
    out = []
    for hdir in sorted(p for p in root.iterdir() if p.is_dir()):
        hb = _read_json(hdir / "heartbeat.json") or {}
        age = now - hb["ts"] if "ts" in hb else None
        lease = _read_json(hdir / "LEASE") or {}
        out.append({
            "host": hdir.name,
            "alive": age is not None and age <= stale_after_s,
            "heartbeat_age_s": round(age, 3) if age is not None else None,
            "epoch": lease.get("epoch", 0),
            "done": hb.get("done", 0),
        })
    return out


@dataclass
class HostPoolCounters:
    """Host-tier bookkeeping (never part of any digest)."""

    grants: int = 0
    retries: int = 0
    revocations: int = 0
    stale_hosts: int = 0
    stale_results: int = 0
    quarantined: int = 0
    local_fallback: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "grants": self.grants,
            "retries": self.retries,
            "revocations": self.revocations,
            "stale_hosts": self.stale_hosts,
            "stale_results": self.stale_results,
            "quarantined": self.quarantined,
            "local_fallback": self.local_fallback,
        }


@dataclass
class _Pending:
    chunk: int
    attempt: int
    not_before: float = 0.0


@dataclass
class _Lease:
    host: str
    attempt: int
    epoch: int


@dataclass
class _HostState:
    epoch: int = 0
    bucket: TokenBucket = field(default_factory=lambda: TokenBucket(
        rate=None))


class HostPool:
    """Daemon-side scheduler: lease chunk spans to live hosts.

    Implements the same ``run()`` contract as
    :class:`~repro.service.supervisor.Supervisor` (skip set, initial
    attempts, outcome map, ``on_event``/``on_chunk_done`` callbacks,
    drain via ``should_stop``) so the service can swap tiers without
    caring which executes a job.
    """

    def __init__(
        self,
        hosts_root: str | os.PathLike,
        *,
        stale_after_s: float = 5.0,
        max_attempts: int = 3,
        backoff_base_s: float = 0.05,
        backoff_seed: int = 0,
        span: int = 4,
        host_rate: float | None = None,
        host_burst: float = 4.0,
        on_event: Callable[[dict], None] | None = None,
        on_chunk_done: Callable[[int, list], None] | None = None,
        clock: Callable[[], float] | None = None,
        sleep: Callable[[float], None] | None = None,
        should_stop: Callable[[], bool] | None = None,
        local_fallback: bool = True,
    ):
        if max_attempts < 1:
            raise ServiceError(f"max_attempts must be >= 1, got {max_attempts}")
        if span < 1:
            raise ServiceError(f"lease span must be >= 1, got {span}")
        self.hosts_root = pathlib.Path(hosts_root)
        self.stale_after_s = float(stale_after_s)
        self.max_attempts = int(max_attempts)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_seed = int(backoff_seed)
        self.span = int(span)
        self.host_rate = host_rate
        self.host_burst = float(host_burst)
        self.on_event = on_event or (lambda record: None)
        self.on_chunk_done = on_chunk_done or (lambda chunk, records: None)
        # Wall clock, not monotonic: heartbeats cross process (and
        # potentially machine) boundaries, so timestamps must share an
        # epoch.  Tests inject both sides.
        self._clock = clock or time.time
        self._sleep = sleep or time.sleep
        self._should_stop = should_stop or (lambda: False)
        self.local_fallback = local_fallback
        self.counters = HostPoolCounters()
        self._hosts: dict[str, _HostState] = {}
        self._task_counter = 0
        self.drained = False

    # -- host bookkeeping ----------------------------------------------------

    def _host(self, name: str) -> _HostState:
        if name not in self._hosts:
            lease = _read_json(self.hosts_root / name / "LEASE") or {}
            self._hosts[name] = _HostState(
                epoch=int(lease.get("epoch", 0)),
                bucket=TokenBucket(rate=self.host_rate, burst=self.host_burst),
            )
        return self._hosts[name]

    def _live_hosts(self, now: float) -> list[str]:
        if not self.hosts_root.is_dir():
            return []
        live = []
        for hdir in sorted(p for p in self.hosts_root.iterdir() if p.is_dir()):
            hb = _read_json(hdir / "heartbeat.json")
            if hb and now - hb.get("ts", 0.0) <= self.stale_after_s:
                live.append(hdir.name)
        return live

    def _bump_epoch(self, host: str) -> int:
        state = self._host(host)
        state.epoch += 1
        _write_json(
            self.hosts_root / host / "LEASE",
            {"host": host, "epoch": state.epoch},
        )
        # Ungranted inbox tasks from the old epoch are dead letters —
        # clear them so a resurrected host doesn't waste cycles.
        inbox = self.hosts_root / host / "inbox"
        if inbox.is_dir():
            for task in inbox.glob("task-*.json"):
                task.unlink(missing_ok=True)
        return state.epoch

    def stop_hosts(self) -> None:
        """Ask every known host agent to drain and exit."""
        if not self.hosts_root.is_dir():
            return
        for hdir in self.hosts_root.iterdir():
            if hdir.is_dir():
                (hdir / "STOP").touch()

    # -- main loop -----------------------------------------------------------

    def run(
        self,
        kind: str,
        params: dict,
        cells: list,
        plan: list[tuple[int, int]],
        *,
        skip_chunks: set[int] | None = None,
        initial_attempts: dict[int, int] | None = None,
    ) -> dict[int, ChunkOutcome]:
        """Execute every chunk of ``plan`` not in ``skip_chunks`` across
        live hosts; same contract as ``Supervisor.run``."""
        todo = [
            i for i in range(len(plan))
            if not skip_chunks or i not in skip_chunks
        ]
        outcomes: dict[int, ChunkOutcome] = {}
        self.drained = False
        if not todo:
            return outcomes
        initial_attempts = initial_attempts or {}
        pending = [
            _Pending(chunk=i, attempt=initial_attempts.get(i, 1))
            for i in todo
        ]
        inflight: dict[int, _Lease] = {}

        while len(outcomes) < len(todo):
            if self._should_stop():
                self.drained = True
                break
            now = self._clock()
            self._collect(outcomes, inflight, pending, now)
            self._police(inflight, pending, now)
            live = self._live_hosts(now)
            granted = self._grant(live, pending, inflight, kind, params,
                                  cells, plan, now)
            # Anti-deadlock fallback: with nothing in flight and nothing
            # grantable (no live hosts, or every bucket dry), the daemon
            # does the work itself rather than waiting forever.
            if (not granted and not inflight and self.local_fallback
                    and len(outcomes) < len(todo)):
                self._run_one_locally(
                    pending, outcomes, kind, params, cells, plan, now
                )
            if len(outcomes) < len(todo):
                self._sleep(_POLL_S)
        return outcomes

    # -- loop phases ---------------------------------------------------------

    def _grant(self, live, pending, inflight, kind, params, cells, plan,
               now) -> int:
        """Lease contiguous spans of ready chunks to live hosts; returns
        the number of chunks granted this round."""
        if not live or not pending:
            return 0
        granted_total = 0
        for host in live:
            state = self._host(host)
            ready = sorted(
                (c for c in pending if c.not_before <= now),
                key=lambda c: c.chunk,
            )
            if not ready:
                break
            if state.bucket.try_take(now) > 0.0:
                continue  # this host is rate-limited right now
            span_start, span_stop = contiguous_spans(
                c.chunk for c in ready[: self.span]
            )[0]
            grant = [c for c in ready if span_start <= c.chunk < span_stop]
            _write_json(
                self.hosts_root / host / "LEASE",
                {"host": host, "epoch": state.epoch},
            )
            for item in grant:
                pending.remove(item)
                inflight[item.chunk] = _Lease(
                    host=host, attempt=item.attempt, epoch=state.epoch
                )
                start, stop = plan[item.chunk]
                self._task_counter += 1
                _write_json(
                    self.hosts_root / host / "inbox"
                    / f"task-{self._task_counter:06d}.json",
                    {
                        "chunk": item.chunk,
                        "attempt": item.attempt,
                        "epoch": state.epoch,
                        "kind": kind,
                        "params": _pack(params),
                        "cells": _pack(cells[start:stop]),
                    },
                )
            self.counters.grants += 1
            granted_total += len(grant)
            self.on_event({
                "t": "hlease", "host": host, "epoch": state.epoch,
                "chunks": [c.chunk for c in grant],
            })
        return granted_total

    def _collect(self, outcomes, inflight, pending, now):
        """Absorb agent results, discarding stale-epoch echoes."""
        if not self.hosts_root.is_dir():
            return
        for hdir in sorted(p for p in self.hosts_root.iterdir() if p.is_dir()):
            outbox = hdir / "outbox"
            if not outbox.is_dir():
                continue
            for res_path in sorted(outbox.glob("res-*.json")):
                res = _read_json(res_path)
                if res is None:
                    continue  # mid-rename; next poll
                res_path.unlink(missing_ok=True)
                chunk = res.get("chunk")
                lease = inflight.get(chunk)
                if (
                    lease is None
                    or lease.host != hdir.name
                    or lease.epoch != res.get("epoch")
                    or lease.attempt != res.get("attempt")
                ):
                    # The fence at work: a revoked (or duplicated) lease
                    # finishing late.  The chunk's fate was already
                    # re-decided; this result must not double-fire.
                    self.counters.stale_results += 1
                    continue
                del inflight[chunk]
                if res.get("status") == "done":
                    records = _unpack(res["records"])
                    outcomes[chunk] = ChunkOutcome(
                        chunk=chunk, records=records, attempts=lease.attempt,
                    )
                    self.on_chunk_done(chunk, records)
                else:
                    self._retry_or_quarantine(
                        pending, outcomes, chunk, lease.attempt,
                        reason="host-error",
                        detail=str(res.get("detail", "unknown")), now=now,
                    )

    def _police(self, inflight, pending, now):
        """Revoke leases held by hosts whose heartbeat went stale."""
        if not inflight:
            return
        live = set(self._live_hosts(now))
        stale_hosts = {
            lease.host for lease in inflight.values()
            if lease.host not in live
        }
        for host in sorted(stale_hosts):
            epoch = self._bump_epoch(host)
            chunks = sorted(
                c for c, lease in inflight.items() if lease.host == host
            )
            self.counters.stale_hosts += 1
            self.counters.revocations += 1
            self.on_event({
                "t": "hrevoke", "host": host, "epoch": epoch,
                "chunks": chunks, "reason": "heartbeat-stale",
            })
            for chunk in chunks:
                lease = inflight.pop(chunk)
                self._retry_or_quarantine(
                    pending, None, chunk, lease.attempt,
                    reason="host-died",
                    detail=f"host {host} missed heartbeat "
                           f"(> {self.stale_after_s:g}s)",
                    now=now, consume_attempt=False,
                )

    def _run_one_locally(self, pending, outcomes, kind, params, cells,
                         plan, now):
        """Zero live hosts: evaluate one ready chunk inline (no deadlock)."""
        ready = sorted(
            (c for c in pending if c.not_before <= now),
            key=lambda c: c.chunk,
        )
        if not ready:
            return
        item = ready[0]
        pending.remove(item)
        start, stop = plan[item.chunk]
        self.counters.local_fallback += 1
        self.on_event({
            "t": "hlocal", "chunk": item.chunk, "attempt": item.attempt,
        })
        try:
            records = evaluate_chunk(kind, params, cells[start:stop])
        except Exception as exc:  # noqa: BLE001 — same ladder as remote
            self._retry_or_quarantine(
                pending, outcomes, item.chunk, item.attempt,
                reason="error", detail=f"{type(exc).__name__}: {exc}",
                now=now,
            )
            return
        outcomes[item.chunk] = ChunkOutcome(
            chunk=item.chunk, records=records, attempts=item.attempt,
        )
        self.on_chunk_done(item.chunk, records)

    def _retry_or_quarantine(self, pending, outcomes, chunk, attempt, *,
                             reason, detail, now, consume_attempt=True):
        if consume_attempt and attempt >= self.max_attempts:
            self.counters.quarantined += 1
            outcomes[chunk] = ChunkOutcome(
                chunk=chunk, records=None, attempts=attempt,
                quarantined=True, last_error=f"{reason}: {detail}",
            )
            self.on_event({
                "t": "quarantine", "chunk": chunk, "attempts": attempt,
                "reason": reason, "detail": detail,
            })
            return
        # A host death never consumes the chunk's attempt budget the way
        # a poisoned evaluation does (the chunk is innocent) — but it
        # still backs off, so a flapping host can't hot-loop a chunk.
        next_attempt = attempt + 1 if consume_attempt else attempt
        delay = seeded_backoff(
            self.backoff_seed, chunk, max(next_attempt, 1),
            self.backoff_base_s,
        )
        self.counters.retries += 1
        self.on_event({
            "t": "retry", "chunk": chunk, "attempt": next_attempt,
            "reason": reason, "detail": detail,
            "backoff_s": round(delay, 4),
        })
        pending.append(_Pending(
            chunk=chunk, attempt=next_attempt, not_before=now + delay,
        ))


class HostAgent:
    """``repro work``: execute leased chunks for one host id.

    The agent is deliberately dumb: heartbeat, scan inbox, evaluate,
    write result, repeat.  All policy (epochs, retries, quarantine,
    staleness) lives daemon-side, so a buggy or ancient agent can at
    worst waste cycles — never corrupt a job.
    """

    def __init__(
        self,
        hosts_root: str | os.PathLike,
        host_id: str,
        *,
        heartbeat_s: float = 0.5,
        poll_s: float = 0.05,
        max_seconds: float | None = None,
        die_after_chunks: int | None = None,
        clock: Callable[[], float] | None = None,
        sleep: Callable[[float], None] | None = None,
    ):
        if not host_id or "/" in host_id or host_id.startswith("."):
            raise ServiceError(f"invalid host id: {host_id!r}")
        self.dir = pathlib.Path(hosts_root) / host_id
        self.host_id = host_id
        self.heartbeat_s = float(heartbeat_s)
        self.poll_s = float(poll_s)
        self.max_seconds = max_seconds
        # Chaos hook: simulate a host death (process exit, *no* cleanup —
        # the heartbeat is left behind to go stale) after N chunks.
        self.die_after_chunks = die_after_chunks
        self._clock = clock or time.time
        self._sleep = sleep or time.sleep
        self.done = 0
        self._last_beat = 0.0

    def heartbeat(self) -> None:
        now = self._clock()
        _write_json(self.dir / "heartbeat.json", {
            "host": self.host_id,
            "pid": os.getpid(),
            "ts": now,
            "done": self.done,
        })
        self._last_beat = now

    def step(self) -> int:
        """One poll: refresh the heartbeat if due, run every queued task.
        Returns how many chunks were completed this step."""
        now = self._clock()
        if now - self._last_beat >= self.heartbeat_s:
            self.heartbeat()
        completed = 0
        inbox = self.dir / "inbox"
        if not inbox.is_dir():
            return 0
        for task_path in sorted(inbox.glob("task-*.json")):
            task = _read_json(task_path)
            if task is None:
                continue
            body = {
                "chunk": task["chunk"],
                "attempt": task["attempt"],
                "epoch": task["epoch"],
            }
            try:
                records = evaluate_chunk(
                    task["kind"], _unpack(task["params"]),
                    _unpack(task["cells"]),
                )
                body.update(status="done", records=_pack(records))
            except BaseException as exc:  # noqa: BLE001 — report, don't die
                body.update(
                    status="error", detail=f"{type(exc).__name__}: {exc}"
                )
            _write_json(self.dir / "outbox" / task_path.name.replace(
                "task-", "res-"), body)
            task_path.unlink(missing_ok=True)
            self.done += 1
            completed += 1
            if self.die_after_chunks and self.done >= self.die_after_chunks:
                # Vanish exactly like a crashed machine: no STOP ack, no
                # heartbeat removal — the daemon must *detect* this.
                os._exit(1)
        return completed

    def run(self) -> int:
        """Agent main loop; returns the number of chunks completed.
        Exits on a ``STOP`` file or after ``max_seconds``."""
        started = self._clock()
        self.heartbeat()
        while True:
            if (self.dir / "STOP").exists():
                (self.dir / "STOP").unlink(missing_ok=True)
                return self.done
            if (self.max_seconds is not None
                    and self._clock() - started >= self.max_seconds):
                return self.done
            if self.step() == 0:
                self._sleep(self.poll_s)
