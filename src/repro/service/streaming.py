"""Streaming partial results: journaled chunk records as prefix-stable
snapshots.

A long-running sweep is opaque until it finishes — unless the service
streams what it has.  :class:`StreamWriter` maintains
``results/<job>.partial.json``: a JSON-Lines snapshot of the job's
completed **contiguous chunk prefix**, atomically refreshed the moment a
chunk completes (tmp + rename, so a reader never sees a torn file).

The format is built around one invariant — **prefix stability**:

* line 1 is a fixed header (job id, kind, content key, chunk count);
* line ``i+2`` is chunk ``i``'s records, serialized deterministically —
  it is written only once chunks ``0..i`` have all completed (or been
  quarantined, which contributes an explicit ``records: null`` line);
* on job completion a final footer line carries the report digest.

Because every refresh only ever *appends* lines, each snapshot is a
byte-for-byte prefix of every later snapshot — and of the completed
stream, which :meth:`finish` seals and renames to
``results/<job>.stream.jsonl``.  A daemon crash costs nothing: the
rebuilt snapshot serializes the same cached records to the same bytes,
so the prefix chain continues across restarts.  ``jobs --watch`` and the
soak gate both lean on this: any snapshot captured mid-run must be a
prefix of the final stream, and the footer digest must equal the
report's.

Out-of-order completions are staged in memory and drain into the
snapshot as soon as the prefix reaches them; nothing is ever rewritten.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any

__all__ = ["StreamWriter", "read_stream", "is_byte_prefix"]

#: bump on any incompatible change to the line framing
STREAM_VERSION = 1


def _line(body: dict[str, Any]) -> str:
    """One deterministic snapshot line (no newline).

    ``sort_keys`` + compact separators make identical records serialize
    to identical bytes — the property the prefix chain relies on.
    ``default=repr`` tolerates exotic payloads the same way the final
    report writer does.
    """
    return json.dumps(
        body, sort_keys=True, separators=(",", ":"), default=repr
    )


class StreamWriter:
    """Prefix-stable snapshot writer for one job's chunk stream."""

    def __init__(
        self,
        results_dir: str | os.PathLike,
        job_id: str,
        *,
        kind: str,
        key: str,
        chunks_total: int,
    ):
        self.results_dir = pathlib.Path(results_dir)
        self.job_id = job_id
        self.path = self.results_dir / f"{job_id}.partial.json"
        self.stream_path = self.results_dir / f"{job_id}.stream.jsonl"
        self._staged: dict[int, Any] = {}
        self._next_chunk = 0
        self._finished = False
        self._dirty = True
        self._lines: list[str] = [_line({
            "v": STREAM_VERSION,
            "job": job_id,
            "kind": kind,
            "key": key,
            "chunks_total": chunks_total,
        })]
        self.chunks_total = chunks_total

    @property
    def streamed_chunks(self) -> int:
        """How many chunks the snapshot currently carries."""
        return self._next_chunk

    def offer(self, chunk: int, records: list | None) -> bool:
        """Stage one completed (or quarantined: ``records=None``) chunk.

        Returns ``True`` when the contiguous prefix grew — callers then
        :meth:`refresh` to publish.  Duplicate offers are idempotent.
        """
        if chunk < self._next_chunk or self._finished:
            return False
        self._staged.setdefault(chunk, records)
        grew = False
        while self._next_chunk in self._staged:
            records = self._staged.pop(self._next_chunk)
            self._lines.append(_line({
                "chunk": self._next_chunk,
                "records": records,
            }))
            self._next_chunk += 1
            grew = True
        if grew:
            self._dirty = True
        return grew

    def refresh(self) -> bool:
        """Atomically publish the current snapshot; returns whether a
        write happened (publishing an unchanged snapshot is skipped)."""
        if not self._dirty:
            return False
        self._write(self.path)
        self._dirty = False
        return True

    def finish(self, digest: str | None, quarantined: list[int]) -> pathlib.Path:
        """Seal the stream: append the footer, publish, and rename the
        snapshot to ``<job>.stream.jsonl`` (the partial file disappears —
        a lingering ``*.partial.json`` always means an unfinished or
        crashed job, which is what the startup audit keys on)."""
        self._lines.append(_line({
            "final": True,
            "digest": digest,
            "chunks": self._next_chunk,
            "quarantined": sorted(quarantined),
        }))
        self._write(self.stream_path)
        self.path.unlink(missing_ok=True)
        self._finished = True
        return self.stream_path

    def _write(self, path: pathlib.Path) -> None:
        self.results_dir.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write("\n".join(self._lines) + "\n")
        os.replace(tmp, path)

    def snapshot_bytes(self) -> bytes:
        """The bytes :meth:`refresh` would publish (for tests/audits)."""
        return ("\n".join(self._lines) + "\n").encode("utf-8")


def read_stream(path: str | os.PathLike) -> dict[str, Any]:
    """Parse a snapshot/stream file into ``{header, chunks, footer}``.

    ``chunks`` maps chunk index -> records (``None`` = quarantined);
    ``footer`` is ``None`` for an in-flight partial snapshot.
    """
    lines = pathlib.Path(path).read_text(encoding="utf-8").splitlines()
    header = json.loads(lines[0]) if lines else {}
    chunks: dict[int, Any] = {}
    footer = None
    for raw in lines[1:]:
        body = json.loads(raw)
        if body.get("final"):
            footer = body
        else:
            chunks[int(body["chunk"])] = body["records"]
    return {"header": header, "chunks": chunks, "footer": footer}


def is_byte_prefix(snapshot: bytes, final: bytes) -> bool:
    """Whether ``snapshot`` is a byte-for-byte prefix of ``final`` — the
    invariant every captured partial must satisfy against the completed
    stream."""
    return final.startswith(snapshot)
