"""Job kinds the sweep service can execute, as chunkable pure grids.

Every artefact family the service serves — Table 2 axis sweeps, region
maps, graceful-degradation reports, chaos campaigns — already reduces to
*one pure function over many independent cells* (that is what
:func:`~repro.analysis.parallel.run_grid` exploits).  This module gives
each family a uniform shape the supervisor can lease chunk by chunk:

``normalize(params)``
    Apply defaults and coerce to canonical JSON-safe values.  The
    normalized params are what gets journaled and what the job's
    content-addressed key digests — logically-equal submissions coalesce.
``build_cells(spec)``
    The plain-data cell list, in canonical order (drives the chunk plan).
``evaluate_chunk(kind, params, cells)``
    Worker entry point (module-level, picklable): evaluate a contiguous
    slice of cells into plain-data records.
``finalize(spec, records)``
    Reassemble the full record list (cell order) into the family's
    JSON-able report, carrying the family's own ``digest``.  For the
    ``degrade`` kind this is literally
    :func:`repro.analysis.degradation.report_from_points`, so a service
    job and a direct ``repro degrade`` produce bit-identical digests.

Quarantined chunks surface as ``None`` records; ``finalize`` is handed
the record list with holes and each family degrades explicitly (the
report names the missing cells) rather than crashing or silently
dropping them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any

from repro.analysis.cache import canonical_json, engine_fingerprint, task_digest
from repro.errors import ServiceError
from repro.sim.machine import PortModel

__all__ = ["JobSpec", "KINDS", "build_cells", "evaluate_chunk", "finalize"]

#: job kinds the service accepts
KINDS = ("sweep", "region_map", "degrade", "chaos")


@dataclass(frozen=True)
class JobSpec:
    """One submitted unit of work: a kind plus normalized parameters."""

    kind: str
    params: dict

    def key(self) -> str:
        """Content address of this job's *result*.

        Engine-fingerprinted like every cache key: the same submission
        against a changed engine is a different job, so coalescing and
        chunk-cache hits can never serve stale physics.
        """
        return task_digest({
            "engine": engine_fingerprint(),
            "kind": self.kind,
            "task": self.params,
            "service": 1,
        })


def make_spec(kind: str, params: dict) -> JobSpec:
    """Validate ``kind``, normalize ``params``, and build the spec."""
    if kind not in KINDS:
        raise ServiceError(
            f"unknown job kind {kind!r} (expected one of {', '.join(KINDS)})"
        )
    return JobSpec(kind=kind, params=_NORMALIZE[kind](dict(params)))


def _port_value(params: dict, default: str = "one-port") -> str:
    port = params.get("port", default)
    if isinstance(port, PortModel):
        return port.value
    if port in ("one", "one-port"):
        return PortModel.ONE_PORT.value
    if port in ("multi", "multi-port"):
        return PortModel.MULTI_PORT.value
    raise ServiceError(f"unknown port model {port!r}")


# ---------------------------------------------------------------------------
# normalize: defaults + canonical JSON-safe params per kind
# ---------------------------------------------------------------------------


def _normalize_sweep(p: dict) -> dict:
    values = p.get("values")
    if not values:
        raise ServiceError("sweep job needs a non-empty 'values' list")
    variable = p.get("variable", "p")
    if variable not in ("n", "p", "t_s", "t_w"):
        raise ServiceError(f"unknown sweep variable {variable!r}")
    return {
        "algorithms": list(p.get("algorithms")
                           or ["cannon", "berntsen", "3dd", "3d_all"]),
        "variable": variable,
        "values": [float(v) for v in values],
        "n": float(p.get("n", 256)),
        "p": float(p.get("p", 64)),
        "port": _port_value(p),
        "t_s": float(p.get("t_s", 150.0)),
        "t_w": float(p.get("t_w", 3.0)),
    }


def _normalize_region_map(p: dict) -> dict:
    lo_n, hi_n = int(p.get("log2_n_min", 1)), int(p.get("log2_n_max", 13))
    lo_p, hi_p = int(p.get("log2_p_min", 2)), int(p.get("log2_p_max", 20))
    if lo_n > hi_n or lo_p > hi_p:
        raise ServiceError("region_map job has an empty lattice")
    # Service rows always go through the scalar/sim per-row workers (the
    # supervisor leases rows), so "vector" is not a job backend.
    backend = p.get("backend", "scalar")
    if backend not in ("scalar", "sim"):
        raise ServiceError(
            f"region_map backend must be 'scalar' or 'sim', got {backend!r}"
        )
    algorithms = p.get("algorithms")
    return {
        "port": _port_value(p),
        "t_s": float(p.get("t_s", 150.0)),
        "t_w": float(p.get("t_w", 3.0)),
        "log2_n_min": lo_n, "log2_n_max": hi_n,
        "log2_p_min": lo_p, "log2_p_max": hi_p,
        "algorithms": list(algorithms) if algorithms else None,
        "backend": backend,
    }


def _normalize_degrade(p: dict) -> dict:
    from repro.algorithms.registry import get_algorithm
    from repro.analysis.degradation import DEFAULT_ALGORITHMS

    n, pp = int(p.get("n", 8)), int(p.get("p", 16))
    keys = list(p.get("algorithms") or DEFAULT_ALGORITHMS)
    keys = [k for k in keys if get_algorithm(k).applicable(n, pp)]
    if not keys:
        raise ServiceError(
            f"no selected algorithm is applicable at n={n}, p={pp}"
        )
    severities = p.get("severities") or [0.5, 1.0, 2.0]
    return {
        "algorithms": keys,
        "n": n, "p": pp,
        "severities": [float(s) for s in severities],
        "profile": p.get("profile", "random"),
        "scenario_seed": int(p.get("scenario_seed", 0)),
        "seed": int(p.get("seed", 0)),
        "adaptive": bool(p.get("adaptive", True)),
        "t_s": float(p.get("t_s", 150.0)),
        "t_w": float(p.get("t_w", 3.0)),
        "port": _port_value(p),
        "max_events": int(p.get("max_events", 5_000_000)),
    }


def _normalize_chaos(p: dict) -> dict:
    from repro.analysis.chaos import STACKS

    stack = p.get("stack", "none")
    if stack not in STACKS:
        raise ServiceError(f"stack must be one of {STACKS}, got {stack!r}")
    trials = int(p.get("trials", 25))
    if trials < 1:
        raise ServiceError(f"trials must be >= 1, got {trials}")
    return {
        "trials": trials,
        "seed": int(p.get("seed", 0)),
        "stack": stack,
        "algorithm": p.get("algorithm", "cannon"),
        "n": int(p.get("n", 8)),
        "p": int(p.get("p", 16)),
        "check_replay": bool(p.get("check_replay", True)),
        "deadline_factor": float(p.get("deadline_factor", 200.0)),
        "severity": float(p.get("severity", 0.0)),
        "scenario_seed": int(p.get("scenario_seed", 0)),
    }


_NORMALIZE = {
    "sweep": _normalize_sweep,
    "region_map": _normalize_region_map,
    "degrade": _normalize_degrade,
    "chaos": _normalize_chaos,
}


# ---------------------------------------------------------------------------
# cells
# ---------------------------------------------------------------------------


def build_cells(spec: JobSpec) -> list:
    """The job's plain-data cell list, in canonical (chunk-plan) order."""
    p = spec.params
    if spec.kind == "sweep":
        return list(p["values"])
    if spec.kind == "region_map":
        from repro.analysis.regions import candidates

        port = PortModel(p["port"])
        algos = tuple(p["algorithms"] or candidates(port))
        log2_p = tuple(
            float(v) for v in range(p["log2_p_min"], p["log2_p_max"] + 1)
        )
        return [
            (p["port"], p["t_s"], p["t_w"], float(ln), log2_p, algos)
            for ln in range(p["log2_n_min"], p["log2_n_max"] + 1)
        ]
    if spec.kind == "degrade":
        from repro.analysis.degradation import sweep_cells

        return sweep_cells(
            p["algorithms"], p["n"], p["p"], p["severities"],
            profile=p["profile"], scenario_seed=p["scenario_seed"],
            seed=p["seed"], adaptive=p["adaptive"],
            t_s=p["t_s"], t_w=p["t_w"],
            port_model=PortModel(p["port"]), max_events=p["max_events"],
        )
    if spec.kind == "chaos":
        horizon = _chaos_horizon(p)
        return [
            {
                "seed": p["seed"], "trial": t, "stack": p["stack"],
                "algorithm": p["algorithm"], "n": p["n"], "p": p["p"],
                "horizon": horizon,
                "deadline": p["deadline_factor"] * horizon,
                "check_replay": p["check_replay"], "atoms": None,
                "atom_subset": None, "trials": p["trials"],
                "severity": p["severity"],
                "scenario_seed": p["scenario_seed"],
            }
            for t in range(p["trials"])
        ]
    raise ServiceError(f"unknown job kind {spec.kind!r}")


def _chaos_horizon(params: dict) -> float:
    """Fault-free virtual duration of one clean run — the time scale
    chaos fault windows are sampled against.  Deterministic (seeded
    matrices, uniform machine), so every resume recomputes the same
    value and rebuilds identical cells."""
    import numpy as np

    from repro.algorithms.registry import get_algorithm
    from repro.analysis.chaos import _trial_matrices
    from repro.sim.machine import MachineConfig

    baseline = get_algorithm(params["algorithm"]).run(
        *_trial_matrices(
            np.random.default_rng([params["seed"], 0]), params["n"]
        ),
        MachineConfig.create(params["p"]),
    )
    return baseline.result.total_time


# ---------------------------------------------------------------------------
# worker entry point
# ---------------------------------------------------------------------------


def evaluate_chunk(kind: str, params: dict, cells: list) -> list:
    """Evaluate one leased chunk of cells (module-level, picklable).

    Pure: the records depend only on ``(kind, params, cells)``, never on
    the worker, the attempt number, or wall time — re-executions after a
    kill produce bit-identical records, which is what lets the chunk
    cache and the digest gates work.
    """
    if kind == "sweep":
        from repro.analysis.sweep import sweep

        points = sweep(
            tuple(params["algorithms"]), params["variable"], list(cells),
            n=params["n"], p=params["p"], port=PortModel(params["port"]),
            t_s=params["t_s"], t_w=params["t_w"],
        )
        return [{"value": pt.value, "times": pt.times, "best": pt.best()}
                for pt in points]
    if kind == "region_map":
        from repro.analysis.regions import _map_row, _sim_row

        row_fn = _sim_row if params.get("backend") == "sim" else _map_row
        out = []
        for cell in cells:
            port_value, t_s, t_w, ln, log2_p, algos = cell
            row_w, row_t = row_fn(
                (PortModel(port_value), t_s, t_w, ln, log2_p, algos)
            )
            out.append({
                "log2_n": ln,
                "winners": row_w,
                # NaN marks "no applicable algorithm"; make it JSON-safe
                # (and canonical_json-safe for the digest) as None.
                "times": [None if t != t else t for t in row_t],
            })
        return out
    if kind == "degrade":
        from repro.analysis.degradation import _run_cell

        return [_run_cell(cell) for cell in cells]
    if kind == "chaos":
        from repro.analysis.chaos import _run_trial

        return [_run_trial(cell) for cell in cells]
    raise ServiceError(f"unknown job kind {kind!r}")


# ---------------------------------------------------------------------------
# finalize
# ---------------------------------------------------------------------------


def _missing_chunks(records: list) -> list[int]:
    return [i for i, rec in enumerate(records) if rec is None]


def _flat_digest(payload: Any) -> str:
    """Digest for the analytic kinds (sweep / region_map): canonical JSON
    over the semantic payload, chaos-report style (16 hex chars)."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()[:16]


def finalize(spec: JobSpec, records: list) -> dict:
    """The job's JSON-able report from its full record list (cell order).

    ``records`` may contain ``None`` holes for quarantined cells; the
    report carries them in ``quarantined_cells`` and computes whatever
    remains computable — a degraded answer with an explicit hole list,
    never a silent one.
    """
    p = dict(spec.params)
    missing = _missing_chunks(records)
    if spec.kind == "sweep":
        points = [rec for rec in records if rec is not None]
        report = {
            "kind": "sweep", **p, "points": points,
            "quarantined_cells": missing,
        }
        report["digest"] = _flat_digest(
            {"params": p, "points": points, "quarantined": missing}
        )
        return report
    if spec.kind == "region_map":
        rows = [rec for rec in records if rec is not None]
        counts: dict[str, int] = {}
        for row in rows:
            for winner in row["winners"]:
                if winner is not None:
                    counts[winner] = counts.get(winner, 0) + 1
        report = {
            "kind": "region_map", **p, "rows": rows,
            "winner_counts": dict(sorted(counts.items())),
            "quarantined_cells": missing,
        }
        report["digest"] = _flat_digest(
            {"params": p, "rows": rows, "quarantined": missing}
        )
        return report
    if spec.kind == "degrade":
        from repro.analysis.degradation import (
            points_from_records,
            report_from_points,
        )

        if missing:
            # A hole in a degrade grid poisons the baseline threading;
            # degrade explicitly rather than guess.
            report = {
                "kind": "degrade", **p, "ranking": [],
                "quarantined_cells": missing,
                "digest": _flat_digest({"params": p, "quarantined": missing}),
                "detail": f"{len(missing)} cell(s) quarantined — "
                          f"no ranking computable",
            }
            return report
        points = points_from_records(p["algorithms"], records)
        report = report_from_points(
            p["algorithms"], points,
            n=p["n"], p=p["p"], severities=p["severities"],
            profile=p["profile"], scenario_seed=p["scenario_seed"],
            seed=p["seed"], adaptive=p["adaptive"],
            t_s=p["t_s"], t_w=p["t_w"], port_model=PortModel(p["port"]),
        )
        report["kind"] = "degrade"
        report["quarantined_cells"] = []
        return report
    if spec.kind == "chaos":
        from repro.analysis.chaos import _report_digest

        violations = []
        horizon = _chaos_horizon(p)
        for rec in records:
            if rec is None:
                continue
            if rec["violation"] is not None:
                violations.append({
                    "trial": rec["trial"],
                    "kind": rec["violation"]["kind"],
                    "detail": rec["violation"]["detail"],
                    "atoms": rec["atoms"],
                })
        evaluated = sum(1 for rec in records if rec is not None)
        report = {
            "kind": "chaos",
            "stack": p["stack"], "algorithm": p["algorithm"],
            "n": p["n"], "p": p["p"], "seed": p["seed"],
            "trials": p["trials"], "horizon": horizon,
            "severity": p["severity"], "scenario_seed": p["scenario_seed"],
            "clean": evaluated - len(violations),
            "violations": violations,
            "quarantined_cells": missing,
        }
        report["digest"] = _report_digest(report)
        return report
    raise ServiceError(f"unknown job kind {spec.kind!r}")
