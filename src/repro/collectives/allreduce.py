"""All-reduce: every rank ends with the full reduction.

Composed the bandwidth-optimal way — reduce-scatter followed by allgather —
so the ``t_w`` term is ``2(N-1)M/N`` per one-port step pattern instead of
the naive reduce+broadcast's ``2M·log N``.  Not used by the paper's
algorithms (their reductions are rooted or scattered), but part of any
credible collective library and used by the examples.

Cost (both phases from Table 1, with per-piece size ``M/N``):

* one-port: ``2·t_s·log N + 2·t_w·(N-1)·M/N``
* multi-port: ``2·t_s·log N + 2·t_w·(N-1)·M/(N·log N)``
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.collectives.allgather import allgather
from repro.collectives.api import Schedule
from repro.collectives.chunking import chunk_header, rebuild_from_header, split_chunks
from repro.collectives.reduce_scatter import reduce_scatter
from repro.mpi.communicator import Comm

__all__ = ["allreduce"]


def allreduce(
    comm: Comm,
    block: Any,
    op: Callable = np.add,
    tag: int = 8,
    schedule: Schedule | None = None,
):
    """Reduce every rank's ``block`` with ``op``; all ranks get the result.

    Generator — call with ``yield from``.
    """
    arr = np.asarray(block)
    if comm.size == 1:
        return arr
    header = chunk_header(arr)
    pieces = [np.asarray(c) for c in split_chunks(arr, comm.size)]
    mine = yield from reduce_scatter(comm, pieces, op=op, tag=tag, schedule=schedule)
    gathered = yield from allgather(comm, mine, tag=tag + 1, schedule=schedule)
    return rebuild_from_header([np.asarray(g).ravel() for g in gathered], header)
