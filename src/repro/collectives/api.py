"""Schedule selection and tag namespacing shared by all collectives."""

from __future__ import annotations

import enum

from repro.errors import SimulationError
from repro.mpi.communicator import Comm
from repro.sim.machine import PortModel

__all__ = ["Schedule", "resolve_schedule", "subtag"]


class Schedule(enum.Enum):
    """Which executable schedule a collective should use.

    ``SBT`` — the one-port-optimal spanning-binomial-tree / dimension-
    exchange schedules; ``ROTATED`` — the multi-port-optimal chunked
    rotated-tree schedules.  ``AUTO`` picks by the machine's port model.
    """

    AUTO = "auto"
    SBT = "sbt"
    ROTATED = "rotated"


def resolve_schedule(comm: Comm, schedule: Schedule | None) -> Schedule:
    """Resolve ``AUTO``/``None`` to a concrete schedule for this machine."""
    if schedule is None or schedule is Schedule.AUTO:
        if comm.ctx.config.port_model is PortModel.MULTI_PORT:
            return Schedule.ROTATED
        return Schedule.SBT
    if not isinstance(schedule, Schedule):
        raise SimulationError(f"schedule must be a Schedule, got {schedule!r}")
    return schedule


_SUBTAG_BITS = 6


def subtag(base: int, sub: int) -> int:
    """Namespace an internal message tag under a caller-provided base.

    Concurrent collectives over overlapping node sets must be given distinct
    base tags by the caller; within one collective the sub-tag separates
    steps/trees (at most ``2**6`` of either).
    """
    if sub >= (1 << _SUBTAG_BITS) or sub < 0:
        raise SimulationError(f"collective sub-tag {sub} out of range")
    return (base << _SUBTAG_BITS) | sub


# Re-exported lazily by __init__; the individual operation modules are
# imported here so ``from repro.collectives.api import *`` users get the
# full surface without import cycles (ops import only this module's names).
from repro.collectives.broadcast import broadcast  # noqa: E402
from repro.collectives.scatter import scatter  # noqa: E402
from repro.collectives.gather import gather  # noqa: E402
from repro.collectives.allgather import allgather  # noqa: E402
from repro.collectives.alltoall import alltoall  # noqa: E402
from repro.collectives.reduce import reduce  # noqa: E402
from repro.collectives.reduce_scatter import reduce_scatter  # noqa: E402
