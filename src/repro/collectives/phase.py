"""Collective phase declaration: the fast-path handshake with the engine.

Every collective dispatch function first *declares* the phase it is about
to run by yielding a :class:`~repro.sim.ops.CollectivePhaseOp`.  On a
fault-free uniform machine the engine may advance the whole phase in
closed form (see :mod:`repro.sim.superstep`) and answer with the
collective's return value; otherwise it answers
:data:`~repro.sim.ops.COLLECTIVE_FALLBACK` and the schedule runs its
ordinary per-message rounds through the event path.  Both answers are
bit-identical in simulated time; the declaration itself costs nothing
(no events, no virtual time).

The 3D algorithm family additionally fuses its "two collectives in
parallel" phases through :func:`parallel_pair`, giving the engine a
single two-spec op to advance — on a multi-port machine the two subcube
collectives use disjoint channels and each admits its standalone closed
form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.collectives.api import Schedule, resolve_schedule
from repro.mpi.communicator import Comm
from repro.sim.ops import COLLECTIVE_FALLBACK, CollectivePhaseOp, CollectiveSpec
from repro.sim.process import ProcessContext

__all__ = [
    "make_spec",
    "attempt",
    "CollectiveCall",
    "allgather_call",
    "broadcast_call",
    "parallel_pair",
]


def make_spec(
    kind: str,
    comm: Comm,
    payload: Any,
    tag: int,
    schedule: Schedule | None,
    root: int | None = None,
    op: Any = None,
) -> CollectiveSpec | None:
    """Build this rank's phase spec, or None when declaring is pointless.

    Wrapped contexts (reliable delivery, CRC integrity, recovery) add
    protocol traffic the closed forms do not model, so only a plain
    :class:`ProcessContext` declares; everything else goes straight to the
    event path.
    """
    if type(comm.ctx) is not ProcessContext:
        return None
    sched = resolve_schedule(comm, schedule)
    return CollectiveSpec(
        kind=kind,
        sched=sched.value,
        members=tuple(comm.members),
        rank=comm.rank,
        free_dims=tuple(comm.free_dims),
        tag=tag,
        payload=payload,
        root=root,
        op=op,
    )


def attempt(spec: CollectiveSpec | None):
    """Yield the phase declaration; return the engine's verdict.

    Returns :data:`COLLECTIVE_FALLBACK` when the caller must run the
    ordinary schedule (including when ``spec`` is None).
    """
    if spec is None:
        return COLLECTIVE_FALLBACK
    return (yield CollectivePhaseOp((spec,)))


@dataclass
class CollectiveCall:
    """A collective invocation held un-started: its spec plus a generator
    thunk producing the equivalent event-path schedule."""

    spec: CollectiveSpec | None
    gen: Callable[[], Any]


def allgather_call(comm: Comm, block: Any, tag: int = 4) -> CollectiveCall:
    """Package an allgather over ``comm`` as a fusable :class:`CollectiveCall`."""
    from repro.collectives.allgather import allgather

    spec = None
    if comm.size > 1:
        spec = make_spec("allgather", comm, block, tag, None)
    return CollectiveCall(spec, lambda: allgather(comm, block, tag))


def broadcast_call(comm: Comm, data: Any, root: int = 0, tag: int = 1) -> CollectiveCall:
    """Package a broadcast over ``comm`` as a fusable :class:`CollectiveCall`."""
    from repro.collectives.broadcast import broadcast

    spec = None
    if comm.size > 1:
        spec = make_spec("broadcast", comm, data, tag, None, root=root)
    return CollectiveCall(spec, lambda: broadcast(comm, data, root, tag))


def parallel_pair(ctx: ProcessContext, call_a: CollectiveCall, call_b: CollectiveCall):
    """Run two collectives concurrently, declaring them as one fused phase.

    Semantically identical to ``ctx.parallel(call_a.gen(), call_b.gen())``;
    the fused declaration lets the engine advance both subcube collectives
    in closed form when their dimension sets are disjoint (the paper's
    "the two broadcasts can occur in parallel on a multi-port hypercube").
    Returns the two collectives' results in slot order.
    """
    if call_a.spec is not None and call_b.spec is not None:
        verdict = yield CollectivePhaseOp((call_a.spec, call_b.spec))
        if verdict is not COLLECTIVE_FALLBACK:
            return verdict
    return (yield from ctx.parallel(call_a.gen(), call_b.gen()))
