"""One-to-all personalized broadcast (scatter).

One-port schedule: spanning binomial tree.  At step ``t`` each holder
forwards the half of its remaining destination blocks that belong to the
subtree across dimension ``order[t]``; message volumes halve every step, so
the total is ``t_s·log N + t_w·(N-1)·M`` (Table 1).

Multi-port schedule: every destination block is split into ``log N`` chunks
and chunk ``j`` of *all* blocks flows down rotated tree ``j``; the trees are
edge-disjoint per step, giving ``t_s·log N + t_w·(N-1)·M/log N``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.collectives.api import Schedule, resolve_schedule, subtag
from repro.collectives.chunking import chunk_header, rebuild_from_header, split_chunks
from repro.collectives.sbt import (
    distribute_child,
    distribute_parent,
    distribute_recv_step,
    identity_order,
    rotated_order,
)
from repro.errors import SimulationError
from repro.mpi.communicator import Comm

__all__ = ["scatter"]


def scatter(
    comm: Comm,
    blocks: Sequence | None,
    root: int = 0,
    tag: int = 2,
    schedule: Schedule | None = None,
):
    """Scatter ``blocks[i]`` from ``root`` to comm rank ``i``; returns mine.

    ``blocks`` (indexed by comm rank) is only read on the root; other ranks
    should pass ``None``.  Generator — call with ``yield from``.
    """
    if comm.rank == root:
        if blocks is None or len(blocks) != comm.size:
            raise SimulationError(
                f"root must supply {comm.size} blocks, got "
                f"{'None' if blocks is None else len(blocks)}"
            )
    if comm.size == 1:
        return blocks[0]
    sched = resolve_schedule(comm, schedule)
    if sched is Schedule.SBT:
        return (yield from _scatter_sbt(comm, blocks, root, tag))
    return (yield from _scatter_rotated(comm, blocks, root, tag))


def _scatter_sbt(comm: Comm, blocks, root: int, tag: int):
    d = comm.dimension
    order = identity_order(d)
    rel = comm.rel_index(comm.rank, root)

    if rel == 0:
        holding = {
            comm.rel_index(cr, root): blocks[cr] for cr in range(comm.size)
        }
        start = 0
    else:
        t_recv = distribute_recv_step(rel, order)
        parent = comm.from_rel(distribute_parent(rel, order), root)
        holding = yield from comm.recv(parent, subtag(tag, t_recv))
        start = t_recv + 1

    for t in range(start, d):
        child = comm.from_rel(distribute_child(rel, order, t), root)
        moving = {
            r: holding.pop(r)
            for r in list(holding)
            if (r >> order[t]) & 1
        }
        yield from comm.send(child, moving, subtag(tag, t))

    if set(holding) != {rel}:
        raise SimulationError(f"scatter invariant broken at rel {rel}: {set(holding)}")
    return holding[rel]


def _scatter_rotated(comm: Comm, blocks, root: int, tag: int):
    d = comm.dimension
    rel = comm.rel_index(comm.rank, root)
    orders = [rotated_order(d, j) for j in range(d)]

    if rel == 0:
        have = []
        for j in range(d):
            tree = {}
            for cr in range(comm.size):
                arr = np.asarray(blocks[cr])
                tree[comm.rel_index(cr, root)] = (
                    split_chunks(arr, d)[j],
                    chunk_header(arr),
                )
            have.append(tree)
        recv_steps = [None] * d
    else:
        have = [{} for _ in range(d)]
        recv_steps = [distribute_recv_step(rel, orders[j]) for j in range(d)]

    for t in range(d):
        handles = []
        arrivals = []
        for j in range(d):
            if rel == 0 or recv_steps[j] < t:
                dim = orders[j][t]
                child = comm.from_rel(distribute_child(rel, orders[j], t), root)
                moving = {
                    r: have[j].pop(r)
                    for r in list(have[j])
                    if (r >> dim) & 1
                }
                h = yield from comm.isend(child, moving, subtag(tag, j))
                handles.append(h)
            elif recv_steps[j] == t:
                parent = comm.from_rel(distribute_parent(rel, orders[j]), root)
                h = yield from comm.irecv(parent, subtag(tag, j))
                arrivals.append((j, h))
                handles.append(h)
        if handles:
            yield from comm.ctx.waitall(handles)
        for j, h in arrivals:
            have[j].update(h.value)

    chunks = []
    header = None
    for j in range(d):
        if set(have[j]) != {rel}:
            raise SimulationError(
                f"rotated scatter invariant broken at rel {rel}, tree {j}"
            )
        chunk, header = have[j][rel]
        chunks.append(chunk)
    return rebuild_from_header(chunks, header)
