"""All-to-one collection (gather) — the inverse of scatter.

One-port: combining binomial tree; a node forwards its accumulated blocks
at the step of its first set relative bit.  Message volumes double towards
the root, totalling ``t_s·log N + t_w·(N-1)·M``.

Multi-port: chunked rotated combining trees, ``t_s·log N +
t_w·(N-1)·M/log N``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.collectives.api import Schedule, resolve_schedule, subtag
from repro.collectives.chunking import chunk_header, rebuild_from_header, split_chunks
from repro.collectives.sbt import (
    combine_child,
    combine_parent,
    combine_send_step,
    identity_order,
    rotated_order,
)
from repro.mpi.communicator import Comm

__all__ = ["gather"]


def gather(
    comm: Comm,
    block: Any,
    root: int = 0,
    tag: int = 3,
    schedule: Schedule | None = None,
):
    """Gather every rank's ``block`` to ``root``.

    Returns the list of blocks indexed by comm rank on the root, ``None``
    elsewhere.  Generator — call with ``yield from``.
    """
    if comm.size == 1:
        return [block]
    sched = resolve_schedule(comm, schedule)
    if sched is Schedule.SBT:
        return (yield from _gather_sbt(comm, block, root, tag))
    return (yield from _gather_rotated(comm, block, root, tag))


def _gather_sbt(comm: Comm, block: Any, root: int, tag: int):
    d = comm.dimension
    order = identity_order(d)
    rel = comm.rel_index(comm.rank, root)
    holding = {rel: block}
    my_step = combine_send_step(rel, order)

    for t in range(d):
        if t == my_step:
            parent = comm.from_rel(combine_parent(rel, order), root)
            yield from comm.send(parent, holding, subtag(tag, t))
            return None
        child_rel = combine_child(rel, order, t)
        if child_rel is not None:
            child = comm.from_rel(child_rel, root)
            got = yield from comm.recv(child, subtag(tag, t))
            holding.update(got)

    # Only the root reaches here.
    return [holding[comm.rel_index(cr, root)] for cr in range(comm.size)]


def _gather_rotated(comm: Comm, block: Any, root: int, tag: int):
    arr = np.asarray(block)
    d = comm.dimension
    rel = comm.rel_index(comm.rank, root)
    orders = [rotated_order(d, j) for j in range(d)]
    header = chunk_header(arr)
    have = [{rel: (chunk, header)} for chunk in split_chunks(arr, d)]
    send_steps = [combine_send_step(rel, orders[j]) for j in range(d)]

    for t in range(d):
        handles = []
        arrivals = []
        for j in range(d):
            if send_steps[j] == t:
                parent = comm.from_rel(combine_parent(rel, orders[j]), root)
                h = yield from comm.isend(parent, have[j], subtag(tag, j))
                have[j] = None
                handles.append(h)
            elif send_steps[j] is None or send_steps[j] > t:
                child_rel = combine_child(rel, orders[j], t)
                if child_rel is not None:
                    child = comm.from_rel(child_rel, root)
                    h = yield from comm.irecv(child, subtag(tag, j))
                    arrivals.append((j, h))
                    handles.append(h)
        if handles:
            yield from comm.ctx.waitall(handles)
        for j, h in arrivals:
            have[j].update(h.value)

    if rel != 0:
        return None
    out = []
    for cr in range(comm.size):
        r = comm.rel_index(cr, root)
        chunks = []
        hdr = None
        for j in range(d):
            chunk, hdr = have[j][r]
            chunks.append(chunk)
        out.append(rebuild_from_header(chunks, hdr))
    return out
