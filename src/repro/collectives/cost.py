"""Closed-form collective costs — the paper's Table 1.

Each function returns the ``(a, b)`` coefficient pair of the cost
``a·t_s + b·t_w`` for the operation on an ``N``-processor hypercube with
``M``-word messages, for either port model.  The multi-port entries assume
``M ≥ log N`` (enough words to split across all links), the same condition
the paper attaches to them.

The reduction operations are the communication inverses of the broadcasts
(Table 1's footnote), so :func:`reduce_coeffs` equals
:func:`broadcast_coeffs` and :func:`reduce_scatter_coeffs` equals
:func:`allgather_coeffs`.
"""

from __future__ import annotations

import math

from repro.errors import ModelError
from repro.sim.machine import PortModel
from repro.util.bits import ilog2, is_power_of_two

__all__ = ["CollectiveCosts"]


def _check(N: int, M: float) -> int:
    if not is_power_of_two(N):
        raise ModelError(f"N must be a power of two, got {N}")
    if M < 0:
        raise ModelError(f"message length must be >= 0, got {M}")
    return ilog2(N)


class CollectiveCosts:
    """Table 1: optimal broadcasting/personalized-communication costs.

    All methods are static and return ``(a, b)`` with total time
    ``a·t_s + b·t_w``.
    """

    @staticmethod
    def broadcast(N: int, M: float, port: PortModel) -> tuple[float, float]:
        """One-to-all broadcast: ``(log N, M·log N)`` / ``(log N, M)``."""
        d = _check(N, M)
        if d == 0:
            return (0.0, 0.0)
        if port is PortModel.ONE_PORT:
            return (d, M * d)
        return (d, M)

    @staticmethod
    def scatter(N: int, M: float, port: PortModel) -> tuple[float, float]:
        """One-to-all personalized: ``(log N, (N-1)M)`` / ``(log N, (N-1)M/log N)``."""
        d = _check(N, M)
        if d == 0:
            return (0.0, 0.0)
        if port is PortModel.ONE_PORT:
            return (d, (N - 1) * M)
        return (d, (N - 1) * M / d)

    # Gather is the communication inverse of scatter.
    gather = scatter

    @staticmethod
    def allgather(N: int, M: float, port: PortModel) -> tuple[float, float]:
        """All-to-all broadcast: ``(log N, (N-1)M)`` / ``(log N, (N-1)M/log N)``."""
        return CollectiveCosts.scatter(N, M, port)

    @staticmethod
    def alltoall(N: int, M: float, port: PortModel) -> tuple[float, float]:
        """All-to-all personalized: ``(log N, N·M·log N/2)`` / ``(log N, N·M/2)``."""
        d = _check(N, M)
        if d == 0:
            return (0.0, 0.0)
        if port is PortModel.ONE_PORT:
            return (d, N * M * d / 2)
        return (d, N * M / 2)

    # Reductions: inverses of the corresponding broadcasts (Table 1 note).
    reduce = broadcast
    reduce_scatter = allgather

    @staticmethod
    def allreduce(N: int, M: float, port: PortModel) -> tuple[float, float]:
        """Reduce-scatter + allgather composition: ``(2 log N, 2(N-1)M/N)``
        one-port, divided by ``log N`` for multi-port (extension; not a
        Table 1 row)."""
        d = _check(N, M)
        if d == 0:
            return (0.0, 0.0)
        b = 2 * (N - 1) * M / N
        if port is PortModel.MULTI_PORT:
            b /= d
        return (2 * d, b)

    @staticmethod
    def multi_port_condition(N: int, M: float) -> bool:
        """The paper's ``M ≥ log N`` validity condition for multi-port entries."""
        d = _check(N, M)
        return M >= d

    @staticmethod
    def evaluate(coeffs: tuple[float, float], t_s: float, t_w: float) -> float:
        a, b = coeffs
        return a * t_s + b * t_w


def _self_test() -> None:  # pragma: no cover - sanity helper
    assert CollectiveCosts.broadcast(8, 12, PortModel.ONE_PORT) == (3, 36)
    assert CollectiveCosts.broadcast(8, 12, PortModel.MULTI_PORT) == (3, 12)
    assert math.isclose(
        CollectiveCosts.alltoall(8, 2, PortModel.ONE_PORT)[1], 24.0
    )
