"""Chunk splitting/joining for multi-port (rotated-tree) schedules.

Multi-port schedules split an ``M``-word array into ``log N`` nearly equal
flat chunks, one per rotated tree.  Chunks travel as ``(chunk_1d, shape,
dtype_str)`` tuples so receivers that never saw the original array can
reassemble it; the metadata rides free in the word accounting (see
:func:`repro.sim.message.payload_words`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError

__all__ = ["split_chunks", "join_chunks", "chunk_header", "rebuild_from_header"]


def split_chunks(arr: np.ndarray, nchunks: int) -> list[np.ndarray]:
    """Split ``arr`` (any shape) into ``nchunks`` flat chunks.

    Chunk sizes differ by at most one element; chunks may be empty when the
    array is smaller than ``nchunks`` (each still costs a ``t_s`` start-up
    in flight, mirroring the paper's ``M >= log N`` applicability caveat).
    """
    if nchunks < 1:
        raise SimulationError(f"nchunks must be >= 1, got {nchunks}")
    return np.array_split(np.ascontiguousarray(arr).ravel(), nchunks)


def join_chunks(chunks: list[np.ndarray], shape: tuple[int, ...], dtype=None) -> np.ndarray:
    """Reassemble chunks produced by :func:`split_chunks`."""
    flat = np.concatenate([np.asarray(c) for c in chunks]) if chunks else np.empty(0)
    if dtype is not None:
        flat = flat.astype(dtype, copy=False)
    expected = int(np.prod(shape)) if shape else 1
    if flat.size != expected:
        raise SimulationError(
            f"chunk reassembly size mismatch: got {flat.size} words for shape {shape}"
        )
    return flat.reshape(shape)


def chunk_header(arr: np.ndarray) -> tuple[tuple[int, ...], str]:
    """Metadata needed by a receiver to rebuild ``arr`` from its chunks."""
    return (tuple(arr.shape), str(arr.dtype))


def rebuild_from_header(
    chunks: list[np.ndarray], header: tuple[tuple[int, ...], str]
) -> np.ndarray:
    """Inverse of :func:`split_chunks` given a :func:`chunk_header`."""
    shape, dtype = header
    return join_chunks(chunks, shape, np.dtype(dtype))
