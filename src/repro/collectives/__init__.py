"""Collective communication on subcube communicators.

Every operation comes in two executable schedules:

* a **one-port-optimal** schedule — spanning-binomial-tree (SBT) or
  recursive-doubling/dimension-exchange patterns achieving the one-port
  column of the paper's Table 1, and
* a **multi-port-optimal** schedule — the message is split into ``log N``
  chunks driven down ``log N`` *rotated* (edge-disjoint) binomial trees or
  rotated dimension-exchange schedules, achieving the ``log N``-fold
  data-transmission improvement of the multi-port column (valid when
  ``M >= log N``, as the paper notes).

The top-level functions dispatch on the machine's port model; pass
``schedule=`` explicitly for ablation studies (e.g. running the one-port
schedule on a multi-port machine).

All functions are generators: call them as
``result = yield from allgather(comm, block)`` inside an SPMD program.
"""

from repro.collectives.api import (
    Schedule,
    allgather,
    alltoall,
    broadcast,
    gather,
    reduce,
    reduce_scatter,
    scatter,
)
from repro.collectives.allreduce import allreduce
from repro.collectives.cost import CollectiveCosts

__all__ = [
    "Schedule",
    "broadcast",
    "scatter",
    "gather",
    "allgather",
    "alltoall",
    "reduce",
    "reduce_scatter",
    "allreduce",
    "CollectiveCosts",
]
