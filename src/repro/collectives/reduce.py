"""All-to-one reduction — the communication inverse of broadcast.

One-port: combining binomial tree with element-wise accumulation at every
internal node: ``t_s·log N + t_w·M·log N``.

Multi-port: the accumulator is split into ``log N`` chunks reduced down
``log N`` rotated combining trees: ``t_s·log N + t_w·M``.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.collectives.api import Schedule, resolve_schedule, subtag
from repro.collectives.chunking import chunk_header, rebuild_from_header, split_chunks
from repro.collectives.sbt import (
    combine_child,
    combine_parent,
    combine_send_step,
    identity_order,
    rotated_order,
)
from repro.collectives.phase import attempt, make_spec
from repro.mpi.communicator import Comm
from repro.sim.ops import COLLECTIVE_FALLBACK

__all__ = ["reduce"]


def reduce(
    comm: Comm,
    block: Any,
    root: int = 0,
    op: Callable = np.add,
    tag: int = 6,
    schedule: Schedule | None = None,
):
    """Reduce every rank's ``block`` with ``op`` (default ``+``) onto ``root``.

    Returns the reduced array on the root and ``None`` elsewhere.
    Generator — call with ``yield from``.
    """
    if comm.size == 1:
        return np.asarray(block)
    verdict = yield from attempt(
        make_spec("reduce", comm, block, tag, schedule, root=root, op=op)
    )
    if verdict is not COLLECTIVE_FALLBACK:
        return verdict
    sched = resolve_schedule(comm, schedule)
    if sched is Schedule.SBT:
        return (yield from _reduce_sbt(comm, block, root, op, tag))
    return (yield from _reduce_rotated(comm, block, root, op, tag))


def _reduce_sbt(comm: Comm, block: Any, root: int, op: Callable, tag: int):
    d = comm.dimension
    order = identity_order(d)
    rel = comm.rel_index(comm.rank, root)
    acc = np.array(block)  # private accumulator
    my_step = combine_send_step(rel, order)

    for t in range(d):
        if t == my_step:
            parent = comm.from_rel(combine_parent(rel, order), root)
            yield from comm.send(parent, acc, subtag(tag, t))
            return None
        child_rel = combine_child(rel, order, t)
        if child_rel is not None:
            child = comm.from_rel(child_rel, root)
            got = yield from comm.recv(child, subtag(tag, t))
            acc = op(acc, got)

    return acc


def _reduce_rotated(comm: Comm, block: Any, root: int, op: Callable, tag: int):
    arr = np.asarray(block)
    d = comm.dimension
    rel = comm.rel_index(comm.rank, root)
    orders = [rotated_order(d, j) for j in range(d)]
    chunks = [np.array(c) for c in split_chunks(arr, d)]
    send_steps = [combine_send_step(rel, orders[j]) for j in range(d)]

    for t in range(d):
        handles = []
        arrivals = []
        for j in range(d):
            if send_steps[j] == t:
                parent = comm.from_rel(combine_parent(rel, orders[j]), root)
                h = yield from comm.isend(parent, chunks[j], subtag(tag, j))
                handles.append(h)
            elif send_steps[j] is None or send_steps[j] > t:
                child_rel = combine_child(rel, orders[j], t)
                if child_rel is not None:
                    child = comm.from_rel(child_rel, root)
                    h = yield from comm.irecv(child, subtag(tag, j))
                    arrivals.append((j, h))
                    handles.append(h)
        if handles:
            yield from comm.ctx.waitall(handles)
        for j, h in arrivals:
            chunks[j] = op(chunks[j], h.value)

    if rel != 0:
        return None
    return rebuild_from_header(chunks, chunk_header(arr))
