"""Spanning-binomial-tree combinatorics (plain and rotated).

All functions work on *relative* subcube indices: the root of an operation
is relative index 0 and every other participant is its subcube index XORed
with the root's (see :meth:`repro.mpi.communicator.Comm.rel_index`).

A tree is described by its **dimension order** ``order = (a_0, …, a_{d-1})``:
the subcube dimension processed at each step.  The plain SBT uses the
identity order; the ``log N`` *rotated* trees use orders shifted by
``j = 0 … d-1``.  Two rotated trees never use the same dimension at the
same step, which is what makes the multi-port schedules edge-disjoint and
buys the ``log N``-fold bandwidth of Table 1.

Distribution trees (broadcast, scatter) grow the holder set from the root:
at step ``t`` every node whose relative bits lie within ``order[:t]`` sends
across dimension ``order[t]``.  Combining trees (reduce, gather) are the
mirror image: a node sends its accumulated data at the step of its first
set bit (in ``order`` position), to the parent obtained by clearing it.
"""

from __future__ import annotations

from repro.errors import SimulationError

__all__ = [
    "identity_order",
    "rotated_order",
    "dims_mask",
    "distribute_child",
    "distribute_recv_step",
    "distribute_parent",
    "combine_send_step",
    "combine_parent",
    "combine_child",
    "subtree_members",
]


def identity_order(d: int) -> tuple[int, ...]:
    """The plain SBT dimension order ``(0, 1, …, d-1)``."""
    return tuple(range(d))


def rotated_order(d: int, j: int) -> tuple[int, ...]:
    """Dimension order of rotated tree ``j``: ``(j, j+1, …) mod d``."""
    if not 0 <= j < d:
        raise SimulationError(f"rotation {j} out of range for {d} dimensions")
    return tuple((j + t) % d for t in range(d))


def dims_mask(order: tuple[int, ...], t: int) -> int:
    """Bitmask of the first ``t`` dimensions of ``order``."""
    mask = 0
    for a in order[:t]:
        mask |= 1 << a
    return mask


# -- distribution trees (broadcast / scatter) -------------------------------


def distribute_child(rel: int, order: tuple[int, ...], t: int) -> int | None:
    """Relative index this node sends to at step ``t``, or ``None``.

    A node participates as a sender at step ``t`` iff it already holds the
    data, i.e. its relative bits lie within ``order[:t]``.
    """
    if rel & ~dims_mask(order, t):
        return None
    return rel | (1 << order[t])


def distribute_recv_step(rel: int, order: tuple[int, ...]) -> int | None:
    """Step at which this node receives, or ``None`` for the root."""
    if rel == 0:
        return None
    last = -1
    for t, a in enumerate(order):
        if (rel >> a) & 1:
            last = t
    if last < 0:
        raise SimulationError(f"relative index {rel} has bits outside order {order}")
    return last


def distribute_parent(rel: int, order: tuple[int, ...]) -> int:
    """The node this one receives from (clear the last-processed bit)."""
    t = distribute_recv_step(rel, order)
    if t is None:
        raise SimulationError("the root has no parent")
    return rel & ~(1 << order[t])


# -- combining trees (reduce / gather) --------------------------------------


def combine_send_step(rel: int, order: tuple[int, ...]) -> int | None:
    """Step at which this node sends its accumulation (first set bit), or
    ``None`` for the root (which never sends)."""
    if rel == 0:
        return None
    for t, a in enumerate(order):
        if (rel >> a) & 1:
            return t
    raise SimulationError(f"relative index {rel} has bits outside order {order}")


def combine_parent(rel: int, order: tuple[int, ...]) -> int:
    """The node this one sends its accumulation to (first set bit cleared)."""
    t = combine_send_step(rel, order)
    if t is None:
        raise SimulationError("the root has no parent")
    return rel & ~(1 << order[t])


def combine_child(rel: int, order: tuple[int, ...], t: int) -> int | None:
    """Relative index that sends to this node at step ``t``, or ``None``.

    Node ``rel`` receives at step ``t`` iff its bits over ``order[:t+1]``
    are all clear; the child is ``rel | 1 << order[t]``.
    """
    if rel & dims_mask(order, t + 1):
        return None
    return rel | (1 << order[t])


def subtree_members(rel: int, order: tuple[int, ...], t: int) -> list[int]:
    """Relative indices whose data node ``rel`` is responsible for after
    step ``t`` of a scatter (they agree with ``rel`` on ``order[:t]``)."""
    fixed = dims_mask(order, t)
    free = [a for a in order[t:]]
    out = []
    for combo in range(1 << len(free)):
        node = rel & fixed
        for k, a in enumerate(free):
            if (combo >> k) & 1:
                node |= 1 << a
        out.append(node)
    return out
