"""All-to-all personalized communication (alltoall).

One-port: the classic dimension-exchange schedule.  At step ``k`` each node
forwards to its dimension-``k`` partner every held block whose destination
differs from itself in subcube bit ``k`` — exactly ``N/2`` blocks — so the
total is ``t_s·log N + t_w·(N·M/2)·log N`` (Table 1).

Multi-port: every block is split into ``log N`` chunks; schedule ``j`` runs
dimension exchange over chunk ``j`` starting at dimension ``j``.  The
schedules hit distinct dimensions each step, giving
``t_s·log N + t_w·N·M/2``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.collectives.api import Schedule, resolve_schedule, subtag
from repro.collectives.chunking import chunk_header, rebuild_from_header, split_chunks
from repro.collectives.phase import attempt, make_spec
from repro.errors import SimulationError
from repro.mpi.communicator import Comm
from repro.mpi.detector import LOST_PAYLOAD, lost_like
from repro.sim.ops import COLLECTIVE_FALLBACK

__all__ = ["alltoall"]


def alltoall(
    comm: Comm,
    blocks: Sequence,
    tag: int = 5,
    schedule: Schedule | None = None,
):
    """Send ``blocks[i]`` to comm rank ``i``; returns blocks indexed by source.

    Generator — call with ``yield from``.
    """
    if len(blocks) != comm.size:
        raise SimulationError(
            f"alltoall needs {comm.size} blocks, got {len(blocks)}"
        )
    if comm.size == 1:
        return [blocks[0]]
    verdict = yield from attempt(make_spec("alltoall", comm, tuple(blocks), tag, schedule))
    if verdict is not COLLECTIVE_FALLBACK:
        return verdict
    sched = resolve_schedule(comm, schedule)
    if sched is Schedule.SBT:
        return (yield from _alltoall_dimex(comm, blocks, tag))
    return (yield from _alltoall_rotated(comm, blocks, tag))


def _route_bit(comm: Comm, dst_commrank: int, dim: int) -> int:
    return (comm.subindex_of(dst_commrank) >> dim) & 1


def _alltoall_dimex(comm: Comm, blocks, tag: int):
    me = comm.rank
    my_sub = comm.subindex_of(me)
    items = {(me, dst): blocks[dst] for dst in range(comm.size)}
    for k in range(comm.dimension):
        my_bit = (my_sub >> k) & 1
        peer = comm.dim_partner(me, k)
        moving = {
            key: items.pop(key)
            for key in list(items)
            if _route_bit(comm, key[1], k) != my_bit
        }
        got = yield from comm.exchange(peer, moving, subtag(tag, k))
        if got is not LOST_PAYLOAD:
            items.update(got)
        # A lost exchange leaves the peer-routed items missing; the final
        # assembly below substitutes NaN blocks for them.
    return [
        items[(src, me)]
        if (src, me) in items
        else lost_like(blocks[src])
        for src in range(comm.size)
    ]


def _alltoall_rotated(comm: Comm, blocks, tag: int):
    d = comm.dimension
    me = comm.rank
    my_sub = comm.subindex_of(me)
    schedules = []
    headers = [chunk_header(np.asarray(b)) for b in blocks]
    for j in range(d):
        schedules.append(
            {
                (me, dst): (split_chunks(np.asarray(blocks[dst]), d)[j], headers[dst])
                for dst in range(comm.size)
            }
        )

    for t in range(d):
        handles = []
        arrivals = []
        for j in range(d):
            dim = (j + t) % d
            my_bit = (my_sub >> dim) & 1
            peer = comm.dim_partner(me, dim)
            moving = {
                key: schedules[j].pop(key)
                for key in list(schedules[j])
                if _route_bit(comm, key[1], dim) != my_bit
            }
            hs = yield from comm.isend(peer, moving, subtag(tag, j))
            hr = yield from comm.irecv(peer, subtag(tag, j))
            handles.extend((hs, hr))
            arrivals.append((j, hr))
        yield from comm.ctx.waitall(handles)
        for j, hr in arrivals:
            if hr.value is not LOST_PAYLOAD:
                schedules[j].update(hr.value)
            # else: items routed through the corpse stay missing; the
            # final assembly substitutes NaN chunks for them.

    out = []
    for src in range(comm.size):
        chunks = []
        hdr = None
        for j in range(d):
            entry = schedules[j].get((src, me))
            if entry is None:
                entry = (
                    lost_like(split_chunks(np.asarray(blocks[src]), d)[j]),
                    headers[src],
                )
            chunk, hdr = entry
            chunks.append(chunk)
        out.append(rebuild_from_header(chunks, hdr))
    return out
