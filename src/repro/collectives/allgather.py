"""All-to-all broadcast (allgather).

One-port: recursive doubling — at step ``k`` each node exchanges everything
it has accumulated with its dimension-``k`` partner, so volumes are
``M, 2M, 4M, …``, totalling ``t_s·log N + t_w·(N-1)·M`` (Table 1).

Multi-port: every contribution is split into ``log N`` chunks; schedule
``j`` runs recursive doubling over chunk ``j`` with its dimension order
rotated by ``j``.  At any step the ``log N`` schedules exchange on distinct
dimensions simultaneously: ``t_s·log N + t_w·(N-1)·M/log N``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.collectives.api import Schedule, resolve_schedule, subtag
from repro.collectives.chunking import chunk_header, rebuild_from_header, split_chunks
from repro.collectives.phase import attempt, make_spec
from repro.mpi.communicator import Comm
from repro.mpi.detector import LOST_PAYLOAD, lost_like
from repro.sim.ops import COLLECTIVE_FALLBACK

__all__ = ["allgather"]


def allgather(
    comm: Comm,
    block: Any,
    tag: int = 4,
    schedule: Schedule | None = None,
):
    """Collect every rank's ``block``; returns a list indexed by comm rank.

    Generator — call with ``yield from``.
    """
    if comm.size == 1:
        return [block]
    verdict = yield from attempt(make_spec("allgather", comm, block, tag, schedule))
    if verdict is not COLLECTIVE_FALLBACK:
        return verdict
    sched = resolve_schedule(comm, schedule)
    if sched is Schedule.SBT:
        return (yield from _allgather_doubling(comm, block, tag))
    return (yield from _allgather_rotated(comm, block, tag))


def _allgather_doubling(comm: Comm, block: Any, tag: int):
    pieces = {comm.rank: block}
    my_sub = comm.subindex_of(comm.rank)
    for k in range(comm.dimension):
        peer = comm.dim_partner(comm.rank, k)
        got = yield from comm.exchange(peer, pieces, subtag(tag, k))
        if got is LOST_PAYLOAD:
            # Fail-stopped partner: its whole subtree (subindices equal to
            # the peer's on bits >= k) is unreachable this round — mark
            # those contributions lost rather than aborting the gather.
            for cr in range(comm.size):
                if comm.subindex_of(cr) >> k == (my_sub >> k) ^ 1:
                    pieces[cr] = lost_like(block)
        else:
            pieces.update(got)
    return [pieces[cr] for cr in range(comm.size)]


def _allgather_rotated(comm: Comm, block: Any, tag: int):
    arr = np.asarray(block)
    d = comm.dimension
    header = chunk_header(arr)
    schedules = [
        {comm.rank: (chunk, header)} for chunk in split_chunks(arr, d)
    ]

    for t in range(d):
        handles = []
        arrivals = []
        for j in range(d):
            dim = (j + t) % d
            peer = comm.dim_partner(comm.rank, dim)
            hs = yield from comm.isend(peer, schedules[j], subtag(tag, j))
            hr = yield from comm.irecv(peer, subtag(tag, j))
            handles.extend((hs, hr))
            arrivals.append((j, hr))
        yield from comm.ctx.waitall(handles)
        my_sub = comm.subindex_of(comm.rank)
        full = (1 << d) - 1
        for j, hr in arrivals:
            if hr.value is LOST_PAYLOAD:
                # Partner subtree for schedule j: subindices equal to the
                # peer's outside the dimensions this schedule has visited.
                dim = (j + t) % d
                visited = 0
                for s in range(t):
                    visited |= 1 << (j + s) % d
                peer_sub = my_sub ^ (1 << dim)
                template = schedules[j][comm.rank]
                for cr in range(comm.size):
                    sub = comm.subindex_of(cr)
                    if (sub ^ peer_sub) & full & ~visited == 0:
                        schedules[j].setdefault(
                            cr, (lost_like(template[0]), template[1])
                        )
            else:
                schedules[j].update(hr.value)

    out = []
    for cr in range(comm.size):
        chunks = []
        hdr = None
        for j in range(d):
            chunk, hdr = schedules[j][cr]
            chunks.append(chunk)
        out.append(rebuild_from_header(chunks, hdr))
    return out
