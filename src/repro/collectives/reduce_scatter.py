"""All-to-all reduction (reduce-scatter) — the inverse of allgather.

Every rank contributes one block per destination; destination ``i`` ends up
with the element-wise sum over all contributors of their ``i``-th blocks.
This is the paper's "all-to-all reduction": the final phase of Berntsen's
algorithm, 3D All_Trans, and 3D All.

One-port: recursive halving — at step ``k`` each node sends its partner the
accumulated partial sums destined to the partner's half; volumes halve, so
the total is ``t_s·log N + t_w·(N-1)·M`` with ``M`` the per-destination
block size (the inverse of the all-to-all broadcast cost, as Table 1 notes).

Multi-port: chunked rotated halving, ``t_s·log N + t_w·(N-1)·M/log N``.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.collectives.api import Schedule, resolve_schedule, subtag
from repro.collectives.chunking import chunk_header, rebuild_from_header, split_chunks
from repro.collectives.phase import attempt, make_spec
from repro.errors import SimulationError
from repro.mpi.communicator import Comm
from repro.mpi.detector import LOST_PAYLOAD, lost_like
from repro.sim.ops import COLLECTIVE_FALLBACK

__all__ = ["reduce_scatter"]


def reduce_scatter(
    comm: Comm,
    blocks: Sequence,
    op: Callable = np.add,
    tag: int = 7,
    schedule: Schedule | None = None,
):
    """Reduce ``blocks[i]`` over all ranks onto comm rank ``i``; returns mine.

    Generator — call with ``yield from``.
    """
    if len(blocks) != comm.size:
        raise SimulationError(
            f"reduce_scatter needs {comm.size} blocks, got {len(blocks)}"
        )
    if comm.size == 1:
        return np.asarray(blocks[0])
    verdict = yield from attempt(
        make_spec("reduce_scatter", comm, tuple(blocks), tag, schedule, op=op)
    )
    if verdict is not COLLECTIVE_FALLBACK:
        return verdict
    sched = resolve_schedule(comm, schedule)
    if sched is Schedule.SBT:
        return (yield from _reduce_scatter_halving(comm, blocks, op, tag))
    return (yield from _reduce_scatter_rotated(comm, blocks, op, tag))


def _reduce_scatter_halving(comm: Comm, blocks, op: Callable, tag: int):
    me = comm.rank
    my_sub = comm.subindex_of(me)
    acc = {dst: np.array(blocks[dst]) for dst in range(comm.size)}
    for k in range(comm.dimension):
        my_bit = (my_sub >> k) & 1
        peer = comm.dim_partner(me, k)
        moving = {
            dst: acc.pop(dst)
            for dst in list(acc)
            if (comm.subindex_of(dst) >> k) & 1 != my_bit
        }
        got = yield from comm.exchange(peer, moving, subtag(tag, k))
        if got is LOST_PAYLOAD:
            # The partner's partial sums for my half died with it: every
            # destination I still accumulate is missing contributions, so
            # poison them all (NaN absorbs through the reduction op).
            for dst in acc:
                acc[dst] = op(acc[dst], lost_like(acc[dst]))
        else:
            for dst, arr in got.items():
                acc[dst] = op(acc[dst], arr)
    if set(acc) != {me}:
        raise SimulationError(f"reduce_scatter invariant broken at rank {me}")
    return acc[me]


def _reduce_scatter_rotated(comm: Comm, blocks, op: Callable, tag: int):
    d = comm.dimension
    me = comm.rank
    my_sub = comm.subindex_of(me)
    headers = [chunk_header(np.asarray(b)) for b in blocks]
    schedules = []
    for j in range(d):
        schedules.append(
            {
                dst: np.array(split_chunks(np.asarray(blocks[dst]), d)[j])
                for dst in range(comm.size)
            }
        )

    for t in range(d):
        handles = []
        arrivals = []
        for j in range(d):
            dim = (j + t) % d
            my_bit = (my_sub >> dim) & 1
            peer = comm.dim_partner(me, dim)
            moving = {
                dst: schedules[j].pop(dst)
                for dst in list(schedules[j])
                if (comm.subindex_of(dst) >> dim) & 1 != my_bit
            }
            hs = yield from comm.isend(peer, moving, subtag(tag, j))
            hr = yield from comm.irecv(peer, subtag(tag, j))
            handles.extend((hs, hr))
            arrivals.append((j, hr))
        yield from comm.ctx.waitall(handles)
        for j, hr in arrivals:
            if hr.value is LOST_PAYLOAD:
                for dst in schedules[j]:
                    schedules[j][dst] = op(
                        schedules[j][dst], lost_like(schedules[j][dst])
                    )
            else:
                for dst, arr in hr.value.items():
                    schedules[j][dst] = op(schedules[j][dst], arr)

    chunks = []
    for j in range(d):
        if set(schedules[j]) != {me}:
            raise SimulationError(
                f"rotated reduce_scatter invariant broken at rank {me}, tree {j}"
            )
        chunks.append(schedules[j][me])
    return rebuild_from_header(chunks, headers[me])
