"""One-to-all broadcast.

One-port schedule: plain spanning binomial tree — ``log N`` steps each
costing ``t_s + t_w·M``, total ``t_s·log N + t_w·M·log N`` (Table 1).

Multi-port schedule: the message is split into ``log N`` chunks; chunk ``j``
flows down rotated tree ``j``.  At every step the ``log N`` trees use
pairwise-distinct dimensions, so a multi-port node drives them all at once:
``log N`` steps each costing ``t_s + t_w·M/log N``, total
``t_s·log N + t_w·M`` — the Table 1 multi-port entry (optimal when
``M ≥ log N``).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.collectives.api import Schedule, resolve_schedule, subtag
from repro.collectives.chunking import chunk_header, rebuild_from_header, split_chunks
from repro.collectives.sbt import (
    distribute_child,
    distribute_parent,
    distribute_recv_step,
    identity_order,
    rotated_order,
)
from repro.collectives.phase import attempt, make_spec
from repro.mpi.communicator import Comm
from repro.sim.ops import COLLECTIVE_FALLBACK

__all__ = ["broadcast"]


def broadcast(
    comm: Comm,
    data: Any,
    root: int = 0,
    tag: int = 1,
    schedule: Schedule | None = None,
):
    """Broadcast ``data`` from comm rank ``root`` to every member.

    Returns the broadcast value on every rank (the root returns its own
    ``data`` object unchanged).  Generator — call with ``yield from``.
    """
    if comm.size == 1:
        return data
    verdict = yield from attempt(
        make_spec("broadcast", comm, data, tag, schedule, root=root)
    )
    if verdict is not COLLECTIVE_FALLBACK:
        return verdict
    sched = resolve_schedule(comm, schedule)
    if sched is Schedule.SBT:
        return (yield from _broadcast_sbt(comm, data, root, tag))
    return (yield from _broadcast_rotated(comm, data, root, tag))


def _broadcast_sbt(comm: Comm, data: Any, root: int, tag: int):
    d = comm.dimension
    order = identity_order(d)
    rel = comm.rel_index(comm.rank, root)

    if rel == 0:
        start = 0
    else:
        t_recv = distribute_recv_step(rel, order)
        parent = comm.from_rel(distribute_parent(rel, order), root)
        data = yield from comm.recv(parent, subtag(tag, t_recv))
        start = t_recv + 1

    for t in range(start, d):
        child = comm.from_rel(distribute_child(rel, order, t), root)
        yield from comm.send(child, data, subtag(tag, t))
    return data


def _broadcast_rotated(comm: Comm, data: Any, root: int, tag: int):
    arr = np.asarray(data)
    d = comm.dimension
    rel = comm.rel_index(comm.rank, root)
    orders = [rotated_order(d, j) for j in range(d)]

    if rel == 0:
        have: list = list(split_chunks(arr, d))
        header = chunk_header(arr)
        recv_steps = [None] * d
    else:
        have = [None] * d
        header = None
        recv_steps = [distribute_recv_step(rel, orders[j]) for j in range(d)]

    for t in range(d):
        handles = []
        arrivals = []  # (tree, handle)
        for j in range(d):
            if rel == 0 or recv_steps[j] < t:
                child = comm.from_rel(distribute_child(rel, orders[j], t), root)
                h = yield from comm.isend(child, (have[j], header), subtag(tag, j))
                handles.append(h)
            elif recv_steps[j] == t:
                parent = comm.from_rel(distribute_parent(rel, orders[j]), root)
                h = yield from comm.irecv(parent, subtag(tag, j))
                arrivals.append((j, h))
                handles.append(h)
        if handles:
            yield from comm.ctx.waitall(handles)
        for j, h in arrivals:
            chunk, hdr = h.value
            have[j] = chunk
            header = hdr

    if rel == 0:
        return data
    return rebuild_from_header(have, header)
