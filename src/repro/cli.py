"""Command-line interface: ``hypercube-mm`` (or ``python -m repro``).

Subcommands
-----------
``run``          simulate one algorithm and report timing/volume/correctness
``compare``      tabulate all applicable algorithms at one (n, p) point
``figure``       render a Figure 13/14 region-map panel as ASCII
``sweep``        tabulate model overheads along one parameter axis
``table2``       measured vs modelled (a, b) coefficients for one point
``trace``        run one algorithm and draw an ASCII Gantt chart
``scalability``  isoefficiency curves (n required to hold efficiency E)
``faults``       degradation sweep on a lossy machine (reliable delivery)
``recover``      node fail-stop recovery sweep (ABFT / checkpoint restart)
``chaos``        randomized fault campaign with minimized reproducers
``degrade``      graceful-degradation sweep on heterogeneous networks
``report``       regenerate the paper's full evaluation in one run
``cache``        inspect or maintain the persistent result cache
``list``         list the available algorithms

``figure``, ``sweep``, ``table2``, ``faults`` and ``degrade`` accept ``--cache`` /
``--no-cache`` (and ``--cache-dir``) to serve repeat invocations from the
persistent content-addressed result cache; ``REPRO_CACHE=1`` flips the
default on.  Cached and computed outputs are bit-identical.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

from repro import ALGORITHMS, MachineConfig, PortModel, get_algorithm
from repro.analysis.cache import (
    ResultCache,
    cached_coefficients,
    cached_region_map,
    cached_sweep,
)
from repro.analysis.figures import PANELS, render_ascii
from repro.analysis.scalability import isoefficiency_curve
from repro.errors import NotApplicableError, ReproError
from repro.models.table2 import overhead_coefficients
from repro.sim import RoutingMode
from repro.sim.gantt import render_gantt

__all__ = ["main"]


def _port(value: str) -> PortModel:
    return PortModel.MULTI_PORT if value == "multi" else PortModel.ONE_PORT


def _routing(value: str) -> RoutingMode:
    return (
        RoutingMode.CUT_THROUGH if value == "ct" else RoutingMode.STORE_AND_FORWARD
    )


def _machine(args) -> MachineConfig:
    return MachineConfig.create(
        args.p,
        t_s=args.ts,
        t_w=args.tw,
        t_c=getattr(args, "tc", 0.0),
        port_model=_port(args.port),
        routing=_routing(getattr(args, "routing", "sf")),
    )


def _cache_default() -> bool:
    """Whether caching is on without an explicit flag (REPRO_CACHE env)."""
    return os.environ.get("REPRO_CACHE", "").lower() in ("1", "true", "yes", "on")


def _add_cache_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--cache", dest="use_cache", action="store_true",
        default=_cache_default(),
        help="serve/store this result via the persistent result cache",
    )
    p.add_argument(
        "--no-cache", dest="use_cache", action="store_false",
        help="bypass the result cache (overrides REPRO_CACHE=1)",
    )
    p.add_argument(
        "--cache-dir", default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro-hypercube-mm)",
    )


def _cache(args) -> ResultCache | None:
    """The ResultCache for this invocation, or None when caching is off."""
    if not getattr(args, "use_cache", False):
        return None
    return ResultCache(args.cache_dir)


def _add_machine_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--ts", type=float, default=150.0, help="start-up cost t_s")
    p.add_argument("--tw", type=float, default=3.0, help="per-word cost t_w")
    p.add_argument("--tc", type=float, default=0.0, help="per-flop cost t_c")
    p.add_argument(
        "--port", choices=["one", "multi"], default="one",
        help="port model (one-port or multi-port nodes)",
    )
    p.add_argument(
        "--routing", choices=["sf", "ct"], default="sf",
        help="multi-hop routing: store-and-forward (sf) or cut-through (ct)",
    )


def _cmd_list(_args) -> int:
    for key, algo in sorted(ALGORITHMS.items()):
        print(f"{key:14s} {algo.name:22s} (paper §{algo.paper_section})")
    return 0


def _cmd_run(args) -> int:
    rng = np.random.default_rng(args.seed)
    A = rng.standard_normal((args.n, args.n))
    B = rng.standard_normal((args.n, args.n))
    config = _machine(args)
    algo = get_algorithm(args.algorithm)
    run = algo.run(A, B, config, verify=True)
    print(f"algorithm       : {algo.name} (§{algo.paper_section})")
    print(f"machine         : p={args.p} {config.port_model.value} "
          f"t_s={args.ts:g} t_w={args.tw:g} t_c={args.tc:g}")
    print(f"matrix          : n={args.n}")
    print(f"simulated time  : {run.total_time:.2f}")
    print(f"comm time       : {run.comm_time:.2f}")
    print(f"messages        : {run.result.total_messages()}")
    print(f"words sent      : {run.result.total_words_sent()}")
    print(f"peak words/node : {run.result.max_peak_memory_words()}")
    coeffs = overhead_coefficients(args.algorithm, args.n, args.p, config.port_model)
    if coeffs is not None:
        a, b = coeffs
        print(f"Table 2 model   : {a * args.ts + b * args.tw:.2f} "
              f"(a={a:g}, b={b:g})")
    print("verified        : C == A @ B")
    for name, (start, end) in sorted(
        run.result.phase_times.items(), key=lambda kv: kv[1][0]
    ):
        print(f"  phase {name:14s} [{start:10.2f}, {end:10.2f}]")
    return 0


def _cmd_compare(args) -> int:
    rng = np.random.default_rng(args.seed)
    A = rng.standard_normal((args.n, args.n))
    B = rng.standard_normal((args.n, args.n))
    port = _port(args.port)
    config = _machine(args)
    print(f"n={args.n} p={args.p} {port.value} t_s={args.ts:g} t_w={args.tw:g}")
    print(f"{'algorithm':22s} {'simulated':>12s} {'Table 2':>12s}")
    rows = []
    for key, algo in sorted(ALGORITHMS.items()):
        try:
            run = algo.run(A, B, config, verify=True)
        except NotApplicableError as exc:
            print(f"{algo.name:22s} {'n/a':>12s}  ({exc})")
            continue
        coeffs = overhead_coefficients(key, args.n, args.p, port)
        model = (
            f"{coeffs[0] * args.ts + coeffs[1] * args.tw:12.2f}"
            if coeffs is not None
            else f"{'-':>12s}"
        )
        rows.append((run.total_time, algo.name, model))
        print(f"{algo.name:22s} {run.total_time:12.2f} {model}")
    if rows:
        best = min(rows)
        print(f"best: {best[1]} ({best[0]:.2f})")
    return 0


def _warn_if_event_path(port, t_s, t_w) -> None:
    """One-line heads-up when a sim-backed figure cannot use the closed
    form, naming the feature that forces the event path (which is orders
    of magnitude slower at the top of the lattice)."""
    from repro.sim.engine import Engine
    from repro.sim.machine import MachineConfig
    from repro.sim.superstep import superstep_ineligibility_reason

    probe = Engine(MachineConfig.create(
        16, t_s=t_s, t_w=t_w, t_c=0.0, port_model=port
    ))
    reason = superstep_ineligibility_reason(probe)
    if reason is not None:
        print(
            f"warning: superstep closed form unavailable ({reason}); "
            f"the sim backend will run every phase on the event path",
            file=sys.stderr,
        )


def _cmd_figure(args) -> int:
    port = PortModel.ONE_PORT if args.figure == 13 else PortModel.MULTI_PORT
    t_s, t_w = PANELS[args.panel]
    extra = {}
    if args.backend is not None:
        extra["backend"] = args.backend
    if args.backend == "sim":
        _warn_if_event_path(port, t_s, t_w)
    rm = cached_region_map(
        _cache(args), port, t_s, t_w,
        log2_n_max=args.log2n, log2_p_max=args.log2p, jobs=args.jobs,
        **extra,
    )
    title = (
        f"Figure {args.figure}({args.panel}): {port.value}, "
        f"t_s={t_s:g}, t_w={t_w:g}"
    )
    print(render_ascii(rm, title))
    return 0


def _cmd_sweep(args) -> int:
    keys = tuple(args.algorithms or ["cannon", "berntsen", "3dd", "3d_all"])
    points = cached_sweep(
        _cache(args), keys, args.variable, args.values,
        n=args.n, p=args.p, port=_port(args.port),
        t_s=args.ts, t_w=args.tw, jobs=args.jobs,
    )
    fixed = {"n": args.n, "p": args.p, "t_s": args.ts, "t_w": args.tw}
    fixed.pop(args.variable)
    print(
        f"sweep over {args.variable} ({_port(args.port).value}; "
        + ", ".join(f"{k}={v:g}" for k, v in fixed.items()) + ")"
    )
    print(f"{args.variable:>12s}" + "".join(f"{k:>14s}" for k in keys)
          + f"{'best':>14s}")
    for pt in points:
        row = f"{pt.value:12g}"
        for key in keys:
            t = pt.times[key]
            row += f"{t:14.1f}" if t is not None else f"{'-':>14s}"
        print(row + f"{pt.best() or '-':>14s}")
    return 0


def _cmd_table2(args) -> int:
    port = _port(args.port)
    cache = _cache(args)
    print(f"n={args.n} p={args.p} {port.value}")
    print(f"{'algorithm':22s} {'measured (a, b)':>24s} {'Table 2 (a, b)':>24s}")
    for key in sorted(ALGORITHMS):
        algo = ALGORITHMS[key]
        if not algo.applicable(args.n, args.p):
            continue
        ma, mb = cached_coefficients(cache, key, args.n, args.p, port)
        coeffs = overhead_coefficients(key, args.n, args.p, port)
        model = (
            f"({coeffs[0]:9.1f}, {coeffs[1]:9.1f})"
            if coeffs
            else f"{'-':>22s}"
        )
        print(f"{algo.name:22s}  ({ma:9.1f}, {mb:9.1f})  {model}")
    return 0


def _cmd_trace(args) -> int:
    rng = np.random.default_rng(args.seed)
    A = rng.standard_normal((args.n, args.n))
    B = rng.standard_normal((args.n, args.n))
    config = _machine(args)
    algo = get_algorithm(args.algorithm)
    run = algo.run(A, B, config, verify=True, trace=True)
    print(
        f"{algo.name}: n={args.n}, p={args.p}, {config.port_model.value}, "
        f"{config.routing.value}, total={run.total_time:g}"
    )
    ranks = list(range(min(args.p, args.lanes)))
    print(render_gantt(run.result, width=args.width, ranks=ranks))
    return 0


def _cmd_scalability(args) -> int:
    port = _port(args.port)
    ps = [float(2 ** k) for k in range(3, args.log2p_max + 1)]
    print(
        f"n required to hold efficiency E={args.efficiency:g} "
        f"({port.value}, t_s={args.ts:g}, t_w={args.tw:g}, t_c={args.tc_flops:g})"
    )
    keys = args.algorithms or ["cannon", "berntsen", "3dd", "3d_all"]
    header = f"{'p':>10s}" + "".join(f"{k:>14s}" for k in keys)
    print(header)
    for p in ps:
        row = f"{int(p):10d}"
        for key in keys:
            n = isoefficiency_curve(
                key, [p], args.efficiency, port, args.ts, args.tw, args.tc_flops
            )[0].n_required
            row += f"{n:14.0f}" if n is not None else f"{'-':>14s}"
        print(row)
    return 0


def _cmd_faults(args) -> int:
    from repro.analysis.resilience import (
        degradation_sweep,
        format_resilience_table,
        transient_scenario,
    )

    keys = args.algorithms or ["cannon", "fox", "dns", "3d_all"]
    keys = [k for k in keys if get_algorithm(k).applicable(args.n, args.p)]
    if not keys:
        print("error: no selected algorithm is applicable at this (n, p)",
              file=sys.stderr)
        return 1
    plan = None
    if args.transient:
        plan = transient_scenario(seed=args.plan_seed, drop_rate=0.0)
    print(
        f"degradation sweep: n={args.n} p={args.p} t_s={args.ts:g} "
        f"t_w={args.tw:g} plan_seed={args.plan_seed}"
        + (" + transient link fault" if args.transient else "")
    )

    def compute():
        return degradation_sweep(
            keys, args.n, args.p, args.drop_rates,
            seed=args.seed, plan_seed=args.plan_seed, plan=plan,
            t_s=args.ts, t_w=args.tw, port_model=_port(args.port),
        )

    cache = _cache(args)
    if cache is None:
        points = compute()
    else:
        descriptor = {
            "algorithms": list(keys),
            "n": args.n,
            "p": args.p,
            "drop_rates": [float(r) for r in args.drop_rates],
            "seed": args.seed,
            "plan_seed": args.plan_seed,
            "transient": bool(args.transient),
            "t_s": float(args.ts),
            "t_w": float(args.tw),
            "port": _port(args.port),
        }
        points = cache.fetch("degradation_sweep", descriptor, compute)
    print(format_resilience_table(points))
    return 0


def _cmd_recover(args) -> int:
    from repro.analysis.resilience import (
        format_recovery_table,
        recovery_sweep,
    )

    keys = args.algorithms or ["cannon", "fox", "3d_all"]
    print(
        f"recovery sweep: n={args.n} p={args.p} t_s={args.ts:g} "
        f"t_w={args.tw:g} plan_seed={args.plan_seed} "
        f"modes={','.join(args.modes)}"
    )
    points = recovery_sweep(
        keys, args.n, args.p, args.kill_fracs, tuple(args.modes),
        seed=args.seed, plan_seed=args.plan_seed,
        victims=tuple(args.victims) if args.victims else None,
        t_s=args.ts, t_w=args.tw, port_model=_port(args.port),
    )
    print(format_recovery_table(points))
    return 0


def _cmd_cache(args) -> int:
    # With --state-dir the audit targets a sweep-service state: its
    # embedded cache, plus the results/ dir checked for orphaned
    # streaming snapshots (partials whose job is neither pending nor
    # running — debris from a daemon that died mid-stream).
    partials_dir = None
    live_jobs: list[str] = []
    if getattr(args, "state_dir", None):
        from repro.service import SweepService

        cache = ResultCache(os.path.join(args.state_dir, "cache"))
        partials_dir = os.path.join(args.state_dir, "results")
        with SweepService(args.state_dir, read_only=True) as svc:
            live_jobs = [j.id for j in svc.pending_jobs()]
    else:
        cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        stats = cache.stats(partials_dir=partials_dir, live_jobs=live_jobs)
        print(f"cache root : {stats['root']}")
        print(f"entries    : {stats['entries']}")
        print(f"size       : {stats['bytes']} bytes")
        print(f"corrupt    : {stats['corrupt']}")
        if partials_dir is not None:
            print(f"orphan partials: {stats['orphan_partials']}")
        for kind, count in stats["by_kind"].items():
            print(f"  {kind:20s} {count}")
        return 0
    if args.action == "clear":
        print(f"removed {cache.clear()} cache entr(ies) from {cache.root}")
        return 0
    if args.action == "verify":
        audit = cache.verify(
            prune_tmp=not args.keep_tmp,
            partials_dir=partials_dir,
            live_jobs=live_jobs,
        )
        print(f"cache root : {cache.root}")
        print(f"checked    : {audit['checked']}")
        print(f"corrupt    : {audit['corrupt']}")
        print(f"tmp found  : {audit['tmp_found']}")
        print(f"tmp removed: {audit['tmp_removed']}")
        if partials_dir is not None:
            print(f"orphan partials: {audit['orphan_partials']}")
        return 1 if audit["corrupt"] else 0
    removed = cache.prune(
        max_age_days=args.max_age_days, max_bytes=args.max_bytes
    )
    print(f"pruned {removed} cache entr(ies) from {cache.root} "
          f"(corrupt entries always go)")
    return 0


def _cmd_chaos(args) -> int:
    import json as _json

    from repro.analysis.chaos import format_report, run_campaign

    atom_subset = None
    if args.atoms is not None:
        atom_subset = [int(i) for i in args.atoms.split(",") if i != ""]
        if args.only_trial is None:
            print("error: --atoms requires --only-trial", file=sys.stderr)
            return 1
    report = run_campaign(
        trials=args.trials,
        seed=args.seed,
        stack=args.stack,
        algorithm=args.algorithm,
        n=args.n,
        p=args.p,
        jobs=args.jobs,
        minimize=not args.no_minimize,
        check_replay=not args.no_replay_check,
        only_trial=args.only_trial,
        atom_subset=atom_subset,
        severity=args.severity,
        scenario_seed=args.scenario_seed,
    )
    print(format_report(report))
    if args.json:
        with open(args.json, "w") as fh:
            _json.dump(report, fh, indent=2, default=repr)
        print(f"report written to {args.json}")
    if args.require_clean and report["violations"]:
        print(
            f"error: --require-clean but {len(report['violations'])} "
            f"violation(s) found",
            file=sys.stderr,
        )
        return 1
    if args.require_violation and not report["violations"]:
        print("error: --require-violation but the campaign was clean",
              file=sys.stderr)
        return 1
    return 0


def _cmd_degrade(args) -> int:
    import json as _json

    from repro.analysis.degradation import (
        DEFAULT_ALGORITHMS,
        degradation_report,
        format_degradation_table,
    )

    keys = args.algorithms or DEFAULT_ALGORITHMS
    keys = [k for k in keys if get_algorithm(k).applicable(args.n, args.p)]
    if not keys:
        print("error: no selected algorithm is applicable at this (n, p)",
              file=sys.stderr)
        return 1

    def compute(jobs):
        return degradation_report(
            keys, args.n, args.p, args.severities,
            profile=args.profile, scenario_seed=args.scenario_seed,
            seed=args.seed, adaptive=not args.oblivious,
            t_s=args.ts, t_w=args.tw, port_model=_port(args.port),
            jobs=jobs,
        )

    cache = _cache(args)
    if cache is None:
        report = compute(args.jobs)
    else:
        descriptor = {
            "algorithms": list(keys),
            "n": args.n,
            "p": args.p,
            "severities": [float(s) for s in args.severities],
            "profile": args.profile,
            "scenario_seed": args.scenario_seed,
            "seed": args.seed,
            "adaptive": not args.oblivious,
            "t_s": float(args.ts),
            "t_w": float(args.tw),
            "port": _port(args.port).value,
        }
        report = cache.fetch(
            "degradation_report", descriptor, lambda: compute(args.jobs)
        )
    print(format_degradation_table(report))
    if args.json:
        with open(args.json, "w") as fh:
            _json.dump(report, fh, indent=2, default=repr)
        print(f"report written to {args.json}")
    if args.check:
        alt_jobs = 2 if args.jobs == 1 else 1
        replay = compute(alt_jobs)
        if replay["digest"] != report["digest"]:
            print(
                f"error: replay digest mismatch "
                f"(jobs={args.jobs}: {report['digest']}, "
                f"jobs={alt_jobs}: {replay['digest']})",
                file=sys.stderr,
            )
            return 1
        print(f"replay check OK: digest {report['digest']} invariant "
              f"across jobs={args.jobs} and jobs={alt_jobs}")
    return 0


def _service_params(args) -> dict:
    """Collect the submitted job's parameters from parsed CLI args."""
    import json as _json

    params: dict = {}
    if getattr(args, "params", None):
        params.update(_json.loads(args.params))
    for cli_name, key in getattr(args, "_param_map", ()):
        value = getattr(args, cli_name, None)
        if value is not None:
            params[key] = value
    if getattr(args, "no_adaptive", False):
        params["adaptive"] = False
    return params


def _submit_outcome(args, kind: str, outcome: dict) -> int:
    """Render one submission outcome (direct or via daemon spool ack).

    A shed always echoes its ``retry_after`` — in the human line *and*
    in ``--json`` — so callers can back off precisely instead of
    guessing from a bare exit 75.
    """
    import json as _json

    if args.json:
        print(_json.dumps(outcome, indent=2, sort_keys=True))
    if outcome.get("shed"):
        if not args.json:
            print(
                f"overloaded: {outcome['reason']} — retry after "
                f"{outcome['retry_after']:.2f}s",
                file=sys.stderr,
            )
        return 75  # EX_TEMPFAIL: the client should back off and retry
    if outcome.get("error"):
        if not args.json:
            print(f"error: {outcome['error']}", file=sys.stderr)
        return 1
    if not args.json:
        note = (
            " (coalesced with identical in-flight job)"
            if outcome.get("coalesced") else ""
        )
        via = " via running daemon" if outcome.get("spooled") else ""
        print(f"submitted {outcome['job']} kind={kind}{via}{note}")
    return 0


def _submit_via_spool(args, kind: str, params: dict) -> dict:
    """Hand the submission to a live daemon through the spool directory.

    The daemon holds the single-writer LOCK, so this process cannot
    journal the submission itself; instead it drops a request file and
    polls for the daemon's ack (which carries the job id or the shed
    verdict with its ``retry_after``).
    """
    import json as _json
    import pathlib
    import uuid

    spool = pathlib.Path(args.state_dir) / "spool"
    spool.mkdir(parents=True, exist_ok=True)
    nonce = uuid.uuid4().hex[:12]
    tmp = spool / f".req-{nonce}.tmp.{os.getpid()}"
    tmp.write_text(_json.dumps({
        "nonce": nonce, "kind": kind, "params": params,
        "tenant": args.tenant, "ts": time.time(),
    }), encoding="utf-8")
    os.replace(tmp, spool / f"req-{nonce}.json")
    ack_path = spool / f"ack-{nonce}.json"
    deadline = time.monotonic() + args.wait
    while time.monotonic() < deadline:
        if ack_path.is_file():
            try:
                ack = _json.loads(ack_path.read_text(encoding="utf-8"))
            except ValueError:
                time.sleep(0.02)  # mid-rename
                continue
            ack_path.unlink(missing_ok=True)
            ack["spooled"] = True
            return ack
        time.sleep(0.05)
    return {
        "error": f"daemon did not ack within {args.wait:g}s "
                 f"(request {nonce} left in spool)",
    }


def _cmd_submit(args) -> int:
    from repro.errors import ServiceError, ServiceOverloadError
    from repro.service import SweepService

    kind = args.kind.replace("-", "_")
    params = _service_params(args)
    try:
        with SweepService(
            args.state_dir,
            max_pending=args.max_pending,
            tenant_rate=args.tenant_rate,
            tenant_burst=args.tenant_burst,
        ) as svc:
            job_id, coalesced = svc.submit(kind, params, tenant=args.tenant)
            outcome = {"job": job_id, "coalesced": coalesced}
    except ServiceOverloadError as exc:
        outcome = {
            "shed": True, "reason": exc.reason,
            "retry_after": exc.retry_after, "tenant": exc.tenant,
        }
    except ServiceError as exc:
        # A live daemon owns the state: spool the request to it instead.
        if "locked by live pid" not in str(exc):
            raise
        outcome = _submit_via_spool(args, kind, params)
    return _submit_outcome(args, kind, outcome)


def _tenant_weights(specs) -> dict[str, float] | None:
    """Parse repeatable ``--tenant-weight NAME=W`` flags."""
    if not specs:
        return None
    weights: dict[str, float] = {}
    for spec in specs:
        name, _, value = spec.partition("=")
        if not name or not value:
            raise SystemExit(
                f"error: --tenant-weight expects NAME=WEIGHT, got {spec!r}"
            )
        weights[name] = float(value)
    return weights


def _cmd_serve(args) -> int:
    import signal

    from repro.service import InjectedServiceCrash, SweepService
    from repro.service.chaos import parse_injections

    inject = parse_injections(args.inject or [])
    use_hosts = None
    if getattr(args, "hosts", None) is not None:
        use_hosts = args.hosts
    with SweepService(
        args.state_dir,
        workers=args.workers,
        chunk_size=args.chunk_size,
        chunk_deadline_s=args.chunk_deadline,
        max_attempts=args.max_attempts,
        backoff_base_s=args.backoff_base,
        tenant_weights=_tenant_weights(args.tenant_weight),
        use_hosts=use_hosts,
        stale_after_s=args.stale_after,
        inject=None if inject.is_noop() else inject,
    ) as svc:
        for warning in svc.warnings:
            print(f"warning: {warning}", file=sys.stderr)
        if args.follow:
            # Daemon mode: SIGTERM/SIGINT request a graceful drain — the
            # executor stops leasing, in-flight chunks hand back to the
            # journal, and the loop exits after the current bookkeeping.
            def _drain(signum, frame):
                print("drain requested — handing leases back",
                      file=sys.stderr)
                svc.request_stop()

            old_term = signal.signal(signal.SIGTERM, _drain)
            old_int = signal.signal(signal.SIGINT, _drain)
            try:
                summary = svc.serve_follow(
                    poll_s=args.poll, max_seconds=args.max_seconds,
                )
            except InjectedServiceCrash as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 70
            finally:
                signal.signal(signal.SIGTERM, old_term)
                signal.signal(signal.SIGINT, old_int)
            print(
                f"daemon exit: completed={summary['completed']} "
                f"failed={summary['failed']} drained={summary['drained']} "
                f"elapsed={summary['elapsed_s']:.1f}s"
            )
            return 0
        pending = svc.pending_jobs()
        if not pending:
            print("no pending jobs")
            return 0
        try:
            svc.run_pending()
        except InjectedServiceCrash as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 70  # EX_SOFTWARE: simulated supervisor death
        for job in svc.jobs_by_id.values():
            if job.status in ("pending",):
                continue
            print(
                f"job {job.id} {job.kind} {job.status} digest={job.digest} "
                f"retries={job.retries} leases={job.leases} "
                f"quarantined={sorted(job.quarantined)}"
            )
    return 0


def _cmd_work(args) -> int:
    from repro.service import HostAgent

    agent = HostAgent(
        os.path.join(args.state_dir, "hosts"),
        args.host_id,
        heartbeat_s=args.heartbeat,
        poll_s=args.poll,
        max_seconds=args.max_seconds,
        die_after_chunks=args.die_after_chunks,
    )
    print(
        f"host agent {args.host_id} serving {args.state_dir} "
        f"(heartbeat {args.heartbeat:g}s)"
    )
    done = agent.run()
    print(f"host agent {args.host_id} exiting: {done} chunk(s) completed")
    return 0


def _render_jobs(payload) -> None:
    for warning in payload["warnings"]:
        print(f"warning: {warning}", file=sys.stderr)
    if not payload["jobs"]:
        print("no jobs")
    for job in payload["jobs"]:
        total = job["chunks_total"]
        progress = (
            f"{job['chunks_done']}/{total}" if total is not None else "-"
        )
        streaming = " [streaming]" if job.get("partial") else ""
        print(
            f"{job['id']}  {job['kind']:10s} {job['tenant']:10s} "
            f"{job['status']:9s} chunks={progress:8s} "
            f"digest={job['digest'] or '-':16s} "
            f"retries={job['retries']}{streaming}"
        )
        if job["quarantined"]:
            print(
                f"  quarantined chunks: "
                f"{','.join(str(c) for c in job['quarantined'])} "
                f"(poison — excluded from the report, see results file)"
            )
    for host in payload.get("hosts", []):
        age = host["heartbeat_age_s"]
        print(
            f"host {host['host']}: "
            f"{'alive' if host['alive'] else 'STALE'} "
            f"heartbeat_age={age if age is not None else '-'}s "
            f"epoch={host['epoch']} done={host['done']}"
        )
    shed = payload.get("last_shed")
    if shed:
        print(
            f"last shed: tenant={shed['tenant']} reason={shed['reason']} "
            f"retry_after={shed['retry_after']:.2f}s"
        )
    c = payload["counters"]
    print(
        f"counters: submitted={c['submitted']} coalesced={c['coalesced']} "
        f"sheds={c['sheds']} retries={c['retries']} leases={c['leases']} "
        f"quarantined={c['quarantined']} worker_deaths={c['worker_deaths']} "
        f"lease_expiries={c['lease_expiries']} "
        f"host_leases={c.get('host_leases', 0)} "
        f"host_revocations={c.get('host_revocations', 0)}"
    )


def _cmd_jobs(args) -> int:
    import json as _json

    from repro.service import SweepService

    iterations = args.iterations if args.watch else 1
    i = 0
    while True:
        with SweepService(args.state_dir, read_only=True) as svc:
            payload = svc.jobs()
        if args.json:
            print(_json.dumps(payload, indent=2, default=repr))
        else:
            if args.watch and i > 0:
                print(f"--- refresh {i} ---")
            _render_jobs(payload)
        i += 1
        if iterations is not None and i >= iterations:
            return 0
        try:
            time.sleep(args.watch)
        except KeyboardInterrupt:
            return 0


def _cmd_report(args) -> int:
    from repro.analysis.report import full_report

    text = full_report(figures=not args.no_figures)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hypercube-mm",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list algorithms").set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="simulate one algorithm")
    p_run.add_argument("algorithm", choices=sorted(ALGORITHMS))
    p_run.add_argument("-n", type=int, default=64, help="matrix size")
    p_run.add_argument("-p", type=int, default=64, help="processor count")
    p_run.add_argument("--seed", type=int, default=0)
    _add_machine_args(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_cmp = sub.add_parser("compare", help="compare all applicable algorithms")
    p_cmp.add_argument("-n", type=int, default=64)
    p_cmp.add_argument("-p", type=int, default=64)
    p_cmp.add_argument("--seed", type=int, default=0)
    _add_machine_args(p_cmp)
    p_cmp.set_defaults(func=_cmd_compare)

    p_fig = sub.add_parser("figure", help="render a Figure 13/14 panel")
    p_fig.add_argument("figure", type=int, choices=[13, 14])
    p_fig.add_argument("panel", choices=sorted(PANELS))
    p_fig.add_argument("--log2n", type=int, default=13)
    p_fig.add_argument("--log2p", type=int, default=20)
    p_fig.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the lattice sweep (same map for any value)",
    )
    p_fig.add_argument(
        "--backend", choices=["scalar", "sim"], default=None,
        help="scalar = Table 2 closed forms per point; sim = time each "
             "candidate in the engine (keep --log2p modest)",
    )
    _add_cache_args(p_fig)
    p_fig.set_defaults(func=_cmd_figure)

    p_sw = sub.add_parser(
        "sweep", help="tabulate model overheads along one parameter axis"
    )
    p_sw.add_argument("variable", choices=["n", "p", "t_s", "t_w"])
    p_sw.add_argument("values", type=float, nargs="+")
    p_sw.add_argument("-n", type=float, default=256)
    p_sw.add_argument("-p", type=float, default=64)
    p_sw.add_argument("--algorithms", nargs="*", choices=sorted(ALGORITHMS))
    p_sw.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the sweep (same table for any value)",
    )
    _add_machine_args(p_sw)
    _add_cache_args(p_sw)
    p_sw.set_defaults(func=_cmd_sweep)

    p_t2 = sub.add_parser("table2", help="measured vs modelled coefficients")
    p_t2.add_argument("-n", type=int, default=16)
    p_t2.add_argument("-p", type=int, default=16)
    _add_machine_args(p_t2)
    _add_cache_args(p_t2)
    p_t2.set_defaults(func=_cmd_table2)

    p_tr = sub.add_parser("trace", help="draw an ASCII Gantt chart of a run")
    p_tr.add_argument("algorithm", choices=sorted(ALGORITHMS))
    p_tr.add_argument("-n", type=int, default=16)
    p_tr.add_argument("-p", type=int, default=8)
    p_tr.add_argument("--seed", type=int, default=0)
    p_tr.add_argument("--width", type=int, default=72)
    p_tr.add_argument("--lanes", type=int, default=16, help="max lanes shown")
    _add_machine_args(p_tr)
    p_tr.set_defaults(func=_cmd_trace)

    p_sc = sub.add_parser("scalability", help="isoefficiency curves")
    p_sc.add_argument("-E", "--efficiency", type=float, default=0.8)
    p_sc.add_argument("--log2p-max", type=int, default=15)
    p_sc.add_argument("--tc-flops", type=float, default=1.0,
                      help="t_c per flop used for the efficiency model")
    p_sc.add_argument("--algorithms", nargs="*", choices=sorted(ALGORITHMS))
    _add_machine_args(p_sc)
    p_sc.set_defaults(func=_cmd_scalability)

    p_fl = sub.add_parser(
        "faults", help="degradation sweep on a lossy machine"
    )
    p_fl.add_argument("-n", type=int, default=16)
    p_fl.add_argument("-p", type=int, default=16)
    p_fl.add_argument("--seed", type=int, default=0, help="matrix seed")
    p_fl.add_argument("--plan-seed", type=int, default=0, help="fault-plan seed")
    p_fl.add_argument(
        "--drop-rates", type=float, nargs="+", default=[0.0, 0.01, 0.05],
        help="per-hop message drop probabilities to sweep",
    )
    p_fl.add_argument(
        "--transient", action="store_true",
        help="also inject the canonical windowed link failure",
    )
    p_fl.add_argument("--algorithms", nargs="*", choices=sorted(ALGORITHMS))
    _add_machine_args(p_fl)
    _add_cache_args(p_fl)
    p_fl.set_defaults(func=_cmd_faults)

    p_rc = sub.add_parser(
        "recover", help="node fail-stop recovery sweep (ABFT / checkpoint)"
    )
    p_rc.add_argument("-n", type=int, default=12)
    p_rc.add_argument("-p", type=int, default=16)
    p_rc.add_argument("--seed", type=int, default=0, help="matrix seed")
    p_rc.add_argument("--plan-seed", type=int, default=1, help="fault-plan seed")
    p_rc.add_argument(
        "--kill-fracs", type=float, nargs="+", default=[0.3, 0.7],
        help="kill times as fractions of the fault-free run time",
    )
    p_rc.add_argument(
        "--modes", nargs="+", choices=["abft", "checkpoint", "none"],
        default=["abft", "checkpoint", "none"],
        help="recovery modes to sweep",
    )
    p_rc.add_argument(
        "--victims", type=int, nargs="*",
        help="ranks to fail-stop (default: one seeded victim per algorithm)",
    )
    p_rc.add_argument("--algorithms", nargs="*", choices=sorted(ALGORITHMS))
    _add_machine_args(p_rc)
    p_rc.set_defaults(func=_cmd_recover)

    p_ch = sub.add_parser(
        "chaos",
        help="randomized fault-injection campaign with minimized reproducers",
    )
    p_ch.add_argument("--trials", type=int, default=25)
    p_ch.add_argument("--seed", type=int, default=0, help="campaign seed")
    p_ch.add_argument(
        "--stack", choices=["none", "reliable", "integrity", "protected"],
        default="none", help="protection stack the algorithm runs under",
    )
    p_ch.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS), default="cannon"
    )
    p_ch.add_argument("-n", type=int, default=8)
    p_ch.add_argument("-p", type=int, default=16)
    p_ch.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (same report and digest for any value)",
    )
    p_ch.add_argument(
        "--only-trial", type=int, default=None,
        help="replay a single trial instead of the whole campaign",
    )
    p_ch.add_argument(
        "--atoms", default=None,
        help="comma-separated fault-atom indices to keep (with --only-trial; "
             "this is the reproducer form the minimizer emits)",
    )
    p_ch.add_argument(
        "--severity", type=float, default=0.0,
        help="layer a seeded heterogeneous network scenario of this "
             "severity under every trial's fault plan (0 = uniform)",
    )
    p_ch.add_argument(
        "--scenario-seed", type=int, default=0,
        help="seed for the heterogeneous scenario (with --severity)",
    )
    p_ch.add_argument(
        "--no-minimize", action="store_true",
        help="skip delta-debugging the failing trials' fault sets",
    )
    p_ch.add_argument(
        "--no-replay-check", action="store_true",
        help="skip the same-seed bit-identical replay invariant",
    )
    p_ch.add_argument(
        "--json", default=None, metavar="FILE",
        help="also write the full JSON report to FILE",
    )
    p_ch.add_argument(
        "--require-clean", action="store_true",
        help="exit 1 if any violation is found (CI gate)",
    )
    p_ch.add_argument(
        "--require-violation", action="store_true",
        help="exit 1 if NO violation is found (CI sanity check that the "
             "oracle catches unprotected corruption)",
    )
    p_ch.set_defaults(func=_cmd_chaos)

    p_dg = sub.add_parser(
        "degrade",
        help="graceful-degradation sweep over heterogeneous network "
             "scenarios (which algorithm degrades most gracefully?)",
    )
    p_dg.add_argument("-n", type=int, default=8)
    p_dg.add_argument("-p", type=int, default=16)
    p_dg.add_argument(
        "--severities", type=float, nargs="+", default=[0.5, 1.0, 2.0],
        help="severity levels to sweep (0 = uniform network)",
    )
    p_dg.add_argument(
        "--profile",
        choices=["uniform", "random", "hotspot", "dimension", "background"],
        default="random",
        help="network-scenario profile shaping the degradation",
    )
    p_dg.add_argument(
        "--scenario-seed", type=int, default=0,
        help="seed for the scenario's link selection and magnitudes",
    )
    p_dg.add_argument("--seed", type=int, default=0, help="matrix seed")
    p_dg.add_argument(
        "--algorithms", nargs="+", metavar="ALGO", default=None,
        help="algorithm keys to rank (default: the standard pool, "
             "filtered by applicability)",
    )
    p_dg.add_argument(
        "--oblivious", action="store_true",
        help="disable degradation-aware detour routing (fixed e-cube "
             "paths even on slow links)",
    )
    p_dg.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (same report and digest for any value)",
    )
    p_dg.add_argument(
        "--check", action="store_true",
        help="rerun with different sharding and fail on digest mismatch "
             "(CI gate for replay determinism and jobs-invariance)",
    )
    p_dg.add_argument(
        "--json", default=None, metavar="FILE",
        help="also write the full JSON report to FILE",
    )
    _add_machine_args(p_dg)
    _add_cache_args(p_dg)
    p_dg.set_defaults(func=_cmd_degrade)

    p_ca = sub.add_parser(
        "cache", help="inspect or maintain the persistent result cache"
    )
    p_ca.add_argument("action", choices=["stats", "clear", "prune", "verify"])
    p_ca.add_argument(
        "--keep-tmp", action="store_true",
        help="verify: report orphaned tmp files without removing them",
    )
    p_ca.add_argument(
        "--cache-dir", default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro-hypercube-mm)",
    )
    p_ca.add_argument(
        "--max-age-days", type=float, default=None,
        help="prune: drop entries older than this many days",
    )
    p_ca.add_argument(
        "--max-bytes", type=int, default=None,
        help="prune: shrink the store to this byte budget (oldest first)",
    )
    p_ca.add_argument(
        "--state-dir", default=None,
        help="audit a sweep-service state instead: its cache plus "
             "orphaned streaming partials in results/",
    )
    p_ca.set_defaults(func=_cmd_cache)

    p_rep = sub.add_parser(
        "report", help="regenerate the paper's full evaluation"
    )
    p_rep.add_argument("-o", "--output", help="write to a file instead of stdout")
    p_rep.add_argument(
        "--no-figures", action="store_true", help="skip the region maps"
    )
    p_rep.set_defaults(func=_cmd_report)

    # -- crash-safe sweep service -------------------------------------------

    def _add_state_dir(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--state-dir", required=True,
            help="service state directory (journal, cache, results)",
        )

    p_sub = sub.add_parser(
        "submit", help="queue a job on the crash-safe sweep service"
    )
    _add_state_dir(p_sub)
    p_sub.add_argument("--tenant", default="default")
    p_sub.add_argument("--max-pending", type=int, default=32)
    p_sub.add_argument("--tenant-rate", type=float, default=2.0)
    p_sub.add_argument("--tenant-burst", type=float, default=8.0)
    p_sub.add_argument(
        "--json", action="store_true",
        help="emit the submission outcome (job id, or shed with "
             "retry_after) as JSON",
    )
    p_sub.add_argument(
        "--wait", type=float, default=10.0,
        help="seconds to wait for a running daemon's ack when the state "
             "is locked (submissions spool to it)",
    )
    kind_sub = p_sub.add_subparsers(dest="kind", required=True)

    def _kind_parser(name: str, help_: str) -> argparse.ArgumentParser:
        p = kind_sub.add_parser(name, help=help_)
        p.add_argument(
            "--params", default=None,
            help="extra job parameters as a JSON object (flags win)",
        )
        p.set_defaults(func=_cmd_submit)
        return p

    p_k = _kind_parser("sweep", "parameter sweep over n/p/t_s/t_w")
    p_k.add_argument("variable", choices=["n", "p", "t_s", "t_w"])
    p_k.add_argument("--values", nargs="+", type=float, required=True)
    p_k.add_argument("--algorithms", nargs="*", choices=sorted(ALGORITHMS))
    p_k.add_argument("-n", type=float, default=None)
    p_k.add_argument("-p", type=float, default=None)
    p_k.add_argument("--ts", type=float, default=None)
    p_k.add_argument("--tw", type=float, default=None)
    p_k.add_argument("--port", choices=["one", "multi"], default=None)
    p_k.set_defaults(_param_map=[
        ("variable", "variable"), ("values", "values"),
        ("algorithms", "algorithms"), ("n", "n"), ("p", "p"),
        ("ts", "t_s"), ("tw", "t_w"), ("port", "port"),
    ])

    p_k = _kind_parser("region-map", "best-algorithm region map")
    p_k.add_argument("--log2-n-max", type=int, default=None)
    p_k.add_argument("--log2-p-max", type=int, default=None)
    p_k.add_argument("--algorithms", nargs="*", choices=sorted(ALGORITHMS))
    p_k.add_argument("--ts", type=float, default=None)
    p_k.add_argument("--tw", type=float, default=None)
    p_k.add_argument("--port", choices=["one", "multi"], default=None)
    p_k.add_argument(
        "--backend", choices=["scalar", "sim"], default=None,
        help="scalar = Table 2 closed forms (default); "
             "sim = time each candidate in the event engine",
    )
    p_k.set_defaults(_param_map=[
        ("log2_n_max", "log2_n_max"), ("log2_p_max", "log2_p_max"),
        ("algorithms", "algorithms"), ("ts", "t_s"), ("tw", "t_w"),
        ("port", "port"), ("backend", "backend"),
    ])

    p_k = _kind_parser("degrade", "graceful-degradation severity report")
    p_k.add_argument("-n", type=int, default=None)
    p_k.add_argument("-p", type=int, default=None)
    p_k.add_argument("--severities", nargs="+", type=float, default=None)
    p_k.add_argument(
        "--profile", default=None,
        choices=["uniform", "random", "hotspot", "dimension", "background"],
    )
    p_k.add_argument("--scenario-seed", type=int, default=None)
    p_k.add_argument("--seed", type=int, default=None)
    p_k.add_argument("--no-adaptive", action="store_true")
    p_k.add_argument("--algorithms", nargs="*", choices=sorted(ALGORITHMS))
    p_k.set_defaults(_param_map=[
        ("n", "n"), ("p", "p"), ("severities", "severities"),
        ("profile", "profile"), ("scenario_seed", "scenario_seed"),
        ("seed", "seed"), ("algorithms", "algorithms"),
    ])

    p_k = _kind_parser("chaos", "seeded fault-injection campaign")
    p_k.add_argument("--trials", type=int, default=None)
    p_k.add_argument("--seed", type=int, default=None)
    p_k.add_argument(
        "--stack", default=None,
        choices=["none", "reliable", "integrity", "protected"],
    )
    p_k.add_argument("--algorithm", choices=sorted(ALGORITHMS), default=None)
    p_k.add_argument("-n", type=int, default=None)
    p_k.add_argument("-p", type=int, default=None)
    p_k.add_argument("--severity", type=float, default=None)
    p_k.add_argument("--scenario-seed", type=int, default=None)
    p_k.set_defaults(_param_map=[
        ("trials", "trials"), ("seed", "seed"), ("stack", "stack"),
        ("algorithm", "algorithm"), ("n", "n"), ("p", "p"),
        ("severity", "severity"), ("scenario_seed", "scenario_seed"),
    ])

    p_sv = sub.add_parser(
        "serve", help="execute pending service jobs (resumes from the journal)"
    )
    _add_state_dir(p_sv)
    p_sv.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: $REPRO_JOBS or CPU count)",
    )
    p_sv.add_argument("--chunk-size", type=int, default=None)
    p_sv.add_argument(
        "--chunk-deadline", type=float, default=30.0,
        help="per-chunk lease deadline in seconds",
    )
    p_sv.add_argument("--max-attempts", type=int, default=3)
    p_sv.add_argument("--backoff-base", type=float, default=0.05)
    p_sv.add_argument(
        "--inject", action="append", default=None, metavar="SPEC",
        help="fault injection: kill-worker:K, stall-worker:K, "
             "poison-chunk:K, crash-service:K, corrupt-journal-tail "
             "(repeatable)",
    )
    p_sv.add_argument(
        "--follow", action="store_true",
        help="daemon mode: keep tailing the submit spool after the "
             "queue drains; SIGTERM drains gracefully",
    )
    p_sv.add_argument(
        "--poll", type=float, default=0.1,
        help="daemon idle poll interval in seconds",
    )
    p_sv.add_argument(
        "--max-seconds", type=float, default=None,
        help="daemon mode: exit after this long (soak/CI bound)",
    )
    p_sv.add_argument(
        "--tenant-weight", action="append", default=None,
        metavar="TENANT=W",
        help="fair-scheduling weight for a tenant (repeatable; "
             "unlisted tenants weigh 1.0)",
    )
    host_group = p_sv.add_mutually_exclusive_group()
    host_group.add_argument(
        "--hosts", dest="hosts", action="store_true", default=None,
        help="execute chunks on `repro work` host agents (default: "
             "auto-detect registered hosts)",
    )
    host_group.add_argument(
        "--no-hosts", dest="hosts", action="store_false",
        help="always use the in-process worker pool",
    )
    p_sv.add_argument(
        "--stale-after", type=float, default=5.0,
        help="seconds without a heartbeat before a host's leases are "
             "revoked and re-sharded",
    )
    p_sv.set_defaults(func=_cmd_serve)

    p_wk = sub.add_parser(
        "work",
        help="run a multi-host worker agent leasing chunks from a "
             "(possibly remote) service state directory",
    )
    _add_state_dir(p_wk)
    p_wk.add_argument(
        "--host-id", required=True,
        help="this host's identity under <state>/hosts/",
    )
    p_wk.add_argument("--heartbeat", type=float, default=0.5)
    p_wk.add_argument("--poll", type=float, default=0.05)
    p_wk.add_argument(
        "--max-seconds", type=float, default=None,
        help="exit after this long even without a STOP file",
    )
    p_wk.add_argument(
        "--die-after-chunks", type=int, default=None,
        help="chaos: simulate a host crash (exit without cleanup) after "
             "completing this many chunks",
    )
    p_wk.set_defaults(func=_cmd_work)

    p_jb = sub.add_parser(
        "jobs", help="inspect service jobs and robustness counters"
    )
    _add_state_dir(p_jb)
    p_jb.add_argument("--json", action="store_true")
    p_jb.add_argument(
        "--watch", type=float, default=None, metavar="SECONDS",
        help="re-render every SECONDS (streamed partials show live "
             "chunk progress); ctrl-c to stop",
    )
    p_jb.add_argument(
        "--iterations", type=int, default=None,
        help="with --watch: stop after N renders (tests/CI)",
    )
    p_jb.set_defaults(func=_cmd_jobs)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
