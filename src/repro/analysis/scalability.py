"""Isoefficiency analysis of the Table 2 models (extension).

The paper cites Gupta & Kumar's scalability study [5]; this module extends
the reproduction with the same lens.  With computation time
``T_comp = 2n³·t_c / p`` per processor and communication overhead
``T_comm = a(n,p)·t_s + b(n,p)·t_w``, parallel efficiency is::

    E = T_seq / (p * T_par) = 1 / (1 + p*T_comm / T_seq)

The *isoefficiency function* answers: how fast must the problem (``n``, or
work ``n³``) grow with ``p`` to hold ``E`` constant?  Algorithms with lower
communication overheads have flatter isoefficiency curves — 3D All's
advantage restated asymptotically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.models.table2 import communication_overhead, structurally_applicable
from repro.sim.machine import PortModel

__all__ = ["efficiency", "isoefficiency_n", "isoefficiency_curve", "IsoPoint"]


def efficiency(
    key: str,
    n: float,
    p: float,
    port: PortModel,
    t_s: float,
    t_w: float,
    t_c: float = 1.0,
) -> float | None:
    """Parallel efficiency at (n, p), or ``None`` if not applicable."""
    if t_c <= 0:
        raise ModelError("efficiency needs t_c > 0 (computation must cost)")
    comm = communication_overhead(key, n, p, port, t_s, t_w)
    if comm is None:
        return None
    t_seq = 2.0 * n ** 3 * t_c
    t_par = t_seq / p + comm
    return t_seq / (p * t_par)


def isoefficiency_n(
    key: str,
    p: float,
    target_efficiency: float,
    port: PortModel,
    t_s: float,
    t_w: float,
    t_c: float = 1.0,
    *,
    n_max: float = 2.0 ** 40,
) -> float | None:
    """Smallest ``n`` achieving the target efficiency at ``p`` processors.

    Bisection over ``n`` (efficiency is monotone increasing in ``n`` for
    all Table 2 models).  ``None`` if unattainable below ``n_max`` or the
    algorithm never applies at this ``p``.
    """
    if not 0 < target_efficiency < 1:
        raise ModelError(
            f"target efficiency must be in (0, 1), got {target_efficiency}"
        )

    def eff(n: float) -> float | None:
        if not structurally_applicable(key, n, p):
            return None
        return efficiency(key, n, p, port, t_s, t_w, t_c)

    lo, hi = 1.0, 2.0
    while hi < n_max:
        e = eff(hi)
        if e is not None and e >= target_efficiency:
            break
        hi *= 2
    else:
        return None
    for _ in range(80):
        mid = (lo + hi) / 2
        e = eff(mid)
        if e is not None and e >= target_efficiency:
            hi = mid
        else:
            lo = mid
    return hi


@dataclass(frozen=True)
class IsoPoint:
    p: float
    n_required: float | None

    @property
    def work(self) -> float | None:
        """The W = n³ problem size the isoefficiency literature tracks."""
        return None if self.n_required is None else self.n_required ** 3


def isoefficiency_curve(
    key: str,
    ps: list[float],
    target_efficiency: float,
    port: PortModel,
    t_s: float,
    t_w: float,
    t_c: float = 1.0,
) -> list[IsoPoint]:
    """``n`` required at each ``p`` to hold the target efficiency."""
    return [
        IsoPoint(p, isoefficiency_n(key, p, target_efficiency, port, t_s, t_w, t_c))
        for p in ps
    ]
