"""Deterministic parallel execution of embarrassingly-parallel sweeps.

Region maps, coefficient sweeps, and resilience grids all evaluate one
pure function over many independent cells.  :func:`run_grid` shards such a
grid over a :class:`~concurrent.futures.ProcessPoolExecutor` while keeping
the result *bit-identical* to the sequential evaluation:

* **Deterministic partitioning** — cells are split into contiguous chunks
  of a fixed, input-derived size, never by worker availability, so the
  same inputs always produce the same shards.
* **Ordered merge** — chunk results are concatenated in submission order
  (worker completion order never matters), so ``run_grid(f, cells,
  jobs=k)`` returns exactly ``[f(c) for c in cells]`` for every ``k``.

Each worker process evaluates its cells with its own private simulator
state (engines, route caches, fault RNG streams are all built per run
from seeds), so parallelism cannot perturb any simulated timing — a
property pinned by the replay-determinism test suite.

``jobs <= 1`` bypasses the pool entirely (no pickling requirement); with
a pool, ``fn`` and the cells must be picklable (module-level functions,
plain-data cells).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = [
    "run_grid", "default_jobs", "resolve_jobs", "plan_chunks",
    "contiguous_spans",
]

C = TypeVar("C")
R = TypeVar("R")


def default_jobs() -> int:
    """Worker count used when a caller asks for "parallel" without a number.

    Precedence, highest first:

    1. ``REPRO_JOBS`` environment variable — used verbatim when it parses
       as a positive integer (malformed or non-positive values are
       ignored and fall through);
    2. the CPU *affinity* mask (``os.sched_getaffinity(0)`` where the
       platform provides it) — a container or ``taskset`` pinning sees
       the CPUs it was actually given, not the whole machine;
    3. ``os.cpu_count()`` as the last resort.

    The visible-CPU count from (2)/(3) is halved (at least one): sweeps
    are CPU-bound pure Python, so hyper-sibling oversubscription buys
    nothing, and leaving headroom keeps interactive use pleasant.
    """
    env = os.environ.get("REPRO_JOBS")
    if env is not None:
        try:
            jobs = int(env)
        except ValueError:
            jobs = 0
        if jobs > 0:
            return jobs
    try:
        visible = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        visible = os.cpu_count() or 2
    return max(1, visible // 2)


def resolve_jobs(jobs: int | None) -> int:
    """The effective worker count for one grid run, resolved exactly once.

    ``None`` consults :func:`default_jobs` (and therefore ``REPRO_JOBS``)
    *at this call*, so the environment is read one time per run and the
    resolved value can be recorded (the sweep service journals it in the
    chunk plan).  A later ``REPRO_JOBS`` change can never re-shard work
    that was planned under the old value.  Explicit non-positive values
    degrade to 1, matching :func:`run_grid`'s historical behaviour.
    """
    if jobs is None:
        return default_jobs()
    return max(1, int(jobs))


def plan_chunks(
    n_cells: int,
    jobs: int,
    chunk_size: int | None = None,
    *,
    weights: Sequence[float] | None = None,
) -> list[tuple[int, int]]:
    """Deterministic contiguous chunk boundaries for an ``n_cells`` grid.

    Returns ``[(start, stop), ...]`` half-open index ranges covering
    ``range(n_cells)`` in order.  The partition depends only on
    ``(n_cells, jobs, chunk_size, weights)`` — never on scheduling or
    worker availability — so the same inputs always shard identically.
    This is the single source of truth for sharding: :func:`run_grid`
    splits its cell list with it, and the sweep-service supervisor leases
    exactly these ranges to workers (and journals them, so a resumed job
    re-uses the recorded plan verbatim).

    ``chunk_size=None`` targets about four chunks per worker — small
    enough to balance load, large enough to amortize pickling.

    ``weights`` (one non-negative cost estimate per cell) replaces the
    count-based split with a cost-based one: contiguous chunks each
    carrying roughly ``total/(jobs*4)`` of the estimated cost.  Cells
    whose simulated cost varies by orders of magnitude (a region-map row
    mixing superstep-batched Cannon points with event-path 3D collectives)
    shard evenly instead of serializing behind one heavy chunk.  Weights
    only steer the partition — results never depend on them.  An explicit
    ``chunk_size`` takes precedence.
    """
    if n_cells <= 0:
        return []
    jobs = max(1, jobs)
    if weights is not None and chunk_size is None:
        if len(weights) != n_cells:
            raise ValueError(
                f"weights has {len(weights)} entries for {n_cells} cells"
            )
        if any(w < 0 for w in weights):
            raise ValueError("chunk weights must be non-negative")
        target = sum(weights) / (jobs * 4)
        bounds: list[tuple[int, int]] = []
        start, acc = 0, 0.0
        for i, w in enumerate(weights):
            if i > start and acc + w > target:
                bounds.append((start, i))
                start, acc = i, 0.0
            acc += w
        bounds.append((start, n_cells))
        return bounds
    if chunk_size is None:
        chunk_size = max(1, -(-n_cells // (jobs * 4)))
    elif chunk_size < 1:
        chunk_size = 1
    return [
        (i, min(i + chunk_size, n_cells))
        for i in range(0, n_cells, chunk_size)
    ]


def contiguous_spans(indices: Iterable[int]) -> list[tuple[int, int]]:
    """Collapse a set of chunk indices into sorted half-open spans.

    ``{0, 1, 2, 5, 7, 8} -> [(0, 3), (5, 6), (7, 9)]``.  The sweep
    service uses this in two places with opposite polarities: the host
    pool grants each host one contiguous span per lease (fewer task
    files, cache-friendly cell ranges), and ``repro jobs --watch``
    renders a job's completed chunks as spans instead of a wall of
    integers.
    """
    spans: list[tuple[int, int]] = []
    for i in sorted(set(indices)):
        if spans and spans[-1][1] == i:
            spans[-1] = (spans[-1][0], i + 1)
        else:
            spans.append((i, i + 1))
    return spans


def _run_chunk(fn: Callable[[C], R], chunk: Sequence[C]) -> list[R]:
    """Evaluate one shard in a worker (module-level, hence picklable)."""
    return [fn(cell) for cell in chunk]


def run_grid(
    fn: Callable[[C], R],
    cells: Iterable[C],
    *,
    jobs: int | None = 1,
    chunk_size: int | None = None,
    weights: Sequence[float] | None = None,
) -> list[R]:
    """``[fn(c) for c in cells]``, optionally sharded over processes.

    Parameters
    ----------
    fn:
        A pure function of one cell.  Must be picklable (module-level)
        when ``jobs > 1``.
    cells:
        The grid; consumed once, evaluated in order.
    jobs:
        Worker processes.  ``None`` resolves :func:`default_jobs` exactly
        once, here, and uses that fixed value for the whole run (a
        mid-run ``REPRO_JOBS`` change cannot re-shard in-flight work);
        ``<= 1`` evaluates inline with no pool and no pickling
        requirement; ``0``/negative are treated as 1.
    chunk_size:
        Cells per shard.  Defaults to splitting the grid into about four
        chunks per worker — small enough to balance load, large enough to
        amortize pickling.  The partition (:func:`plan_chunks`) depends
        only on the cell count, ``jobs``, and this value, never on
        scheduling, so results are reproducible run to run.
    weights:
        Optional per-cell cost estimates for the cost-based partition
        (see :func:`plan_chunks`).  Purely a load-balancing hint: results
        are bit-identical with or without it.

    Returns the results in cell order, identical to the sequential
    evaluation regardless of ``jobs``.
    """
    cell_list = list(cells)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(cell_list) <= 1:
        return [fn(cell) for cell in cell_list]
    jobs = min(jobs, len(cell_list))
    chunks = [
        cell_list[start:stop]
        for start, stop in plan_chunks(
            len(cell_list), jobs, chunk_size, weights=weights
        )
    ]
    out: list[R] = []
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [pool.submit(_run_chunk, fn, chunk) for chunk in chunks]
        # Collect in submission (= input) order: the merge is ordered by
        # construction, so worker scheduling cannot reorder results.
        for future in futures:
            out.extend(future.result())
    return out
