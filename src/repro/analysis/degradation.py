"""Graceful-degradation analysis: overhead vs. network-heterogeneity severity.

The paper's Table 2 / Figure 13 winners assume a uniform ``(t_s, t_w)``
on every link.  This module asks the robustness question a service user
actually asks: *how do those winners shift when the network is partially
degraded, and which algorithm degrades most gracefully?*  For each
(algorithm, severity) cell it attaches a seeded
:class:`~repro.sim.scenario.NetworkScenario` of growing severity to the
machine, runs the full multiplication, and reports the **overhead**
(simulated time relative to the same algorithm on the uniform machine).
Because :func:`~repro.sim.scenario.random_heterogeneous` keeps the
affected link set and per-link draw stable across severities, each
algorithm's curve is continuous in severity and the curves are directly
comparable.

Outputs:

* :func:`severity_sweep` — the raw grid of :class:`DegradationPoint`
  cells, evaluated through :func:`~repro.analysis.parallel.run_grid`
  (bit-identical for any ``jobs``),
* :func:`degradation_report` — a JSON-able report ranking algorithms by
  overhead growth (the *most graceful degrader* first), carrying a
  jobs-invariant digest in the chaos-report style,
* :func:`graceful_region_map` — a region-map variant: for each matrix
  size, which algorithm degrades most gracefully at a given severity,
* ``repro degrade`` — the CLI over all of the above (``--check`` reruns
  with different sharding and replays, failing on any digest mismatch).

Everything is a pure function of its seeds: matrices from ``seed``, the
scenario from ``(profile, severity, scenario_seed)``, no wall-clock
anywhere — a report regenerated months later is bit-identical.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.algorithms.registry import get_algorithm
from repro.analysis.parallel import run_grid
from repro.errors import ReproError, SimulationError
from repro.sim.machine import MachineConfig, PortModel
from repro.sim.scenario import (
    NetworkScenario,
    background_traffic,
    congested_dimension,
    hotspot,
    random_heterogeneous,
    uniform,
)

__all__ = [
    "DegradationPoint",
    "scenario_for",
    "severity_sweep",
    "sweep_cells",
    "points_from_records",
    "report_from_points",
    "degradation_report",
    "graceful_region_map",
    "format_degradation_table",
    "format_region_map",
]

#: default algorithm pool (filtered by applicability at the chosen n, p)
DEFAULT_ALGORITHMS = ["cannon", "fox", "diagonal2d", "hje", "dns", "3d_all"]


@dataclass(frozen=True)
class DegradationPoint:
    """One (algorithm, severity) cell of a severity sweep."""

    algorithm: str
    severity: float
    completed: bool
    error: str | None
    total_time: float | None
    baseline_time: float
    messages_sent: int
    hops_rerouted: int

    @property
    def overhead(self) -> float | None:
        """Simulated-time ratio vs. the uniform-network baseline
        (``None`` when the run failed)."""
        if not self.completed or self.baseline_time <= 0:
            return None
        return self.total_time / self.baseline_time


def scenario_for(
    profile: str,
    p: int,
    severity: float,
    *,
    seed: int = 0,
    adaptive: bool = True,
) -> NetworkScenario:
    """The named-profile scenario at one severity level.

    ``severity`` maps onto each profile's natural knob: the slowdown
    factor becomes ``1 + severity`` for the structured profiles
    (hotspot / congested dimension / background traffic) and feeds
    :func:`~repro.sim.scenario.random_heterogeneous` directly.  Severity
    0 is always the uniform machine.
    """
    if severity < 0:
        raise SimulationError(f"severity must be >= 0, got {severity}")
    if severity == 0.0 or profile == "uniform":
        sc = uniform()
    elif profile == "random":
        sc = random_heterogeneous(p, severity, seed=seed)
    elif profile == "hotspot":
        sc = hotspot(p, seed % p, 1.0 + severity)
    elif profile == "dimension":
        dim = p.bit_length() - 1
        sc = congested_dimension(p, seed % dim, 1.0 + severity)
    elif profile == "background":
        sc = background_traffic(p, factor=1.0 + severity, seed=seed)
    else:
        raise SimulationError(
            f"unknown scenario profile {profile!r} (expected uniform, "
            "random, hotspot, dimension or background)"
        )
    return sc.with_adaptive_routing(adaptive)


def _run_cell(cell: dict[str, Any]) -> dict[str, Any]:
    """Grid entry point: one (algorithm, severity) record (picklable).

    The baseline is threaded in by the driver (computed once per
    algorithm) so a worker never recomputes it — and every worker
    produces the identical record regardless of sharding.
    """
    rng = np.random.default_rng(cell["seed"])
    n = cell["n"]
    A = rng.standard_normal((n, n))
    B = rng.standard_normal((n, n))
    scenario = scenario_for(
        cell["profile"], cell["p"], cell["severity"],
        seed=cell["scenario_seed"], adaptive=cell["adaptive"],
    )
    config = MachineConfig.create(
        cell["p"], t_s=cell["t_s"], t_w=cell["t_w"],
        port_model=PortModel(cell["port"]), scenario=scenario,
    )
    algo = get_algorithm(cell["algorithm"])
    try:
        run = algo.run(A, B, config, verify=True,
                       max_events=cell["max_events"])
    except ReproError as exc:
        return {
            "algorithm": cell["algorithm"], "severity": cell["severity"],
            "completed": False, "error": f"{type(exc).__name__}: {exc}",
            "total_time": None, "messages_sent": 0, "hops_rerouted": 0,
        }
    res = run.result
    return {
        "algorithm": cell["algorithm"], "severity": cell["severity"],
        "completed": True, "error": None,
        "total_time": res.total_time,
        "messages_sent": res.total_messages(),
        "hops_rerouted": res.network.hops_rerouted,
    }


def severity_sweep(
    algorithms: list[str],
    n: int,
    p: int,
    severities: list[float],
    *,
    profile: str = "random",
    scenario_seed: int = 0,
    seed: int = 0,
    adaptive: bool = True,
    t_s: float = 150.0,
    t_w: float = 3.0,
    port_model: PortModel = PortModel.ONE_PORT,
    max_events: int = 5_000_000,
    jobs: int = 1,
) -> list[DegradationPoint]:
    """Run each algorithm at each severity; one point per cell.

    Cells are evaluated through :func:`~repro.analysis.parallel.run_grid`
    and baselines (severity 0 on the uniform machine) are computed once
    per algorithm inside the same grid, so the whole sweep is
    bit-identical for any ``jobs`` value.  Runs that raise a
    :class:`~repro.errors.ReproError` are recorded as failed cells, not
    propagated.
    """
    cells = sweep_cells(
        algorithms, n, p, severities,
        profile=profile, scenario_seed=scenario_seed, seed=seed,
        adaptive=adaptive, t_s=t_s, t_w=t_w, port_model=port_model,
        max_events=max_events,
    )
    records = run_grid(_run_cell, cells, jobs=jobs)
    return points_from_records(algorithms, records)


def sweep_cells(
    algorithms: list[str],
    n: int,
    p: int,
    severities: list[float],
    *,
    profile: str = "random",
    scenario_seed: int = 0,
    seed: int = 0,
    adaptive: bool = True,
    t_s: float = 150.0,
    t_w: float = 3.0,
    port_model: PortModel = PortModel.ONE_PORT,
    max_events: int = 5_000_000,
) -> list[dict[str, Any]]:
    """The plain-data grid cells behind :func:`severity_sweep`.

    One grid evaluates baselines and sweep cells alike: the first
    ``len(algorithms)`` cells are the severity-0 baselines (uniform
    scenario by construction), followed by the (algorithm, severity)
    sweep cells.  Exposed so external executors (the sweep service) can
    shard exactly the same cells through :func:`_run_cell` and reassemble
    with :func:`points_from_records`.
    """
    base = {
        "n": n, "p": p, "profile": profile,
        "scenario_seed": scenario_seed, "seed": seed,
        "adaptive": adaptive, "t_s": t_s, "t_w": t_w,
        "port": port_model.value, "max_events": max_events,
    }
    cells = [dict(base, algorithm=key, severity=0.0) for key in algorithms]
    cells += [
        dict(base, algorithm=key, severity=float(s))
        for key in algorithms
        for s in severities
    ]
    return cells


def points_from_records(
    algorithms: list[str], records: list[dict[str, Any]]
) -> list[DegradationPoint]:
    """Reassemble :func:`_run_cell` records (in :func:`sweep_cells` order)
    into :class:`DegradationPoint` cells, threading each algorithm's
    severity-0 baseline time into its sweep points."""
    baselines = {
        rec["algorithm"]: rec for rec in records[: len(algorithms)]
    }
    points: list[DegradationPoint] = []
    for rec in records[len(algorithms):]:
        baseline = baselines[rec["algorithm"]]
        base_time = baseline["total_time"] if baseline["completed"] else 0.0
        points.append(DegradationPoint(
            algorithm=rec["algorithm"], severity=rec["severity"],
            completed=rec["completed"], error=rec["error"],
            total_time=rec["total_time"], baseline_time=base_time or 0.0,
            messages_sent=rec["messages_sent"],
            hops_rerouted=rec["hops_rerouted"],
        ))
    return points


def _growth(points: list[DegradationPoint]) -> float | None:
    """One algorithm's overhead growth: max overhead minus 1.0 across its
    completed cells (``None`` when any cell failed)."""
    overheads = [pt.overhead for pt in points]
    if any(o is None for o in overheads) or not overheads:
        return None
    return max(overheads) - 1.0


def degradation_report(
    algorithms: list[str],
    n: int,
    p: int,
    severities: list[float],
    *,
    profile: str = "random",
    scenario_seed: int = 0,
    seed: int = 0,
    adaptive: bool = True,
    t_s: float = 150.0,
    t_w: float = 3.0,
    port_model: PortModel = PortModel.ONE_PORT,
    max_events: int = 5_000_000,
    jobs: int = 1,
) -> dict[str, Any]:
    """The JSON-able graceful-degradation report for one (n, p) point.

    Ranks the algorithms by overhead growth across the severity axis —
    the smallest growth is the *most graceful degrader*.  The report is
    a pure function of every parameter except ``jobs`` and carries a
    ``digest`` invariant across reruns, replays, and sharding.
    """
    keys = [k for k in algorithms if get_algorithm(k).applicable(n, p)]
    points = severity_sweep(
        keys, n, p, severities,
        profile=profile, scenario_seed=scenario_seed, seed=seed,
        adaptive=adaptive, t_s=t_s, t_w=t_w, port_model=port_model,
        max_events=max_events, jobs=jobs,
    )
    return report_from_points(
        keys, points,
        n=n, p=p, severities=severities, profile=profile,
        scenario_seed=scenario_seed, seed=seed, adaptive=adaptive,
        t_s=t_s, t_w=t_w, port_model=port_model,
    )


def report_from_points(
    keys: list[str],
    points: list[DegradationPoint],
    *,
    n: int,
    p: int,
    severities: list[float],
    profile: str = "random",
    scenario_seed: int = 0,
    seed: int = 0,
    adaptive: bool = True,
    t_s: float = 150.0,
    t_w: float = 3.0,
    port_model: PortModel = PortModel.ONE_PORT,
) -> dict[str, Any]:
    """Assemble the ranking report from already-evaluated sweep points.

    The single assembly path behind :func:`degradation_report` — external
    executors (the sweep service) that evaluated the same cells reach the
    identical report (and digest) through it.
    """
    per_algo: dict[str, list[DegradationPoint]] = {k: [] for k in keys}
    for pt in points:
        per_algo[pt.algorithm].append(pt)

    ranking = []
    for key in keys:
        growth = _growth(per_algo[key])
        ranking.append({
            "algorithm": key,
            "growth": growth,
            "overheads": {
                f"{pt.severity:g}": pt.overhead for pt in per_algo[key]
            },
        })
    # Most graceful first; failed algorithms sink to the bottom.  Ties
    # break on the name so the ranking is deterministic.
    ranking.sort(
        key=lambda e: (e["growth"] is None, e["growth"], e["algorithm"])
    )

    report: dict[str, Any] = {
        "profile": profile, "n": n, "p": p,
        "severities": [float(s) for s in severities],
        "seed": seed, "scenario_seed": scenario_seed,
        "adaptive_routing": adaptive,
        "t_s": float(t_s), "t_w": float(t_w), "port": port_model.value,
        "algorithms": keys,
        "points": [
            {
                "algorithm": pt.algorithm, "severity": pt.severity,
                "completed": pt.completed,
                "total_time": pt.total_time,
                "baseline_time": pt.baseline_time,
                "overhead": pt.overhead,
                "messages_sent": pt.messages_sent,
                "hops_rerouted": pt.hops_rerouted,
                "detail": pt.error,
            }
            for pt in points
        ],
        "ranking": ranking,
        "most_graceful": ranking[0]["algorithm"] if ranking else None,
    }
    report["digest"] = _report_digest(report)
    return report


def _report_digest(report: dict[str, Any]) -> str:
    """Stable fingerprint of a report's semantic content.

    ``detail`` strings are excluded (engine diagnostics can embed
    process-global counters that depend on worker sharding, exactly as in
    the chaos reports); everything semantic — cell outcomes, times,
    overheads, the ranking — is covered.
    """

    def strip(obj):
        if isinstance(obj, dict):
            return {k: strip(v) for k, v in obj.items()
                    if k not in ("detail", "digest")}
        if isinstance(obj, list):
            return [strip(v) for v in obj]
        return obj

    payload = json.dumps(strip(report), sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def graceful_region_map(
    ns: list[int],
    p: int,
    severity: float,
    *,
    algorithms: list[str] | None = None,
    profile: str = "random",
    scenario_seed: int = 0,
    seed: int = 0,
    t_s: float = 150.0,
    t_w: float = 3.0,
    jobs: int = 1,
    max_events: int = 5_000_000,
) -> dict[str, Any]:
    """The *most graceful degrader* across matrix sizes at one severity.

    For each ``n`` in ``ns``, runs every applicable algorithm at
    severities ``[severity]`` and records the algorithm whose overhead
    growth is smallest — the region-map analogue of the paper's Figure 13
    winners, but under network degradation instead of a uniform machine.
    """
    pool = algorithms if algorithms is not None else DEFAULT_ALGORITHMS
    rows = []
    for n in ns:
        keys = [k for k in pool if get_algorithm(k).applicable(n, p)]
        if not keys:
            rows.append({"n": n, "winner": None, "growth": {}})
            continue
        points = severity_sweep(
            keys, n, p, [severity],
            profile=profile, scenario_seed=scenario_seed, seed=seed,
            t_s=t_s, t_w=t_w, jobs=jobs, max_events=max_events,
        )
        per_algo: dict[str, list[DegradationPoint]] = {k: [] for k in keys}
        for pt in points:
            per_algo[pt.algorithm].append(pt)
        growth = {k: _growth(per_algo[k]) for k in keys}
        viable = [k for k in keys if growth[k] is not None]
        winner = (
            min(viable, key=lambda k: (growth[k], k)) if viable else None
        )
        rows.append({"n": n, "winner": winner, "growth": growth})
    return {
        "p": p, "severity": float(severity), "profile": profile,
        "seed": seed, "scenario_seed": scenario_seed,
        "t_s": float(t_s), "t_w": float(t_w),
        "rows": rows,
    }


def format_degradation_table(report: dict[str, Any]) -> str:
    """Render a degradation report as a fixed-width text table."""
    sev = report["severities"]
    header = f"{'algorithm':14s} " + " ".join(
        f"s={s:<8g}" for s in sev
    ) + f" {'growth':>8s}"
    lines = [
        f"graceful degradation: profile={report['profile']} n={report['n']} "
        f"p={report['p']} t_s={report['t_s']:g} t_w={report['t_w']:g} "
        f"seed={report['seed']} scenario_seed={report['scenario_seed']}",
        f"  adaptive routing: {report['adaptive_routing']}   "
        f"digest: {report['digest']}",
        header,
    ]
    for entry in report["ranking"]:
        cells = []
        for s in sev:
            o = entry["overheads"].get(f"{s:g}")
            cells.append(f"{o:<10.3f}" if o is not None else f"{'FAIL':<10s}")
        growth = entry["growth"]
        g = f"{growth:8.3f}" if growth is not None else f"{'-':>8s}"
        lines.append(f"{entry['algorithm']:14s} " + "".join(cells) + g)
    if report["most_graceful"]:
        lines.append(f"most graceful degrader: {report['most_graceful']}")
    return "\n".join(lines)


def format_region_map(region: dict[str, Any]) -> str:
    """Render a graceful-degrader region map as text."""
    lines = [
        f"most graceful degrader by n: p={region['p']} "
        f"severity={region['severity']:g} profile={region['profile']}",
        f"{'n':>6s} {'winner':14s} growth per algorithm",
    ]
    for row in region["rows"]:
        growth = " ".join(
            f"{k}={v:.3f}" if v is not None else f"{k}=FAIL"
            for k, v in sorted(row["growth"].items())
        )
        lines.append(f"{row['n']:6d} {str(row['winner']):14s} {growth}")
    return "\n".join(lines)
