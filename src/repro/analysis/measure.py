"""Measured (simulated) communication costs vs the Table 2 models.

The simulator executes the real schedules, so with ``t_c = 0`` the total
runtime *is* the communication overhead.  Running once with ``(t_s, t_w) =
(1, 0)`` and once with ``(0, 1)`` extracts the measured ``(a, b)``
coefficient pair directly — communication time in this machine model is an
exact linear form ``a·t_s + b·t_w`` for any fixed schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms import get_algorithm
from repro.models.table2 import overhead_coefficients
from repro.sim.machine import MachineConfig, PortModel, RoutingMode

__all__ = [
    "measure_comm_time",
    "extract_coefficients",
    "measure_cell",
    "measured_vs_model",
    "CoefficientComparison",
]


def _inputs(n: int, seed: int = 7) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, n)), rng.standard_normal((n, n))


def measure_comm_time(
    key: str,
    n: int,
    p: int,
    port: PortModel,
    t_s: float,
    t_w: float,
    *,
    routing: RoutingMode = RoutingMode.STORE_AND_FORWARD,
    verify: bool = False,
) -> float:
    """Simulated communication time of one algorithm run (``t_c = 0``).

    Payload copying is disabled unless the run verifies the product:
    timings depend only on message *sizes*, never their contents, so the
    measurement mode can safely share buffers (zero-copy) and skip the
    deep-copy that dominates send issue on large matrices.
    """
    A, B = _inputs(n)
    config = MachineConfig.create(
        p, t_s=t_s, t_w=t_w, t_c=0.0, port_model=port, routing=routing,
        copy_on_send=verify,
    )
    run = get_algorithm(key).run(A, B, config, verify=verify)
    return run.total_time


def extract_coefficients(
    key: str,
    n: int,
    p: int,
    port: PortModel,
    routing: RoutingMode = RoutingMode.STORE_AND_FORWARD,
) -> tuple[float, float]:
    """Measured ``(a, b)`` with total comm time ``a·t_s + b·t_w``.

    Note: with pure start-up costs (``t_w = 0``) some transfers that would
    otherwise be pipelined can align differently, so the measured pair is
    exact for the degenerate machines it was measured on and an excellent
    predictor — but not a guaranteed bound — for mixed parameters.
    """
    a = measure_comm_time(key, n, p, port, t_s=1.0, t_w=0.0, routing=routing)
    b = measure_comm_time(key, n, p, port, t_s=0.0, t_w=1.0, routing=routing)
    return (a, b)


def measure_cell(
    task: tuple[str, int, int, PortModel],
) -> tuple[str, int, int, tuple[float, float]]:
    """:func:`extract_coefficients` over one plain-data task tuple.

    The module-level worker for sharding a grid of ``(key, n, p, port)``
    cells across processes with :func:`repro.analysis.parallel.run_grid`;
    returns the cell identity along with the measured ``(a, b)`` pair so
    the merged results are self-describing.
    """
    key, n, p, port = task
    return (key, n, p, extract_coefficients(key, n, p, port))


@dataclass
class CoefficientComparison:
    """Measured vs Table 2 coefficients for one (algorithm, n, p, port)."""

    key: str
    n: int
    p: int
    port: PortModel
    measured: tuple[float, float]
    model: tuple[float, float] | None

    def ratio(self, t_s: float, t_w: float) -> float | None:
        """measured/model total time at the given parameters."""
        if self.model is None:
            return None
        model_t = self.model[0] * t_s + self.model[1] * t_w
        measured_t = self.measured[0] * t_s + self.measured[1] * t_w
        if model_t == 0:
            return None
        return measured_t / model_t


def measured_vs_model(
    key: str, n: int, p: int, port: PortModel
) -> CoefficientComparison:
    """Compare the simulator against the paper's Table 2 closed form."""
    return CoefficientComparison(
        key=key,
        n=n,
        p=p,
        port=port,
        measured=extract_coefficients(key, n, p, port),
        model=overhead_coefficients(key, n, p, port),
    )
