"""Degradation experiments: how algorithms behave on a faulty machine.

The fault-injection subsystem (:mod:`repro.sim.faults`) makes the machine
lossy; the reliable-delivery layer (:mod:`repro.mpi.reliable`) buys the
result back at the price of retransmissions.  This module measures that
price: for each (algorithm, drop-rate) cell it runs the full multiplication
with :class:`~repro.mpi.reliable.ReliableContext`, verifies the product,
and reports

* **completion** — did the run finish and verify (bounded retries can give
  up, and an unlucky plan can disconnect the machine),
* **slowdown** — simulated time relative to the same algorithm on the
  fault-free machine,
* **retransmission overhead** — resends per application message, and the
  raw dropped/rerouted counters from
  :class:`~repro.sim.tracing.NetworkStats`.

Everything is seeded (the matrix contents by ``seed``, the fault plan by
``plan_seed``), so a sweep is exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.abft import ABFTMatmul
from repro.algorithms.registry import get_algorithm
from repro.errors import ReproError
from repro.mpi.reliable import ReliableContext
from repro.sim.faults import FaultPlan
from repro.sim.machine import MachineConfig, PortModel

__all__ = [
    "ResiliencePoint",
    "degradation_sweep",
    "completion_rate",
    "transient_scenario",
    "format_resilience_table",
    "RecoveryPoint",
    "recovery_sweep",
    "format_recovery_table",
]


@dataclass(frozen=True)
class ResiliencePoint:
    """One (algorithm, drop-rate) cell of a degradation sweep."""

    algorithm: str
    drop_rate: float
    completed: bool
    error: str | None
    total_time: float | None
    baseline_time: float
    messages_sent: int
    messages_dropped: int
    retransmissions: int
    hops_rerouted: int

    @property
    def slowdown(self) -> float | None:
        """Simulated-time ratio vs the fault-free baseline (None if failed)."""
        if not self.completed or self.baseline_time <= 0:
            return None
        return self.total_time / self.baseline_time

    @property
    def retransmission_overhead(self) -> float:
        """Resends per application message (0 on a clean run)."""
        if self.messages_sent == 0:
            return 0.0
        return self.retransmissions / self.messages_sent


def transient_scenario(
    *,
    seed: int = 0,
    drop_rate: float = 0.01,
    link: tuple[int, int] = (0, 1),
    window: tuple[float, float] = (5.0, 500.0),
) -> FaultPlan:
    """The canonical transient-fault scenario used by tests and benchmarks:
    one windowed link failure plus a global message-drop rate."""
    return (
        FaultPlan(seed=seed)
        .with_link_fault(link[0], link[1], start=window[0], end=window[1])
        .with_drop_rate(drop_rate)
    )


def degradation_sweep(
    algorithms: list[str],
    n: int,
    p: int,
    drop_rates: list[float],
    *,
    seed: int = 0,
    plan_seed: int = 0,
    plan: FaultPlan | None = None,
    t_s: float = 150.0,
    t_w: float = 3.0,
    port_model: PortModel = PortModel.ONE_PORT,
    max_events: int = 5_000_000,
) -> list[ResiliencePoint]:
    """Run each algorithm at each drop rate; returns one point per cell.

    ``plan`` optionally supplies extra faults (link failures, degradations)
    layered under every drop rate; the rate itself is applied on top with
    :meth:`~repro.sim.faults.FaultPlan.with_drop_rate`.  Runs that raise a
    :class:`~repro.errors.ReproError` subclass (timeout after bounded
    retries, deadlock, livelock, unreachable route) are recorded as
    failures, not propagated — degradation is the measurement.
    """
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n))
    B = rng.standard_normal((n, n))
    base_plan = plan if plan is not None else FaultPlan(seed=plan_seed)

    points: list[ResiliencePoint] = []
    for key in algorithms:
        algo = get_algorithm(key)
        clean_cfg = MachineConfig.create(
            p, t_s=t_s, t_w=t_w, port_model=port_model
        )
        baseline = algo.run(A, B, clean_cfg, verify=True).total_time
        for rate in drop_rates:
            cfg = clean_cfg.with_faults(base_plan.with_drop_rate(rate))
            try:
                run = algo.run(
                    A, B, cfg, verify=True,
                    context_factory=ReliableContext,
                    max_events=max_events,
                )
            except ReproError as exc:
                points.append(ResiliencePoint(
                    algorithm=key, drop_rate=rate, completed=False,
                    error=f"{type(exc).__name__}: {exc}",
                    total_time=None, baseline_time=baseline,
                    messages_sent=0, messages_dropped=0,
                    retransmissions=0, hops_rerouted=0,
                ))
                continue
            net = run.result.network
            points.append(ResiliencePoint(
                algorithm=key, drop_rate=rate, completed=True, error=None,
                total_time=run.total_time, baseline_time=baseline,
                messages_sent=run.result.total_messages(),
                messages_dropped=net.messages_dropped,
                retransmissions=net.retransmissions,
                hops_rerouted=net.hops_rerouted,
            ))
    return points


@dataclass(frozen=True)
class RecoveryPoint:
    """One (algorithm, recovery mode, kill time) cell of a recovery sweep."""

    algorithm: str
    mode: str
    kill_frac: float
    victims: tuple[int, ...]
    completed: bool
    exact: bool
    error: str | None
    total_time: float | None
    baseline_time: float
    epochs: int
    machine: str
    recovered: bool

    @property
    def overhead(self) -> float | None:
        """Time relative to the fault-free run of the same wrapper
        (None if the run did not complete)."""
        if not self.completed or self.baseline_time <= 0:
            return None
        return self.total_time / self.baseline_time


def recovery_sweep(
    algorithms: list[str],
    n: int,
    p: int,
    kill_fracs: list[float],
    modes: tuple[str, ...] = ("abft", "checkpoint", "none"),
    *,
    seed: int = 0,
    plan_seed: int = 1,
    victims: tuple[int, ...] | None = None,
    t_s: float = 150.0,
    t_w: float = 3.0,
    port_model: PortModel = PortModel.ONE_PORT,
    max_events: int = 20_000_000,
) -> list[RecoveryPoint]:
    """Kill ranks mid-run and measure whether/how each recovery mode
    produces the product.

    For every (algorithm, mode, kill fraction) cell the sweep runs the
    algorithm under :class:`~repro.algorithms.abft.ABFTMatmul` with one
    victim fail-stopping at ``kill_frac`` of the mode's fault-free time,
    and reports completion, exactness against ``A @ B``, recovery
    overhead (faulty time / fault-free time of the same wrapper), restart
    epochs and the machine that produced the result.  Matrices are
    integer-valued so a recovered product can be compared bit-exactly.

    Mode ``"none"`` is detect-only: the expected outcome is a recorded
    :class:`~repro.errors.RankFailedError`, not completion — the sweep
    records it as a non-completed cell whose ``error`` names that type.
    """
    rng = np.random.default_rng(seed)
    A = rng.integers(-4, 5, (n, n)).astype(float)
    B = rng.integers(-4, 5, (n, n)).astype(float)
    exact_C = A @ B
    vrng = np.random.default_rng(plan_seed)

    points: list[RecoveryPoint] = []
    for key in algorithms:
        algo = get_algorithm(key)
        cfg0 = MachineConfig.create(p, t_s=t_s, t_w=t_w, port_model=port_model)
        cell_victims = victims
        if cell_victims is None:
            cell_victims = (int(vrng.integers(1, p)),)
        for mode in modes:
            wrapper = ABFTMatmul(algo, mode=mode)
            baseline = wrapper.run(A, B, cfg0, max_events=max_events)
            base_time = baseline.total_time
            for frac in kill_fracs:
                plan = FaultPlan(seed=plan_seed)
                for v in cell_victims:
                    plan = plan.with_node_failure(v, at=base_time * frac)
                cfg = cfg0.with_faults(plan)
                try:
                    run = ABFTMatmul(algo, mode=mode).run(
                        A, B, cfg, max_events=max_events
                    )
                except ReproError as exc:
                    points.append(RecoveryPoint(
                        algorithm=key, mode=mode, kill_frac=frac,
                        victims=tuple(cell_victims), completed=False,
                        exact=False, error=f"{type(exc).__name__}: {exc}",
                        total_time=None, baseline_time=base_time,
                        epochs=0, machine="-", recovered=False,
                    ))
                    continue
                points.append(RecoveryPoint(
                    algorithm=key, mode=run.mode, kill_frac=frac,
                    victims=tuple(cell_victims), completed=True,
                    exact=bool(np.array_equal(run.C, exact_C)), error=None,
                    total_time=run.total_time, baseline_time=base_time,
                    epochs=run.epochs, machine=run.machine,
                    recovered=run.recovered,
                ))
    return points


def format_recovery_table(points: list[RecoveryPoint]) -> str:
    """Render a recovery sweep as a fixed-width text table."""
    lines = [
        f"{'algorithm':12s} {'mode':>16s} {'kill':>5s} {'victims':>9s} "
        f"{'status':>16s} {'exact':>5s} {'overhead':>9s} {'epochs':>6s} "
        f"{'machine':>7s}"
    ]
    for pt in points:
        vics = ",".join(str(v) for v in pt.victims)
        if pt.completed:
            lines.append(
                f"{pt.algorithm:12s} {pt.mode:>16s} {pt.kill_frac:5.2f} "
                f"{vics:>9s} {'ok':>16s} {str(pt.exact):>5s} "
                f"{pt.overhead:9.3f} {pt.epochs:6d} {pt.machine:>7s}"
            )
        else:
            short = (pt.error or "").split(":")[0]
            lines.append(
                f"{pt.algorithm:12s} {pt.mode:>16s} {pt.kill_frac:5.2f} "
                f"{vics:>9s} {short:>16s} {'-':>5s} {'-':>9s} {'-':>6s} "
                f"{'-':>7s}"
            )
    done = [pt for pt in points if pt.mode != "none"]
    ok = sum(1 for pt in done if pt.completed and pt.exact)
    lines.append(
        f"recovering modes exact-and-complete: {ok}/{len(done)} cells"
    )
    return "\n".join(lines)


def completion_rate(points: list[ResiliencePoint]) -> float:
    """Fraction of sweep cells that completed and verified."""
    if not points:
        return 0.0
    return sum(1 for pt in points if pt.completed) / len(points)


def format_resilience_table(points: list[ResiliencePoint]) -> str:
    """Render a sweep as a fixed-width text table."""
    lines = [
        f"{'algorithm':14s} {'drop':>6s} {'status':>8s} {'time':>12s} "
        f"{'slowdown':>9s} {'retrans':>8s} {'dropped':>8s} {'rerouted':>9s}"
    ]
    for pt in points:
        if pt.completed:
            lines.append(
                f"{pt.algorithm:14s} {pt.drop_rate:6.3f} {'ok':>8s} "
                f"{pt.total_time:12.1f} {pt.slowdown:9.3f} "
                f"{pt.retransmissions:8d} {pt.messages_dropped:8d} "
                f"{pt.hops_rerouted:9d}"
            )
        else:
            short = (pt.error or "").split(":")[0]
            lines.append(
                f"{pt.algorithm:14s} {pt.drop_rate:6.3f} {'FAIL':>8s} "
                f"{short:>12s} {'-':>9s} {'-':>8s} {'-':>8s} {'-':>9s}"
            )
    lines.append(
        f"completion rate: {100.0 * completion_rate(points):.1f}% "
        f"({sum(1 for pt in points if pt.completed)}/{len(points)} cells)"
    )
    return "\n".join(lines)
