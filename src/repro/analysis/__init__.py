"""The paper's Section 5 analysis: region maps and claim checks."""

from repro.analysis.regions import (
    FIGURE_ALGORITHMS,
    RegionMap,
    best_algorithm,
    candidates,
    region_map,
)
from repro.analysis.figures import (
    PANELS,
    figure13,
    figure14,
    render_ascii,
)
from repro.analysis.chaos import (
    STACKS,
    format_report,
    minimize_atoms,
    run_campaign,
    sample_atoms,
)
from repro.analysis.cache import (
    ResultCache,
    cached_coefficients,
    cached_figure,
    cached_region_map,
    cached_sweep,
    engine_fingerprint,
)
from repro.analysis.measure import (
    extract_coefficients,
    measure_comm_time,
    measured_vs_model,
)
from repro.analysis.scalability import (
    efficiency,
    isoefficiency_curve,
    isoefficiency_n,
)
from repro.analysis.sweep import crossover, sweep

__all__ = [
    "FIGURE_ALGORITHMS",
    "RegionMap",
    "best_algorithm",
    "candidates",
    "region_map",
    "PANELS",
    "figure13",
    "figure14",
    "render_ascii",
    "ResultCache",
    "cached_coefficients",
    "cached_figure",
    "cached_region_map",
    "cached_sweep",
    "engine_fingerprint",
    "extract_coefficients",
    "measure_comm_time",
    "measured_vs_model",
    "efficiency",
    "isoefficiency_curve",
    "isoefficiency_n",
    "crossover",
    "sweep",
    "STACKS",
    "sample_atoms",
    "run_campaign",
    "minimize_atoms",
    "format_report",
]
