"""Best-algorithm regions over the (n, p) parameter space.

This reimplements the "computer program" of Section 5: for every lattice
point of the (log₂ n, log₂ p) plane, evaluate the Table 2 communication
overheads of the candidate algorithms and record the minimizer.  Figures 13
and 14 of the paper are exactly such maps for a handful of ``(t_s, t_w)``
settings.

Following §5, the candidate set is Cannon, Ho-Johnsson-Edelman (multi-port
machines only — Table 2 has no one-port entry for it), Berntsen, 3DD and
3D All; Algorithm Simple is excluded for its space cost, DNS and 3D
All_Trans because 3DD / 3D All dominate them everywhere (we verify that
domination in the claims benchmark rather than assuming it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.parallel import run_grid
from repro.errors import ModelError
from repro.models.table2 import communication_overhead, resolve_overhead
from repro.sim.machine import PortModel

__all__ = [
    "FIGURE_ALGORITHMS",
    "candidates",
    "best_algorithm",
    "region_map",
    "RegionMap",
]

FIGURE_ALGORITHMS: tuple[str, ...] = ("cannon", "hje", "berntsen", "3dd", "3d_all")


def candidates(port: PortModel) -> tuple[str, ...]:
    """The §5 comparison set for a port model (drops HJE on one-port)."""
    if port is PortModel.ONE_PORT:
        return tuple(k for k in FIGURE_ALGORITHMS if k != "hje")
    return FIGURE_ALGORITHMS


def best_algorithm(
    n: float,
    p: float,
    port: PortModel,
    t_s: float,
    t_w: float,
    algorithms: tuple[str, ...] | None = None,
) -> tuple[str, float] | None:
    """The least-communication-overhead algorithm at ``(n, p)``.

    Returns ``(key, modelled_time)`` or ``None`` if no candidate is
    applicable (e.g. ``p > n³``).
    """
    algos = algorithms if algorithms is not None else candidates(port)
    best: tuple[str, float] | None = None
    for key in algos:
        t = communication_overhead(key, n, p, port, t_s, t_w)
        if t is None:
            continue
        if best is None or t < best[1]:
            best = (key, t)
    return best


@dataclass
class RegionMap:
    """Best-algorithm map over a (log₂ n, log₂ p) lattice.

    ``winners[i][j]`` is the winning key (or ``None``) for
    ``n = 2**log2_n[i]`` and ``p = 2**log2_p[j]``.
    """

    port: PortModel
    t_s: float
    t_w: float
    log2_n: list[float]
    log2_p: list[float]
    winners: list[list[str | None]] = field(default_factory=list)
    times: list[list[float]] = field(default_factory=list)

    def counts(self) -> dict[str, int]:
        """How many lattice points each algorithm wins."""
        out: dict[str, int] = {}
        for row in self.winners:
            for w in row:
                if w is not None:
                    out[w] = out.get(w, 0) + 1
        return out

    def winner_at(self, log2n: float, log2p: float) -> str | None:
        i = self.log2_n.index(log2n)
        j = self.log2_p.index(log2p)
        return self.winners[i][j]

    def fraction_won(self, key: str, *, where=None) -> float:
        """Fraction of applicable lattice points won by ``key``.

        ``where(n, p)`` optionally restricts the region.
        """
        total = 0
        won = 0
        for i, ln in enumerate(self.log2_n):
            for j, lp in enumerate(self.log2_p):
                w = self.winners[i][j]
                if w is None:
                    continue
                if where is not None and not where(2.0 ** ln, 2.0 ** lp):
                    continue
                total += 1
                won += w == key
        return won / total if total else 0.0


def _map_row(
    task: tuple[PortModel, float, float, float, tuple[float, ...], tuple[str, ...]],
) -> tuple[list[str | None], list[float]]:
    """One lattice row of a region map (module-level for run_grid workers).

    Each call resolves its candidates' Table 2 dispatch locally — cheap
    and cached per process — so the task tuple stays plain picklable data.
    """
    port, t_s, t_w, ln, log2_p, algos = task
    evaluators = [
        (key, fn)
        for key, fn in ((k, resolve_overhead(k, port)) for k in algos)
        if fn is not None
    ]
    n = 2.0 ** ln
    nan = float("nan")
    row_w: list[str | None] = []
    row_t: list[float] = []
    for lp in log2_p:
        p = 2.0 ** lp
        best_key: str | None = None
        best_t = nan
        for key, fn in evaluators:
            coeffs = fn(n, p)
            if coeffs is None:
                continue
            t = coeffs[0] * t_s + coeffs[1] * t_w
            if best_key is None or t < best_t:
                best_key, best_t = key, t
        row_w.append(best_key)
        row_t.append(best_t)
    return row_w, row_t


def region_map(
    port: PortModel,
    t_s: float,
    t_w: float,
    *,
    log2_n_max: int = 13,
    log2_p_max: int = 20,
    log2_n_min: int = 1,
    log2_p_min: int = 2,
    algorithms: tuple[str, ...] | None = None,
    jobs: int = 1,
) -> RegionMap:
    """Compute the best-algorithm map on an integer log₂ lattice.

    Defaults cover ``n`` up to ``2¹³ = 8192`` and ``p`` up to ``2²⁰ ≈ 10⁶``
    (the paper's figures use similar log-log axes; points with ``p > n³``
    have no applicable algorithm and map to ``None``).  ``jobs > 1``
    shards the rows over worker processes (:func:`run_grid`); the map is
    bit-identical for every ``jobs`` value.
    """
    if log2_n_min > log2_n_max or log2_p_min > log2_p_max:
        raise ModelError("empty lattice for region map")
    log2_n = [float(v) for v in range(log2_n_min, log2_n_max + 1)]
    log2_p = [float(v) for v in range(log2_p_min, log2_p_max + 1)]
    rm = RegionMap(port=port, t_s=t_s, t_w=t_w, log2_n=log2_n, log2_p=log2_p)
    algos = tuple(algorithms if algorithms is not None else candidates(port))
    tasks = [(port, t_s, t_w, ln, tuple(log2_p), algos) for ln in log2_n]
    for row_w, row_t in run_grid(_map_row, tasks, jobs=jobs):
        rm.winners.append(row_w)
        rm.times.append(row_t)
    return rm
