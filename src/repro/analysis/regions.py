"""Best-algorithm regions over the (n, p) parameter space.

This reimplements the "computer program" of Section 5: for every lattice
point of the (log₂ n, log₂ p) plane, evaluate the Table 2 communication
overheads of the candidate algorithms and record the minimizer.  Figures 13
and 14 of the paper are exactly such maps for a handful of ``(t_s, t_w)``
settings.

Following §5, the candidate set is Cannon, Ho-Johnsson-Edelman (multi-port
machines only — Table 2 has no one-port entry for it), Berntsen, 3DD and
3D All; Algorithm Simple is excluded for its space cost, DNS and 3D
All_Trans because 3DD / 3D All dominate them everywhere (we verify that
domination in the claims benchmark rather than assuming it).

The whole lattice is evaluated in one shot by the vectorized backend
(:mod:`repro.models.table2_vec`); ``backend="scalar"`` forces the original
per-point loop, which stays in place as the reference oracle the
equivalence tests compare against.

``backend="sim"`` replaces the Table 2 closed forms with the discrete-event
simulator itself: every candidate is *run* (``timing_only``, ``t_c = 0`` so
only communication is timed, exactly what Table 2 models) and the winner is
the smallest simulated makespan.  The superstep closed form makes this
affordable at machine sizes the event path cannot touch — a Cannon point at
``p = 2¹⁵`` batches thousands of rounds into one algebra step — but 3D
collectives still walk the event path, so simulation-backed maps are meant
for *restricted* lattices (a band of rows around a disputed boundary), not
the full default figure lattice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.parallel import run_grid
from repro.errors import ModelError
from repro.models.table2 import communication_overhead, resolve_overhead
from repro.models.table2_vec import winner_grids
from repro.sim.machine import PortModel

__all__ = [
    "FIGURE_ALGORITHMS",
    "candidates",
    "best_algorithm",
    "region_map",
    "RegionMap",
]

FIGURE_ALGORITHMS: tuple[str, ...] = ("cannon", "hje", "berntsen", "3dd", "3d_all")


def candidates(port: PortModel) -> tuple[str, ...]:
    """The §5 comparison set for a port model (drops HJE on one-port)."""
    if port is PortModel.ONE_PORT:
        return tuple(k for k in FIGURE_ALGORITHMS if k != "hje")
    return FIGURE_ALGORITHMS


def best_algorithm(
    n: float,
    p: float,
    port: PortModel,
    t_s: float,
    t_w: float,
    algorithms: tuple[str, ...] | None = None,
) -> tuple[str, float] | None:
    """The least-communication-overhead algorithm at ``(n, p)``.

    Returns ``(key, modelled_time)`` or ``None`` if no candidate is
    applicable (e.g. ``p > n³``).  This is the scalar per-point query;
    whole-lattice maps go through :func:`region_map`.
    """
    algos = algorithms if algorithms is not None else candidates(port)
    best: tuple[str, float] | None = None
    for key in algos:
        t = communication_overhead(key, n, p, port, t_s, t_w)
        if t is None:
            continue
        if best is None or t < best[1]:
            best = (key, t)
    return best


@dataclass(eq=False)
class RegionMap:
    """Best-algorithm map over a (log₂ n, log₂ p) lattice, array-backed.

    ``winner_idx[i, j]`` indexes ``algorithms`` (``-1`` = no algorithm
    applicable) and ``times[i, j]`` is the winning modelled time (``NaN``
    at holes) for ``n = 2**log2_n[i]`` and ``p = 2**log2_p[j]``.  The
    :attr:`winners` view renders the same data as nested lists of keys
    (``None`` at holes) for presentation code.
    """

    port: PortModel
    t_s: float
    t_w: float
    log2_n: list[float]
    log2_p: list[float]
    algorithms: tuple[str, ...]
    winner_idx: np.ndarray
    times: np.ndarray
    _winners: list[list[str | None]] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def winners(self) -> list[list[str | None]]:
        """Winning keys as nested lists (``None`` where nothing applies)."""
        if self._winners is None:
            lut = list(self.algorithms)
            self._winners = [
                [None if k < 0 else lut[k] for k in row]
                for row in self.winner_idx
            ]
        return self._winners

    def counts(self) -> dict[str, int]:
        """How many lattice points each algorithm wins (vectorized)."""
        won = self.winner_idx[self.winner_idx >= 0]
        tally = np.bincount(won, minlength=len(self.algorithms))
        return {
            key: int(c) for key, c in zip(self.algorithms, tally) if c
        }

    def winner_at(self, log2n: float, log2p: float) -> str | None:
        """The winning key at one lattice point (``None`` at a hole).

        Raises :class:`~repro.errors.ModelError` for off-lattice
        coordinates, naming the coordinate and the lattice bounds.
        """
        try:
            i = self.log2_n.index(log2n)
            j = self.log2_p.index(log2p)
        except ValueError:
            raise ModelError(
                f"point (log2_n={log2n:g}, log2_p={log2p:g}) is not on the "
                f"region-map lattice: log2_n spans [{self.log2_n[0]:g}, "
                f"{self.log2_n[-1]:g}] and log2_p spans [{self.log2_p[0]:g}, "
                f"{self.log2_p[-1]:g}] in unit steps"
            ) from None
        k = int(self.winner_idx[i, j])
        return None if k < 0 else self.algorithms[k]

    def fraction_won(self, key: str, *, where=None) -> float:
        """Fraction of applicable lattice points won by ``key``.

        ``where(n, p)`` optionally restricts the region.  The unrestricted
        tally is a pure array reduction; a ``where`` predicate is evaluated
        per lattice point (it is an arbitrary callable).
        """
        applicable = self.winner_idx >= 0
        if where is not None:
            selected = np.array(
                [
                    [bool(where(2.0 ** ln, 2.0 ** lp)) for lp in self.log2_p]
                    for ln in self.log2_n
                ]
            )
            applicable = applicable & selected
        total = int(applicable.sum())
        if not total:
            return 0.0
        if key not in self.algorithms:
            return 0.0
        k = self.algorithms.index(key)
        won = int(((self.winner_idx == k) & applicable).sum())
        return won / total


def _map_row(
    task: tuple[PortModel, float, float, float, tuple[float, ...], tuple[str, ...]],
) -> tuple[list[str | None], list[float]]:
    """One lattice row of a region map — the scalar reference oracle.

    Kept as the ``backend="scalar"`` path (and ``run_grid`` worker): the
    vectorized backend is required to reproduce this loop bit for bit.
    """
    port, t_s, t_w, ln, log2_p, algos = task
    evaluators = [
        (key, fn)
        for key, fn in ((k, resolve_overhead(k, port)) for k in algos)
        if fn is not None
    ]
    n = 2.0 ** ln
    nan = float("nan")
    row_w: list[str | None] = []
    row_t: list[float] = []
    for lp in log2_p:
        p = 2.0 ** lp
        best_key: str | None = None
        best_t = nan
        for key, fn in evaluators:
            coeffs = fn(n, p)
            if coeffs is None:
                continue
            t = coeffs[0] * t_s + coeffs[1] * t_w
            if best_key is None or t < best_t:
                best_key, best_t = key, t
        row_w.append(best_key)
        row_t.append(best_t)
    return row_w, row_t


#: algorithms whose phases the superstep closed form batches (uniform
#: shift rounds); everything else simulates round by round on the event
#: path.  Only a chunk-costing hint — never affects results.
_SUPERSTEP_BATCHED = frozenset({"cannon", "dns_cannon", "3dd_cannon"})

#: 3D-family algorithms whose collective phases (allgather, all-to-all,
#: reduce-scatter, broadcast, reduce) advance in closed form on fault-free
#: uniform machines.  On multi-port every communication phase batches; on
#: one-port the fused overlapped phase (two collectives interleaving on one
#: send port) still runs the event path, so roughly one of three
#: communication phases keeps its per-message cost.
_COLLECTIVE_BATCHED = frozenset({"3d_all", "3d_all_rect", "3dd", "dns"})


def _sim_row(
    task: tuple[PortModel, float, float, float, tuple[float, ...], tuple[str, ...]],
) -> tuple[list[str | None], list[float]]:
    """One lattice row of a simulation-backed region map.

    Same task/result shape as :func:`_map_row`, but each candidate is
    timed by the engine (``timing_only=True``, ``t_c = 0`` so the
    makespan is pure communication, matching what Table 2 models) instead
    of evaluated in closed form.  Inapplicable candidates are skipped;
    points where nothing applies stay holes.
    """
    from repro.algorithms import get_algorithm
    from repro.sim.machine import MachineConfig

    port, t_s, t_w, ln, log2_p, algos = task
    n = int(round(2.0 ** ln))
    Z = np.zeros((n, n))
    nan = float("nan")
    row_w: list[str | None] = []
    row_t: list[float] = []
    for lp in log2_p:
        p = int(round(2.0 ** lp))
        best_key: str | None = None
        best_t = nan
        for key in algos:
            algo = get_algorithm(key)
            if not algo.applicable(n, p):
                continue
            run = algo.run(
                Z, Z,
                MachineConfig.create(
                    p, t_s=t_s, t_w=t_w, t_c=0.0, port_model=port
                ),
                timing_only=True,
            )
            t = run.result.total_time
            if best_key is None or t < best_t:
                best_key, best_t = key, t
        row_w.append(best_key)
        row_t.append(best_t)
    return row_w, row_t


def _sim_row_weight(
    ln: float,
    log2_p: tuple[float, ...],
    algos: tuple[str, ...],
    port: PortModel = PortModel.ONE_PORT,
) -> float:
    """Estimated cost of one simulated lattice row, for chunk planning.

    Event-path collectives cost roughly ``p·log₂p`` engine events per
    point; superstep- and collective-batched algorithms collapse their
    rounds and scale like ``p`` (on one-port the 3D family keeps roughly
    one event-path phase in three — see :data:`_COLLECTIVE_BATCHED`).
    Rows near the top of the ``p`` range are therefore orders of
    magnitude heavier than the rest — exactly the skew
    :func:`~repro.analysis.parallel.plan_chunks` weights exist for.
    """
    from repro.algorithms import get_algorithm

    n = int(round(2.0 ** ln))
    weight = 0.0
    for lp in log2_p:
        p = int(round(2.0 ** lp))
        for key in algos:
            if not get_algorithm(key).applicable(n, p):
                continue
            if key in _SUPERSTEP_BATCHED:
                weight += p
            elif key in _COLLECTIVE_BATCHED:
                if port is PortModel.MULTI_PORT:
                    weight += p
                else:
                    weight += p * max(1.0, lp) / 3.0
            else:
                weight += p * max(1.0, lp)
    return weight or 1.0


def region_map(
    port: PortModel,
    t_s: float,
    t_w: float,
    *,
    log2_n_max: int = 13,
    log2_p_max: int = 20,
    log2_n_min: int = 1,
    log2_p_min: int = 2,
    algorithms: tuple[str, ...] | None = None,
    jobs: int = 1,
    backend: str = "vector",
) -> RegionMap:
    """Compute the best-algorithm map on an integer log₂ lattice.

    Defaults cover ``n`` up to ``2¹³ = 8192`` and ``p`` up to ``2²⁰ ≈ 10⁶``
    (the paper's figures use similar log-log axes; points with ``p > n³``
    have no applicable algorithm and map to ``None``).

    ``backend="vector"`` (default) evaluates the whole lattice in one shot
    through :func:`repro.models.table2_vec.winner_grids`;
    ``backend="scalar"`` runs the original per-point loop, sharding rows
    over ``jobs`` worker processes (:func:`run_grid`).  Both backends —
    and every ``jobs`` value — produce bit-identical maps (``jobs`` is
    accepted but irrelevant for the vectorized backend, which outruns any
    process pool on these lattice sizes).

    ``backend="sim"`` times each candidate in the discrete-event engine
    instead of the Table 2 closed forms (see :func:`_sim_row`); rows are
    sharded with cost weights (:func:`_sim_row_weight`) because simulated
    rows get heavier with ``p``.  Pass a *restricted* lattice — the
    default figure lattice is model-sized, not simulation-sized.
    """
    if log2_n_min > log2_n_max or log2_p_min > log2_p_max:
        raise ModelError("empty lattice for region map")
    if backend not in ("vector", "scalar", "sim"):
        raise ModelError(f"unknown region-map backend {backend!r}")
    log2_n = [float(v) for v in range(log2_n_min, log2_n_max + 1)]
    log2_p = [float(v) for v in range(log2_p_min, log2_p_max + 1)]
    algos = tuple(algorithms if algorithms is not None else candidates(port))
    if backend == "vector":
        n_values = [2.0 ** ln for ln in log2_n]
        p_values = [2.0 ** lp for lp in log2_p]
        winner_idx, times = winner_grids(
            algos, n_values, p_values, port, t_s, t_w
        )
    else:
        tasks = [(port, t_s, t_w, ln, tuple(log2_p), algos) for ln in log2_n]
        worker = _map_row
        weights = None
        if backend == "sim":
            worker = _sim_row
            weights = [
                _sim_row_weight(ln, tuple(log2_p), algos, port)
                for ln in log2_n
            ]
        index = {key: k for k, key in enumerate(algos)}
        rows_w: list[list[int]] = []
        rows_t: list[list[float]] = []
        for row_w, row_t in run_grid(worker, tasks, jobs=jobs, weights=weights):
            rows_w.append([-1 if w is None else index[w] for w in row_w])
            rows_t.append(row_t)
        winner_idx = np.array(rows_w, dtype=np.int16)
        times = np.array(rows_t)
    return RegionMap(
        port=port,
        t_s=t_s,
        t_w=t_w,
        log2_n=log2_n,
        log2_p=log2_p,
        algorithms=algos,
        winner_idx=winner_idx,
        times=times,
    )
