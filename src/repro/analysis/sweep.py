"""Parameter sweeps and crossover finding over the analytic models.

Utilities behind the "where does algorithm X overtake Y?" questions the
paper answers with its region figures: 1-D sweeps along ``n``, ``p`` or
``t_s`` with bisection for the crossover location.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.errors import ModelError
from repro.models.table2 import communication_overhead
from repro.sim.machine import PortModel

__all__ = ["sweep", "crossover", "SweepPoint"]


@dataclass(frozen=True)
class SweepPoint:
    """One sample of a sweep: the variable value and per-algorithm times."""

    value: float
    times: dict[str, float | None]

    def best(self) -> str | None:
        valid = {k: v for k, v in self.times.items() if v is not None}
        if not valid:
            return None
        return min(valid, key=valid.get)


def sweep(
    algorithms: tuple[str, ...],
    variable: str,
    values: list[float],
    *,
    n: float = 256,
    p: float = 64,
    port: PortModel = PortModel.ONE_PORT,
    t_s: float = 150.0,
    t_w: float = 3.0,
) -> list[SweepPoint]:
    """Evaluate the Table 2 overheads along one axis.

    ``variable`` is ``"n"``, ``"p"``, ``"t_s"`` or ``"t_w"``; the other
    parameters stay fixed at the keyword values.
    """
    if variable not in ("n", "p", "t_s", "t_w"):
        raise ModelError(f"unknown sweep variable {variable!r}")
    out = []
    for value in values:
        kwargs = {"n": n, "p": p, "t_s": t_s, "t_w": t_w}
        kwargs[variable] = value
        times = {
            key: communication_overhead(
                key, kwargs["n"], kwargs["p"], port, kwargs["t_s"], kwargs["t_w"]
            )
            for key in algorithms
        }
        out.append(SweepPoint(value=value, times=times))
    return out


def crossover(
    key_a: str,
    key_b: str,
    variable: str,
    lo: float,
    hi: float,
    *,
    n: float = 256,
    p: float = 64,
    port: PortModel = PortModel.ONE_PORT,
    t_s: float = 150.0,
    t_w: float = 3.0,
    iterations: int = 60,
) -> float | None:
    """The ``variable`` value where algorithms A and B trade places.

    Bisects ``[lo, hi]``; returns ``None`` when the sign of
    ``time_A - time_B`` does not change over the interval (no crossover)
    or either model is inapplicable at an endpoint.
    """

    def diff(value: float) -> float | None:
        kwargs = {"n": n, "p": p, "t_s": t_s, "t_w": t_w}
        kwargs[variable] = value
        ta = communication_overhead(
            key_a, kwargs["n"], kwargs["p"], port, kwargs["t_s"], kwargs["t_w"]
        )
        tb = communication_overhead(
            key_b, kwargs["n"], kwargs["p"], port, kwargs["t_s"], kwargs["t_w"]
        )
        if ta is None or tb is None:
            return None
        return ta - tb

    d_lo, d_hi = diff(lo), diff(hi)
    if d_lo is None or d_hi is None or d_lo * d_hi > 0:
        return None
    for _ in range(iterations):
        mid = (lo + hi) / 2
        d_mid = diff(mid)
        if d_mid is None:
            return None
        if d_lo * d_mid <= 0:
            hi = mid
            d_hi = d_mid
        else:
            lo = mid
            d_lo = d_mid
    return (lo + hi) / 2
