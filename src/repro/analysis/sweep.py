"""Parameter sweeps and crossover finding over the analytic models.

Utilities behind the "where does algorithm X overtake Y?" questions the
paper answers with its region figures: 1-D sweeps along ``n``, ``p`` or
``t_s``/``t_w`` with bisection for the crossover location.

Sweeps along ``n`` or ``p`` evaluate the whole value axis in one shot
through the vectorized backend (:mod:`repro.models.table2_vec`); sweeps
along ``t_s``/``t_w`` resolve the Table 2 coefficients once per algorithm
(they do not vary along those axes) and expand the linear form per value.
Both produce results bit-identical to the original per-point loop, which
remains available as ``backend="scalar"`` for the equivalence tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.models.params import check_np
from repro.models.table2 import communication_overhead, resolve_overhead
from repro.models.table2_vec import overhead_grid
from repro.sim.machine import PortModel

__all__ = ["sweep", "crossover", "SweepPoint"]

_VARIABLES = ("n", "p", "t_s", "t_w")


def _with_variable(
    variable: str, value: float, n: float, p: float, t_s: float, t_w: float
) -> tuple[float, float, float, float]:
    """The ``(n, p, t_s, t_w)`` tuple with ``variable`` overridden.

    The single source of truth for "sweep one axis, pin the rest" —
    :func:`sweep` and :func:`crossover` both build their model calls
    through it.
    """
    if variable not in _VARIABLES:
        raise ModelError(f"unknown sweep variable {variable!r}")
    params = {"n": n, "p": p, "t_s": t_s, "t_w": t_w}
    params[variable] = value
    return params["n"], params["p"], params["t_s"], params["t_w"]


@dataclass(frozen=True)
class SweepPoint:
    """One sample of a sweep: the variable value and per-algorithm times."""

    value: float
    times: dict[str, float | None]

    def best(self) -> str | None:
        """The least-time applicable algorithm at this sample (or None)."""
        valid = {k: v for k, v in self.times.items() if v is not None}
        if not valid:
            return None
        return min(valid, key=valid.get)


def _axis_times(
    algorithms: tuple[str, ...],
    variable: str,
    values: list[float],
    n: float,
    p: float,
    port: PortModel,
    t_s: float,
    t_w: float,
) -> dict[str, list[float | None]]:
    """Per-algorithm time columns along the swept axis (vectorized)."""
    out: dict[str, list[float | None]] = {}
    if variable in ("n", "p"):
        n_values = values if variable == "n" else [n]
        p_values = values if variable == "p" else [p]
        for vn in n_values:
            for vp in p_values:
                check_np(vn, vp)
        for key in algorithms:
            grid = overhead_grid(key, n_values, p_values, port, t_s, t_w)
            if grid is None:
                out[key] = [None] * len(values)
                continue
            column = grid[:, 0] if variable == "n" else grid[0, :]
            out[key] = [
                None if np.isnan(t) else float(t) for t in column
            ]
    else:
        # t_s / t_w axes: the (a, b) pair is constant along the sweep, so
        # resolve it once and expand the linear form a·t_s + b·t_w.
        check_np(n, p)
        for key in algorithms:
            fn = resolve_overhead(key, port)
            coeffs = fn(n, p) if fn is not None else None
            if coeffs is None:
                out[key] = [None] * len(values)
                continue
            a, b = coeffs
            if variable == "t_s":
                out[key] = [a * v + b * t_w for v in values]
            else:
                out[key] = [a * t_s + b * v for v in values]
    return out


def sweep(
    algorithms: tuple[str, ...],
    variable: str,
    values: list[float],
    *,
    n: float = 256,
    p: float = 64,
    port: PortModel = PortModel.ONE_PORT,
    t_s: float = 150.0,
    t_w: float = 3.0,
    jobs: int = 1,
    backend: str = "vector",
) -> list[SweepPoint]:
    """Evaluate the Table 2 overheads along one axis.

    ``variable`` is ``"n"``, ``"p"``, ``"t_s"`` or ``"t_w"``; the other
    parameters stay fixed at the keyword values.  The default backend
    evaluates the whole axis through the vectorized grid evaluators;
    ``backend="scalar"`` runs the original per-point loop.  Both are
    bit-identical, as is the result for every ``jobs`` value (the
    parameter is kept for interface stability; these 1-D sweeps are far
    cheaper than any process-pool dispatch).
    """
    if variable not in _VARIABLES:
        raise ModelError(f"unknown sweep variable {variable!r}")
    if backend not in ("vector", "scalar"):
        raise ModelError(f"unknown sweep backend {backend!r}")
    algorithms = tuple(algorithms)
    if backend == "scalar":
        points = []
        for value in values:
            vn, vp, vt_s, vt_w = _with_variable(variable, value, n, p, t_s, t_w)
            times = {
                key: communication_overhead(key, vn, vp, port, vt_s, vt_w)
                for key in algorithms
            }
            points.append(SweepPoint(value=value, times=times))
        return points
    columns = _axis_times(algorithms, variable, values, n, p, port, t_s, t_w)
    return [
        SweepPoint(
            value=value,
            times={key: columns[key][i] for key in algorithms},
        )
        for i, value in enumerate(values)
    ]


def crossover(
    key_a: str,
    key_b: str,
    variable: str,
    lo: float,
    hi: float,
    *,
    n: float = 256,
    p: float = 64,
    port: PortModel = PortModel.ONE_PORT,
    t_s: float = 150.0,
    t_w: float = 3.0,
    iterations: int = 60,
) -> float | None:
    """The ``variable`` value where algorithms A and B trade places.

    Bisects ``[lo, hi]``; returns ``None`` when the sign of
    ``time_A - time_B`` does not change over the interval (no crossover)
    or either model is inapplicable at an endpoint.  Each point is
    evaluated exactly once: the endpoint differences are computed up
    front, the surviving endpoint's value is reused as the bracket
    shrinks, and the Table 2 dispatch for both algorithms is resolved
    once for the whole bisection rather than per midpoint.
    """
    if variable not in _VARIABLES:
        raise ModelError(f"unknown sweep variable {variable!r}")
    fn_a = resolve_overhead(key_a, port)
    fn_b = resolve_overhead(key_b, port)

    def diff(value: float) -> float | None:
        vn, vp, vt_s, vt_w = _with_variable(variable, value, n, p, t_s, t_w)
        check_np(vn, vp)
        ca = fn_a(vn, vp) if fn_a is not None else None
        cb = fn_b(vn, vp) if fn_b is not None else None
        if ca is None or cb is None:
            return None
        return (ca[0] * vt_s + ca[1] * vt_w) - (cb[0] * vt_s + cb[1] * vt_w)

    d_lo, d_hi = diff(lo), diff(hi)
    if d_lo is None or d_hi is None or d_lo * d_hi > 0:
        return None
    for _ in range(iterations):
        mid = (lo + hi) / 2
        d_mid = diff(mid)
        if d_mid is None:
            return None
        if d_lo * d_mid <= 0:
            hi = mid
        else:
            lo = mid
            d_lo = d_mid
    return (lo + hi) / 2
