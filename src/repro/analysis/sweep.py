"""Parameter sweeps and crossover finding over the analytic models.

Utilities behind the "where does algorithm X overtake Y?" questions the
paper answers with its region figures: 1-D sweeps along ``n``, ``p`` or
``t_s``/``t_w`` with bisection for the crossover location.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.analysis.parallel import run_grid
from repro.errors import ModelError
from repro.models.table2 import communication_overhead
from repro.sim.machine import PortModel

__all__ = ["sweep", "crossover", "SweepPoint"]

_VARIABLES = ("n", "p", "t_s", "t_w")


def _with_variable(
    variable: str, value: float, n: float, p: float, t_s: float, t_w: float
) -> tuple[float, float, float, float]:
    """The ``(n, p, t_s, t_w)`` tuple with ``variable`` overridden.

    The single source of truth for "sweep one axis, pin the rest" —
    :func:`sweep` and :func:`crossover` both build their model calls
    through it.
    """
    if variable not in _VARIABLES:
        raise ModelError(f"unknown sweep variable {variable!r}")
    params = {"n": n, "p": p, "t_s": t_s, "t_w": t_w}
    params[variable] = value
    return params["n"], params["p"], params["t_s"], params["t_w"]


@dataclass(frozen=True)
class SweepPoint:
    """One sample of a sweep: the variable value and per-algorithm times."""

    value: float
    times: dict[str, float | None]

    def best(self) -> str | None:
        valid = {k: v for k, v in self.times.items() if v is not None}
        if not valid:
            return None
        return min(valid, key=valid.get)


def _sweep_cell(
    task: tuple[tuple[str, ...], str, float, float, float, PortModel, float, float],
) -> SweepPoint:
    """Evaluate one sweep sample (module-level for run_grid workers)."""
    algorithms, variable, value, n, p, port, t_s, t_w = task
    vn, vp, vt_s, vt_w = _with_variable(variable, value, n, p, t_s, t_w)
    times = {
        key: communication_overhead(key, vn, vp, port, vt_s, vt_w)
        for key in algorithms
    }
    return SweepPoint(value=value, times=times)


def sweep(
    algorithms: tuple[str, ...],
    variable: str,
    values: list[float],
    *,
    n: float = 256,
    p: float = 64,
    port: PortModel = PortModel.ONE_PORT,
    t_s: float = 150.0,
    t_w: float = 3.0,
    jobs: int = 1,
) -> list[SweepPoint]:
    """Evaluate the Table 2 overheads along one axis.

    ``variable`` is ``"n"``, ``"p"``, ``"t_s"`` or ``"t_w"``; the other
    parameters stay fixed at the keyword values.  ``jobs > 1`` shards the
    samples over worker processes (:func:`run_grid`) with results
    identical to the sequential sweep.
    """
    if variable not in _VARIABLES:
        raise ModelError(f"unknown sweep variable {variable!r}")
    tasks = [
        (tuple(algorithms), variable, value, n, p, port, t_s, t_w)
        for value in values
    ]
    return run_grid(_sweep_cell, tasks, jobs=jobs)


def crossover(
    key_a: str,
    key_b: str,
    variable: str,
    lo: float,
    hi: float,
    *,
    n: float = 256,
    p: float = 64,
    port: PortModel = PortModel.ONE_PORT,
    t_s: float = 150.0,
    t_w: float = 3.0,
    iterations: int = 60,
) -> float | None:
    """The ``variable`` value where algorithms A and B trade places.

    Bisects ``[lo, hi]``; returns ``None`` when the sign of
    ``time_A - time_B`` does not change over the interval (no crossover)
    or either model is inapplicable at an endpoint.  Each point is
    evaluated exactly once: the endpoint differences are computed up
    front and the surviving endpoint's value is reused as the bracket
    shrinks.
    """

    def diff(value: float) -> float | None:
        vn, vp, vt_s, vt_w = _with_variable(variable, value, n, p, t_s, t_w)
        ta = communication_overhead(key_a, vn, vp, port, vt_s, vt_w)
        tb = communication_overhead(key_b, vn, vp, port, vt_s, vt_w)
        if ta is None or tb is None:
            return None
        return ta - tb

    d_lo, d_hi = diff(lo), diff(hi)
    if d_lo is None or d_hi is None or d_lo * d_hi > 0:
        return None
    for _ in range(iterations):
        mid = (lo + hi) / 2
        d_mid = diff(mid)
        if d_mid is None:
            return None
        if d_lo * d_mid <= 0:
            hi = mid
        else:
            lo = mid
            d_lo = d_mid
    return (lo + hi) / 2
