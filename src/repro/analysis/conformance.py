"""Differential conformance harness for the engine's execution paths.

The engine promises that three ways of running the same program are
*bit-identical*: the event path (``superstep=False``), the closed-form
superstep path (``superstep=True``), and the calendar-queue event backend
(``event_queue="calendar"``).  This module turns that promise into a
seeded, shrinkable differential suite:

* :func:`sample_cases` draws a deterministic case list over
  (algorithm × p × port model × routing × machine parameters × fault
  plan × scenario severity), guaranteeing every registered algorithm
  appears;
* :func:`diff_case` runs one case through all three paths and returns
  ``None`` on agreement or a human-readable mismatch label (runs that
  raise are compared by error, not skipped — both paths must fail
  identically);
* :func:`shrink_case` delta-debugs a mismatching case with
  :func:`~repro.analysis.chaos.minimize_atoms` (dropping fault/scenario
  atoms) plus an axis-reset sweep (plainer routing/port/parameters), so
  the reproducer that gets printed is locally minimal;
* :func:`run_suite` drives the whole sweep and formats reproducers.

Faulty and degraded cases run both "fast" configurations through the
ordinary event machinery (faults and scenarios disable the closed form
by design) — there they pin the calendar backend and the
fallback-equivalence contract instead.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Any, Callable

import numpy as np

from repro.algorithms import ALGORITHMS, get_algorithm
from repro.analysis.chaos import minimize_atoms, plan_from_atoms, sample_atoms
from repro.errors import ReproError
from repro.sim.machine import MachineConfig, PortModel, RoutingMode
from repro.sim.scenario import random_heterogeneous

__all__ = [
    "Case",
    "sample_cases",
    "diff_case",
    "shrink_case",
    "reproducer",
    "run_suite",
]

#: machine parameter sets; deliberately includes non-dyadic values (the
#: engine's aggregates fold in an order-independent way, so even 10/3
#: must agree to the last bit)
PARAM_SETS: tuple[tuple[float, float, float], ...] = (
    (7.0, 3.0, 0.5),
    (150.0, 3.0, 0.25),
    (10.0 / 3.0, 0.7, 0.125),
    (1.0, 2.0, 0.0),
)

#: processor counts sampled per algorithm: the smallest two applicable
#: machines keep the sweep fast while still crossing the p=8/p=64 golden
#: coverage with fresh parameters
_P_LADDER = (4, 8, 16, 32, 64, 128, 256, 512)
_N_LADDER = (4, 6, 8, 9, 12, 16, 24, 27, 32, 48, 64)

#: the 3D family plus DNS: every algorithm whose communication is dominated
#: by collective phases (allgather / reduce-scatter / broadcast / reduce
#: rounds) rather than pairwise shifts.  ``sample_cases`` oversamples these
#: once full-registry coverage is secured, because the collective closed
#: form (``sim/superstep.py``) has far more schedule surface to pin down
#: than the shift recurrence.
_COLLECTIVE_HEAVY: tuple[str, ...] = (
    "3d_all", "3d_all_rect", "3d_all_trans", "3dd", "dns",
    "3dd_cannon", "dns_cannon",
)


@dataclass(frozen=True)
class Case:
    """One differential configuration (plain data, reprs as a reproducer)."""

    algorithm: str
    n: int
    p: int
    port: str       # "one-port" | "multi-port"
    routing: str    # "store-and-forward" | "cut-through"
    t_s: float
    t_w: float
    t_c: float
    #: fault atoms (``repro.analysis.chaos`` vocabulary) plus at most one
    #: ``{"kind": "scenario", "severity": ..., "seed": ...}`` atom
    atoms: tuple = ()
    data_seed: int = 0


def _applicable_machines(key: str) -> list[tuple[int, int]]:
    """(n, p) pairs for ``key``: the smallest applicable n per ladder p."""
    algo = ALGORITHMS[key]
    out = []
    for p in _P_LADDER:
        n = next((n for n in _N_LADDER if algo.applicable(n, p)), None)
        if n is not None:
            out.append((n, p))
    return out


def sample_cases(
    seed: int = 2026,
    count: int = 52,
    algorithms: tuple[str, ...] | None = None,
) -> list[Case]:
    """A deterministic case list covering every requested algorithm.

    The first two passes cycle through the algorithm list, so
    ``count >= 2 * len(algorithms)`` guarantees full registry coverage
    with both healthy and faulty flavors; every case after that
    oversamples the collective-heavy 3D family (largest applicable
    machines, alternating fault-free with chaos flavors) where the
    closed-form collective path has the most surface.  Pure function of
    ``(seed, count, algorithms)``.
    """
    algos = tuple(algorithms if algorithms is not None else sorted(ALGORITHMS))
    heavy = tuple(k for k in _COLLECTIVE_HEAVY if k in algos) or algos
    machines = {key: _applicable_machines(key) for key in algos}
    base = 2 * len(algos)
    cases: list[Case] = []
    for i in range(count):
        if i < base:
            key = algos[i % len(algos)]
            flavor = (i // len(algos)) % 4  # healthy, faulty, degraded, both
            pool = machines[key][:2] or machines[key]
        else:
            j = i - base
            key = heavy[j % len(heavy)]
            # Every other oversampled case stays fault-free, so the
            # collective closed form itself (not just its fallback) is
            # what gets differentially pinned; the rest walk the chaos
            # flavors on the same large machines.
            flavor = 0 if j % 2 == 0 else 1 + (j // 2) % 3
            pool = machines[key][-2:] or machines[key]
        rng = np.random.default_rng([seed, i])
        if not pool:
            raise ReproError(f"no applicable machine for {key!r}")
        n, p = pool[int(rng.integers(len(pool)))]
        t_s, t_w, t_c = PARAM_SETS[int(rng.integers(len(PARAM_SETS)))]
        atoms: list[dict[str, Any]] = []
        if flavor in (1, 3):
            atoms.extend(sample_atoms(rng, p, 5_000.0))
        if flavor in (2, 3):
            atoms.append({
                "kind": "scenario",
                "severity": round(0.5 + 1.5 * float(rng.random()), 3),
                "seed": int(rng.integers(1 << 16)),
            })
        cases.append(Case(
            algorithm=key, n=n, p=p,
            port="multi-port" if rng.random() < 0.5 else "one-port",
            routing=(
                "cut-through" if rng.random() < 0.3 else "store-and-forward"
            ),
            t_s=t_s, t_w=t_w, t_c=t_c,
            atoms=tuple(atoms), data_seed=i,
        ))
    return cases


def _build_config(case: Case) -> MachineConfig:
    fault_atoms = [a for a in case.atoms if a["kind"] != "scenario"]
    scen_atoms = [a for a in case.atoms if a["kind"] == "scenario"]
    faults = (
        plan_from_atoms(fault_atoms, seed=case.data_seed)
        if fault_atoms else None
    )
    scenario = (
        random_heterogeneous(
            case.p, scen_atoms[0]["severity"], seed=scen_atoms[0]["seed"]
        )
        if scen_atoms else None
    )
    return MachineConfig.create(
        case.p,
        t_s=case.t_s, t_w=case.t_w, t_c=case.t_c,
        port_model=(
            PortModel.MULTI_PORT if case.port == "multi-port"
            else PortModel.ONE_PORT
        ),
        routing=(
            RoutingMode.CUT_THROUGH if case.routing == "cut-through"
            else RoutingMode.STORE_AND_FORWARD
        ),
        faults=faults,
        scenario=scenario,
    )


def _outcome(case: Case, *, superstep: bool, event_queue: str) -> dict:
    """One path's observables — or its error, which must also agree."""
    rng = np.random.default_rng([case.data_seed, 99])
    A = rng.standard_normal((case.n, case.n))
    B = rng.standard_normal((case.n, case.n))
    try:
        run = get_algorithm(case.algorithm).run(
            A, B, _build_config(case),
            superstep=superstep, event_queue=event_queue,
            max_virtual_time=None,
        )
    except Exception as exc:  # noqa: BLE001 — failures are outcomes too
        # Message uids ("tag=1#69573") are internal disambiguators whose
        # counters legitimately differ across engine modes; strip them so
        # error equality compares the *failure*, not the event count.
        msg = re.sub(r"#\d+", "#*", str(exc))
        return {"error": f"{type(exc).__name__}: {msg}"}
    res = run.result
    return {
        "total_time": res.total_time,
        "digest": res.trace_digest(),
        "stats": res.stats,
        "network": res.network,
        "C": run.C,
    }


_MODES = (
    ("event", dict(superstep=False, event_queue="heap")),
    ("calendar", dict(superstep=True, event_queue="calendar")),
)


def diff_case(case: Case) -> str | None:
    """Run all three paths; ``None`` on bitwise agreement, else a label."""
    fast = _outcome(case, superstep=True, event_queue="heap")
    for mode, kw in _MODES:
        other = _outcome(case, **kw)
        label = _compare(fast, other, f"fast-vs-{mode}")
        if label is not None:
            return label
    return None


def _compare(a: dict, b: dict, where: str) -> str | None:
    if ("error" in a) != ("error" in b):
        return f"{where}: one path errored ({a.get('error') or b.get('error')})"
    if "error" in a:
        return None if a["error"] == b["error"] else (
            f"{where}: different errors ({a['error']!r} vs {b['error']!r})"
        )
    if a["total_time"] != b["total_time"]:
        return (
            f"{where}: total_time {a['total_time']!r} != {b['total_time']!r}"
        )
    if a["digest"] != b["digest"]:
        return f"{where}: trace digest diverged"
    if a["stats"] != b["stats"]:
        return f"{where}: per-rank stats diverged"
    if a["network"] != b["network"]:
        return f"{where}: network stats {a['network']} != {b['network']}"
    ca, cb = a["C"], b["C"]
    if (ca is None) != (cb is None) or (
        ca is not None and not np.array_equal(ca, cb)
    ):
        return f"{where}: result matrix C diverged bitwise"
    return None


def _axis_resets(case: Case) -> list[Case]:
    """Candidate simplifications, plainest first."""
    out = []
    if case.routing != "store-and-forward":
        out.append(replace(case, routing="store-and-forward"))
    if case.port != "one-port":
        out.append(replace(case, port="one-port"))
    if case.t_c != 0.0:
        out.append(replace(case, t_c=0.0))
    if (case.t_s, case.t_w) != (1.0, 1.0):
        out.append(replace(case, t_s=1.0, t_w=1.0))
    for n, p in _applicable_machines(case.algorithm):
        if p < case.p or (p == case.p and n < case.n):
            out.append(replace(case, n=n, p=p))
            break
    return out


def shrink_case(
    case: Case,
    mismatches: Callable[[Case], bool] | None = None,
) -> Case:
    """A locally minimal case that still mismatches.

    ``mismatches`` defaults to ``diff_case(...) is not None``.  Atoms are
    delta-debugged first (ddmin), then each axis reset is kept whenever
    the simpler case still reproduces, to a fixpoint.
    """
    if mismatches is None:
        mismatches = lambda c: diff_case(c) is not None  # noqa: E731
    if not mismatches(case):
        raise ReproError("shrink_case needs a mismatching case to start from")
    atoms = list(case.atoms)
    if atoms:
        keep = minimize_atoms(
            atoms,
            lambda idx: mismatches(
                replace(case, atoms=tuple(atoms[i] for i in idx))
            ),
        )
        case = replace(case, atoms=tuple(atoms[i] for i in keep))
    changed = True
    while changed:
        changed = False
        for candidate in _axis_resets(case):
            if mismatches(candidate):
                case = candidate
                changed = True
                break
    return case


def reproducer(case: Case) -> str:
    """A paste-ready snippet replaying one case's differential check."""
    return (
        "PYTHONPATH=src python -c \"from repro.analysis.conformance import "
        f"Case, diff_case; print(diff_case({case!r}))\""
    )


def run_suite(
    seed: int = 2026,
    count: int = 52,
    algorithms: tuple[str, ...] | None = None,
    *,
    shrink: bool = True,
    log: Callable[[str], None] = print,
) -> dict:
    """Run the differential sweep; returns ``{"cases", "mismatches"}``.

    Every mismatch is shrunk (unless ``shrink=False``) and logged with a
    ready-to-paste reproducer before the report is returned.
    """
    cases = sample_cases(seed, count, algorithms)
    mismatches: list[dict] = []
    for case in cases:
        label = diff_case(case)
        if label is None:
            continue
        minimal = shrink_case(case) if shrink else case
        log(
            f"conformance mismatch: {label}\n  shrunk case: {minimal!r}\n"
            f"  reproduce: {reproducer(minimal)}"
        )
        mismatches.append(
            {"case": case, "shrunk": minimal, "label": label}
        )
    return {"cases": len(cases), "mismatches": mismatches}
