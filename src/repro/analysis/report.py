"""One-call reproduction report: every table, figure and claim.

:func:`full_report` regenerates the paper's evaluation programmatically —
Table 1 (measured vs model), Table 2 coefficients, Table 3 space, the
Figure 13/14 region maps, and the §5 claims — and returns it as one text
document.  ``hypercube-mm report`` prints it; the benchmark suite produces
the same artefacts with timing data under ``benchmarks/results/``.
"""

from __future__ import annotations

import io

import numpy as np

from repro.algorithms import ALGORITHMS, get_algorithm
from repro.analysis.figures import PANELS, render_ascii
from repro.analysis.measure import extract_coefficients, measure_comm_time
from repro.analysis.regions import region_map
from repro.collectives import (
    CollectiveCosts,
    allgather,
    alltoall,
    broadcast,
    gather,
    reduce,
    reduce_scatter,
    scatter,
)
from repro.models.table2 import overhead_coefficients
from repro.models.table3 import SPACE_MODELS, overall_space
from repro.mpi import Comm
from repro.sim import MachineConfig, PortModel, run_spmd

__all__ = ["full_report", "table1_section", "table2_section", "table3_section"]

_TABLE2_KEYS = [
    "simple", "cannon", "hje", "berntsen", "dns",
    "3dd", "3d_all_trans", "3d_all",
]


def _fmt_row(cells: list[str], widths: list[int]) -> str:
    return "  ".join(c.ljust(w) for c, w in zip(cells, widths))


def _render(headers: list[str], rows: list[list[str]]) -> str:
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    out = [_fmt_row(headers, widths), _fmt_row(["-" * w for w in widths], widths)]
    out += [_fmt_row(r, widths) for r in rows]
    return "\n".join(out)


def table1_section(N: int = 16, M: int = 32) -> str:
    """Measured vs Table 1 for every collective and port model."""
    ops = {
        "one-to-all broadcast": (
            lambda comm: broadcast(
                comm, np.ones(M) if comm.rank == 0 else None, root=0
            ),
            CollectiveCosts.broadcast,
        ),
        "one-to-all personalized": (
            lambda comm: scatter(
                comm, [np.ones(M)] * comm.size if comm.rank == 0 else None, root=0
            ),
            CollectiveCosts.scatter,
        ),
        "all-to-all broadcast": (
            lambda comm: allgather(comm, np.ones(M)),
            CollectiveCosts.allgather,
        ),
        "all-to-all personalized": (
            lambda comm: alltoall(comm, [np.ones(M)] * comm.size),
            CollectiveCosts.alltoall,
        ),
        "all-to-one reduction": (
            lambda comm: reduce(comm, np.ones(M), root=0),
            CollectiveCosts.reduce,
        ),
        "all-to-all reduction": (
            lambda comm: reduce_scatter(comm, [np.ones(M)] * comm.size),
            CollectiveCosts.reduce_scatter,
        ),
    }
    rows = []
    for label, (body, cost_fn) in ops.items():
        for port in PortModel:
            def prog(ctx, body=body):
                comm = Comm(ctx, list(range(N)))
                yield from body(comm)
                return ctx.now

            a = run_spmd(
                MachineConfig.create(N, t_s=1, t_w=0, port_model=port), prog
            ).total_time
            b = run_spmd(
                MachineConfig.create(N, t_s=0, t_w=1, port_model=port), prog
            ).total_time
            ma, mb = cost_fn(N, M, port)
            rows.append(
                [label, str(port), f"({a:g}, {b:g})", f"({ma:g}, {mb:g})"]
            )
    return (
        f"TABLE 1 — collectives on an N={N} cube, M={M} words; "
        "(t_s-term, t_w-term)\n"
        + _render(["communication", "port", "measured", "model"], rows)
    )


def table2_section(n: int = 64, p: int = 64) -> str:
    """Measured vs Table 2 coefficients for every applicable algorithm/port."""
    rows = []
    for key in _TABLE2_KEYS:
        if not ALGORITHMS[key].applicable(n, p):
            continue
        for port in PortModel:
            meas = extract_coefficients(key, n, p, port)
            model = overhead_coefficients(key, n, p, port)
            rows.append(
                [
                    ALGORITHMS[key].name,
                    str(port),
                    f"({meas[0]:g}, {meas[1]:g})",
                    f"({model[0]:g}, {model[1]:.4g})" if model else "-",
                ]
            )
    return (
        f"TABLE 2 — communication overhead (a, b) at n={n}, p={p}; "
        "time = a*t_s + b*t_w\n"
        + _render(["algorithm", "port", "measured", "model"], rows)
    )


def table3_section(n: int = 32) -> str:
    """Measured vs Table 3 space for every algorithm."""
    cases = {
        "simple": 16, "cannon": 16, "hje": 16, "berntsen": 8,
        "dns": 8, "3dd": 8, "3d_all_trans": 8, "3d_all": 8,
    }
    rng = np.random.default_rng(0)
    A = rng.standard_normal((n, n))
    B = rng.standard_normal((n, n))
    rows = []
    for key, p in cases.items():
        run = get_algorithm(key).run(A, B, MachineConfig.create(p))
        measured = run.result.total_peak_memory_words()
        model = overall_space(key, n, p)
        rows.append(
            [
                ALGORITHMS[key].name,
                SPACE_MODELS[key].formula,
                f"{model:.0f}",
                str(measured),
            ]
        )
    return (
        f"TABLE 3 — overall space (words, sum of per-node peaks) at n={n}\n"
        + _render(["algorithm", "formula", "model", "measured"], rows)
    )


def claims_section() -> str:
    lines = ["HEADLINE CLAIMS (simulated, t_s=150, t_w=3)"]
    for port in PortModel:
        t_all = measure_comm_time("3d_all", 64, 64, port, 150, 3)
        rivals = {
            k: measure_comm_time(k, 64, 64, port, 150, 3)
            for k in ("cannon", "berntsen", "3dd", "dns", "3d_all_trans")
        }
        ok = all(t_all <= t for t in rivals.values())
        lines.append(
            f"  3D All least overhead at n=64, p=64 ({port}): "
            f"{'HOLDS' if ok else 'VIOLATED'} ({t_all:.0f} vs "
            + ", ".join(f"{k}={v:.0f}" for k, v in rivals.items())
            + ")"
        )
    hje = measure_comm_time("hje", 64, 64, PortModel.MULTI_PORT, 150, 3)
    cannon = measure_comm_time("cannon", 64, 64, PortModel.MULTI_PORT, 150, 3)
    lines.append(
        f"  HJE < Cannon on multi-port: "
        f"{'HOLDS' if hje < cannon else 'VIOLATED'} ({hje:.0f} vs {cannon:.0f})"
    )
    return "\n".join(lines)


def full_report(*, figures: bool = True) -> str:
    """The complete reproduction: tables, claims, and region maps."""
    out = io.StringIO()
    out.write("REPRODUCTION REPORT — Gupta & Sadayappan, SPAA 1994\n")
    out.write("=" * 66 + "\n\n")
    out.write(table1_section() + "\n\n")
    out.write(table2_section() + "\n\n")
    out.write(table3_section() + "\n\n")
    out.write(claims_section() + "\n")
    if figures:
        for fig, port in ((13, PortModel.ONE_PORT), (14, PortModel.MULTI_PORT)):
            for panel, (t_s, t_w) in PANELS.items():
                rm = region_map(port, t_s, t_w, log2_n_max=12, log2_p_max=18)
                out.write(
                    "\n"
                    + render_ascii(
                        rm,
                        f"FIGURE {fig}({panel}) — {port}, t_s={t_s:g}, t_w={t_w:g}",
                    )
                    + "\n"
                )
    return out.getvalue()
