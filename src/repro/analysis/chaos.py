"""Chaos-campaign harness: randomized fault injection with invariants,
delta-debugged reproducers, and deterministic replay.

A *campaign* samples ``trials`` random fault plans — link drops, link
corruption, node corruption, fail-stops — and runs a registered matmul
algorithm under a chosen **protection stack** against each, checking
three invariants per trial:

* **oracle** — the computed product matches the numpy oracle within a
  tight tolerance (silent corruption that slips through protection is
  caught here),
* **replay** — re-running the same trial is bit-identical (result *and*
  virtual time), the property every debugging workflow in this repo
  rests on,
* **hang** — the run finishes before a generous virtual-time deadline
  (deadlocks and livelocks count as hangs; the simulator's own detectors
  convert them to typed errors).

Any other :class:`~repro.errors.ReproError` escaping the stack is an
``error`` violation.  On violation, a **delta-debugging minimizer**
(classic ddmin plus a final one-at-a-time sweep) shrinks the trial's
fault set to a locally minimal subset that still reproduces the same
violation kind, and the report carries a ready-to-paste ``repro chaos``
command line replaying exactly that minimized plan.

Protection stacks
-----------------
``none``
    Raw contexts: nothing between the algorithm and the faults.
``reliable``
    :class:`~repro.mpi.reliable.ReliableContext` — survives message
    loss, blind to corruption.
``integrity``
    :class:`~repro.mpi.integrity.IntegrityContext` — survives loss and
    in-flight corruption, blind to compute corruption and fail-stops.
``protected``
    :class:`~repro.algorithms.abft.ABFTMatmul` over an integrity
    context — the full stack: erasure reconstruction, checksum error
    correction, checkpoint fallback, end-to-end message integrity.

Determinism
-----------
Every trial is a pure function of ``(campaign seed, trial index)``:
matrices, fault atoms and the plan's RNG seed all derive from
``default_rng([seed, trial])``, and the driver precomputes the fault-free
horizon once, so a campaign is bit-identical across reruns and across
any ``--jobs`` setting (``run_grid`` merges shards in submission order).

Coverage limits (by design)
---------------------------
A plan gets at most one of {fail-stop, node corruption}: an erasure and
a silent error in the same decode line poison each other's
reconstruction, which the sampler documents by simply not generating the
combination.  Link-corruption rates stay below 1.0 so retransmission can
succeed; a deterministic always-corrupting link is a
:class:`~repro.errors.CorruptionError`, not something retries can beat.
"""

from __future__ import annotations

import json
from typing import Any, Callable

import numpy as np

from repro.algorithms import get_algorithm
from repro.algorithms.abft import ABFTMatmul
from repro.analysis.parallel import run_grid
from repro.errors import (
    DeadlockError,
    LivelockError,
    ReproError,
)
from repro.mpi.integrity import IntegrityContext
from repro.mpi.reliable import ReliableContext
from repro.sim.faults import FLIP_MODELS, FaultPlan
from repro.sim.machine import MachineConfig
from repro.sim.scenario import random_heterogeneous

__all__ = [
    "STACKS",
    "sample_atoms",
    "plan_from_atoms",
    "run_campaign",
    "minimize_atoms",
    "format_report",
]

#: protection stacks a campaign can run under (see module doc)
STACKS = ("none", "reliable", "integrity", "protected")

#: relative/absolute tolerance of the numpy-oracle invariant — tight
#: enough that a sign or exponent flip anywhere is a violation, loose
#: enough that float rounding (and sub-ULP mantissa flips, harmless by
#: definition) never false-positives
ORACLE_RTOL = 1e-8
ORACLE_ATOL = 1e-8


# ---------------------------------------------------------------------------
# fault-plan sampling
# ---------------------------------------------------------------------------


def _sample_edge(rng: np.random.Generator, p: int) -> tuple[int, int]:
    """A random hypercube edge (u, u ^ 2^k)."""
    dim = p.bit_length() - 1
    u = int(rng.integers(p))
    return u, u ^ (1 << int(rng.integers(dim)))


def _sample_window(rng: np.random.Generator, horizon: float) -> tuple[float, float]:
    start = float(rng.random() * 0.6 * horizon)
    length = float((0.15 + 0.45 * rng.random()) * horizon)
    return start, start + length


def sample_atoms(
    rng: np.random.Generator, p: int, horizon: float
) -> list[dict[str, Any]]:
    """Sample a trial's fault atoms (1–3 JSON-able dicts).

    Consumes the trial RNG in a fixed order, so the same
    ``(seed, trial)`` always yields the same atoms.
    """
    atoms: list[dict[str, Any]] = []
    n_atoms = 1 + int(rng.integers(3))
    have_node_fault = False
    for _ in range(n_atoms):
        roll = float(rng.random())
        if roll < 0.40 or (roll >= 0.60 and have_node_fault):
            u, v = _sample_edge(rng, p)
            start, end = _sample_window(rng, horizon)
            atoms.append({
                "kind": "link_corrupt", "u": u, "v": v,
                "rate": round(0.2 + 0.3 * float(rng.random()), 3),
                "start": start, "end": end,
                "model": FLIP_MODELS[int(rng.integers(len(FLIP_MODELS)))],
                "flips": 1 + int(rng.integers(2)),
            })
        elif roll < 0.60:
            u, v = _sample_edge(rng, p)
            start, end = _sample_window(rng, horizon)
            atoms.append({
                "kind": "link_drop", "u": u, "v": v,
                "rate": round(0.2 + 0.3 * float(rng.random()), 3),
                "start": start, "end": end,
            })
        elif roll < 0.85:
            atoms.append({
                "kind": "node_corrupt",
                "node": int(rng.integers(p)),
                "at": float(rng.random() * 0.8 * horizon),
                "model": FLIP_MODELS[int(rng.integers(len(FLIP_MODELS)))],
                "flips": 1 + int(rng.integers(2)),
            })
            have_node_fault = True
        else:
            atoms.append({
                "kind": "node_fail",
                "node": int(rng.integers(p)),
                "at": float(rng.random() * 0.5 * horizon),
            })
            have_node_fault = True
    return atoms


def plan_from_atoms(atoms: list[dict[str, Any]], seed: int) -> FaultPlan:
    """Materialize sampled atoms into a seeded :class:`FaultPlan`."""
    plan = FaultPlan(seed=seed)
    for atom in atoms:
        kind = atom["kind"]
        if kind == "link_corrupt":
            plan = plan.with_link_corruption(
                atom["u"], atom["v"], atom["rate"],
                start=atom["start"], end=atom["end"],
                model=atom["model"], flips=atom["flips"],
            )
        elif kind == "link_drop":
            plan = plan.with_link_drop(
                atom["u"], atom["v"], atom["rate"],
                start=atom["start"], end=atom["end"],
            )
        elif kind == "node_corrupt":
            plan = plan.with_node_corruption(
                atom["node"], at=atom["at"],
                model=atom["model"], flips=atom["flips"],
            )
        elif kind == "node_fail":
            plan = plan.with_node_failure(atom["node"], at=atom["at"])
        else:
            raise ValueError(f"unknown fault atom kind {kind!r}")
    return plan


# ---------------------------------------------------------------------------
# one trial (module-level and picklable for run_grid)
# ---------------------------------------------------------------------------


def _trial_matrices(
    rng: np.random.Generator, n: int
) -> tuple[np.ndarray, np.ndarray]:
    """Small-integer-valued float matrices: checksum sums stay exact in
    float64, so clean residuals are exactly zero and every invariant
    comparison is sharp."""
    A = rng.integers(-4, 5, (n, n)).astype(float)
    B = rng.integers(-4, 5, (n, n)).astype(float)
    return A, B


def _detector_friendly_integrity(ctx):
    """Integrity context with the failure detector's short retry ladder
    (``max_retries=3, backoff=1.5``): silence from a fail-stopped peer is
    convicted after a few round trips instead of thousands, and a message
    the short ladder gives up on just becomes an ABFT-recoverable hole."""
    return IntegrityContext(ctx, max_retries=3, backoff=1.5)


def _execute(cell: dict[str, Any], plan: FaultPlan, A, B):
    """Run the cell's algorithm under its stack on the faulted machine.

    Returns ``(C, total_time)``; lets :class:`~repro.errors.ReproError`
    propagate to the caller's classifier.
    """
    config = MachineConfig.create(cell["p"]).with_faults(plan)
    severity = cell.get("severity", 0.0)
    if severity > 0:
        config = config.with_scenario(random_heterogeneous(
            cell["p"], severity, seed=cell.get("scenario_seed", 0)
        ))
    algorithm = get_algorithm(cell["algorithm"])
    stack = cell["stack"]
    deadline = cell["deadline"]
    if stack == "protected":
        run = ABFTMatmul(
            algorithm, mode="abft",
            context_factory=_detector_friendly_integrity,
        ).run(A, B, config, max_virtual_time=deadline)
        return run.C, run.total_time
    factory = {
        "none": None,
        "reliable": ReliableContext,
        "integrity": IntegrityContext,
    }[stack]
    run = algorithm.run(
        A, B, config, context_factory=factory, max_virtual_time=deadline
    )
    return run.C, run.result.total_time


def _violation_of(cell: dict[str, Any]) -> dict[str, Any] | None:
    """Run one trial and classify its outcome.

    ``None`` means every invariant held; otherwise a dict with the
    violation ``kind`` (``oracle`` / ``replay`` / ``hang`` / ``error``)
    and a human-readable ``detail``.
    """
    rng = np.random.default_rng([cell["seed"], cell["trial"]])
    A, B = _trial_matrices(rng, cell["n"])
    atoms = cell["atoms"]
    if atoms is None:
        atoms = sample_atoms(rng, cell["p"], cell["horizon"])
    if cell.get("atom_subset") is not None:
        atoms = [atoms[i] for i in cell["atom_subset"]]
    plan_seed = (cell["seed"] << 16) ^ cell["trial"]
    plan = plan_from_atoms(atoms, seed=plan_seed)

    try:
        C, total_time = _execute(cell, plan, A, B)
    except (DeadlockError, LivelockError) as exc:
        return {"kind": "hang", "detail": str(exc), "atoms": atoms}
    except ReproError as exc:
        return {
            "kind": "error",
            "detail": f"{type(exc).__name__}: {exc}",
            "atoms": atoms,
        }

    oracle = A @ B
    if not np.allclose(C, oracle, rtol=ORACLE_RTOL, atol=ORACLE_ATOL):
        bad = int(np.sum(~np.isclose(C, oracle, rtol=ORACLE_RTOL,
                                     atol=ORACLE_ATOL)))
        worst = float(np.nanmax(np.abs(C - oracle)))
        return {
            "kind": "oracle",
            "detail": f"{bad} wrong elements, max abs error {worst:g}",
            "atoms": atoms,
        }

    if cell["check_replay"]:
        try:
            C2, total_time2 = _execute(cell, plan, A, B)
        except ReproError as exc:
            return {
                "kind": "replay",
                "detail": f"replay raised {type(exc).__name__}: {exc}",
                "atoms": atoms,
            }
        if not np.array_equal(C, C2) or total_time != total_time2:
            return {
                "kind": "replay",
                "detail": (
                    f"replay diverged: time {total_time!r} vs {total_time2!r}"
                ),
                "atoms": atoms,
            }
    return None


def _run_trial(cell: dict[str, Any]) -> dict[str, Any]:
    """Grid cell entry point: one trial's record (picklable both ways)."""
    violation = _violation_of(cell)
    record: dict[str, Any] = {"trial": cell["trial"]}
    if violation is None:
        record["violation"] = None
    else:
        record["violation"] = {
            "kind": violation["kind"], "detail": violation["detail"],
        }
        record["atoms"] = violation["atoms"]
    return record


# ---------------------------------------------------------------------------
# delta-debugging minimizer
# ---------------------------------------------------------------------------


def minimize_atoms(
    atoms: list[Any], reproduces: Callable[[list[int]], bool]
) -> list[int]:
    """ddmin over indices into ``atoms``: a locally minimal index subset
    for which ``reproduces(subset)`` still holds.

    Classic Zeller/Hildebrandt delta debugging (subset and complement
    tests with doubling granularity) plus a final one-at-a-time sweep, so
    the result is 1-minimal: removing any single remaining atom breaks
    reproduction.  ``reproduces`` must hold for the full index set.
    """
    current = list(range(len(atoms)))
    gran = 2
    while len(current) >= 2:
        size = max(1, len(current) // gran)
        chunks = [current[i:i + size] for i in range(0, len(current), size)]
        reduced = False
        for chunk in chunks:
            if len(chunk) == len(current):
                continue
            if reproduces(chunk):
                current = chunk
                gran = 2
                reduced = True
                break
            complement = [i for i in current if i not in chunk]
            if complement and reproduces(complement):
                current = complement
                gran = max(2, gran - 1)
                reduced = True
                break
        if not reduced:
            if gran >= len(current):
                break
            gran = min(len(current), gran * 2)
    for i in list(current):
        rest = [j for j in current if j != i]
        if rest and reproduces(rest):
            current = rest
    return current


def _minimize_violation(
    cell: dict[str, Any], record: dict[str, Any]
) -> dict[str, Any]:
    """Shrink a failing trial's fault set; returns the reproducer dict."""
    atoms = record["atoms"]
    kind = record["violation"]["kind"]

    def reproduces(subset: list[int]) -> bool:
        probe = dict(cell, atoms=atoms, atom_subset=sorted(subset))
        v = _violation_of(probe)
        return v is not None and v["kind"] == kind

    if reproduces(list(range(len(atoms)))):
        keep = minimize_atoms(atoms, reproduces)
    else:
        # The violation did not reproduce on a rerun (e.g. a replay
        # violation, which is itself nondeterminism) — report unminimized.
        keep = list(range(len(atoms)))
    command = (
        f"repro chaos --stack {cell['stack']} --algorithm {cell['algorithm']}"
        f" -n {cell['n']} -p {cell['p']} --seed {cell['seed']}"
        f" --trials {cell['trials']}"
        f" --only-trial {cell['trial']}"
        f" --atoms {','.join(str(i) for i in keep)}"
    )
    if cell.get("severity", 0.0) > 0:
        command += (
            f" --severity {cell['severity']:g}"
            f" --scenario-seed {cell['scenario_seed']}"
        )
    return {
        "atoms": [atoms[i] for i in keep],
        "atom_indices": keep,
        "command": command,
    }


# ---------------------------------------------------------------------------
# the campaign
# ---------------------------------------------------------------------------


def run_campaign(
    *,
    trials: int = 50,
    seed: int = 0,
    stack: str = "none",
    algorithm: str = "cannon",
    n: int = 8,
    p: int = 16,
    jobs: int = 1,
    minimize: bool = True,
    check_replay: bool = True,
    only_trial: int | None = None,
    atom_subset: list[int] | None = None,
    deadline_factor: float = 200.0,
    severity: float = 0.0,
    scenario_seed: int = 0,
) -> dict[str, Any]:
    """Run a seeded chaos campaign; returns the JSON-able report.

    The report is a pure function of every parameter except ``jobs``,
    which only shards the work (``run_grid`` keeps the merge order
    deterministic).  ``only_trial`` replays a single trial —
    optionally restricted to ``atom_subset`` indices of its sampled
    fault atoms — which is the reproducer form the minimizer emits.

    ``severity`` > 0 layers a seeded heterogeneous network scenario
    (:func:`~repro.sim.scenario.random_heterogeneous` at
    ``scenario_seed``) under every trial's fault plan: the campaign then
    probes whether slow links and injected faults *compose* — e.g. that
    degradation-stretched round trips never eat the retransmission
    budget the integrity layer needs for real corruption.  The default
    0.0 runs on the uniform machine, bit-identical to earlier releases.
    """
    if stack not in STACKS:
        raise ValueError(f"stack must be one of {STACKS}, got {stack!r}")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")

    # Fault-free horizon: virtual duration of a clean run, the time scale
    # fault windows are sampled against and the unit of the hang deadline.
    baseline = get_algorithm(algorithm).run(
        *_trial_matrices(np.random.default_rng([seed, 0]), n),
        MachineConfig.create(p),
    )
    horizon = baseline.result.total_time

    wanted = range(trials) if only_trial is None else [only_trial]
    cells = [
        {
            "seed": seed, "trial": t, "stack": stack,
            "algorithm": algorithm, "n": n, "p": p,
            "horizon": horizon, "deadline": deadline_factor * horizon,
            "check_replay": check_replay, "atoms": None,
            "atom_subset": atom_subset if only_trial is not None else None,
            "trials": trials,
            "severity": severity, "scenario_seed": scenario_seed,
        }
        for t in wanted
    ]
    records = run_grid(_run_trial, cells, jobs=jobs)

    violations = []
    for cell, record in zip(cells, records):
        if record["violation"] is None:
            continue
        entry = {
            "trial": record["trial"],
            "kind": record["violation"]["kind"],
            "detail": record["violation"]["detail"],
            "atoms": record["atoms"],
        }
        if minimize and cell["atom_subset"] is None:
            entry["reproducer"] = _minimize_violation(cell, record)
        violations.append(entry)

    report = {
        "stack": stack, "algorithm": algorithm, "n": n, "p": p,
        "seed": seed, "trials": trials, "horizon": horizon,
        "severity": severity, "scenario_seed": scenario_seed,
        "clean": len(records) - len(violations),
        "violations": violations,
    }
    report["digest"] = _report_digest(report)
    return report


def _report_digest(report: dict[str, Any]) -> str:
    """Stable fingerprint of a campaign's outcome.

    Invariant across ``--jobs`` settings and across reruns: ``detail``
    strings are excluded because the engine's diagnostics embed
    process-global message/handle counters, which depend on how trials
    were sharded over workers — everything semantic (trial outcomes,
    violation kinds, fault atoms, minimized reproducers) is covered.
    """
    import hashlib

    def strip(obj):
        if isinstance(obj, dict):
            return {k: strip(v) for k, v in obj.items()
                    if k not in ("detail", "digest")}
        if isinstance(obj, list):
            return [strip(v) for v in obj]
        return obj

    payload = json.dumps(strip(report), sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def format_report(report: dict[str, Any]) -> str:
    """Human-readable campaign summary."""
    lines = [
        f"chaos campaign: {report['trials']} trials, "
        f"{report['algorithm']} n={report['n']} p={report['p']}, "
        f"stack={report['stack']}, seed={report['seed']}"
        + (
            f", network severity={report['severity']:g} "
            f"(scenario seed {report['scenario_seed']})"
            if report.get("severity") else ""
        ),
        f"  clean: {report['clean']}   "
        f"violations: {len(report['violations'])}   "
        f"digest: {report['digest']}",
    ]
    for v in report["violations"]:
        lines.append(
            f"  trial {v['trial']}: {v['kind']} — {v['detail']}"
        )
        rep = v.get("reproducer")
        if rep:
            kinds = ",".join(a["kind"] for a in rep["atoms"])
            lines.append(
                f"    minimized to {len(rep['atoms'])} fault(s) [{kinds}]"
            )
            lines.append(f"    $ {rep['command']}")
    return "\n".join(lines)
