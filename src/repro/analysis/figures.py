"""Figures 13 and 14: best-algorithm region maps, four panels each.

The paper presents region maps "for three different sets of values of t_s
and t_w", naming ``t_s = 150, t_w = 3`` (panel layouts (a)-(d)).  Only that
pair is printed in the text, so the remaining panels here bracket the
start-up-to-bandwidth ratio from iPSC/860-like (50:1) down to essentially
free start-ups — the regime in which the paper says Cannon overtakes 3DD in
``n^{3/2} < p ≤ n²``.  EXPERIMENTS.md records the reconstruction.
"""

from __future__ import annotations

from repro.analysis.regions import RegionMap, region_map
from repro.sim.machine import PortModel

__all__ = ["PANELS", "figure13", "figure14", "render_ascii", "SYMBOLS"]

#: (t_s, t_w) per panel.  (a) is the paper's explicit iPSC/860-class pair;
#: (b)-(d) scan the ratio downward ("very small values of t_s").
PANELS: dict[str, tuple[float, float]] = {
    "a": (150.0, 3.0),
    "b": (30.0, 3.0),
    "c": (5.0, 3.0),
    "d": (0.5, 3.0),
}

SYMBOLS: dict[str, str] = {
    "cannon": "C",
    "hje": "H",
    "berntsen": "B",
    "3dd": "D",
    "3d_all": "A",
    "dns": "N",
    "3d_all_trans": "T",
    "simple": "S",
}


def figure13(**kwargs) -> dict[str, RegionMap]:
    """One-port region maps (Figure 13 (a)-(d))."""
    return {
        panel: region_map(PortModel.ONE_PORT, t_s, t_w, **kwargs)
        for panel, (t_s, t_w) in PANELS.items()
    }


def figure14(**kwargs) -> dict[str, RegionMap]:
    """Multi-port region maps (Figure 14 (a)-(d))."""
    return {
        panel: region_map(PortModel.MULTI_PORT, t_s, t_w, **kwargs)
        for panel, (t_s, t_w) in PANELS.items()
    }


def render_ascii(rm: RegionMap, title: str = "") -> str:
    """Render a region map as ASCII art (rows = log₂ p desc, cols = log₂ n).

    The paper draws ``p`` on the vertical axis and ``n`` on the horizontal;
    '.' marks points where no algorithm applies (``p > n³``).
    """
    lines = []
    header = title or (
        f"{rm.port.value} hypercube, t_s={rm.t_s:g}, t_w={rm.t_w:g}"
    )
    lines.append(header)
    lines.append("log2(p)")
    for j in reversed(range(len(rm.log2_p))):
        row = "".join(
            SYMBOLS.get(rm.winners[i][j], "?") if rm.winners[i][j] else "."
            for i in range(len(rm.log2_n))
        )
        lines.append(f"{int(rm.log2_p[j]):5d} |{row}")
    lines.append("      +" + "-" * len(rm.log2_n))
    axis = "       "
    for ln in rm.log2_n:
        axis += str(int(ln) % 10)
    lines.append(axis + "   log2(n)")
    used = sorted(rm.counts())
    legend = "  ".join(f"{SYMBOLS[k]}={k}" for k in used)
    lines.append(f"legend: {legend}  .=none applicable")
    return "\n".join(lines)
