"""Persistent content-addressed cache for analysis artefacts.

Region maps, sweep curves, and simulation measurements are pure functions
of their task parameters — yet every ``figure``/``sweep``/benchmark
invocation recomputed identical grids from scratch.  This module stores
those results on disk, **addressed by the SHA-256 of a canonical-JSON task
descriptor**, so a warm re-run of Figure 13/14 is a file read.

Key scheme
----------
An entry's address is ``sha256(canonical_json(envelope))`` where the
envelope is::

    {"engine": <engine fingerprint>, "kind": <artefact kind>,
     "task": <descriptor>, "v": CACHE_SCHEMA_VERSION}

* ``task`` is the caller-supplied descriptor: every parameter the result
  depends on (algorithm set, port model, ``t_s``/``t_w``, lattice bounds,
  seeds and fault-plan parameters for simulation-backed artefacts, …).
  :func:`canonical_json` sorts keys, forbids non-finite floats, and uses
  compact separators, so logically-equal descriptors digest identically.
* ``kind`` namespaces artefact families (``"region_map"``, ``"sweep"``,
  ``"coefficients"``, …) so two families can never collide on a
  coincidentally-equal descriptor.
* ``engine`` is :func:`engine_fingerprint`: a digest over the committed
  golden-trace fixtures (which pin the simulator's full event timeline)
  plus the analytic-model sources.  Any engine or model change — even one
  the golden suite would catch — changes every key, so **a stale engine
  can never serve hits**; there is no invalidation logic to get wrong,
  old entries simply become unreachable (``prune`` reclaims them).
* ``v`` guards the payload serialization format itself.

Entries are self-describing pickles (``{"kind", "descriptor", "payload",
"created"}``) stored under ``<root>/objects/<aa>/<digest>.pkl``; corrupt
or truncated files are treated as misses and rewritten — ``stats``
reports them under their own count and ``prune`` deletes them
unconditionally.  The default root
is ``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro-hypercube-mm``,
else ``~/.cache/repro-hypercube-mm``.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import pathlib
import pickle
import time
from typing import Any, Callable, Iterable

from repro.errors import ModelError
from repro.sim.machine import PortModel

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "canonical_json",
    "task_digest",
    "engine_fingerprint",
    "ResultCache",
    "cached_region_map",
    "cached_figure",
    "cached_sweep",
    "cached_coefficients",
]

#: bump when the entry/payload layout changes (invalidates every key)
CACHE_SCHEMA_VERSION = 1

#: environment override for the cache directory
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: source files whose behaviour the cached artefacts depend on; hashed
#: into the engine fingerprint alongside the golden-trace fixtures
_FINGERPRINT_SOURCES = (
    "sim/engine.py",
    "sim/faults.py",
    "sim/scenario.py",
    "models/table2.py",
    "models/table2_vec.py",
)


def _canon(obj: Any) -> Any:
    """Reduce a descriptor to canonical JSON-safe data (or raise)."""
    if isinstance(obj, dict):
        out = {}
        for k, v in obj.items():
            if not isinstance(k, str):
                raise ModelError(f"descriptor keys must be strings, got {k!r}")
            out[k] = _canon(v)
        return out
    if isinstance(obj, (list, tuple)):
        return [_canon(v) for v in obj]
    if isinstance(obj, PortModel):
        return obj.value
    if isinstance(obj, bool) or obj is None or isinstance(obj, (int, str)):
        return obj
    if isinstance(obj, float):
        if not math.isfinite(obj):
            raise ModelError(f"descriptor floats must be finite, got {obj!r}")
        return obj
    raise ModelError(f"unsupported descriptor value {obj!r}")


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, compact, finite floats only.

    Tuples become lists and :class:`PortModel` its string value, so
    logically-equal descriptors always serialize to the same bytes (the
    property the content addressing relies on).
    """
    return json.dumps(
        _canon(obj), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def task_digest(envelope: Any) -> str:
    """SHA-256 hex digest of the canonical-JSON form of ``envelope``."""
    return hashlib.sha256(canonical_json(envelope).encode()).hexdigest()


_FINGERPRINT: str | None = None


def engine_fingerprint() -> str:
    """Digest pinning the engine + analytic-model version (memoized).

    Hashes the golden-trace fixture (``tests/golden/golden_traces.json``,
    when the source tree is present — it is the committed bit-exact
    summary of the engine's behaviour) together with the source bytes of
    the simulator core and the Table 2 scalar/vector models.  Cache keys
    embed this digest, so any change to those files orphans every
    existing entry rather than risking a stale hit.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        h = hashlib.sha256()
        pkg_root = pathlib.Path(__file__).resolve().parents[1]
        for rel in _FINGERPRINT_SOURCES:
            path = pkg_root / rel
            h.update(rel.encode())
            h.update(path.read_bytes())
        golden = pkg_root.parents[1] / "tests" / "golden" / "golden_traces.json"
        if golden.is_file():
            h.update(b"golden_traces.json")
            h.update(golden.read_bytes())
        _FINGERPRINT = h.hexdigest()
    return _FINGERPRINT


_MISS = object()


class ResultCache:
    """Content-addressed on-disk store for analysis results.

    ``get``/``put`` address entries by descriptor digest (see the module
    docstring for the key scheme); :meth:`fetch` is the memoization
    helper the cached wrappers build on.  A cache constructed with
    ``enabled=False`` is a transparent no-op (every ``get`` misses,
    ``put`` discards), which lets call sites thread one object through
    unconditionally.
    """

    def __init__(self, root: str | os.PathLike | None = None, *, enabled: bool = True):
        """Open (or lazily create) the cache rooted at ``root``.

        ``root=None`` resolves ``$REPRO_CACHE_DIR``, then
        ``$XDG_CACHE_HOME/repro-hypercube-mm``, then
        ``~/.cache/repro-hypercube-mm``.  Nothing is written until the
        first :meth:`put`.
        """
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV)
        if root is None:
            xdg = os.environ.get("XDG_CACHE_HOME")
            base = pathlib.Path(xdg) if xdg else pathlib.Path.home() / ".cache"
            root = base / "repro-hypercube-mm"
        self.root = pathlib.Path(root)
        self.enabled = enabled
        self.hits = 0
        self.misses = 0

    # -- addressing ---------------------------------------------------------

    def _envelope(self, kind: str, descriptor: dict) -> dict:
        return {
            "engine": engine_fingerprint(),
            "kind": kind,
            "task": descriptor,
            "v": CACHE_SCHEMA_VERSION,
        }

    def _path(self, digest: str) -> pathlib.Path:
        return self.root / "objects" / digest[:2] / f"{digest}.pkl"

    # -- store --------------------------------------------------------------

    def get(self, kind: str, descriptor: dict, default: Any = None) -> Any:
        """The cached payload for ``(kind, descriptor)``, or ``default``.

        Unreadable or corrupt entries count as misses (and are left for
        the next :meth:`put` to overwrite).
        """
        value = self._load(kind, descriptor)
        return default if value is _MISS else value

    def _load(self, kind: str, descriptor: dict) -> Any:
        if not self.enabled:
            return _MISS
        path = self._path(task_digest(self._envelope(kind, descriptor)))
        try:
            with open(path, "rb") as fh:
                entry = pickle.load(fh)
            payload = entry["payload"]
        except (OSError, pickle.UnpicklingError, EOFError, KeyError,
                AttributeError, ImportError, IndexError):
            self.misses += 1
            return _MISS
        self.hits += 1
        return payload

    def put(self, kind: str, descriptor: dict, payload: Any) -> pathlib.Path | None:
        """Store ``payload`` under its descriptor digest (atomically).

        Returns the entry path, or ``None`` when the cache is disabled.
        The write goes to a temporary sibling and is renamed into place,
        so concurrent readers never observe a truncated entry.
        """
        if not self.enabled:
            return None
        path = self._path(task_digest(self._envelope(kind, descriptor)))
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "kind": kind,
            "descriptor": descriptor,
            "payload": payload,
            "created": time.time(),
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "wb") as fh:
            pickle.dump(entry, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        return path

    def fetch(
        self, kind: str, descriptor: dict, compute: Callable[[], Any]
    ) -> Any:
        """``get`` or — on a miss — ``compute()``, ``put``, and return.

        The memoization primitive: results flow through unchanged, so a
        warm fetch is bit-identical to the cold one that populated it.
        """
        value = self._load(kind, descriptor)
        if value is _MISS:
            value = compute()
            self.put(kind, descriptor, value)
        return value

    # -- maintenance --------------------------------------------------------

    def _entries(self) -> list[pathlib.Path]:
        objects = self.root / "objects"
        if not objects.is_dir():
            return []
        return sorted(objects.glob("*/*.pkl"))

    @staticmethod
    def _entry_kind(path: pathlib.Path) -> str | None:
        """The entry's artefact kind, or ``None`` when the file is corrupt.

        A corrupt entry is one that cannot be unpickled into the
        self-describing dict (truncated write, bit rot, foreign file) —
        exactly the files :meth:`get` silently treats as misses.
        """
        try:
            with open(path, "rb") as fh:
                entry = pickle.load(fh)
            if not isinstance(entry, dict) or "payload" not in entry:
                return None
            return str(entry.get("kind", "?"))
        except Exception:
            return None

    @staticmethod
    def orphan_partials(
        partials_dir: str | os.PathLike | None,
        live_jobs: "Iterable[str]" = (),
    ) -> list[pathlib.Path]:
        """Streaming snapshots (``<job>.partial.json``) without a live job.

        The sweep service streams each running job's completed chunk
        prefix to ``results/<job>.partial.json`` and renames it to
        ``.stream.jsonl`` on completion — so a partial file whose job is
        neither pending nor running is crash debris from a dead daemon.
        ``verify``/``stats`` count these so operators see them; the
        service reports them as warnings on startup.
        """
        if partials_dir is None:
            return []
        root = pathlib.Path(partials_dir)
        if not root.is_dir():
            return []
        live = set(live_jobs)
        return sorted(
            p for p in root.glob("*.partial.json")
            if p.name[: -len(".partial.json")] not in live
        )

    def stats(
        self,
        *,
        partials_dir: str | os.PathLike | None = None,
        live_jobs: "Iterable[str]" = (),
    ) -> dict:
        """Entry count, total bytes, per-kind breakdown, session hit/miss.

        Corrupt object files — entries :meth:`get` would reject — are
        reported under their own ``corrupt`` count (and as ``(corrupt)``
        in the per-kind breakdown) so operators can see dead weight that
        never serves a hit; ``prune`` deletes them.  With
        ``partials_dir`` the report also counts orphaned streaming
        snapshots (see :meth:`orphan_partials`).
        """
        by_kind: dict[str, int] = {}
        total = 0
        corrupt = 0
        entries = self._entries()
        for path in entries:
            total += path.stat().st_size
            kind = self._entry_kind(path)
            if kind is None:
                corrupt += 1
                kind = "(corrupt)"
            by_kind[kind] = by_kind.get(kind, 0) + 1
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": total,
            "corrupt": corrupt,
            "by_kind": dict(sorted(by_kind.items())),
            "session_hits": self.hits,
            "session_misses": self.misses,
            "orphan_partials": len(
                self.orphan_partials(partials_dir, live_jobs)
            ),
        }

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self._entries():
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def verify(
        self,
        *,
        prune_tmp: bool = True,
        tmp_max_age_s: float = 3600.0,
        partials_dir: str | os.PathLike | None = None,
        live_jobs: "Iterable[str]" = (),
    ) -> dict:
        """Audit the store for crash debris; optionally remove it.

        :meth:`put` writes to a ``<digest>.tmp.<pid>`` sibling and
        renames it into place — a crash between those two steps leaves
        an orphaned tmp file that no ``get`` will ever read.  ``verify``
        finds such files and (with ``prune_tmp``) deletes the ones older
        than ``tmp_max_age_s`` seconds; younger ones are assumed to
        belong to a live concurrent writer and are only counted.  It
        also counts corrupt ``.pkl`` entries (``prune`` deletes those),
        and — given ``partials_dir``/``live_jobs`` — orphaned streaming
        snapshots (:meth:`orphan_partials`; counted, never deleted: they
        are the last visible trace of a dead daemon's progress).  The
        sweep service calls this on startup so a crashed predecessor
        never leaks tmp files indefinitely.

        Returns ``{"checked", "corrupt", "tmp_found", "tmp_removed",
        "orphan_partials"}``.
        """
        objects = self.root / "objects"
        tmp_found = tmp_removed = 0
        if objects.is_dir():
            now = time.time()
            for tmp in sorted(objects.glob("*/*.tmp.*")):
                tmp_found += 1
                try:
                    age = now - tmp.stat().st_mtime
                except OSError:
                    continue
                if prune_tmp and age >= tmp_max_age_s:
                    tmp.unlink(missing_ok=True)
                    tmp_removed += 1
        entries = self._entries()
        corrupt = sum(1 for p in entries if self._entry_kind(p) is None)
        return {
            "checked": len(entries),
            "corrupt": corrupt,
            "tmp_found": tmp_found,
            "tmp_removed": tmp_removed,
            "orphan_partials": len(
                self.orphan_partials(partials_dir, live_jobs)
            ),
        }

    def prune(
        self,
        *,
        max_age_days: float | None = None,
        max_bytes: int | None = None,
    ) -> int:
        """Expire old entries and/or shrink the store to a byte budget.

        Corrupt object files go unconditionally — they can never serve a
        hit, only waste bytes and alarm ``stats``.  Then entries older
        than ``max_age_days`` (by mtime) are removed; then, if the store
        still exceeds ``max_bytes``, the oldest survivors go until it
        fits.  Returns the number removed.
        """
        entries = []
        removed = 0
        for p in self._entries():
            if self._entry_kind(p) is None:
                p.unlink(missing_ok=True)
                removed += 1
            else:
                st = p.stat()
                entries.append((st.st_mtime, st.st_size, p))
        entries.sort()
        if max_age_days is not None:
            cutoff = time.time() - max_age_days * 86400.0
            keep = []
            for mtime, size, path in entries:
                if mtime < cutoff:
                    path.unlink(missing_ok=True)
                    removed += 1
                else:
                    keep.append((mtime, size, path))
            entries = keep
        if max_bytes is not None:
            total = sum(size for _, size, _ in entries)
            for _, size, path in entries:
                if total <= max_bytes:
                    break
                path.unlink(missing_ok=True)
                total -= size
                removed += 1
        return removed


# ---------------------------------------------------------------------------
# cached wrappers around the analysis layer
# ---------------------------------------------------------------------------


def _lattice_descriptor(
    port: PortModel,
    t_s: float,
    t_w: float,
    *,
    log2_n_max: int = 13,
    log2_p_max: int = 20,
    log2_n_min: int = 1,
    log2_p_min: int = 2,
    algorithms: tuple[str, ...] | None = None,
    backend: str = "vector",
) -> dict:
    from repro.analysis.regions import candidates

    algos = tuple(algorithms if algorithms is not None else candidates(port))
    return {
        "port": port,
        "t_s": float(t_s),
        "t_w": float(t_w),
        "log2_n_min": log2_n_min,
        "log2_n_max": log2_n_max,
        "log2_p_min": log2_p_min,
        "log2_p_max": log2_p_max,
        "algorithms": list(algos),
        "backend": backend,
    }


def cached_region_map(cache, port, t_s, t_w, **kwargs):
    """:func:`repro.analysis.regions.region_map` through a result cache.

    ``cache=None`` (or a disabled cache) computes directly.  ``jobs`` is
    deliberately *not* part of the key — the map is proven bit-identical
    for every jobs value, so all of them share one entry.
    """
    from repro.analysis.regions import region_map

    if cache is None:
        return region_map(port, t_s, t_w, **kwargs)
    jobs = kwargs.pop("jobs", 1)
    descriptor = _lattice_descriptor(port, t_s, t_w, **kwargs)
    return cache.fetch(
        "region_map",
        descriptor,
        lambda: region_map(port, t_s, t_w, jobs=jobs, **kwargs),
    )


def cached_figure(cache, figure: int, **kwargs):
    """A whole Figure 13/14 panel set (one cache entry for all panels).

    Caching the four panels as a single entry makes the warm path one
    digest + one read, which is what gets the warm ``figure`` re-run to
    near-instant.
    """
    from repro.analysis.figures import PANELS
    from repro.analysis.figures import figure13, figure14

    if figure not in (13, 14):
        raise ModelError(f"unknown figure {figure!r} (expected 13 or 14)")
    build = figure13 if figure == 13 else figure14
    if cache is None:
        return build(**kwargs)
    port = PortModel.ONE_PORT if figure == 13 else PortModel.MULTI_PORT
    jobs = kwargs.pop("jobs", 1)
    descriptor = {
        "figure": figure,
        "panels": {
            panel: [t_s, t_w] for panel, (t_s, t_w) in sorted(PANELS.items())
        },
        "lattice": _lattice_descriptor(port, 0.0, 0.0, **kwargs),
    }
    return cache.fetch(
        "figure_panels", descriptor, lambda: build(jobs=jobs, **kwargs)
    )


def cached_sweep(cache, algorithms, variable, values, **kwargs):
    """:func:`repro.analysis.sweep.sweep` through a result cache."""
    from repro.analysis.sweep import sweep

    if cache is None:
        return sweep(algorithms, variable, values, **kwargs)
    jobs = kwargs.pop("jobs", 1)
    port = kwargs.get("port", PortModel.ONE_PORT)
    descriptor = {
        "algorithms": list(algorithms),
        "variable": variable,
        "values": [float(v) for v in values],
        "n": float(kwargs.get("n", 256)),
        "p": float(kwargs.get("p", 64)),
        "port": port,
        "t_s": float(kwargs.get("t_s", 150.0)),
        "t_w": float(kwargs.get("t_w", 3.0)),
        "backend": kwargs.get("backend", "vector"),
    }
    return cache.fetch(
        "sweep",
        descriptor,
        lambda: sweep(algorithms, variable, values, jobs=jobs, **kwargs),
    )


def cached_coefficients(cache, key: str, n: int, p: int, port: PortModel):
    """Measured ``(a, b)`` coefficients through a result cache.

    Wraps :func:`repro.analysis.measure.extract_coefficients` — a
    simulation-backed artefact, so the engine fingerprint in the key is
    what keeps entries honest across engine changes.
    """
    from repro.analysis.measure import extract_coefficients

    if cache is None:
        return extract_coefficients(key, n, p, port)
    descriptor = {"algorithm": key, "n": int(n), "p": int(p), "port": port}
    return cache.fetch(
        "coefficients",
        descriptor,
        lambda: extract_coefficients(key, n, p, port),
    )
