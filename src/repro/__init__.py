"""repro — reproduction of *Communication Efficient Matrix Multiplication on
Hypercubes* (Gupta & Sadayappan, SPAA 1994).

The package provides:

* a deterministic discrete-event simulator of one-port / multi-port
  hypercube multicomputers (:mod:`repro.sim`),
* optimal collective communication schedules matching the paper's Table 1
  (:mod:`repro.collectives`),
* all nine distributed matmul algorithms of the paper, runnable and
  verified against numpy (:mod:`repro.algorithms`),
* the closed-form cost/space models of Tables 2-3 (:mod:`repro.models`),
* the Section 5 analysis reproducing Figures 13-14 (:mod:`repro.analysis`).

Quickstart::

    import numpy as np
    from repro import MachineConfig, PortModel, get_algorithm

    n, p = 64, 64
    rng = np.random.default_rng(0)
    A, B = rng.standard_normal((n, n)), rng.standard_normal((n, n))

    machine = MachineConfig.create(p, t_s=150, t_w=3, port_model=PortModel.ONE_PORT)
    run = get_algorithm("3d_all").run(A, B, machine, verify=True)
    print(run.total_time, np.allclose(run.C, A @ B))
"""

from repro.algorithms import ALGORITHMS, AlgorithmRun, get_algorithm, list_algorithms
from repro.sim.machine import MachineConfig, MachineParams, PortModel

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ALGORITHMS",
    "AlgorithmRun",
    "get_algorithm",
    "list_algorithms",
    "MachineConfig",
    "MachineParams",
    "PortModel",
]
