"""The discrete-event engine driving SPMD generator programs.

Design
------
Each rank's program is a Python generator.  The engine keeps a global event
heap ordered by ``(time, sequence)``; sequence numbers make ties — and
therefore FIFO resource reservation and the whole simulation — fully
deterministic.  When a task is runnable the engine steps its generator,
interpreting the yielded :mod:`~repro.sim.ops` objects, until the task
blocks (on handles, an elapse, a barrier, or sub-tasks) or finishes.

A *task* is either a rank's main program (task id = the rank number) or a
sub-generator spawned with ``ctx.parallel`` (task id = ``(rank, k)``).
Sub-tasks share their rank's node, so their transfers contend for the same
ports and links: on a one-port machine "parallel" communication phases
serialize automatically; on a multi-port machine they genuinely overlap.

Message transport is store-and-forward over the e-cube route.  Every hop of
an ``m``-word message takes ``t_s + t_w·m`` and holds, for its duration, the
hop's directional channel plus (one-port model) the endpoints' send/recv
engagements — see :class:`~repro.sim.ports.ContentionTracker`.  A blocking
send returns when the *first* hop completes (the sender's port is free);
delivery happens when the last hop completes.  Receives are eagerly
buffered: a message may arrive before its receive is posted.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator

import numpy as np

from repro.errors import DeadlockError, SimulationError
from repro.sim.machine import MachineConfig, RoutingMode
from repro.sim.message import Message
from repro.sim.ops import (
    BarrierOp,
    ElapseOp,
    Handle,
    ParallelOp,
    RecvOp,
    SendOp,
    WaitOp,
)
from repro.sim.ports import ContentionTracker
from repro.sim.process import ANY_SOURCE, ANY_TAG, ProcessContext
from repro.sim.tracing import NetworkStats, RankStats, RunResult, TraceRecord

__all__ = ["Engine", "run_spmd"]

ProgramFactory = Callable[[ProcessContext], Generator]

Task = Any  # int (main program of a rank) or tuple (rank, k) for sub-tasks


def task_rank(task: Task) -> int:
    return task[0] if isinstance(task, tuple) else task


def _copy_payload(data: Any) -> Any:
    """Deep-copy array payloads so senders can reuse their buffers."""
    if isinstance(data, np.ndarray):
        return data.copy()
    if isinstance(data, list):
        return [_copy_payload(item) for item in data]
    if isinstance(data, tuple):
        return tuple(_copy_payload(item) for item in data)
    if isinstance(data, dict):
        return {k: _copy_payload(v) for k, v in data.items()}
    return data


class _Waiter:
    """A blocked task: which handles it needs and how to build the resume value."""

    __slots__ = ("handles", "mode")

    def __init__(self, handles: list[Handle], mode: str):
        self.handles = handles
        self.mode = mode  # "wait" | "recv" | "send"

    def ready(self) -> bool:
        return all(h.done for h in self.handles)

    def resume_value(self) -> Any:
        if self.mode == "wait":
            return [h.value for h in self.handles]
        if self.mode == "recv":
            return self.handles[0].value
        return None  # blocking send

    def describe(self) -> str:
        kinds = ", ".join(
            f"{h.kind}#{h.handle_id}" for h in self.handles if not h.done
        )
        return f"waiting on {kinds or 'nothing?'}"


class _ParallelWait:
    """A parent task waiting for its spawned sub-tasks."""

    __slots__ = ("remaining", "values", "latest")

    def __init__(self, children: list[Task]):
        self.remaining = set(children)
        self.values: dict[Task, Any] = {}
        self.latest = 0.0


class Engine:
    """One simulation run over a fixed machine configuration."""

    def __init__(self, config: MachineConfig, *, trace: bool = False):
        self.config = config
        self.tracker = ContentionTracker(config)
        self.trace_enabled = trace
        self.trace: list[TraceRecord] = []

        n = config.num_nodes
        self.stats: dict[int, RankStats] = {r: RankStats(r) for r in range(n)}
        self.results: dict[int, Any] = {}
        self.done: set[int] = set()

        self._task_time: dict[Task, float] = {r: 0.0 for r in range(n)}
        self._gens: dict[Task, Generator] = {}
        self._blocked: dict[Task, _Waiter] = {}
        self._parallel: dict[Task, _ParallelWait] = {}
        self._parent_of: dict[Task, tuple[Task, int]] = {}  # child -> (parent, slot)
        self._child_seq = itertools.count(1)
        self._active_task: Task | None = None

        self._mailbox: dict[int, list[tuple[float, Message]]] = {r: [] for r in range(n)}
        self._pending_recvs: dict[int, list[tuple[int, int, Handle]]] = {
            r: [] for r in range(n)
        }
        self._barrier_waiting: dict[int, float] = {}
        self._phase_marks: dict[int, list[tuple[str, float]]] = {r: [] for r in range(n)}

        self._events: list[tuple[float, int, str, tuple]] = []
        self._seq = itertools.count()
        self._ran = False

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(self, program: ProgramFactory) -> RunResult:
        """Execute ``program`` on every rank and return the result."""
        if self._ran:
            raise SimulationError("an Engine can only run once; build a new one")
        self._ran = True
        for rank in range(self.config.num_nodes):
            ctx = ProcessContext(rank, self)
            gen = program(ctx)
            if not hasattr(gen, "send"):
                raise SimulationError(
                    "program must be a generator function (did you forget yield?)"
                )
            self._gens[rank] = gen
            self._schedule(0.0, "resume", (rank, None))

        while self._events:
            time, _, kind, payload = heapq.heappop(self._events)
            if kind == "resume":
                task, value = payload
                self._step(task, time, value)
            elif kind == "hop_ready":
                (msg_pack, hop_index, handle) = payload
                self._start_hop(msg_pack, hop_index, handle, time)
            elif kind == "hop_done":
                (msg_pack, hop_index, handle) = payload
                self._finish_hop(msg_pack, hop_index, handle, time)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event kind {kind!r}")

        if len(self.done) != self.config.num_nodes:
            blocked: dict[int, str] = {}
            for task, waiter in self._blocked.items():
                blocked[task_rank(task)] = f"task {task}: {waiter.describe()}"
            for task, pw in self._parallel.items():
                blocked.setdefault(
                    task_rank(task),
                    f"task {task}: waiting on sub-tasks {sorted(map(str, pw.remaining))}",
                )
            for rank, t in self._barrier_waiting.items():
                blocked[rank] = f"waiting at barrier since t={t}"
            for rank in range(self.config.num_nodes):
                if rank not in self.done and rank not in blocked:
                    blocked[rank] = "not scheduled (engine bug?)"
            raise DeadlockError(blocked)

        total = max(self.stats[r].finish_time for r in range(self.config.num_nodes))
        return RunResult(
            total_time=total,
            results=dict(self.results),
            stats=dict(self.stats),
            phase_times=self._aggregate_phases(),
            trace=list(self.trace),
            network=NetworkStats(
                channels_used=len(self.tracker.channel_utilization(1.0)),
                total_channel_busy=self.tracker.total_channel_busy(),
                max_channel_busy=self.tracker.max_channel_busy(),
            ),
        )

    def mark_phase(self, rank: int, name: str) -> None:
        when = self.time_of(rank)
        self._phase_marks[rank].append((name, when))

    def time_of(self, rank: int) -> float:
        """Current virtual time as seen by the caller (active task aware)."""
        task = self._active_task
        if task is not None and task_rank(task) == rank:
            return self._task_time[task]
        return self._task_time[rank]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _schedule(self, time: float, kind: str, payload: tuple) -> None:
        heapq.heappush(self._events, (time, next(self._seq), kind, payload))

    def _step(self, task: Task, time: float, value: Any) -> None:
        """Advance a task's generator from ``time``, feeding ``value`` in."""
        self._task_time[task] = max(self._task_time.get(task, 0.0), time)
        gen = self._gens[task]
        rank = task_rank(task)
        prev_active = self._active_task
        self._active_task = task
        try:
            while True:
                try:
                    op = gen.send(value)
                except StopIteration as stop:
                    self._task_finished(task, stop.value)
                    return
                except Exception as exc:
                    # Annotate program failures with the failing task so a
                    # bug on one of hundreds of ranks is findable.
                    exc.args = (
                        f"[rank {rank}, task {task}, t={self._task_time[task]:g}] "
                        + (str(exc.args[0]) if exc.args else ""),
                    ) + tuple(exc.args[1:])
                    raise
                value = None
                now = self._task_time[task]

                if isinstance(op, SendOp):
                    handle = self._issue_send(task, op, now)
                    if op.blocking:
                        if handle.done:
                            value = None
                            continue
                        self._blocked[task] = _Waiter([handle], "send")
                        return
                    value = handle
                    continue

                if isinstance(op, RecvOp):
                    handle = self._issue_recv(task, op, now)
                    if op.blocking:
                        if handle.done:
                            value = handle.value
                            continue
                        self._blocked[task] = _Waiter([handle], "recv")
                        return
                    value = handle
                    continue

                if isinstance(op, WaitOp):
                    waiter = _Waiter(op.handles, "wait")
                    if waiter.ready():
                        value = waiter.resume_value()
                        continue
                    self._blocked[task] = waiter
                    return

                if isinstance(op, ElapseOp):
                    self.stats[rank].flops += op.flops
                    self.stats[rank].compute_time += op.duration
                    if op.duration > 0:
                        if self.trace_enabled:
                            self.trace.append(
                                TraceRecord(
                                    "compute", now, now + op.duration, rank,
                                    {"flops": op.flops},
                                )
                            )
                        self._schedule(now + op.duration, "resume", (task, None))
                        return
                    continue

                if isinstance(op, ParallelOp):
                    children = []
                    for slot, sub in enumerate(op.generators):
                        if not hasattr(sub, "send"):
                            raise SimulationError(
                                "ctx.parallel expects generators (call the "
                                "generator functions when passing them)"
                            )
                        child: Task = (rank, next(self._child_seq))
                        self._gens[child] = sub
                        self._task_time[child] = now
                        self._parent_of[child] = (task, slot)
                        children.append(child)
                    if not children:
                        value = []
                        continue
                    self._parallel[task] = _ParallelWait(children)
                    for child in children:
                        self._schedule(now, "resume", (child, None))
                    return

                if isinstance(op, BarrierOp):
                    if isinstance(task, tuple):
                        raise SimulationError(
                            "barrier may only be called from a rank's main program"
                        )
                    self._barrier_waiting[rank] = now
                    n_active = self.config.num_nodes - len(self.done)
                    if len(self._barrier_waiting) == n_active:
                        release = max(self._barrier_waiting.values())
                        for r in self._barrier_waiting:
                            self._schedule(release, "resume", (r, None))
                        self._barrier_waiting = {}
                    return

                raise SimulationError(
                    f"task {task} yielded unsupported object {op!r}; programs "
                    "must yield via ProcessContext helpers"
                )
        finally:
            self._active_task = prev_active

    def _task_finished(self, task: Task, value: Any) -> None:
        finish = self._task_time[task]
        del self._gens[task]
        if isinstance(task, tuple):
            parent, slot = self._parent_of.pop(task)
            pw = self._parallel[parent]
            pw.remaining.discard(task)
            pw.values[slot] = value
            pw.latest = max(pw.latest, finish)
            if not pw.remaining:
                del self._parallel[parent]
                values = [pw.values[i] for i in range(len(pw.values))]
                resume_at = max(self._task_time[parent], pw.latest)
                self._schedule(resume_at, "resume", (parent, values))
            return
        self.results[task] = value
        self.done.add(task)
        self.stats[task].finish_time = finish

    # -- sends -----------------------------------------------------------

    def _issue_send(self, task: Task, op: SendOp, now: float) -> Handle:
        rank = task_rank(task)
        handle = Handle("send", task)
        data = _copy_payload(op.data) if self.config.copy_on_send else op.data
        msg = Message(
            src=rank, dst=op.dst, tag=op.tag, data=data, nwords=op.nwords,
            send_time=now,
        )
        st = self.stats[rank]
        st.messages_sent += 1
        st.words_sent += op.nwords

        if op.dst == rank:
            handle.complete(now)
            self._deliver(msg, now)
            return handle

        hops = self.config.cube.route_hops(rank, op.dst)
        self._schedule(now, "hop_ready", ((msg, hops), 0, handle))
        return handle

    def _start_hop(self, msg_pack, hop_index: int, handle: Handle, time: float) -> None:
        msg, hops = msg_pack
        u, v = hops[hop_index]
        duration = self.config.params.hop_time(msg.nwords)
        start = self.tracker.reserve_hop(u, v, time, duration)
        if self.trace_enabled:
            self.trace.append(
                TraceRecord(
                    "hop", start, start + duration, u,
                    {"to": v, "msg": msg.msg_id, "words": msg.nwords,
                     "src": msg.src, "dst": msg.dst},
                )
            )
        if (
            self.config.routing is RoutingMode.CUT_THROUGH
            and hop_index < len(hops) - 1
        ):
            # Virtual cut-through: the next link sees the header t_s after
            # this hop starts transmitting; the payload streams behind it.
            self._schedule(
                start + self.config.params.t_s,
                "hop_ready",
                ((msg, hops), hop_index + 1, handle),
            )
        self._schedule(start + duration, "hop_done", ((msg, hops), hop_index, handle))

    def _finish_hop(self, msg_pack, hop_index: int, handle: Handle, time: float) -> None:
        msg, hops = msg_pack
        if hop_index == 0 and not handle.done:
            handle.complete(time)
            self._notify(handle.task)
        if hop_index == len(hops) - 1:
            self._deliver(msg, time)
        elif self.config.routing is RoutingMode.STORE_AND_FORWARD:
            self._schedule(time, "hop_ready", ((msg, hops), hop_index + 1, handle))

    # -- receives ----------------------------------------------------------

    def _issue_recv(self, task: Task, op: RecvOp, now: float) -> Handle:
        rank = task_rank(task)
        handle = Handle("recv", task)
        box = self._mailbox[rank]
        for i, (arrival, msg) in enumerate(box):
            if self._matches(op.src, op.tag, msg):
                box.pop(i)
                self._count_receive(rank, msg)
                handle.complete(max(now, arrival), msg.data)
                return handle
        self._pending_recvs[rank].append((op.src, op.tag, handle))
        return handle

    @staticmethod
    def _matches(src_filter: int, tag_filter: int, msg: Message) -> bool:
        return (src_filter == ANY_SOURCE or src_filter == msg.src) and (
            tag_filter == ANY_TAG or tag_filter == msg.tag
        )

    def _count_receive(self, rank: int, msg: Message) -> None:
        st = self.stats[rank]
        st.messages_received += 1
        st.words_received += msg.nwords

    def _deliver(self, msg: Message, time: float) -> None:
        pending = self._pending_recvs[msg.dst]
        for i, (src_f, tag_f, handle) in enumerate(pending):
            if self._matches(src_f, tag_f, msg):
                pending.pop(i)
                self._count_receive(msg.dst, msg)
                handle.complete(time, msg.data)
                self._notify(handle.task)
                return
        self._mailbox[msg.dst].append((time, msg))

    # -- wake-ups ----------------------------------------------------------

    def _notify(self, task: Task) -> None:
        """A handle owned by ``task`` completed; resume the task if unblocked."""
        waiter = self._blocked.get(task)
        if waiter is None or not waiter.ready():
            return
        del self._blocked[task]
        resume_at = max(
            self._task_time[task],
            max(h.completion_time for h in waiter.handles),
        )
        self._schedule(resume_at, "resume", (task, waiter.resume_value()))

    # -- phases --------------------------------------------------------------

    def _aggregate_phases(self) -> dict[str, tuple[float, float]]:
        out: dict[str, tuple[float, float]] = {}
        for rank, marks in self._phase_marks.items():
            finish = self.stats[rank].finish_time
            for i, (name, start) in enumerate(marks):
                end = marks[i + 1][1] if i + 1 < len(marks) else finish
                if name in out:
                    lo, hi = out[name]
                    out[name] = (min(lo, start), max(hi, end))
                else:
                    out[name] = (start, end)
        return out


def run_spmd(
    config: MachineConfig,
    program: ProgramFactory,
    *,
    trace: bool = False,
) -> RunResult:
    """Run the SPMD ``program`` (one generator per rank) on ``config``."""
    return Engine(config, trace=trace).run(program)
