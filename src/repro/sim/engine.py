"""The discrete-event engine driving SPMD generator programs.

Design
------
Each rank's program is a Python generator.  The engine keeps a global event
heap ordered by ``(time, sequence)``; sequence numbers make ties — and
therefore FIFO resource reservation and the whole simulation — fully
deterministic.  When a task is runnable the engine steps its generator,
interpreting the yielded :mod:`~repro.sim.ops` objects, until the task
blocks (on handles, an elapse, a barrier, or sub-tasks) or finishes.

A *task* is either a rank's main program (task id = the rank number) or a
sub-generator spawned with ``ctx.parallel`` (task id = ``(rank, k)``).
Sub-tasks share their rank's node, so their transfers contend for the same
ports and links: on a one-port machine "parallel" communication phases
serialize automatically; on a multi-port machine they genuinely overlap.

Message transport is store-and-forward over the e-cube route.  Every hop of
an ``m``-word message takes ``t_s + t_w·m`` and holds, for its duration, the
hop's directional channel plus (one-port model) the endpoints' send/recv
engagements — see :class:`~repro.sim.ports.ContentionTracker`.  A blocking
send returns when the *first* hop completes (the sender's port is free);
delivery happens when the last hop completes.  Receives are eagerly
buffered: a message may arrive before its receive is posted.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections import deque
from typing import Any, Callable, Generator

import numpy as np

from repro.errors import (
    DeadlockError,
    LinkFailedError,
    LivelockError,
    SimulationError,
)
from repro.sim.faults import FaultState
from repro.sim.machine import MachineConfig, RoutingMode
from repro.sim.message import (
    CORRUPT_VERDICT,
    Message,
    MessageTable,
    message_crc,
)
from repro.sim.calendar import CalendarQueue
from repro.sim.ops import (
    COLLECTIVE_FALLBACK,
    SHIFT_FALLBACK,
    TIMED_OUT,
    BarrierOp,
    CollectivePhaseOp,
    ElapseOp,
    Handle,
    ParallelOp,
    RecvOp,
    SendOp,
    ShiftPhaseOp,
    WaitOp,
)
from repro.sim.ports import ContentionTracker
from repro.sim.superstep import (
    engine_supports_superstep,
    try_advance_collective,
    try_advance_superstep,
)
from repro.sim.process import ANY_SOURCE, ANY_TAG, ProcessContext
from repro.sim.tracing import NetworkStats, RankStats, RunResult, TraceRecord
from repro.topology.routing import RouteCache

__all__ = ["Engine", "run_spmd"]

ProgramFactory = Callable[[ProcessContext], Generator]

Task = Any  # int (main program of a rank) or tuple (rank, k) for sub-tasks

# Event kinds, interned as small ints: events are (time, seq, kind, payload)
# tuples and the sequence number already breaks every tie, so the kind is
# never compared — integers keep the tuples small and the dispatch cheap.
_RESUME = 0
_HOP_READY = 1
_HOP_DONE = 2
_RECV_TIMEOUT = 3
_NODE_FAIL = 4


def task_rank(task: Task) -> int:
    return task[0] if isinstance(task, tuple) else task


def _copy_payload(data: Any) -> Any:
    """Deep-copy array payloads so senders can reuse their buffers."""
    if isinstance(data, np.ndarray):
        return data.copy()
    if isinstance(data, list):
        return [_copy_payload(item) for item in data]
    if isinstance(data, tuple):
        return tuple(_copy_payload(item) for item in data)
    if isinstance(data, dict):
        return {k: _copy_payload(v) for k, v in data.items()}
    return data


class _Waiter:
    """A blocked task: which handles it needs and how to build the resume value."""

    __slots__ = ("handles", "mode")

    def __init__(self, handles: list[Handle], mode: str):
        self.handles = handles
        self.mode = mode  # "wait" | "recv" | "send"

    def ready(self) -> bool:
        return all(h.done for h in self.handles)

    def resume_value(self) -> Any:
        if self.mode == "wait":
            return [h.value for h in self.handles]
        if self.mode == "recv":
            return self.handles[0].value
        return None  # blocking send

    def describe(self) -> str:
        kinds = ", ".join(
            f"{h.detail or h.kind}#{h.handle_id}"
            for h in self.handles
            if not h.done
        )
        return f"waiting on {kinds or 'nothing?'}"


class _ParallelWait:
    """A parent task waiting for its spawned sub-tasks."""

    __slots__ = ("remaining", "values", "latest")

    def __init__(self, children: list[Task]):
        self.remaining = set(children)
        self.values: dict[Task, Any] = {}
        self.latest = 0.0


class _Transfer:
    """One in-flight message and its (possibly rerouted) hop list.

    ``dropped`` flips when a fault-plan roll loses the message (or a
    fail-stopped node swallows it): downstream hops stop and delivery
    never happens, but the sender-side handle still completes normally —
    the loss is silent, exactly like a real dropped packet.
    """

    __slots__ = ("msg", "hops", "dropped")

    def __init__(self, msg: Message, hops: list[tuple[int, int]]):
        self.msg = msg
        self.hops = hops
        self.dropped = False


class Engine:
    """One simulation run over a fixed machine configuration.

    Parameters
    ----------
    config:
        The machine (topology, costs, port model, optional fault plan).
    trace:
        Record per-interval :class:`TraceRecord` activity.
    max_events:
        Watchdog: abort with :class:`~repro.errors.LivelockError` after
        this many engine events (``None`` = unbounded).  Converts infinite
        retransmission/ping-pong loops into a diagnosable error.
    max_virtual_time:
        Watchdog: abort once the event clock passes this virtual time.
    superstep:
        Allow the closed-form superstep fast path (see
        :mod:`repro.sim.superstep`).  On by default; it self-disables
        whenever faults, scenarios, tracing or a ``max_virtual_time``
        watchdog require per-hop events, and produces bit-identical
        results when it does engage.  ``False`` forces the pure event
        path (the conformance suite's reference runs).
    timing_only:
        Skip local matrix products: ``ctx.local_matmul`` charges the same
        flops/time but returns a zero-cost broadcast view instead of the
        real product.  Simulated times, stats and digests are unchanged
        (they depend only on shapes and sizes); per-rank results are
        meaningless.  This is what lets simulation-backed region maps
        reach p = 2^15 and beyond.
    event_queue:
        ``"heap"`` (default) or ``"calendar"`` — the
        :class:`~repro.sim.calendar.CalendarQueue` bucketed backend for
        the residual event regions.  Both produce identical event order.
    """

    def __init__(
        self,
        config: MachineConfig,
        *,
        trace: bool = False,
        max_events: int | None = None,
        max_virtual_time: float | None = None,
        superstep: bool = True,
        timing_only: bool = False,
        event_queue: str = "heap",
    ):
        self.config = config
        self.tracker = ContentionTracker(config)
        self.routes = RouteCache(config.cube)
        self.trace_enabled = trace
        # Hot-path caches: plain floats/bools beat attribute chains in the
        # per-hop inner loops (see _start_hop/_finish_hop).
        self._t_s = config.params.t_s
        self._t_w = config.params.t_w
        self._cut_through = config.routing is RoutingMode.CUT_THROUGH
        self._store_forward = config.routing is RoutingMode.STORE_AND_FORWARD
        self.trace: list[TraceRecord] = []
        self.faults: FaultState | None = (
            FaultState(config.faults) if config.faults is not None else None
        )
        # A uniform (or absent) scenario is normalized to None so every
        # scenario check below reduces to one `is None` test and the
        # healthy fast paths — and their golden traces — stay untouched.
        scen = config.scenario
        self.scenario = (
            None if scen is None or scen.is_uniform else scen
        )
        self._adaptive = (
            self.scenario is not None and self.scenario.adaptive_routing
        )
        if max_events is not None and max_events <= 0:
            raise SimulationError(f"max_events must be positive, got {max_events}")
        if max_virtual_time is not None and max_virtual_time <= 0:
            raise SimulationError(
                f"max_virtual_time must be positive, got {max_virtual_time}"
            )
        self.max_events = max_events
        self.max_virtual_time = max_virtual_time
        if event_queue not in ("heap", "calendar"):
            raise SimulationError(
                f"unknown event_queue backend {event_queue!r}"
            )
        self._calendar: CalendarQueue | None = (
            CalendarQueue() if event_queue == "calendar" else None
        )
        self.superstep_enabled = superstep
        self.timing_only = timing_only
        # Parked shift-phase tasks: task -> (ShiftPhaseOp, park time).
        # Resolved in closed form (or released with SHIFT_FALLBACK) once
        # the event queues drain; see _resolve_superstep.  The hazard maps
        # name the resources a parked phase will reserve, with the virtual
        # time of the phase's own first reservation (park time + first
        # multiply): a foreign hop reserving one of them *after* that
        # threshold would invert the event path's FIFO reservation order,
        # so _start_hop releases the parked set (at their earlier park
        # times) before reserving.  Foreign reservations at or before the
        # threshold land ahead of every phase reservation on both paths,
        # so they simply fold into the closed form's seeds.
        self._parked: dict[Task, tuple[ShiftPhaseOp, float]] = {}
        # Parked collective phases: task -> (CollectivePhaseOp, park time).
        # Same protocol with COLLECTIVE_FALLBACK; see _resolve_collective.
        self._parked_coll: dict[Task, tuple[CollectivePhaseOp, float]] = {}
        self._hazard_nodes: dict[int, float] = {}
        self._hazard_channels: dict[tuple[int, int], float] = {}
        self._one_port = config.port_model.name == "ONE_PORT"
        self._superstep_ok = engine_supports_superstep(self)

        n = config.num_nodes
        self.stats: dict[int, RankStats] = {r: RankStats(r) for r in range(n)}
        self.results: dict[int, Any] = {}
        self.done: set[int] = set()
        self.failed: set[int] = set()
        self._messages_dropped = 0
        self._hops_rerouted = 0
        self._retransmissions = 0
        self._corruption_events = 0
        self._integrity_rejects = 0
        self._events_processed = 0
        self._msg_seq = itertools.count()
        # struct-of-arrays envelope store: one row per message, in
        # creation order (rows mirror _msg_seq ids)
        self._messages = MessageTable(max(1024, 4 * n))

        self._task_time: dict[Task, float] = {r: 0.0 for r in range(n)}
        self._gens: dict[Task, Generator] = {}
        self._blocked: dict[Task, _Waiter] = {}
        self._parallel: dict[Task, _ParallelWait] = {}
        self._parent_of: dict[Task, tuple[Task, int]] = {}  # child -> (parent, slot)
        self._child_seq = itertools.count(1)
        self._active_task: Task | None = None

        self._mailbox: dict[int, list[tuple[float, Message]]] = {r: [] for r in range(n)}
        self._pending_recvs: dict[int, list[tuple[int, int, Handle]]] = {
            r: [] for r in range(n)
        }
        self._barrier_waiting: dict[int, float] = {}
        self._phase_marks: dict[int, list[tuple[str, float]]] = {r: [] for r in range(n)}

        self._events: list[tuple[float, int, int, tuple]] = []
        # Same-time fast lane: events scheduled *at* the clock's current
        # time bypass the heap (see _schedule for the ordering argument).
        self._ready: deque[tuple[float, int, int, tuple]] = deque()
        self._now = 0.0
        self._seq = itertools.count()
        self._ran = False

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(self, program: ProgramFactory) -> RunResult:
        """Execute ``program`` on every rank and return the result."""
        if self._ran:
            raise SimulationError("an Engine can only run once; build a new one")
        self._ran = True
        # Fail-stop events go on the heap first so a failure at time t wins
        # the tie against any same-time resume of that rank.
        if self.faults is not None:
            for nf in self.faults.plan.node_failures:
                if 0 <= nf.node < self.config.num_nodes:
                    self._schedule(nf.time, _NODE_FAIL, (nf.node,))
        for rank in range(self.config.num_nodes):
            ctx = ProcessContext(rank, self)
            gen = program(ctx)
            if not hasattr(gen, "send"):
                raise SimulationError(
                    "program must be a generator function (did you forget yield?)"
                )
            self._gens[rank] = gen
            self._schedule(0.0, _RESUME, (rank, None))

        while True:
            self._drain_events()
            if self._parked and self._parked_coll:
                # Transitional mixed parking (shift and collective phases
                # co-resident): no combined closed form — release everyone
                # onto the event path.
                self._release_all_parked()
                continue
            if self._parked:
                # Every pending event is consumed and one or more ranks
                # sit parked on a ShiftPhaseOp: advance the phase in
                # closed form, or release everyone onto the event path.
                self._resolve_superstep()
                continue
            if self._parked_coll:
                self._resolve_collective()
                continue
            break

        unfinished = [
            r for r in range(self.config.num_nodes)
            if r not in self.done and r not in self.failed
        ]
        if unfinished:
            blocked: dict[int, list[str]] = {}
            for task, waiter in self._blocked.items():
                blocked.setdefault(task_rank(task), []).append(
                    f"task {task}: {waiter.describe()}"
                )
            for task, pw in self._parallel.items():
                blocked.setdefault(task_rank(task), []).append(
                    f"task {task}: waiting on sub-tasks "
                    f"{sorted(map(str, pw.remaining))}"
                )
            for rank, t in self._barrier_waiting.items():
                blocked.setdefault(rank, []).append(
                    f"waiting at barrier since t={t}"
                )
            for rank in unfinished:
                if rank not in blocked:
                    blocked[rank] = ["not scheduled (engine bug?)"]
            raise DeadlockError(blocked, failed_ranks=tuple(sorted(self.failed)))

        total = max(
            (self.stats[r].finish_time for r in range(self.config.num_nodes)),
            default=0.0,
        )
        return RunResult(
            total_time=total,
            results=dict(self.results),
            stats=dict(self.stats),
            phase_times=self._aggregate_phases(),
            trace=list(self.trace),
            network=NetworkStats(
                channels_used=len(self.tracker.channel_utilization(1.0)),
                total_channel_busy=self.tracker.total_channel_busy(),
                max_channel_busy=self.tracker.max_channel_busy(),
                messages_dropped=self._messages_dropped,
                hops_rerouted=self._hops_rerouted,
                retransmissions=self._retransmissions,
                corruption_events=self._corruption_events,
                integrity_rejects=self._integrity_rejects,
            ),
            failed_ranks=tuple(sorted(self.failed)),
        )

    def _drain_events(self) -> None:
        """Process events until both queues are empty (the classic loop)."""
        ready = self._ready
        max_events = self.max_events
        max_virtual_time = self.max_virtual_time
        cal = self._calendar
        events = self._events
        heappop = heapq.heappop
        while True:
            # The fast lane holds same-time events in FIFO (= sequence)
            # order; the full (time, seq) comparison picks exactly the
            # event heappop (or calendar pop) would have.
            if cal is None:
                if not (events or ready):
                    return
                if ready and (not events or ready[0] < events[0]):
                    time, _, kind, payload = ready.popleft()
                else:
                    time, _, kind, payload = heappop(events)
            else:
                if not (cal or ready):
                    return
                if ready and (not cal or ready[0] < cal.min_item()):
                    time, _, kind, payload = ready.popleft()
                else:
                    time, _, kind, payload = cal.pop()
            self._now = time
            self._events_processed += 1
            if max_events is not None and self._events_processed > max_events:
                raise LivelockError(
                    "max_events", self._events_processed, time,
                    self._progress_snapshot(),
                )
            if max_virtual_time is not None and time > max_virtual_time:
                raise LivelockError(
                    "max_virtual_time", self._events_processed, time,
                    self._progress_snapshot(),
                )
            if kind == _RESUME:
                task, value = payload
                self._step(task, time, value)
            elif kind == _HOP_READY:
                (transfer, hop_index, handle) = payload
                self._start_hop(transfer, hop_index, handle, time)
            elif kind == _HOP_DONE:
                (transfer, hop_index, handle) = payload
                self._finish_hop(transfer, hop_index, handle, time)
            elif kind == _RECV_TIMEOUT:
                (rank, handle) = payload
                self._expire_recv(rank, handle, time)
            elif kind == _NODE_FAIL:
                (node,) = payload
                self._fail_node(node, time)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event kind {kind!r}")

    def _resolve_superstep(self) -> None:
        """Advance the parked shift phase in closed form, or release it.

        Called only with drained event queues.  On success each parked
        task is resumed (by an ordinary _RESUME event) at its phase-exit
        time with its final ``(A, B, C)`` blocks; on any incompatibility
        every task re-enters the event path via SHIFT_FALLBACK at the
        time it parked — the phase then runs message by message, exactly
        as if the fast path did not exist.
        """
        outcome = try_advance_superstep(self, self._parked)
        if outcome is not None:
            self._parked = {}
            self._hazard_nodes.clear()
            self._hazard_channels.clear()
            for task, (finish, blocks) in outcome.items():
                self._schedule(finish, _RESUME, (task, blocks))
            return
        parked = self._parked
        if parked:
            # Structural laggards: ranks with more rounds remaining than
            # the parked frontier, or with deliveries waiting in their
            # mailbox.  Releasing only them (one catch-up round through
            # the event path each) lets the frontier stay parked: a
            # frontier rank only completed its round because every
            # laggard neighbour had already sent to it, so catch-up
            # traffic cannot touch a frontier rank's resources — and any
            # exception still trips the hazard maps or the mailbox check
            # at the next resolve.  Blocked mid-round ranks unblock from
            # the laggards' sends and park alongside the frontier.
            min_steps = min(op.steps for (op, _at) in parked.values())
            sel = [
                task for task, (op, _at) in parked.items()
                if op.steps > min_steps or self._mailbox[task_rank(task)]
            ]
            if sel and len(sel) < len(parked):
                for task in sel:
                    op, at = parked.pop(task)
                    rank = task_rank(task)
                    self._hazard_channels.pop((rank, op.a_to), None)
                    self._hazard_channels.pop((rank, op.b_to), None)
                    self._hazard_nodes.pop(rank, None)
                    self._schedule(at, _RESUME, (task, SHIFT_FALLBACK))
                return
        self._release_parked()

    def _release_parked(self) -> None:
        """Release every parked task onto the event path, each resumed
        with SHIFT_FALLBACK at the virtual time it parked."""
        parked = self._parked
        self._parked = {}
        self._hazard_nodes.clear()
        self._hazard_channels.clear()
        for task, (_op, at) in parked.items():
            self._schedule(at, _RESUME, (task, SHIFT_FALLBACK))

    def _resolve_collective(self) -> None:
        """Advance the parked collective phase(s) in closed form, or release.

        Called only with drained event queues and no shift-phase parks.
        On success each parked task resumes at its phase-exit time with
        the collective's return value(s); on any incompatibility every
        task re-enters the event path via COLLECTIVE_FALLBACK at the time
        it parked and the schedule runs message by message.
        """
        outcome = try_advance_collective(self, self._parked_coll)
        if outcome is not None:
            self._parked_coll = {}
            self._hazard_nodes.clear()
            self._hazard_channels.clear()
            for task, (finish, value) in outcome.items():
                self._schedule(finish, _RESUME, (task, value))
            return
        self._release_all_parked()

    def _release_all_parked(self) -> None:
        """Release both parked sets (shift and collective) onto the event
        path at their park times."""
        parked_coll = self._parked_coll
        self._parked_coll = {}
        self._release_parked()
        for task, (_op, at) in parked_coll.items():
            self._schedule(at, _RESUME, (task, COLLECTIVE_FALLBACK))

    def note_retransmission(self) -> None:
        """Count one reliable-layer retransmission in the run's stats."""
        self._retransmissions += 1

    def mark_phase(self, rank: int, name: str) -> None:
        when = self.time_of(rank)
        self._phase_marks[rank].append((name, when))

    def time_of(self, rank: int) -> float:
        """Current virtual time as seen by the caller (active task aware)."""
        task = self._active_task
        if task is not None and task_rank(task) == rank:
            return self._task_time[task]
        return self._task_time[rank]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _schedule(self, time: float, kind: int, payload: tuple) -> None:
        """Enqueue an event, batching same-time events past the heap.

        Events landing exactly at the clock's current time go to the FIFO
        fast lane instead of the heap.  This preserves the heap's order:
        every event already *in* the heap at the current time carries a
        smaller sequence number than any new same-time arrival (sequence
        numbers are globally increasing, and heap entries at this time
        were necessarily pushed earlier), and the fast lane itself is FIFO
        by construction — so same-time events still fire in sequence
        order, and the main loop's ``ready[0] < events[0]`` comparison
        restores the global (time, seq) order across the two queues.  The
        guard on ``ready[0][0]`` keeps the lane homogeneous in time even
        if the clock ever revisits an earlier instant (barrier releases
        can schedule into the past of the *event* clock).
        """
        ready = self._ready
        if time == self._now and (not ready or ready[0][0] == time):
            ready.append((time, next(self._seq), kind, payload))
        elif self._calendar is None:
            heapq.heappush(self._events, (time, next(self._seq), kind, payload))
        else:
            self._calendar.push((time, next(self._seq), kind, payload))

    def _step(
        self, task: Task, time: float, value: Any, throw: BaseException | None = None
    ) -> None:
        """Advance a task's generator from ``time``, feeding ``value`` in.

        ``throw`` delivers a failed child's exception into the generator
        instead of a value (see :meth:`_fail_subtask`).
        """
        if task_rank(task) in self.failed or task not in self._gens:
            return  # fail-stopped (or halted) rank: no further progress
        self._task_time[task] = max(self._task_time.get(task, 0.0), time)
        gen = self._gens[task]
        rank = task_rank(task)
        prev_active = self._active_task
        self._active_task = task
        try:
            while True:
                try:
                    if throw is not None:
                        pending, throw = throw, None
                        op = gen.throw(pending)
                    else:
                        op = gen.send(value)
                except StopIteration as stop:
                    self._task_finished(task, stop.value)
                    return
                except Exception as exc:
                    if isinstance(task, tuple) and task in self._parent_of:
                        # A sub-task failed: cancel its siblings and throw
                        # the exception into the parent, where the program
                        # can catch it (e.g. CommTimeoutError handling).
                        self._fail_subtask(task, exc)
                        return
                    # Annotate program failures with the failing task so a
                    # bug on one of hundreds of ranks is findable.
                    exc.args = (
                        f"[rank {rank}, task {task}, t={self._task_time[task]:g}] "
                        + (str(exc.args[0]) if exc.args else ""),
                    ) + tuple(exc.args[1:])
                    raise
                value = None
                now = self._task_time[task]

                # Exact-class dispatch: ops are final (never subclassed), and
                # `__class__ is` beats isinstance() on this hottest of loops.
                cls = op.__class__
                if cls is SendOp:
                    handle = self._issue_send(task, op, now)
                    if op.blocking:
                        if handle.done:
                            value = None
                            continue
                        self._blocked[task] = _Waiter([handle], "send")
                        return
                    value = handle
                    continue

                if cls is RecvOp:
                    handle = self._issue_recv(task, op, now)
                    if op.blocking:
                        if handle.done:
                            value = handle.value
                            continue
                        self._blocked[task] = _Waiter([handle], "recv")
                        return
                    value = handle
                    continue

                if cls is WaitOp:
                    waiter = _Waiter(op.handles, "wait")
                    if waiter.ready():
                        value = waiter.resume_value()
                        continue
                    self._blocked[task] = waiter
                    return

                if cls is ElapseOp:
                    self.stats[rank].flops += op.flops
                    self.stats[rank].compute_time += op.duration
                    if op.duration > 0:
                        if self.trace_enabled:
                            self.trace.append(
                                TraceRecord(
                                    "compute", now, now + op.duration, rank,
                                    {"flops": op.flops},
                                )
                            )
                        self._schedule(now + op.duration, _RESUME, (task, None))
                        return
                    continue

                if cls is ParallelOp:
                    children = []
                    for slot, sub in enumerate(op.generators):
                        if not hasattr(sub, "send"):
                            raise SimulationError(
                                "ctx.parallel expects generators (call the "
                                "generator functions when passing them)"
                            )
                        child: Task = (rank, next(self._child_seq))
                        self._gens[child] = sub
                        self._task_time[child] = now
                        self._parent_of[child] = (task, slot)
                        children.append(child)
                    if not children:
                        value = []
                        continue
                    self._parallel[task] = _ParallelWait(children)
                    for child in children:
                        self._schedule(now, _RESUME, (child, None))
                    return

                if cls is ShiftPhaseOp:
                    if not self._superstep_ok:
                        # This run needs per-hop events (faults, scenario,
                        # tracing, watchdog, or superstep=False): answer
                        # immediately so the program runs the equivalent
                        # loop inline — zero extra events, identical trace.
                        value = SHIFT_FALLBACK
                        continue
                    self._parked[task] = (op, now)
                    if op.steps > 1:
                        # Resources this phase will reserve, with the time
                        # of its first reservation (after the step-0
                        # multiply); a foreign hop reserving one later
                        # than that forces release (see _start_hop).
                        ar, ac = op.a_block.shape
                        thr = now + self.config.params.flops_time(
                            2.0 * ar * ac * op.b_block.shape[1]
                        )
                        self._hazard_channels[(rank, op.a_to)] = thr
                        self._hazard_channels[(rank, op.b_to)] = thr
                        if self._one_port:
                            self._hazard_nodes[rank] = thr
                    return

                if cls is CollectivePhaseOp:
                    if (
                        not self._superstep_ok
                        or isinstance(task, tuple)
                        or (self._one_port and len(op.specs) > 1)
                    ):
                        # Ineligible runs, ctx.parallel sub-tasks (whose
                        # fused parent already declared the pair), and
                        # fused pairs on one-port machines (the two
                        # schedules interleave through a single port
                        # engagement, which only the event path models):
                        # answer immediately — the schedule runs its
                        # ordinary rounds; zero extra events, identical
                        # trace.
                        value = COLLECTIVE_FALLBACK
                        continue
                    self._parked_coll[task] = (op, now)
                    # Unlike a shift phase (whose first reservation comes
                    # after the step-0 multiply), a collective's first
                    # sends can start at the park time itself, so the
                    # hazard threshold sits just *below* the park time:
                    # the strict `>` in _start_hop then forces a release
                    # even for a same-time foreign hop, whose reservation
                    # order against the phase's would otherwise be
                    # ambiguous.
                    thr = math.nextafter(now, -math.inf)
                    hz_ch = self._hazard_channels
                    for spec in op.specs:
                        node = spec.members[spec.rank]
                        for dim in spec.free_dims:
                            key = (node, node ^ (1 << dim))
                            cur = hz_ch.get(key)
                            hz_ch[key] = thr if cur is None else min(cur, thr)
                    if self._one_port:
                        cur = self._hazard_nodes.get(rank)
                        self._hazard_nodes[rank] = (
                            thr if cur is None else min(cur, thr)
                        )
                    return

                if cls is BarrierOp:
                    if isinstance(task, tuple):
                        raise SimulationError(
                            "barrier may only be called from a rank's main program"
                        )
                    self._barrier_waiting[rank] = now
                    self._maybe_release_barrier()
                    return

                raise SimulationError(
                    f"task {task} yielded unsupported object {op!r}; programs "
                    "must yield via ProcessContext helpers"
                )
        finally:
            self._active_task = prev_active

    def _task_finished(self, task: Task, value: Any) -> None:
        finish = self._task_time[task]
        del self._gens[task]
        if isinstance(task, tuple):
            parent, slot = self._parent_of.pop(task)
            pw = self._parallel[parent]
            pw.remaining.discard(task)
            pw.values[slot] = value
            pw.latest = max(pw.latest, finish)
            if not pw.remaining:
                del self._parallel[parent]
                values = [pw.values[i] for i in range(len(pw.values))]
                resume_at = max(self._task_time[parent], pw.latest)
                self._schedule(resume_at, _RESUME, (parent, values))
            return
        self.results[task] = value
        self.done.add(task)
        self.stats[task].finish_time = finish
        # A rank finishing shrinks the barrier quorum; re-check waiters.
        self._maybe_release_barrier()

    def _maybe_release_barrier(self) -> None:
        """Release the barrier once every still-active rank has arrived.

        Finished and fail-stopped ranks are excluded from the quorum, so a
        node failure cannot hang everyone else at a barrier forever.
        """
        if not self._barrier_waiting:
            return
        n_active = self.config.num_nodes - len(self.done) - len(self.failed)
        if len(self._barrier_waiting) >= n_active:
            release = max(self._barrier_waiting.values())
            for r in self._barrier_waiting:
                self._schedule(release, _RESUME, (r, None))
            self._barrier_waiting = {}

    def _fail_subtask(self, child: Task, exc: BaseException) -> None:
        """A ``ctx.parallel`` child raised: cancel its siblings and rethrow
        the exception inside the parent generator."""
        parent, _slot = self._parent_of.pop(child)
        self._cancel_task(child)
        pw = self._parallel.pop(parent, None)
        if pw is not None:
            pw.remaining.discard(child)
            for sibling in list(pw.remaining):
                self._cancel_task(sibling)
        at = max(
            self._task_time.get(parent, 0.0), self._task_time.get(child, 0.0)
        )
        self._step(parent, at, None, throw=exc)

    def _cancel_task(self, task: Task) -> None:
        """Abandon a task (and, recursively, its children) without a result."""
        gen = self._gens.pop(task, None)
        if gen is not None:
            try:
                gen.close()
            except Exception:  # pragma: no cover - close() misbehaving
                pass
        self._blocked.pop(task, None)
        self._parent_of.pop(task, None)
        pw = self._parallel.pop(task, None)
        if pw is not None:
            for sub in list(pw.remaining):
                self._cancel_task(sub)
        rank = task_rank(task)
        self._pending_recvs[rank] = [
            entry for entry in self._pending_recvs[rank] if entry[2].task != task
        ]

    # -- faults ----------------------------------------------------------

    def _fail_node(self, node: int, time: float) -> None:
        """Fail-stop ``node``: halt all of its tasks, free its state."""
        if node in self.failed or node in self.done:
            return
        self.failed.add(node)
        self.stats[node].finish_time = time
        if self.trace_enabled:
            self.trace.append(
                TraceRecord("node_fail", time, time, node, {})
            )
        for task in [t for t in self._gens if task_rank(t) == node]:
            self._gens[task].close()
            del self._gens[task]
        for task in [t for t in self._blocked if task_rank(t) == node]:
            del self._blocked[task]
        for task in [t for t in self._parallel if task_rank(t) == node]:
            del self._parallel[task]
        for child in [c for c in self._parent_of if task_rank(c) == node]:
            del self._parent_of[child]
        self._pending_recvs[node] = []
        self._barrier_waiting.pop(node, None)
        self._maybe_release_barrier()

    def _lose_message(
        self, transfer: "_Transfer", node: int, start: float, end: float,
        reason: str,
    ) -> None:
        """Mark ``transfer`` lost; it will never be delivered or forwarded."""
        transfer.dropped = True
        self._messages_dropped += 1
        if self.trace_enabled:
            msg = transfer.msg
            self.trace.append(
                TraceRecord(
                    "drop", start, end, node,
                    {"msg": msg.msg_id, "src": msg.src, "dst": msg.dst,
                     "reason": reason},
                )
            )

    def _maybe_corrupt(
        self, transfer: "_Transfer", u: int, v: int, start: float, end: float
    ) -> None:
        """Roll the plan's link corruptions for this hop and, when one
        fires, bit-flip a private copy of the payload (the sender's buffer
        and any shared references stay intact; downstream hops and the
        final delivery carry the perturbed copy)."""
        fs = self.faults
        events = fs.roll_corruptions(u, v, start)
        if not events:
            return
        msg = transfer.msg
        data = _copy_payload(msg.data)
        flipped = 0
        for lc in events:
            flipped += fs.corrupt_payload(data, lc.model, lc.flips)
        if not flipped:
            return  # no float64 words to perturb (control message)
        msg.data = data
        self._corruption_events += 1
        if self.trace_enabled:
            self.trace.append(
                TraceRecord(
                    "corrupt", start, end, u,
                    {"msg": msg.msg_id, "src": msg.src, "dst": msg.dst,
                     "words": flipped, "where": "link"},
                )
            )

    def apply_node_corruption(self, rank: int, out: np.ndarray) -> None:
        """Apply a due :class:`~repro.sim.faults.NodeCorruption` to a
        local-compute output block (called by ``ctx.local_matmul``)."""
        fs = self.faults
        if fs is None or not fs.plan.node_corruptions:
            return
        now = self.time_of(rank)
        nc = fs.take_node_corruption(rank, now)
        if nc is None:
            return
        flipped = fs.corrupt_payload(out, nc.model, nc.flips)
        if not flipped:
            return
        self._corruption_events += 1
        if self.trace_enabled:
            self.trace.append(
                TraceRecord(
                    "corrupt", now, now, rank,
                    {"words": flipped, "where": "compute"},
                )
            )

    def _progress_snapshot(self) -> dict[int, str]:
        """Per-rank progress descriptions for livelock diagnostics."""
        snap: dict[int, str] = {}
        for rank in range(self.config.num_nodes):
            if rank in self.done:
                continue
            if rank in self.failed:
                snap[rank] = (
                    f"fail-stopped at t={self.stats[rank].finish_time:g}"
                )
                continue
            parts = []
            for task, waiter in self._blocked.items():
                if task_rank(task) == rank:
                    parts.append(f"task {task}: {waiter.describe()}")
            for task, pw in self._parallel.items():
                if task_rank(task) == rank:
                    parts.append(
                        f"task {task}: waiting on sub-tasks "
                        f"{sorted(map(str, pw.remaining))}"
                    )
            if rank in self._barrier_waiting:
                parts.append(
                    f"at barrier since t={self._barrier_waiting[rank]:g}"
                )
            latest = max(
                (t for tk, t in self._task_time.items() if task_rank(tk) == rank),
                default=0.0,
            )
            state = "; ".join(parts) if parts else "runnable"
            snap[rank] = f"t={latest:g}, {state}"
        return snap

    # -- scenario costing --------------------------------------------------

    def _link_weight(self, time: float):
        """Per-link routing weight at ``time``: the degraded one-word hop
        cost ``ts_factor·t_s + tw_factor·t_w`` under the active scenario.

        Constant within one scenario epoch, which is what lets
        :meth:`~repro.topology.routing.RouteCache.cheapest` memoize the
        resulting routes per epoch key.
        """
        scen = self.scenario
        t_s, t_w = self._t_s, self._t_w

        def weight(a: int, b: int) -> float:
            ts_f, tw_f = scen.factors(a, b, time)
            return ts_f * t_s + tw_f * t_w

        return weight

    # -- sends -----------------------------------------------------------

    def _issue_send(self, task: Task, op: SendOp, now: float) -> Handle:
        rank = task_rank(task)
        handle = Handle("send", task, detail=f"send dst={op.dst} tag={op.tag}")
        data = _copy_payload(op.data) if self.config.copy_on_send else op.data
        msg = Message(
            src=rank, dst=op.dst, tag=op.tag, data=data, nwords=op.nwords,
            send_time=now, msg_id=next(self._msg_seq), ack_tag=op.ack_tag,
            crc=op.crc, table=self._messages,
        )
        st = self.stats[rank]
        st.messages_sent += 1
        st.words_sent += op.nwords

        if op.dst == rank:
            handle.complete(now)
            self._deliver(msg, now)
            return handle

        self._inject(msg, handle, now)
        return handle

    def _inject(self, msg: Message, handle: Handle, now: float) -> None:
        """Route ``msg`` and schedule its first hop (fault-aware)."""
        fs = self.faults
        if fs is None:
            if self._adaptive:
                # Heterogeneous costs: route around expensive links.  The
                # weight function is constant within a scenario epoch, so
                # the cheapest route is memoized per (src, dst, epoch).
                hops: list | tuple = self.routes.cheapest(
                    msg.src, msg.dst, self._link_weight(now),
                    self.scenario.epoch(now),
                )
            else:
                # Healthy machine: routes never change, so every transfer
                # on the same (src, dst) pair shares one immutable cached
                # hop tuple.
                hops = self.routes.healthy(msg.src, msg.dst)
        elif fs.node_failed(msg.dst, now):
            # Destination already fail-stopped: the message is lost in the
            # void but the send itself costs the sender nothing extra.
            if not handle.done:
                handle.complete(now)
            self._lose_message(_Transfer(msg, []), msg.src, now, now, "dest-failed")
            return
        else:
            def alive(a: int, b: int) -> bool:
                return not fs.link_dead(a, b, now)

            if self._adaptive and fs.plan.reroute:
                # Degraded-aware detouring: prefer cheap healthy links.
                # The route depends on both piecewise-constant layers, so
                # the cache key pairs their epochs — either kind of window
                # edge invalidates it.
                cached = self.routes.cheapest(
                    msg.src, msg.dst, self._link_weight(now),
                    (fs.route_epoch(now), self.scenario.epoch(now)), alive,
                )
            else:
                cached = self.routes.healthy(msg.src, msg.dst)
                # Strict mode keeps the native route; _start_hop raises
                # LinkFailedError when the message reaches the dead link.
                if fs.plan.reroute and not all(alive(u, v) for u, v in cached):
                    cached = self.routes.detour(
                        msg.src, msg.dst, alive, fs.route_epoch(now)
                    )
                    self._hops_rerouted += 1
                    if self.trace_enabled:
                        self.trace.append(
                            TraceRecord(
                                "reroute", now, now, msg.src,
                                {"msg": msg.msg_id, "dead": None,
                                 "via": cached[0][1] if cached else msg.dst,
                                 "src": msg.src, "dst": msg.dst},
                            )
                        )
            # Fault mode may splice a detour tail in-place mid-flight
            # (_start_hop), so each transfer needs its own mutable copy.
            hops = list(cached)
        self._schedule(now, _HOP_READY, (_Transfer(msg, hops), 0, handle))

    def _start_hop(
        self, transfer: _Transfer, hop_index: int, handle: Handle, time: float
    ) -> None:
        if transfer.dropped:  # pragma: no cover - defensive (CT pipelining)
            return
        msg, hops = transfer.msg, transfer.hops
        u, v = hops[hop_index]
        if self._parked or self._parked_coll:
            thr = self._hazard_channels.get((u, v))
            if thr is None:
                thr = self._hazard_nodes.get(u)
            if thr is not None and time > thr:
                # A foreign hop (e.g. a straggler's multi-hop skew
                # traffic) is about to reserve a resource a parked phase
                # would already be using by now.  The event path would
                # have ordered the parked ranks' reservations first, so
                # reserving here would invert the FIFO order: release the
                # parked ranks onto the event path at their park times,
                # then retry this hop after their reservations have gone
                # in first.
                self._release_all_parked()
                self._schedule(time, _HOP_READY, (transfer, hop_index, handle))
                return
        fs = self.faults
        tw_factor = 1.0
        if fs is not None:
            if fs.node_failed(u, time):
                # The node holding the message died: the message dies too.
                self._lose_message(transfer, u, time, time, "node-failed")
                if hop_index == 0 and not handle.done:
                    handle.complete(time)
                    self._notify(handle.task)
                return
            if fs.node_failed(msg.dst, time):
                self._lose_message(transfer, u, time, time, "dest-failed")
                if hop_index == 0 and not handle.done:
                    handle.complete(time)
                    self._notify(handle.task)
                return
            if fs.link_dead(u, v, time):
                if not fs.plan.reroute:
                    raise LinkFailedError(u, v, time)
                # Detour: recompute the surviving route from here (cached
                # per fault epoch — the dead-link set is constant within
                # one).  Raises UnreachableError when the surviving graph
                # disconnects.
                if self._adaptive:
                    tail = self.routes.cheapest(
                        u, msg.dst, self._link_weight(time),
                        (fs.route_epoch(time), self.scenario.epoch(time)),
                        lambda a, b: not fs.link_dead(a, b, time),
                    )
                else:
                    tail = self.routes.detour(
                        u, msg.dst,
                        lambda a, b: not fs.link_dead(a, b, time),
                        fs.route_epoch(time),
                    )
                dead = (u, v)
                hops[hop_index:] = tail
                u, v = hops[hop_index]
                self._hops_rerouted += 1
                if self.trace_enabled:
                    self.trace.append(
                        TraceRecord(
                            "reroute", time, time, dead[0],
                            {"msg": msg.msg_id, "dead": dead, "via": v,
                             "src": msg.src, "dst": msg.dst},
                        )
                    )
            tw_factor = fs.degradation(u, v, time)
        scen = self.scenario
        if scen is None:
            header_ts = self._t_s
            if tw_factor == 1.0:
                duration = self._t_s + self._t_w * msg.nwords
            else:
                duration = self.config.params.hop_time(msg.nwords, tw_factor)
            ts_f = tw_f = 1.0
        else:
            # Scenario factors compose multiplicatively with the fault
            # plan's degradation: independent slowdown sources stack.
            ts_f, tw_f = scen.factors(u, v, time)
            header_ts = ts_f * self._t_s
            duration = header_ts + self._t_w * tw_f * tw_factor * msg.nwords
        start = self.tracker.reserve_hop(u, v, time, duration)
        if self.trace_enabled:
            info = {"to": v, "msg": msg.msg_id, "words": msg.nwords,
                    "src": msg.src, "dst": msg.dst}
            if tw_factor != 1.0:
                info["degraded"] = tw_factor
            if ts_f != 1.0 or tw_f != 1.0:
                info["slow"] = (ts_f, tw_f)
            self.trace.append(
                TraceRecord("hop", start, start + duration, u, info)
            )
        if fs is not None and fs.roll_drop(u, v, start):
            self._lose_message(transfer, v, start, start + duration, "drop")
        elif fs is not None and fs.plan.corruptions:
            self._maybe_corrupt(transfer, u, v, start, start + duration)
        if (
            self._cut_through
            and hop_index < len(hops) - 1
            and not transfer.dropped
        ):
            # Virtual cut-through: the next link sees the header one
            # (possibly degraded) start-up time after this hop starts
            # transmitting; the payload streams behind it.
            self._schedule(
                start + header_ts,
                _HOP_READY,
                (transfer, hop_index + 1, handle),
            )
        self._schedule(start + duration, _HOP_DONE, (transfer, hop_index, handle))

    def _finish_hop(
        self, transfer: _Transfer, hop_index: int, handle: Handle, time: float
    ) -> None:
        msg, hops = transfer.msg, transfer.hops
        if (
            hop_index == len(hops) - 1
            and not transfer.dropped
            and msg.dst in self._parked_coll
        ):
            # A message that was already in flight when its destination
            # parked on a collective is about to land in the parked rank's
            # mailbox.  The collective resolver refuses on any queued
            # delivery, and the ensuing release would resume the rank at
            # its (earlier) park time, where its next recv would find this
            # *future* delivery already queued and continue on a stale
            # clock.  Same remedy as the reservation hazards in
            # _start_hop: release every parked rank onto the event path
            # first (their resumes sort before this time), then redo the
            # delivery.  Shift parks are exempt: _resolve_superstep
            # handles their mailbox traffic with selective laggard
            # catch-up rounds.
            self._release_all_parked()
            self._schedule(time, _HOP_DONE, (transfer, hop_index, handle))
            return
        if hop_index == 0 and not handle.done:
            handle.complete(time)
            self._notify(handle.task)
        if transfer.dropped:
            return
        if hop_index == len(hops) - 1:
            self._deliver(msg, time)
        elif self._store_forward:
            self._schedule(time, _HOP_READY, (transfer, hop_index + 1, handle))

    # -- receives ----------------------------------------------------------

    def _issue_recv(self, task: Task, op: RecvOp, now: float) -> Handle:
        rank = task_rank(task)
        src_s = "ANY" if op.src == -1 else op.src
        tag_s = "ANY" if op.tag == -1 else op.tag
        handle = Handle("recv", task, detail=f"recv src={src_s} tag={tag_s}")
        box = self._mailbox[rank]
        src_f, tag_f = op.src, op.tag
        for i, (arrival, msg) in enumerate(box):
            # _matches, inlined: this runs for every queued message.
            if (src_f == ANY_SOURCE or src_f == msg.src) and (
                tag_f == ANY_TAG or tag_f == msg.tag
            ):
                box.pop(i)
                self._count_receive(rank, msg)
                handle.complete(max(now, arrival), msg.data)
                return handle
        self._pending_recvs[rank].append((op.src, op.tag, handle))
        if op.timeout is not None:
            self._schedule(now + op.timeout, _RECV_TIMEOUT, (rank, handle))
        return handle

    def _expire_recv(self, rank: int, handle: Handle, time: float) -> None:
        if handle.done:  # the message made it in time
            return
        pending = self._pending_recvs.get(rank, [])
        for i, (_src, _tag, h) in enumerate(pending):
            if h is handle:
                pending.pop(i)
                break
        handle.complete(time, TIMED_OUT)
        self._notify(handle.task)

    @staticmethod
    def _matches(src_filter: int, tag_filter: int, msg: Message) -> bool:
        return (src_filter == ANY_SOURCE or src_filter == msg.src) and (
            tag_filter == ANY_TAG or tag_filter == msg.tag
        )

    def _count_receive(self, rank: int, msg: Message) -> None:
        st = self.stats[rank]
        st.messages_received += 1
        st.words_received += msg.nwords

    def _deliver(self, msg: Message, time: float) -> None:
        fs = self.faults
        if msg.dst in self.failed or (
            fs is not None and fs.node_failed(msg.dst, time)
        ):
            # The destination fail-stopped while the message was on its
            # final hop: nobody is home to consume or acknowledge it.  The
            # sender's timeout/retransmission path observes the silence.
            self._lose_message(_Transfer(msg, []), msg.dst, time, time, "dest-failed")
            return
        if msg.crc is not None and msg.src != msg.dst:
            # End-to-end integrity: the destination node re-computes the
            # canonical checksum the sender attached.  A mismatch means the
            # payload was perturbed in flight — the copy is discarded
            # (never delivered to the application) and a NACK rides back
            # on the ack channel so the sender retransmits immediately
            # instead of waiting out its ack timeout.
            actual = message_crc(msg.src, msg.dst, msg.tag, msg.nwords, msg.data)
            if actual != msg.crc:
                self._integrity_rejects += 1
                if self.trace_enabled:
                    self.trace.append(
                        TraceRecord(
                            "nack", time, time, msg.dst,
                            {"msg": msg.msg_id, "src": msg.src, "tag": msg.tag},
                        )
                    )
                if msg.ack_tag is not None:
                    nack = Message(
                        src=msg.dst, dst=msg.src, tag=msg.ack_tag,
                        data=CORRUPT_VERDICT, nwords=0, send_time=time,
                        msg_id=next(self._msg_seq), table=self._messages,
                    )
                    self.stats[msg.dst].messages_sent += 1
                    nack_handle = Handle("send", msg.dst)
                    nack_handle.complete(time)
                    self._inject(nack, nack_handle, time)
                return
        if msg.ack_tag is not None and msg.src != msg.dst:
            # Delivery acknowledgement: the receiving *node* confirms
            # arrival immediately (hardware-style reliable delivery), so a
            # retransmitted duplicate re-triggers an ack even when the
            # application never posts another matching receive.  The ack
            # itself rides the network — it contends, can be dropped, and
            # then the sender's retransmission tries again.
            ack = Message(
                src=msg.dst, dst=msg.src, tag=msg.ack_tag, data=None,
                nwords=0, send_time=time, msg_id=next(self._msg_seq),
                table=self._messages,
            )
            self.stats[msg.dst].messages_sent += 1
            ack_handle = Handle("send", msg.dst)
            ack_handle.complete(time)  # no task waits on the NIC's send
            self._inject(ack, ack_handle, time)
        pending = self._pending_recvs[msg.dst]
        msg_src, msg_tag = msg.src, msg.tag
        for i, (src_f, tag_f, handle) in enumerate(pending):
            # _matches, inlined: runs once per delivery over all waiters.
            if (src_f == ANY_SOURCE or src_f == msg_src) and (
                tag_f == ANY_TAG or tag_f == msg_tag
            ):
                pending.pop(i)
                self._count_receive(msg.dst, msg)
                handle.complete(time, msg.data)
                self._notify(handle.task)
                return
        self._mailbox[msg.dst].append((time, msg))

    # -- wake-ups ----------------------------------------------------------

    def _notify(self, task: Task) -> None:
        """A handle owned by ``task`` completed; resume the task if unblocked."""
        waiter = self._blocked.get(task)
        if waiter is None or not waiter.ready():
            return
        del self._blocked[task]
        resume_at = max(
            self._task_time[task],
            max(h.completion_time for h in waiter.handles),
        )
        self._schedule(resume_at, _RESUME, (task, waiter.resume_value()))

    # -- phases --------------------------------------------------------------

    def _aggregate_phases(self) -> dict[str, tuple[float, float]]:
        out: dict[str, tuple[float, float]] = {}
        for rank, marks in self._phase_marks.items():
            finish = self.stats[rank].finish_time
            for i, (name, start) in enumerate(marks):
                end = marks[i + 1][1] if i + 1 < len(marks) else finish
                if name in out:
                    lo, hi = out[name]
                    out[name] = (min(lo, start), max(hi, end))
                else:
                    out[name] = (start, end)
        return out


def run_spmd(
    config: MachineConfig,
    program: ProgramFactory,
    *,
    trace: bool = False,
    max_events: int | None = None,
    max_virtual_time: float | None = None,
    superstep: bool = True,
    timing_only: bool = False,
    event_queue: str = "heap",
) -> RunResult:
    """Run the SPMD ``program`` (one generator per rank) on ``config``.

    ``max_events`` / ``max_virtual_time`` are watchdog caps: exceeding
    either raises :class:`~repro.errors.LivelockError` with a per-rank
    progress snapshot instead of spinning forever.  ``superstep``,
    ``timing_only`` and ``event_queue`` select the engine's fast paths —
    see :class:`Engine` for their (bit-identical) semantics.
    """
    return Engine(
        config, trace=trace, max_events=max_events,
        max_virtual_time=max_virtual_time, superstep=superstep,
        timing_only=timing_only, event_queue=event_queue,
    ).run(program)
