"""Deterministic discrete-event simulator for hypercube message passing.

The simulator executes SPMD programs — one Python generator per rank — on a
2-ary n-cube whose communication obeys the paper's cost model: every hop of
an ``m``-word message costs ``t_s + t_w·m``, and concurrency is limited by
the node *port model*:

* :data:`PortModel.ONE_PORT` — a node sustains at most one outgoing and one
  incoming transfer at a time (full duplex),
* :data:`PortModel.MULTI_PORT` — every one of the node's ``log p`` links can
  carry a transfer in each direction simultaneously.

Messages between non-neighbours are forwarded store-and-forward along the
e-cube route, contending for intermediate nodes' ports/links.
"""

from repro.sim.machine import MachineConfig, MachineParams, PortModel, RoutingMode
from repro.sim.engine import Engine, run_spmd
from repro.sim.faults import (
    FaultPlan,
    FaultState,
    LinkDegradation,
    LinkDrop,
    LinkFault,
    NodeFailure,
)
from repro.sim.process import ProcessContext, ANY_SOURCE, ANY_TAG
from repro.sim.scenario import (
    LinkCost,
    NetworkScenario,
    background_traffic,
    congested_dimension,
    hotspot,
    random_heterogeneous,
    scenario_from_json,
    uniform,
)
from repro.sim.tracing import NetworkStats, RunResult, RankStats, TraceRecord
from repro.sim.gantt import render_gantt

__all__ = [
    "MachineConfig",
    "MachineParams",
    "PortModel",
    "RoutingMode",
    "Engine",
    "run_spmd",
    "FaultPlan",
    "FaultState",
    "LinkFault",
    "LinkDrop",
    "LinkDegradation",
    "NodeFailure",
    "LinkCost",
    "NetworkScenario",
    "uniform",
    "hotspot",
    "congested_dimension",
    "random_heterogeneous",
    "background_traffic",
    "scenario_from_json",
    "ProcessContext",
    "ANY_SOURCE",
    "ANY_TAG",
    "RunResult",
    "RankStats",
    "NetworkStats",
    "TraceRecord",
    "render_gantt",
]
