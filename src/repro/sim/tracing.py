"""Run statistics, traces, and the result object returned by ``run_spmd``."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

__all__ = ["TraceRecord", "RankStats", "RunResult", "NetworkStats"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced activity interval.

    ``kind`` is ``"hop"`` (fields: src, dst of the hop, message id, words),
    ``"compute"`` (fields: rank, flops), ``"drop"`` (a message lost on a
    hop or on a failed node; fields: msg, src, dst, reason), ``"reroute"``
    (a hop detoured around a dead link; fields: msg, dead link,
    detour_via), ``"corrupt"`` (a payload silently bit-flipped on a link
    or in local compute; fields: words flipped, where) or ``"nack"`` (a
    delivery whose attached CRC failed verification, discarded and
    negatively acknowledged; fields: msg, src, tag).
    """

    kind: str
    start: float
    end: float
    rank: int
    info: dict = field(default_factory=dict)


@dataclass
class RankStats:
    """Per-rank communication/computation counters."""

    rank: int
    messages_sent: int = 0
    words_sent: int = 0
    messages_received: int = 0
    words_received: int = 0
    flops: float = 0.0
    compute_time: float = 0.0
    peak_memory_words: int = 0
    finish_time: float = 0.0

    def note_memory(self, resident_words: int) -> None:
        if resident_words > self.peak_memory_words:
            self.peak_memory_words = int(resident_words)


@dataclass(frozen=True)
class NetworkStats:
    """Aggregate link-level statistics of a run.

    ``total_channel_busy`` sums the busy time of every directional channel
    — with store-and-forward routing this equals
    ``Σ_messages hops · (t_s + t_w·words)``, a conservation law the test
    suite checks.  ``max_channel_busy`` is the most-loaded channel's busy
    time: a lower bound on any schedule's completion time.

    The fault counters are zero on a healthy machine:
    ``messages_dropped`` counts messages lost in transit (drop-rate rolls
    or fail-stopped nodes), ``hops_rerouted`` counts detours around dead
    links, and ``retransmissions`` counts resends issued by the
    reliable-delivery layer.  ``corruption_events`` counts injected
    silent-data-corruption events that actually flipped payload bits
    (link or compute), and ``integrity_rejects`` counts deliveries the
    destination node discarded because an attached CRC failed
    verification.
    """

    channels_used: int
    total_channel_busy: float
    max_channel_busy: float
    messages_dropped: int = 0
    hops_rerouted: int = 0
    retransmissions: int = 0
    corruption_events: int = 0
    integrity_rejects: int = 0

    def mean_utilization(self, total_time: float) -> float:
        """Average busy fraction of the channels that were used at all."""
        if self.channels_used == 0 or total_time <= 0:
            return 0.0
        return self.total_channel_busy / (self.channels_used * total_time)


@dataclass
class RunResult:
    """Outcome of one SPMD simulation.

    Attributes
    ----------
    total_time:
        Virtual time at which the last rank finished (the parallel runtime).
    results:
        Per-rank return values of the programs (``{rank: value}``).
    stats:
        Per-rank :class:`RankStats`.
    phase_times:
        ``{phase_name: (start, end)}`` where start/end are the min entry and
        max exit times over ranks, from ``ctx.phase(...)`` markers.
    trace:
        Optional list of :class:`TraceRecord` (when tracing was enabled).
    network:
        Aggregate :class:`NetworkStats` over all directional channels.
    failed_ranks:
        Ranks halted by a fail-stop fault during the run (empty on a
        healthy machine).  Their ``finish_time`` is their failure time and
        they contribute no entry to ``results``.
    """

    total_time: float
    results: dict[int, Any]
    stats: dict[int, RankStats]
    phase_times: dict[str, tuple[float, float]] = field(default_factory=dict)
    trace: list[TraceRecord] = field(default_factory=list)
    network: NetworkStats = field(
        default_factory=lambda: NetworkStats(0, 0.0, 0.0)
    )
    failed_ranks: tuple[int, ...] = ()

    @property
    def num_ranks(self) -> int:
        return len(self.stats)

    def total_words_sent(self) -> int:
        return sum(s.words_sent for s in self.stats.values())

    def total_messages(self) -> int:
        return sum(s.messages_sent for s in self.stats.values())

    def max_peak_memory_words(self) -> int:
        return max((s.peak_memory_words for s in self.stats.values()), default=0)

    def total_peak_memory_words(self) -> int:
        """Sum of per-rank peaks: the paper's 'overall space used' metric."""
        return sum(s.peak_memory_words for s in self.stats.values())

    def phase_duration(self, name: str) -> float:
        start, end = self.phase_times[name]
        return end - start

    # -- golden-trace support ------------------------------------------------

    def trace_lines(self) -> list[str]:
        """Canonical serialization of the run's event timeline.

        One line per :class:`TraceRecord` — ``kind start end rank info`` —
        with floats rendered via ``repr`` (bit-exact round-trip) and info
        keys sorted, followed by per-rank stat lines, the phase table and
        the headline totals.  Two runs produce identical ``trace_lines``
        iff every traced event, event time, rank counter and phase
        boundary matches exactly; this is the substrate of
        :meth:`trace_digest` and of the committed golden fixtures under
        ``tests/golden/``.  Requires the run to have been traced
        (``trace=True``) for the event section to be non-empty.
        """
        lines = [
            "{} {!r} {!r} {} {}".format(
                rec.kind, rec.start, rec.end, rec.rank,
                ",".join(f"{k}={rec.info[k]!r}" for k in sorted(rec.info)),
            )
            for rec in self.trace
        ]
        for rank in sorted(self.stats):
            s = self.stats[rank]
            lines.append(
                f"rank {rank} sent={s.messages_sent}/{s.words_sent} "
                f"recv={s.messages_received}/{s.words_received} "
                f"flops={s.flops!r} compute={s.compute_time!r} "
                f"finish={s.finish_time!r}"
            )
        for name in sorted(self.phase_times):
            start, end = self.phase_times[name]
            lines.append(f"phase {name} {start!r} {end!r}")
        lines.append(f"total {self.total_time!r}")
        lines.append(
            f"network drops={self.network.messages_dropped} "
            f"reroutes={self.network.hops_rerouted} "
            f"retrans={self.network.retransmissions} "
            f"busy={self.network.total_channel_busy!r}"
        )
        if self.network.corruption_events or self.network.integrity_rejects:
            # Conditional (like the `failed` line) so fault-free runs keep
            # producing byte-identical golden traces across versions.
            lines.append(
                f"corruption events={self.network.corruption_events} "
                f"rejects={self.network.integrity_rejects}"
            )
        if self.failed_ranks:
            lines.append(f"failed {list(self.failed_ranks)}")
        return lines

    def trace_digest(self) -> str:
        """SHA-256 hex digest of :meth:`trace_lines`.

        A compact fingerprint of the full event timeline: any engine
        change that perturbs a single event time, event ordering, rank
        counter or phase boundary changes the digest.  The golden-trace
        regression suite (``tests/golden/test_golden_traces.py``) compares
        this against committed fixtures for every registered algorithm.
        """
        h = hashlib.sha256()
        for line in self.trace_lines():
            h.update(line.encode())
            h.update(b"\n")
        return h.hexdigest()
