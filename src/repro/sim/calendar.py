"""A bucketed calendar queue for the engine's residual event regions.

Discrete-event workloads on a synchronized machine are heavily
time-clustered: a shift round schedules hundreds of hop events at a handful
of distinct virtual times.  A binary heap pays ``O(log n)`` per operation
on every one of them; this queue instead keeps one FIFO bucket per
*distinct* timestamp (a dict keyed by the exact float time) plus a small
heap over the distinct times only.  Pushing into an existing bucket and
popping within a bucket are O(1); the heap is touched once per distinct
timestamp rather than once per event.

Exact order equivalence
-----------------------
Engine events are ``(time, seq, kind, payload)`` tuples with a globally
increasing ``seq``.  Every push appends to its time bucket, and pushes
into any one bucket necessarily arrive in increasing ``seq`` order — so
bucket FIFO order *is* ``seq`` order, and draining buckets in time order
reproduces ``heapq``'s ``(time, seq)`` order exactly.  The property tests
in ``tests/sim/test_calendar.py`` check this against a reference heap on
randomized schedules, and the engine-level differential tests pin run
digests across both backends.
"""

from __future__ import annotations

import heapq
from collections import deque

__all__ = ["CalendarQueue"]


class CalendarQueue:
    """Exact-order event queue bucketed by timestamp.

    Items are ``(time, seq, ...)`` tuples pushed with globally increasing
    ``seq``; iteration order matches a binary heap's ``(time, seq)`` order.
    """

    __slots__ = ("_buckets", "_times", "_len")

    def __init__(self) -> None:
        self._buckets: dict[float, list] = {}
        self._times: list[float] = []  # heap over distinct timestamps
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def push(self, item: tuple) -> None:
        time = item[0]
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = deque((item,))
            heapq.heappush(self._times, time)
        else:
            bucket.append(item)
        self._len += 1

    def min_item(self) -> tuple:
        """The next item in (time, seq) order, without removing it."""
        bucket = self._buckets[self._times[0]]
        return bucket[0]

    def pop(self) -> tuple:
        """Remove and return the next item in (time, seq) order."""
        time = self._times[0]
        bucket = self._buckets[time]
        item = bucket.popleft()
        if not bucket:
            del self._buckets[time]
            heapq.heappop(self._times)
        self._len -= 1
        return item
