"""Operation objects yielded by SPMD programs to the engine.

User programs never build these directly — the :class:`~repro.sim.process.
ProcessContext` helpers do — but they are the complete vocabulary the engine
understands.  Every communication call in a program is ultimately a
``yield`` of one of these.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "Handle",
    "SendOp",
    "RecvOp",
    "WaitOp",
    "ElapseOp",
    "BarrierOp",
    "ParallelOp",
    "ShiftPhaseOp",
    "CollectiveSpec",
    "CollectivePhaseOp",
    "TIMED_OUT",
    "SHIFT_FALLBACK",
    "COLLECTIVE_FALLBACK",
]

_handle_ids = itertools.count()


class _TimedOut:
    """Sentinel completing a timed receive whose window expired.

    ``ctx.recv(..., timeout=...)`` converts it into a
    :class:`~repro.errors.CommTimeoutError`; non-blocking receivers check
    ``handle.timed_out`` (or compare against :data:`TIMED_OUT`) instead.
    """

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<TIMED_OUT>"


TIMED_OUT = _TimedOut()


@dataclass
class Handle:
    """Completion handle for a non-blocking operation.

    ``value`` is the received payload for receives and ``None`` for sends.
    ``completion_time`` is the virtual time at which the operation finished.
    ``task`` identifies the issuing coroutine: the plain rank number for a
    rank's main program, or a ``(rank, k)`` tuple for a sub-task spawned via
    ``ctx.parallel``.
    """

    kind: str
    task: Any
    handle_id: int = field(default_factory=lambda: next(_handle_ids))
    done: bool = False
    completion_time: float = 0.0
    value: Any = None
    #: human-readable operation summary, e.g. "recv src=3 tag=7" — carried
    #: into DeadlockError so a hang names the actual stuck operation
    detail: str = ""

    @property
    def rank(self) -> int:
        return self.task[0] if isinstance(self.task, tuple) else self.task

    def complete(self, time: float, value: Any = None) -> None:
        self.done = True
        self.completion_time = time
        self.value = value

    @property
    def timed_out(self) -> bool:
        """True iff this receive completed by its timeout expiring."""
        return self.done and self.value is TIMED_OUT

    def __repr__(self) -> str:
        state = "done" if self.done else "pending"
        extra = f" {self.detail}" if self.detail else ""
        return f"Handle(#{self.handle_id} {self.kind} task={self.task}{extra} {state})"


@dataclass
class SendOp:
    """Send ``data`` (``nwords`` words) to ``dst`` with ``tag``.

    ``ack_tag``, when set, requests a delivery acknowledgement: the
    destination *node* (not its program) sends a zero-word message back on
    that tag the moment the data is delivered — hardware-style reliable
    delivery, independent of when the application posts its receive.  The
    reliable-delivery layer builds its retransmission protocol on this.
    """

    dst: int
    data: Any
    tag: int
    nwords: int
    blocking: bool
    ack_tag: int | None = None
    #: canonical-bytes CRC32 verified by the destination node at delivery
    #: (end-to-end integrity; see :func:`repro.sim.message.message_crc`)
    crc: int | None = None


@dataclass
class RecvOp:
    """Receive a message from ``src`` (or ANY_SOURCE) with ``tag``.

    ``timeout``, when set, bounds the wait: if no matching message arrives
    within ``timeout`` time units of posting, the receive completes with
    :data:`TIMED_OUT` instead of a payload.
    """

    src: int
    tag: int
    blocking: bool
    timeout: float | None = None


@dataclass
class WaitOp:
    """Block until every handle in ``handles`` has completed."""

    handles: list[Handle]


@dataclass
class ElapseOp:
    """Advance this rank's clock by ``duration`` (local computation)."""

    duration: float
    flops: float = 0.0


@dataclass
class BarrierOp:
    """Zero-cost global synchronisation (harness convenience only).

    Algorithms under measurement never use this; it exists so test and
    benchmark harnesses can separate phases without perturbing timings.
    """


class _ShiftFallback:
    """Sentinel the engine feeds back into a ``yield ShiftPhaseOp`` when the
    phase cannot be advanced in closed form: the program must run the
    equivalent per-message loop instead (see ``ProcessContext.shift_phase``).
    """

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<SHIFT_FALLBACK>"


SHIFT_FALLBACK = _ShiftFallback()


@dataclass
class ShiftPhaseOp:
    """Declare a uniform shift-multiply superstep (Cannon-style inner loop).

    Semantically identical to::

        for step in range(steps):
            C = local_matmul(A, B, C)
            if step == steps - 1: break
            waitall([isend(a_to, A, tag_a), irecv(a_from, tag_a),
                     isend(b_to, B, tag_b), irecv(b_from, tag_b)])
            A, B = received

    Yielding this op instead of the loop lets the engine *try* to advance
    every rank's remaining rounds at once in closed form (see
    :mod:`repro.sim.superstep`).  The engine answers either with the final
    ``(A, B, C)`` triple — the phase is done, the rank's clock already
    advanced — or with :data:`SHIFT_FALLBACK`, in which case the program
    runs *one* round of the loop above through the ordinary event path and
    yields a fresh op for the remainder.  ``c_block`` carries the partial
    accumulator across those round boundaries (``None`` before the first
    multiply).  Both answers produce bit-identical simulated times; the
    fast path merely skips the per-hop events.
    """

    steps: int
    a_to: int
    a_from: int
    b_to: int
    b_from: int
    a_block: Any
    b_block: Any
    tag_a: int
    tag_b: int
    c_block: Any = None


class _CollectiveFallback:
    """Sentinel the engine feeds back into a ``yield CollectivePhaseOp`` when
    the collective cannot be advanced in closed form: the calling schedule
    must run its ordinary per-message rounds instead (see
    :mod:`repro.collectives`).
    """

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<COLLECTIVE_FALLBACK>"


COLLECTIVE_FALLBACK = _CollectiveFallback()


@dataclass(frozen=True)
class CollectiveSpec:
    """One rank's view of a subcube collective it is about to run.

    ``members`` lists the participating node addresses in communicator-rank
    order and ``rank`` is this rank's position in it; ``free_dims`` are the
    hypercube dimensions the subcube spans (sorted ascending, matching
    ``Comm.free_dims``).  ``sched`` names the wire schedule the fallback
    would run ("sbt" or "rotated") — the closed form must reproduce exactly
    that schedule's hop pattern.  ``payload`` is the object the rank
    contributes (a single block, or the per-destination block list for
    alltoall/reduce-scatter); the engine only reads it, never mutates it.
    """

    kind: str  # "allgather" | "alltoall" | "reduce_scatter" | "broadcast" | "reduce"
    sched: str  # "sbt" | "rotated"
    members: tuple
    rank: int
    free_dims: tuple
    tag: int
    payload: Any
    root: int | None = None
    op: Any = None


@dataclass
class CollectivePhaseOp:
    """Declare a dimension-exchange collective phase (or a fused pair).

    Yielded by the dispatch functions in :mod:`repro.collectives` before
    they fall into their per-message rounds, and by the 3D family's fused
    "two collectives in parallel" phases (``specs`` then holds two entries,
    one per sub-collective, in ``ctx.parallel`` slot order).  The engine
    answers either with the collective's return value(s) — the phase is
    done and the rank's clock already advanced, bit-identically to the
    event path — or with :data:`COLLECTIVE_FALLBACK`, in which case the
    caller runs the ordinary schedule through the event path.
    """

    specs: tuple


@dataclass
class ParallelOp:
    """Run several sub-generators concurrently within this rank.

    The engine schedules each sub-generator as an independent task sharing
    the rank's node (and therefore its ports/links): on a multi-port
    machine their transfers genuinely overlap; on a one-port machine the
    port model serializes them — exactly the paper's "the two broadcasts
    can occur in parallel on a multi-port hypercube" accounting.

    The parent resumes, with the list of sub-generator return values, when
    the last sub-task finishes.
    """

    generators: list
