"""Operation objects yielded by SPMD programs to the engine.

User programs never build these directly — the :class:`~repro.sim.process.
ProcessContext` helpers do — but they are the complete vocabulary the engine
understands.  Every communication call in a program is ultimately a
``yield`` of one of these.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Handle", "SendOp", "RecvOp", "WaitOp", "ElapseOp", "BarrierOp", "ParallelOp"]

_handle_ids = itertools.count()


@dataclass
class Handle:
    """Completion handle for a non-blocking operation.

    ``value`` is the received payload for receives and ``None`` for sends.
    ``completion_time`` is the virtual time at which the operation finished.
    ``task`` identifies the issuing coroutine: the plain rank number for a
    rank's main program, or a ``(rank, k)`` tuple for a sub-task spawned via
    ``ctx.parallel``.
    """

    kind: str
    task: Any
    handle_id: int = field(default_factory=lambda: next(_handle_ids))
    done: bool = False
    completion_time: float = 0.0
    value: Any = None

    @property
    def rank(self) -> int:
        return self.task[0] if isinstance(self.task, tuple) else self.task

    def complete(self, time: float, value: Any = None) -> None:
        self.done = True
        self.completion_time = time
        self.value = value

    def __repr__(self) -> str:
        state = "done" if self.done else "pending"
        return f"Handle(#{self.handle_id} {self.kind} task={self.task} {state})"


@dataclass
class SendOp:
    """Send ``data`` (``nwords`` words) to ``dst`` with ``tag``."""

    dst: int
    data: Any
    tag: int
    nwords: int
    blocking: bool


@dataclass
class RecvOp:
    """Receive a message from ``src`` (or ANY_SOURCE) with ``tag``."""

    src: int
    tag: int
    blocking: bool


@dataclass
class WaitOp:
    """Block until every handle in ``handles`` has completed."""

    handles: list[Handle]


@dataclass
class ElapseOp:
    """Advance this rank's clock by ``duration`` (local computation)."""

    duration: float
    flops: float = 0.0


@dataclass
class BarrierOp:
    """Zero-cost global synchronisation (harness convenience only).

    Algorithms under measurement never use this; it exists so test and
    benchmark harnesses can separate phases without perturbing timings.
    """


@dataclass
class ParallelOp:
    """Run several sub-generators concurrently within this rank.

    The engine schedules each sub-generator as an independent task sharing
    the rank's node (and therefore its ports/links): on a multi-port
    machine their transfers genuinely overlap; on a one-port machine the
    port model serializes them — exactly the paper's "the two broadcasts
    can occur in parallel on a multi-port hypercube" accounting.

    The parent resumes, with the list of sub-generator return values, when
    the last sub-task finishes.
    """

    generators: list
