"""Deterministic, seeded fault injection for the simulator.

A :class:`FaultPlan` is a declarative description of everything that can go
wrong on a simulated machine:

* **link failures** — a directional or undirected link is dead during a
  virtual-time window (``[start, end)``); permanent failures use the
  default infinite window,
* **message drops** — each hop over a link is lost with some probability
  (a global rate, plus per-link windowed overrides),
* **link degradation** — a per-link multiplier stretching the ``t_w`` part
  of the hop cost during a window (a flaky cable, a congested backplane),
* **node fail-stop** — a node halts at a virtual time: its program makes
  no further progress and every incident link goes dead,
* **link corruption** — a hop over a link perturbs the payload with some
  probability during a window: seeded sign/exponent/mantissa bit-flips on
  selected float64 words, a *silent* fault delivering a wrong answer on
  time,
* **node corruption** — a node's local compute emits one perturbed output
  block at a virtual time (a soft error in the GEMM unit).

Determinism
-----------
The plan is immutable and carries a ``seed``.  Each :class:`Engine` run
builds a private :class:`FaultState` whose ``numpy`` generator is seeded
from the plan, and drop decisions are drawn from that stream in event
order.  Because the engine processes events in a deterministic order, the
same ``(MachineConfig, FaultPlan, program)`` triple always produces
bit-identical :class:`~repro.sim.tracing.RunResult`\\ s — fault injection
never sacrifices reproducibility.

Corruption decisions (and the bit-flip draws themselves) come from a
*second* generator, derived from the same plan seed but statistically and
operationally independent of the drop stream: adding or removing
corruption faults never perturbs which messages a given plan drops, and
vice versa — so replays stay bit-identical across fault-type mixes.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import SimulationError

__all__ = [
    "LinkFault",
    "LinkDrop",
    "LinkDegradation",
    "NodeFailure",
    "LinkCorruption",
    "NodeCorruption",
    "FLIP_MODELS",
    "FaultPlan",
    "FaultState",
]

#: bit-flip models for corruption faults: which float64 bit gets flipped
FLIP_MODELS = ("sign", "exponent", "mantissa", "any")


def _check_window(start: float, end: float) -> None:
    if start < 0:
        raise SimulationError(f"fault window start must be >= 0, got {start}")
    if end <= start:
        raise SimulationError(
            f"fault window must satisfy start < end, got [{start}, {end})"
        )


@dataclass(frozen=True)
class LinkFault:
    """A link dead during ``[start, end)``.

    ``directed=False`` (default) kills both directional channels of the
    ``{u, v}`` link; ``directed=True`` kills only ``u -> v``.
    """

    u: int
    v: int
    start: float = 0.0
    end: float = math.inf
    directed: bool = False

    def __post_init__(self):
        _check_window(self.start, self.end)

    def covers(self, a: int, b: int, time: float) -> bool:
        if not self.start <= time < self.end:
            return False
        if (a, b) == (self.u, self.v):
            return True
        return not self.directed and (a, b) == (self.v, self.u)


@dataclass(frozen=True)
class LinkDrop:
    """Per-hop message-drop probability on a link during ``[start, end)``."""

    u: int
    v: int
    rate: float
    start: float = 0.0
    end: float = math.inf
    directed: bool = False

    def __post_init__(self):
        _check_window(self.start, self.end)
        if not 0.0 <= self.rate <= 1.0:
            raise SimulationError(f"drop rate must be in [0, 1], got {self.rate}")

    def covers(self, a: int, b: int, time: float) -> bool:
        if not self.start <= time < self.end:
            return False
        if (a, b) == (self.u, self.v):
            return True
        return not self.directed and (a, b) == (self.v, self.u)


@dataclass(frozen=True)
class LinkDegradation:
    """A ``t_w`` slowdown multiplier on a link during ``[start, end)``."""

    u: int
    v: int
    factor: float
    start: float = 0.0
    end: float = math.inf
    directed: bool = False

    def __post_init__(self):
        _check_window(self.start, self.end)
        if self.factor < 1.0:
            raise SimulationError(
                f"degradation factor must be >= 1 (a slowdown), got {self.factor}"
            )

    def covers(self, a: int, b: int, time: float) -> bool:
        if not self.start <= time < self.end:
            return False
        if (a, b) == (self.u, self.v):
            return True
        return not self.directed and (a, b) == (self.v, self.u)


@dataclass(frozen=True)
class NodeFailure:
    """Fail-stop: ``node`` makes no progress from virtual time ``time`` on."""

    node: int
    time: float = 0.0

    def __post_init__(self):
        if self.time < 0:
            raise SimulationError(f"fail-stop time must be >= 0, got {self.time}")


def _check_flip(model: str, flips: int) -> None:
    if model not in FLIP_MODELS:
        raise SimulationError(
            f"flip model must be one of {FLIP_MODELS}, got {model!r}"
        )
    if flips < 1:
        raise SimulationError(f"flips per corruption must be >= 1, got {flips}")


@dataclass(frozen=True)
class LinkCorruption:
    """Per-hop payload corruption on a link during ``[start, end)``.

    Each hop over the link is perturbed with probability ``rate``: ``flips``
    float64 words of the payload get one bit flipped each, the bit chosen
    by ``model`` (``"sign"`` bit 63, ``"exponent"`` bits 52–62,
    ``"mantissa"`` bits 0–51, ``"any"`` uniform over all 64).  The message
    still arrives on time — the fault is silent.
    """

    u: int
    v: int
    rate: float
    start: float = 0.0
    end: float = math.inf
    directed: bool = False
    model: str = "any"
    flips: int = 1

    def __post_init__(self):
        _check_window(self.start, self.end)
        if not 0.0 <= self.rate <= 1.0:
            raise SimulationError(
                f"corruption rate must be in [0, 1], got {self.rate}"
            )
        _check_flip(self.model, self.flips)

    def covers(self, a: int, b: int, time: float) -> bool:
        if not self.start <= time < self.end:
            return False
        if (a, b) == (self.u, self.v):
            return True
        return not self.directed and (a, b) == (self.v, self.u)


@dataclass(frozen=True)
class NodeCorruption:
    """One perturbed local-compute output block on ``node``.

    The first ``local_matmul`` on ``node`` completing at virtual time
    ``>= time`` has ``flips`` words of its output block bit-flipped (model
    as in :class:`LinkCorruption`).  Fires exactly once per entry — a
    transient soft error, not a stuck unit.
    """

    node: int
    time: float = 0.0
    model: str = "any"
    flips: int = 1

    def __post_init__(self):
        if self.time < 0:
            raise SimulationError(
                f"node-corruption time must be >= 0, got {self.time}"
            )
        _check_flip(self.model, self.flips)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seeded description of injected faults.

    Build one directly or fluently::

        plan = (
            FaultPlan(seed=42)
            .with_link_fault(0, 1, start=100.0, end=500.0)   # transient
            .with_drop_rate(0.01)                            # global 1%
            .with_degraded_link(2, 3, factor=4.0)            # slow link
            .with_node_failure(5, at=1000.0)                 # fail-stop
        )

    All fields are tuples so the plan is hashable and safe to embed in the
    frozen :class:`~repro.sim.machine.MachineConfig`.
    """

    seed: int = 0
    link_faults: tuple[LinkFault, ...] = ()
    drops: tuple[LinkDrop, ...] = ()
    drop_rate: float = 0.0
    degradations: tuple[LinkDegradation, ...] = ()
    node_failures: tuple[NodeFailure, ...] = ()
    corruptions: tuple[LinkCorruption, ...] = ()
    node_corruptions: tuple[NodeCorruption, ...] = ()
    #: when False, a dead link raises LinkFailedError instead of detouring
    reroute: bool = True

    def __post_init__(self):
        if not 0.0 <= self.drop_rate <= 1.0:
            raise SimulationError(
                f"global drop rate must be in [0, 1], got {self.drop_rate}"
            )
        seen = set()
        for nf in self.node_failures:
            if nf.node in seen:
                raise SimulationError(
                    f"node {nf.node} has more than one fail-stop time"
                )
            seen.add(nf.node)

    # -- fluent builders ---------------------------------------------------

    def with_link_fault(
        self,
        u: int,
        v: int,
        *,
        start: float = 0.0,
        end: float = math.inf,
        directed: bool = False,
    ) -> "FaultPlan":
        fault = LinkFault(u, v, start, end, directed)
        return replace(self, link_faults=self.link_faults + (fault,))

    def with_drop_rate(self, rate: float) -> "FaultPlan":
        return replace(self, drop_rate=rate)

    def with_link_drop(
        self,
        u: int,
        v: int,
        rate: float,
        *,
        start: float = 0.0,
        end: float = math.inf,
        directed: bool = False,
    ) -> "FaultPlan":
        drop = LinkDrop(u, v, rate, start, end, directed)
        return replace(self, drops=self.drops + (drop,))

    def with_degraded_link(
        self,
        u: int,
        v: int,
        factor: float,
        *,
        start: float = 0.0,
        end: float = math.inf,
        directed: bool = False,
    ) -> "FaultPlan":
        deg = LinkDegradation(u, v, factor, start, end, directed)
        return replace(self, degradations=self.degradations + (deg,))

    def with_node_failure(self, node: int, *, at: float = 0.0) -> "FaultPlan":
        failure = NodeFailure(node, at)
        return replace(self, node_failures=self.node_failures + (failure,))

    def with_link_corruption(
        self,
        u: int,
        v: int,
        rate: float,
        *,
        start: float = 0.0,
        end: float = math.inf,
        directed: bool = False,
        model: str = "any",
        flips: int = 1,
    ) -> "FaultPlan":
        corr = LinkCorruption(u, v, rate, start, end, directed, model, flips)
        return replace(self, corruptions=self.corruptions + (corr,))

    def with_node_corruption(
        self,
        node: int,
        *,
        at: float = 0.0,
        model: str = "any",
        flips: int = 1,
    ) -> "FaultPlan":
        corr = NodeCorruption(node, at, model, flips)
        return replace(self, node_corruptions=self.node_corruptions + (corr,))

    def without_reroute(self) -> "FaultPlan":
        """Strict mode: dead links raise
        :class:`~repro.errors.LinkFailedError` instead of detouring."""
        return replace(self, reroute=False)

    # -- queries (pure functions of the plan) ------------------------------

    @property
    def is_empty(self) -> bool:
        return (
            not self.link_faults
            and not self.drops
            and self.drop_rate == 0.0
            and not self.degradations
            and not self.node_failures
            and not self.corruptions
            and not self.node_corruptions
        )

    @property
    def lossless(self) -> bool:
        """True iff no fault in this plan can *lose* a message.

        Link faults with rerouting enabled only detour (slower, not lost)
        and degradations only stretch hop times, so a plan with just those
        never needs acknowledgements or retransmission — the reliable
        layer fast-paths to plain delivery.  Drops, node fail-stops, and
        dead links without rerouting can all swallow messages.  Corruption
        faults deliver (wrong) data on time, so they do not break
        losslessness — but see :attr:`can_corrupt`, which is what the
        integrity layer consults before fast-pathing.
        """
        return (
            self.drop_rate == 0.0
            and not self.drops
            and not self.node_failures
            and (self.reroute or not self.link_faults)
        )

    @property
    def can_corrupt(self) -> bool:
        """True iff some fault in this plan can silently perturb data."""
        return bool(self.corruptions) or bool(self.node_corruptions)

    def node_fail_time(self, node: int) -> float | None:
        for nf in self.node_failures:
            if nf.node == node:
                return nf.time
        return None

    def link_dead(self, u: int, v: int, time: float) -> bool:
        """True iff the directional channel ``u -> v`` is dead at ``time``
        (an explicit link fault, or either endpoint fail-stopped)."""
        for lf in self.link_faults:
            if lf.covers(u, v, time):
                return True
        for nf in self.node_failures:
            if time >= nf.time and nf.node in (u, v):
                return True
        return False

    def node_failed(self, node: int, time: float) -> bool:
        t = self.node_fail_time(node)
        return t is not None and time >= t

    def degradation(self, u: int, v: int, time: float) -> float:
        """Combined ``t_w`` multiplier on ``u -> v`` at ``time`` (>= 1)."""
        factor = 1.0
        for deg in self.degradations:
            if deg.covers(u, v, time):
                factor *= deg.factor
        return factor

    def drop_probability(self, u: int, v: int, time: float) -> float:
        """Per-hop drop probability on ``u -> v`` at ``time``.

        The global rate and every covering per-link window are combined as
        independent loss processes: ``1 - Π(1 - rate_i)``.
        """
        survive = 1.0 - self.drop_rate
        for drop in self.drops:
            if drop.covers(u, v, time):
                survive *= 1.0 - drop.rate
        return 1.0 - survive


def _float_leaves(data) -> list[np.ndarray]:
    """Float64 array leaves of a (possibly nested) payload, in a
    deterministic traversal order — the words corruption can touch."""
    if isinstance(data, np.ndarray):
        return [data] if data.dtype == np.float64 and data.size else []
    if isinstance(data, (list, tuple)):
        return [leaf for item in data for leaf in _float_leaves(item)]
    if isinstance(data, dict):
        return [leaf for v in data.values() for leaf in _float_leaves(v)]
    return []


def _flip_bit(value: float, model: str, rng: np.random.Generator) -> float:
    """Flip one bit of a float64, the bit position chosen per ``model``."""
    if model == "sign":
        bit = 63
    elif model == "exponent":
        bit = 52 + int(rng.integers(11))
    elif model == "mantissa":
        bit = int(rng.integers(52))
    else:  # "any"
        bit = int(rng.integers(64))
    bits = np.float64(value).view(np.uint64)
    return float((bits ^ np.uint64(1 << bit)).view(np.float64))


class FaultState:
    """Per-run mutable view of a :class:`FaultPlan`.

    Owns the run's random streams (seeded from the plan) so repeated runs
    of the same ``(config, plan, program)`` draw identical decisions.  The
    engine creates one per run; plans themselves are never mutated.

    Drop rolls consume ``_rng`` (seeded from ``plan.seed`` alone, exactly
    as before corruption faults existed); corruption rolls and bit-flip
    draws consume the independent ``_crng`` — so mixing fault types never
    shifts either stream relative to a plan with one type only.
    """

    __slots__ = ("plan", "_rng", "_crng", "_epoch_edges", "_node_corr")

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rng = np.random.default_rng(plan.seed)
        # Second, independent stream for corruption decisions + bit flips.
        # Built only when it can ever be consumed, keyed off the same plan
        # seed through a distinct SeedSequence entropy tuple.
        self._crng = (
            np.random.default_rng((plan.seed, 0xC0FFEE))
            if plan.can_corrupt
            else None
        )
        # Per-node FIFO of pending compute corruptions, soonest first.
        self._node_corr: dict[int, list[NodeCorruption]] = {}
        for nc in sorted(plan.node_corruptions, key=lambda c: c.time):
            self._node_corr.setdefault(nc.node, []).append(nc)
        # Times at which the dead-link set can change: link-fault window
        # edges and node fail-stop instants.  Between consecutive edges the
        # set is constant, which is what lets the engine cache detour
        # routes per (src, dst, epoch) — see route_epoch.
        edges = set()
        for lf in plan.link_faults:
            edges.add(lf.start)
            if math.isfinite(lf.end):
                edges.add(lf.end)
        for nf in plan.node_failures:
            edges.add(nf.time)
        self._epoch_edges = sorted(edges)

    # Pure delegations ----------------------------------------------------

    def link_dead(self, u: int, v: int, time: float) -> bool:
        return self.plan.link_dead(u, v, time)

    def route_epoch(self, time: float) -> int:
        """Index of the piecewise-constant dead-link interval holding ``time``.

        ``link_dead(u, v, t)`` is the same function of ``(u, v)`` for every
        ``t`` with the same epoch, so fault-tolerant routes may be memoized
        per ``(src, dst, epoch)`` (:class:`repro.topology.routing.RouteCache`).
        """
        return bisect.bisect_right(self._epoch_edges, time)

    def node_failed(self, node: int, time: float) -> bool:
        return self.plan.node_failed(node, time)

    def degradation(self, u: int, v: int, time: float) -> float:
        return self.plan.degradation(u, v, time)

    # Stateful (stream-consuming) ----------------------------------------

    def roll_drop(self, u: int, v: int, time: float) -> bool:
        """Decide whether the hop starting now on ``u -> v`` is lost.

        Draws from the run's stream only when the effective probability is
        positive, so fault-free links never perturb the stream.
        """
        p = self.plan.drop_probability(u, v, time)
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        return bool(self._rng.random() < p)

    def roll_corruptions(self, u: int, v: int, time: float) -> list[LinkCorruption]:
        """Corruption faults triggering on the hop starting now on ``u -> v``.

        Each covering fault rolls independently against its own rate, in
        plan order, drawing from the *corruption* stream only when the
        outcome is genuinely random (0 < rate < 1) — certain outcomes
        never consume it, and the drop stream is never touched.
        """
        out = []
        for lc in self.plan.corruptions:
            if not lc.covers(u, v, time) or lc.rate <= 0.0:
                continue
            if lc.rate >= 1.0 or self._crng.random() < lc.rate:
                out.append(lc)
        return out

    def take_node_corruption(self, node: int, time: float) -> NodeCorruption | None:
        """Pop the next compute corruption due on ``node`` at ``time``."""
        pending = self._node_corr.get(node)
        if not pending or time < pending[0].time:
            return None
        return pending.pop(0)

    def corrupt_payload(self, data, model: str, flips: int) -> int:
        """Flip bits in-place on ``data``'s float64 leaves; returns the
        number of words actually flipped (0 when there is nothing to flip:
        control messages without float payloads pass through unharmed,
        like small flits protected by their own header CRC)."""
        leaves = _float_leaves(data)
        total = sum(leaf.size for leaf in leaves)
        if total == 0:
            return 0
        crng = self._crng
        for _ in range(flips):
            idx = int(crng.integers(total))
            for leaf in leaves:
                if idx < leaf.size:
                    leaf.flat[idx] = _flip_bit(leaf.flat[idx], model, crng)
                    break
                idx -= leaf.size
        return flips
