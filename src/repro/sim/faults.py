"""Deterministic, seeded fault injection for the simulator.

A :class:`FaultPlan` is a declarative description of everything that can go
wrong on a simulated machine:

* **link failures** — a directional or undirected link is dead during a
  virtual-time window (``[start, end)``); permanent failures use the
  default infinite window,
* **message drops** — each hop over a link is lost with some probability
  (a global rate, plus per-link windowed overrides),
* **link degradation** — a per-link multiplier stretching the ``t_w`` part
  of the hop cost during a window (a flaky cable, a congested backplane),
* **node fail-stop** — a node halts at a virtual time: its program makes
  no further progress and every incident link goes dead.

Determinism
-----------
The plan is immutable and carries a ``seed``.  Each :class:`Engine` run
builds a private :class:`FaultState` whose ``numpy`` generator is seeded
from the plan, and drop decisions are drawn from that stream in event
order.  Because the engine processes events in a deterministic order, the
same ``(MachineConfig, FaultPlan, program)`` triple always produces
bit-identical :class:`~repro.sim.tracing.RunResult`\\ s — fault injection
never sacrifices reproducibility.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import SimulationError

__all__ = [
    "LinkFault",
    "LinkDrop",
    "LinkDegradation",
    "NodeFailure",
    "FaultPlan",
    "FaultState",
]


def _check_window(start: float, end: float) -> None:
    if start < 0:
        raise SimulationError(f"fault window start must be >= 0, got {start}")
    if end <= start:
        raise SimulationError(
            f"fault window must satisfy start < end, got [{start}, {end})"
        )


@dataclass(frozen=True)
class LinkFault:
    """A link dead during ``[start, end)``.

    ``directed=False`` (default) kills both directional channels of the
    ``{u, v}`` link; ``directed=True`` kills only ``u -> v``.
    """

    u: int
    v: int
    start: float = 0.0
    end: float = math.inf
    directed: bool = False

    def __post_init__(self):
        _check_window(self.start, self.end)

    def covers(self, a: int, b: int, time: float) -> bool:
        if not self.start <= time < self.end:
            return False
        if (a, b) == (self.u, self.v):
            return True
        return not self.directed and (a, b) == (self.v, self.u)


@dataclass(frozen=True)
class LinkDrop:
    """Per-hop message-drop probability on a link during ``[start, end)``."""

    u: int
    v: int
    rate: float
    start: float = 0.0
    end: float = math.inf
    directed: bool = False

    def __post_init__(self):
        _check_window(self.start, self.end)
        if not 0.0 <= self.rate <= 1.0:
            raise SimulationError(f"drop rate must be in [0, 1], got {self.rate}")

    def covers(self, a: int, b: int, time: float) -> bool:
        if not self.start <= time < self.end:
            return False
        if (a, b) == (self.u, self.v):
            return True
        return not self.directed and (a, b) == (self.v, self.u)


@dataclass(frozen=True)
class LinkDegradation:
    """A ``t_w`` slowdown multiplier on a link during ``[start, end)``."""

    u: int
    v: int
    factor: float
    start: float = 0.0
    end: float = math.inf
    directed: bool = False

    def __post_init__(self):
        _check_window(self.start, self.end)
        if self.factor < 1.0:
            raise SimulationError(
                f"degradation factor must be >= 1 (a slowdown), got {self.factor}"
            )

    def covers(self, a: int, b: int, time: float) -> bool:
        if not self.start <= time < self.end:
            return False
        if (a, b) == (self.u, self.v):
            return True
        return not self.directed and (a, b) == (self.v, self.u)


@dataclass(frozen=True)
class NodeFailure:
    """Fail-stop: ``node`` makes no progress from virtual time ``time`` on."""

    node: int
    time: float = 0.0

    def __post_init__(self):
        if self.time < 0:
            raise SimulationError(f"fail-stop time must be >= 0, got {self.time}")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seeded description of injected faults.

    Build one directly or fluently::

        plan = (
            FaultPlan(seed=42)
            .with_link_fault(0, 1, start=100.0, end=500.0)   # transient
            .with_drop_rate(0.01)                            # global 1%
            .with_degraded_link(2, 3, factor=4.0)            # slow link
            .with_node_failure(5, at=1000.0)                 # fail-stop
        )

    All fields are tuples so the plan is hashable and safe to embed in the
    frozen :class:`~repro.sim.machine.MachineConfig`.
    """

    seed: int = 0
    link_faults: tuple[LinkFault, ...] = ()
    drops: tuple[LinkDrop, ...] = ()
    drop_rate: float = 0.0
    degradations: tuple[LinkDegradation, ...] = ()
    node_failures: tuple[NodeFailure, ...] = ()
    #: when False, a dead link raises LinkFailedError instead of detouring
    reroute: bool = True

    def __post_init__(self):
        if not 0.0 <= self.drop_rate <= 1.0:
            raise SimulationError(
                f"global drop rate must be in [0, 1], got {self.drop_rate}"
            )
        seen = set()
        for nf in self.node_failures:
            if nf.node in seen:
                raise SimulationError(
                    f"node {nf.node} has more than one fail-stop time"
                )
            seen.add(nf.node)

    # -- fluent builders ---------------------------------------------------

    def with_link_fault(
        self,
        u: int,
        v: int,
        *,
        start: float = 0.0,
        end: float = math.inf,
        directed: bool = False,
    ) -> "FaultPlan":
        fault = LinkFault(u, v, start, end, directed)
        return replace(self, link_faults=self.link_faults + (fault,))

    def with_drop_rate(self, rate: float) -> "FaultPlan":
        return replace(self, drop_rate=rate)

    def with_link_drop(
        self,
        u: int,
        v: int,
        rate: float,
        *,
        start: float = 0.0,
        end: float = math.inf,
        directed: bool = False,
    ) -> "FaultPlan":
        drop = LinkDrop(u, v, rate, start, end, directed)
        return replace(self, drops=self.drops + (drop,))

    def with_degraded_link(
        self,
        u: int,
        v: int,
        factor: float,
        *,
        start: float = 0.0,
        end: float = math.inf,
        directed: bool = False,
    ) -> "FaultPlan":
        deg = LinkDegradation(u, v, factor, start, end, directed)
        return replace(self, degradations=self.degradations + (deg,))

    def with_node_failure(self, node: int, *, at: float = 0.0) -> "FaultPlan":
        failure = NodeFailure(node, at)
        return replace(self, node_failures=self.node_failures + (failure,))

    def without_reroute(self) -> "FaultPlan":
        """Strict mode: dead links raise
        :class:`~repro.errors.LinkFailedError` instead of detouring."""
        return replace(self, reroute=False)

    # -- queries (pure functions of the plan) ------------------------------

    @property
    def is_empty(self) -> bool:
        return (
            not self.link_faults
            and not self.drops
            and self.drop_rate == 0.0
            and not self.degradations
            and not self.node_failures
        )

    @property
    def lossless(self) -> bool:
        """True iff no fault in this plan can *lose* a message.

        Link faults with rerouting enabled only detour (slower, not lost)
        and degradations only stretch hop times, so a plan with just those
        never needs acknowledgements or retransmission — the reliable
        layer fast-paths to plain delivery.  Drops, node fail-stops, and
        dead links without rerouting can all swallow messages.
        """
        return (
            self.drop_rate == 0.0
            and not self.drops
            and not self.node_failures
            and (self.reroute or not self.link_faults)
        )

    def node_fail_time(self, node: int) -> float | None:
        for nf in self.node_failures:
            if nf.node == node:
                return nf.time
        return None

    def link_dead(self, u: int, v: int, time: float) -> bool:
        """True iff the directional channel ``u -> v`` is dead at ``time``
        (an explicit link fault, or either endpoint fail-stopped)."""
        for lf in self.link_faults:
            if lf.covers(u, v, time):
                return True
        for nf in self.node_failures:
            if time >= nf.time and nf.node in (u, v):
                return True
        return False

    def node_failed(self, node: int, time: float) -> bool:
        t = self.node_fail_time(node)
        return t is not None and time >= t

    def degradation(self, u: int, v: int, time: float) -> float:
        """Combined ``t_w`` multiplier on ``u -> v`` at ``time`` (>= 1)."""
        factor = 1.0
        for deg in self.degradations:
            if deg.covers(u, v, time):
                factor *= deg.factor
        return factor

    def drop_probability(self, u: int, v: int, time: float) -> float:
        """Per-hop drop probability on ``u -> v`` at ``time``.

        The global rate and every covering per-link window are combined as
        independent loss processes: ``1 - Π(1 - rate_i)``.
        """
        survive = 1.0 - self.drop_rate
        for drop in self.drops:
            if drop.covers(u, v, time):
                survive *= 1.0 - drop.rate
        return 1.0 - survive


class FaultState:
    """Per-run mutable view of a :class:`FaultPlan`.

    Owns the run's random stream (seeded from the plan) so repeated runs of
    the same ``(config, plan, program)`` draw identical drop decisions.
    The engine creates one per run; plans themselves are never mutated.
    """

    __slots__ = ("plan", "_rng", "_epoch_edges")

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rng = np.random.default_rng(plan.seed)
        # Times at which the dead-link set can change: link-fault window
        # edges and node fail-stop instants.  Between consecutive edges the
        # set is constant, which is what lets the engine cache detour
        # routes per (src, dst, epoch) — see route_epoch.
        edges = set()
        for lf in plan.link_faults:
            edges.add(lf.start)
            if math.isfinite(lf.end):
                edges.add(lf.end)
        for nf in plan.node_failures:
            edges.add(nf.time)
        self._epoch_edges = sorted(edges)

    # Pure delegations ----------------------------------------------------

    def link_dead(self, u: int, v: int, time: float) -> bool:
        return self.plan.link_dead(u, v, time)

    def route_epoch(self, time: float) -> int:
        """Index of the piecewise-constant dead-link interval holding ``time``.

        ``link_dead(u, v, t)`` is the same function of ``(u, v)`` for every
        ``t`` with the same epoch, so fault-tolerant routes may be memoized
        per ``(src, dst, epoch)`` (:class:`repro.topology.routing.RouteCache`).
        """
        return bisect.bisect_right(self._epoch_edges, time)

    def node_failed(self, node: int, time: float) -> bool:
        return self.plan.node_failed(node, time)

    def degradation(self, u: int, v: int, time: float) -> float:
        return self.plan.degradation(u, v, time)

    # Stateful (stream-consuming) ----------------------------------------

    def roll_drop(self, u: int, v: int, time: float) -> bool:
        """Decide whether the hop starting now on ``u -> v`` is lost.

        Draws from the run's stream only when the effective probability is
        positive, so fault-free links never perturb the stream.
        """
        p = self.plan.drop_probability(u, v, time)
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        return bool(self._rng.random() < p)
