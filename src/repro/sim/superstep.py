"""Closed-form advancement of uniform shift-multiply supersteps.

The event engine normally drains one heap event per hop: a Cannon-style
inner loop of ``K`` multiply steps on ``p`` ranks costs ``O(K·p)`` events
(four handles, two single-hop transfers and a resume per rank per step).
Programs instead park a :class:`~repro.sim.ops.ShiftPhaseOp` at every
round boundary; the moment every active rank is parked at a compatible
boundary with drained event queues, this module advances all remaining
rounds at once with a handful of numpy recurrences — *bit-identically* to
what the event path would have produced.  Until then (residual foreign
traffic, ranks at different boundaries), the engine releases laggards one
event-path round at a time (see ``Engine._resolve_superstep`` and the
hazard maps in ``Engine._start_hop``), so irregular prefixes such as
Cannon's contended multi-hop skew stay exact and only the synchronized
tail is batched.

Why the closed form is exact
----------------------------
Within a uniform shift superstep every directional channel ``r -> a_to[r]``
(and ``r -> b_to[r]``) is reserved by exactly one rank, and each rank
reserves its A-hop strictly before its B-hop (they are issued by the same
generator step; the one-port send engagement additionally serializes them).
Inter-rank event interleaving therefore cannot change any reservation's
start time, so the per-rank recurrence

* ``startA = max(T, chanA_free, port_free)``, ``endA = startA + dA``
* ``startB = max(T, chanB_free, endA)``, ``endB = startB + dB``  (one-port)
* ``T' = max(endA, endB, endA[a_from], endB[b_from]) + t_c·flops``

— seeded from the live :class:`~repro.sim.ports.ContentionTracker` state,
so contention left over from a preceding event-driven phase (e.g. Cannon's
multi-hop skew) carries in exactly — reproduces the event path's times to
the last bit: ``max`` is exact, and every addition replays the same IEEE
operations in the same per-rank order the event path folds them in.

Eligibility
-----------
The fast path refuses (and the engine releases every parked rank with
:data:`~repro.sim.ops.SHIFT_FALLBACK`) whenever any per-hop behaviour
could differ from the closed form: active fault plans or heterogeneous
scenarios, per-hop trace records, in-flight messages or posted receives,
sub-tasks/barriers in progress, non-uniform step counts, block shapes or
tags, shifts that are not neighbour permutations, or self/overlapping
channels.  Fallback is always safe: the program runs the identical
per-message loop through the ordinary event machinery.

Per-channel busy times are bitwise identical between the two paths even
though the fast path may *create* a phase's channels in rank order rather
than event order: every aggregate over them
(``NetworkStats.total_channel_busy``) folds in sorted channel-key order,
never creation order, so non-dyadic parameter sets are exact too.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.sim.machine import PortModel
from repro.sim.ops import ShiftPhaseOp

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

__all__ = ["engine_supports_superstep", "try_advance_superstep"]


def engine_supports_superstep(engine: "Engine") -> bool:
    """Whether this engine run may ever use the closed-form path.

    Checked once at construction: fault plans, heterogeneous scenarios and
    per-hop tracing all need real events, and a ``max_virtual_time``
    watchdog must observe every intermediate event time.
    """
    return (
        engine.superstep_enabled
        and engine.faults is None
        and engine.scenario is None
        and not engine.trace_enabled
        and engine.max_virtual_time is None
    )


def _compatible(engine: "Engine", parked: dict) -> dict | None:
    """Validate the parked phase; returns the vector spec or ``None``.

    ``parked`` maps task -> (op, park_time).  All checks are conservative:
    any doubt means event-path fallback, never a wrong fast answer.
    """
    # Only main rank programs (sub-tasks share ports unpredictably), and
    # nothing else in flight anywhere in the engine.
    if engine._blocked or engine._parallel or engine._barrier_waiting:
        return None
    active = engine.config.num_nodes - len(engine.done) - len(engine.failed)
    if len(parked) != active:
        return None
    for task in parked:
        if isinstance(task, tuple):
            return None
    if any(engine._mailbox.values()) or any(engine._pending_recvs.values()):
        return None

    ranks = sorted(parked)
    first_op: ShiftPhaseOp = parked[ranks[0]][0]
    steps = first_op.steps
    tag_a, tag_b = first_op.tag_a, first_op.tag_b
    a_shape = np.shape(first_op.a_block)
    b_shape = np.shape(first_op.b_block)
    if steps < 1:
        return None
    for r in ranks:
        op = parked[r][0]
        if (
            op.steps != steps
            or op.tag_a != tag_a
            or op.tag_b != tag_b
            or np.shape(op.a_block) != a_shape
            or np.shape(op.b_block) != b_shape
        ):
            return None
    if steps > 1:
        if tag_a == tag_b:
            return None
        cube = engine.config.cube
        index = {r: i for i, r in enumerate(ranks)}
        a_to = [parked[r][0].a_to for r in ranks]
        b_to = [parked[r][0].b_to for r in ranks]
        seen_a: set[int] = set()
        seen_b: set[int] = set()
        for i, r in enumerate(ranks):
            ta, tb = a_to[i], b_to[i]
            if ta == r or tb == r or ta == tb:
                return None
            if ta not in index or tb not in index:
                return None
            if not cube.are_neighbors(r, ta) or not cube.are_neighbors(r, tb):
                return None
            # The receiver must expect exactly this sender on this tag.
            if parked[ta][0].a_from != r or parked[tb][0].b_from != r:
                return None
            seen_a.add(ta)
            seen_b.add(tb)
        if len(seen_a) != len(ranks) or len(seen_b) != len(ranks):
            return None  # not a permutation
        a_from_idx = np.array(
            [index[parked[r][0].a_from] for r in ranks], dtype=np.intp
        )
        b_from_idx = np.array(
            [index[parked[r][0].b_from] for r in ranks], dtype=np.intp
        )
    else:
        a_from_idx = b_from_idx = None
    return {
        "ranks": ranks,
        "steps": steps,
        "a_shape": a_shape,
        "b_shape": b_shape,
        "a_from_idx": a_from_idx,
        "b_from_idx": b_from_idx,
    }


def try_advance_superstep(engine: "Engine", parked: dict) -> dict | None:
    """Advance a fully-parked shift phase in closed form.

    Returns ``{task: (finish_time, (a, b, c))}`` on success or ``None``
    when the phase is not eligible (caller then releases every task with
    :data:`~repro.sim.ops.SHIFT_FALLBACK`).
    """
    spec = _compatible(engine, parked)
    if spec is None:
        return None
    ranks: list[int] = spec["ranks"]
    steps: int = spec["steps"]
    n_ranks = len(ranks)
    params = engine.config.params
    one_port = engine.config.port_model is PortModel.ONE_PORT

    a_rows, a_cols = spec["a_shape"]
    b_rows, b_cols = spec["b_shape"]
    if a_cols != b_rows:
        return None
    m_a = a_rows * a_cols
    m_b = b_rows * b_cols
    flops = 2.0 * a_rows * a_cols * b_cols
    d_c = params.flops_time(flops)
    # Exactly the engine's healthy single-hop cost (t_s + t_w·nwords).
    d_a = engine._t_s + engine._t_w * m_a
    d_b = engine._t_s + engine._t_w * m_b

    T = np.array([parked[r][1] for r in ranks], dtype=np.float64)
    stats = engine.stats
    # Per-step stat folds replicate the event path's float accumulation
    # order: each rank adds the same scalar once per multiply step.
    flops_acc = np.array([stats[r].flops for r in ranks], dtype=np.float64)
    compute_acc = np.array(
        [stats[r].compute_time for r in ranks], dtype=np.float64
    )
    for _ in range(steps):
        flops_acc += flops
        compute_acc += d_c

    shifts = steps - 1
    if shifts > 0:
        a_from_idx = spec["a_from_idx"]
        b_from_idx = spec["b_from_idx"]
        tracker = engine.tracker
        chan_a = [
            tracker._channel_resource(r, parked[r][0].a_to) for r in ranks
        ]
        chan_b = [
            tracker._channel_resource(r, parked[r][0].b_to) for r in ranks
        ]
        chan_a_free = np.array([c.next_free for c in chan_a])
        chan_b_free = np.array([c.next_free for c in chan_b])
        chan_a_busy = np.array([c.busy_time for c in chan_a])
        chan_b_busy = np.array([c.busy_time for c in chan_b])
        if one_port:
            ports = [tracker._send_port[r] for r in ranks]
            port_free = np.array([p.next_free for p in ports])
            port_busy = np.array([p.busy_time for p in ports])
        T = T + d_c  # step-0 multiply before the first shift
        for _ in range(shifts):
            if one_port:
                sA = np.maximum(T, np.maximum(chan_a_free, port_free))
                eA = sA + d_a
                sB = np.maximum(T, np.maximum(chan_b_free, eA))
                eB = sB + d_b
                port_free = eB
                port_busy += d_a
                port_busy += d_b
            else:
                sA = np.maximum(T, chan_a_free)
                eA = sA + d_a
                sB = np.maximum(T, chan_b_free)
                eB = sB + d_b
            chan_a_free = eA
            chan_b_free = eB
            chan_a_busy += d_a
            chan_b_busy += d_b
            # Resume when the sends' first (only) hops and both inbound
            # deliveries are done, then charge the next multiply.
            T = np.maximum(
                np.maximum(eA, eB),
                np.maximum(eA[a_from_idx], eB[b_from_idx]),
            )
            T = T + d_c
        for i in range(n_ranks):
            ra, rb = chan_a[i], chan_b[i]
            ra.next_free = float(chan_a_free[i])
            ra.busy_time = float(chan_a_busy[i])
            ra.reservations += shifts
            rb.next_free = float(chan_b_free[i])
            rb.busy_time = float(chan_b_busy[i])
            rb.reservations += shifts
            if one_port:
                pr = ports[i]
                pr.next_free = float(port_free[i])
                pr.busy_time = float(port_busy[i])
                pr.reservations += 2 * shifts
    else:
        T = T + d_c

    for i, r in enumerate(ranks):
        st = stats[r]
        st.flops = float(flops_acc[i])
        st.compute_time = float(compute_acc[i])
        st.messages_sent += 2 * shifts
        st.words_sent += (m_a + m_b) * shifts
        st.messages_received += 2 * shifts
        st.words_received += (m_a + m_b) * shifts

    # -- data plane: rotate blocks and accumulate the same products in the
    # same per-rank order the event path would have (bitwise equal C).
    a_blocks = [parked[r][0].a_block for r in ranks]
    b_blocks = [parked[r][0].b_block for r in ranks]
    # Continue each rank's partial accumulator from earlier event-path
    # rounds (same array object the event path would have kept adding
    # into, so the float accumulation order is bitwise unchanged).
    c_blocks: list = [parked[r][0].c_block for r in ranks]
    if not engine.timing_only:
        a_from_list = (
            list(spec["a_from_idx"]) if shifts > 0 else None
        )
        b_from_list = (
            list(spec["b_from_idx"]) if shifts > 0 else None
        )
        for step in range(steps):
            for i in range(n_ranks):
                if c_blocks[i] is None:
                    c_blocks[i] = a_blocks[i] @ b_blocks[i]
                else:
                    c_blocks[i] += a_blocks[i] @ b_blocks[i]
            if step < shifts:
                a_blocks = [a_blocks[j] for j in a_from_list]
                b_blocks = [b_blocks[j] for j in b_from_list]
    else:
        # Timing-only runs never read block *values* and shapes are
        # uniform, so the rotation is a no-op: keep the entry references.
        # C becomes a zero-cost broadcast view with the product's shape,
        # mirroring what ctx.local_matmul returns in timing-only mode, so
        # downstream communication phases still see correctly-sized blocks.
        c_view = np.broadcast_to(0.0, (a_rows, b_cols))
        c_blocks = [c_view] * n_ranks

    return {
        ranks[i]: (float(T[i]), (a_blocks[i], b_blocks[i], c_blocks[i]))
        for i in range(n_ranks)
    }
