"""Closed-form advancement of uniform shift-multiply supersteps.

The event engine normally drains one heap event per hop: a Cannon-style
inner loop of ``K`` multiply steps on ``p`` ranks costs ``O(K·p)`` events
(four handles, two single-hop transfers and a resume per rank per step).
Programs instead park a :class:`~repro.sim.ops.ShiftPhaseOp` at every
round boundary; the moment every active rank is parked at a compatible
boundary with drained event queues, this module advances all remaining
rounds at once with a handful of numpy recurrences — *bit-identically* to
what the event path would have produced.  Until then (residual foreign
traffic, ranks at different boundaries), the engine releases laggards one
event-path round at a time (see ``Engine._resolve_superstep`` and the
hazard maps in ``Engine._start_hop``), so irregular prefixes such as
Cannon's contended multi-hop skew stay exact and only the synchronized
tail is batched.

Why the closed form is exact
----------------------------
Within a uniform shift superstep every directional channel ``r -> a_to[r]``
(and ``r -> b_to[r]``) is reserved by exactly one rank, and each rank
reserves its A-hop strictly before its B-hop (they are issued by the same
generator step; the one-port send engagement additionally serializes them).
Inter-rank event interleaving therefore cannot change any reservation's
start time, so the per-rank recurrence

* ``startA = max(T, chanA_free, port_free)``, ``endA = startA + dA``
* ``startB = max(T, chanB_free, endA)``, ``endB = startB + dB``  (one-port)
* ``T' = max(endA, endB, endA[a_from], endB[b_from]) + t_c·flops``

— seeded from the live :class:`~repro.sim.ports.ContentionTracker` state,
so contention left over from a preceding event-driven phase (e.g. Cannon's
multi-hop skew) carries in exactly — reproduces the event path's times to
the last bit: ``max`` is exact, and every addition replays the same IEEE
operations in the same per-rank order the event path folds them in.

Eligibility
-----------
The fast path refuses (and the engine releases every parked rank with
:data:`~repro.sim.ops.SHIFT_FALLBACK`) whenever any per-hop behaviour
could differ from the closed form: active fault plans or heterogeneous
scenarios, per-hop trace records, in-flight messages or posted receives,
sub-tasks/barriers in progress, non-uniform step counts, block shapes or
tags, shifts that are not neighbour permutations, or self/overlapping
channels.  Fallback is always safe: the program runs the identical
per-message loop through the ordinary event machinery.

Per-channel busy times are bitwise identical between the two paths even
though the fast path may *create* a phase's channels in rank order rather
than event order: every aggregate over them
(``NetworkStats.total_channel_busy``) folds in sorted channel-key order,
never creation order, so non-dyadic parameter sets are exact too.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.sim.machine import PortModel
from repro.sim.message import payload_words
from repro.sim.ops import ShiftPhaseOp

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

__all__ = [
    "engine_supports_superstep",
    "superstep_ineligibility_reason",
    "try_advance_superstep",
    "try_advance_collective",
]


def engine_supports_superstep(engine: "Engine") -> bool:
    """Whether this engine run may ever use the closed-form path.

    Checked once at construction: fault plans, heterogeneous scenarios and
    per-hop tracing all need real events, and a ``max_virtual_time``
    watchdog must observe every intermediate event time.
    """
    return (
        engine.superstep_enabled
        and engine.faults is None
        and engine.scenario is None
        and not engine.trace_enabled
        and engine.max_virtual_time is None
    )


def superstep_ineligibility_reason(engine: "Engine") -> str | None:
    """Name the feature forcing the event path, or None when eligible.

    The counterpart of :func:`engine_supports_superstep` for user-facing
    diagnostics: a sim-backed figure run that silently takes the slow path
    can name why (``repro figure --backend sim`` prints this).
    """
    if not engine.superstep_enabled:
        return "superstep disabled"
    if engine.faults is not None:
        return "fault plan"
    if engine.scenario is not None:
        return "heterogeneous scenario"
    if engine.trace_enabled:
        return "per-hop tracing"
    if engine.max_virtual_time is not None:
        return "max_virtual_time watchdog"
    return None


def _compatible(engine: "Engine", parked: dict) -> dict | None:
    """Validate the parked phase; returns the vector spec or ``None``.

    ``parked`` maps task -> (op, park_time).  All checks are conservative:
    any doubt means event-path fallback, never a wrong fast answer.
    """
    # Only main rank programs (sub-tasks share ports unpredictably), and
    # nothing else in flight anywhere in the engine.
    if engine._blocked or engine._parallel or engine._barrier_waiting:
        return None
    active = engine.config.num_nodes - len(engine.done) - len(engine.failed)
    if len(parked) != active:
        return None
    for task in parked:
        if isinstance(task, tuple):
            return None
    if any(engine._mailbox.values()) or any(engine._pending_recvs.values()):
        return None

    ranks = sorted(parked)
    first_op: ShiftPhaseOp = parked[ranks[0]][0]
    steps = first_op.steps
    tag_a, tag_b = first_op.tag_a, first_op.tag_b
    a_shape = np.shape(first_op.a_block)
    b_shape = np.shape(first_op.b_block)
    if steps < 1:
        return None
    for r in ranks:
        op = parked[r][0]
        if (
            op.steps != steps
            or op.tag_a != tag_a
            or op.tag_b != tag_b
            or np.shape(op.a_block) != a_shape
            or np.shape(op.b_block) != b_shape
        ):
            return None
    if steps > 1:
        if tag_a == tag_b:
            return None
        cube = engine.config.cube
        index = {r: i for i, r in enumerate(ranks)}
        a_to = [parked[r][0].a_to for r in ranks]
        b_to = [parked[r][0].b_to for r in ranks]
        seen_a: set[int] = set()
        seen_b: set[int] = set()
        for i, r in enumerate(ranks):
            ta, tb = a_to[i], b_to[i]
            if ta == r or tb == r or ta == tb:
                return None
            if ta not in index or tb not in index:
                return None
            if not cube.are_neighbors(r, ta) or not cube.are_neighbors(r, tb):
                return None
            # The receiver must expect exactly this sender on this tag.
            if parked[ta][0].a_from != r or parked[tb][0].b_from != r:
                return None
            seen_a.add(ta)
            seen_b.add(tb)
        if len(seen_a) != len(ranks) or len(seen_b) != len(ranks):
            return None  # not a permutation
        a_from_idx = np.array(
            [index[parked[r][0].a_from] for r in ranks], dtype=np.intp
        )
        b_from_idx = np.array(
            [index[parked[r][0].b_from] for r in ranks], dtype=np.intp
        )
    else:
        a_from_idx = b_from_idx = None
    return {
        "ranks": ranks,
        "steps": steps,
        "a_shape": a_shape,
        "b_shape": b_shape,
        "a_from_idx": a_from_idx,
        "b_from_idx": b_from_idx,
    }


def try_advance_superstep(engine: "Engine", parked: dict) -> dict | None:
    """Advance a fully-parked shift phase in closed form.

    Returns ``{task: (finish_time, (a, b, c))}`` on success or ``None``
    when the phase is not eligible (caller then releases every task with
    :data:`~repro.sim.ops.SHIFT_FALLBACK`).
    """
    spec = _compatible(engine, parked)
    if spec is None:
        return None
    ranks: list[int] = spec["ranks"]
    steps: int = spec["steps"]
    n_ranks = len(ranks)
    params = engine.config.params
    one_port = engine.config.port_model is PortModel.ONE_PORT

    a_rows, a_cols = spec["a_shape"]
    b_rows, b_cols = spec["b_shape"]
    if a_cols != b_rows:
        return None
    m_a = a_rows * a_cols
    m_b = b_rows * b_cols
    flops = 2.0 * a_rows * a_cols * b_cols
    d_c = params.flops_time(flops)
    # Exactly the engine's healthy single-hop cost (t_s + t_w·nwords).
    d_a = engine._t_s + engine._t_w * m_a
    d_b = engine._t_s + engine._t_w * m_b

    T = np.array([parked[r][1] for r in ranks], dtype=np.float64)
    stats = engine.stats
    # Per-step stat folds replicate the event path's float accumulation
    # order: each rank adds the same scalar once per multiply step.
    flops_acc = np.array([stats[r].flops for r in ranks], dtype=np.float64)
    compute_acc = np.array(
        [stats[r].compute_time for r in ranks], dtype=np.float64
    )
    for _ in range(steps):
        flops_acc += flops
        compute_acc += d_c

    shifts = steps - 1
    if shifts > 0:
        a_from_idx = spec["a_from_idx"]
        b_from_idx = spec["b_from_idx"]
        tracker = engine.tracker
        chan_a = [
            tracker._channel_resource(r, parked[r][0].a_to) for r in ranks
        ]
        chan_b = [
            tracker._channel_resource(r, parked[r][0].b_to) for r in ranks
        ]
        chan_a_free = np.array([c.next_free for c in chan_a])
        chan_b_free = np.array([c.next_free for c in chan_b])
        chan_a_busy = np.array([c.busy_time for c in chan_a])
        chan_b_busy = np.array([c.busy_time for c in chan_b])
        if one_port:
            ports = [tracker._send_port[r] for r in ranks]
            port_free = np.array([p.next_free for p in ports])
            port_busy = np.array([p.busy_time for p in ports])
        T = T + d_c  # step-0 multiply before the first shift
        for _ in range(shifts):
            if one_port:
                sA = np.maximum(T, np.maximum(chan_a_free, port_free))
                eA = sA + d_a
                sB = np.maximum(T, np.maximum(chan_b_free, eA))
                eB = sB + d_b
                port_free = eB
                port_busy += d_a
                port_busy += d_b
            else:
                sA = np.maximum(T, chan_a_free)
                eA = sA + d_a
                sB = np.maximum(T, chan_b_free)
                eB = sB + d_b
            chan_a_free = eA
            chan_b_free = eB
            chan_a_busy += d_a
            chan_b_busy += d_b
            # Resume when the sends' first (only) hops and both inbound
            # deliveries are done, then charge the next multiply.
            T = np.maximum(
                np.maximum(eA, eB),
                np.maximum(eA[a_from_idx], eB[b_from_idx]),
            )
            T = T + d_c
        for i in range(n_ranks):
            ra, rb = chan_a[i], chan_b[i]
            ra.next_free = float(chan_a_free[i])
            ra.busy_time = float(chan_a_busy[i])
            ra.reservations += shifts
            rb.next_free = float(chan_b_free[i])
            rb.busy_time = float(chan_b_busy[i])
            rb.reservations += shifts
            if one_port:
                pr = ports[i]
                pr.next_free = float(port_free[i])
                pr.busy_time = float(port_busy[i])
                pr.reservations += 2 * shifts
    else:
        T = T + d_c

    for i, r in enumerate(ranks):
        st = stats[r]
        st.flops = float(flops_acc[i])
        st.compute_time = float(compute_acc[i])
        st.messages_sent += 2 * shifts
        st.words_sent += (m_a + m_b) * shifts
        st.messages_received += 2 * shifts
        st.words_received += (m_a + m_b) * shifts

    # -- data plane: rotate blocks and accumulate the same products in the
    # same per-rank order the event path would have (bitwise equal C).
    a_blocks = [parked[r][0].a_block for r in ranks]
    b_blocks = [parked[r][0].b_block for r in ranks]
    # Continue each rank's partial accumulator from earlier event-path
    # rounds (same array object the event path would have kept adding
    # into, so the float accumulation order is bitwise unchanged).
    c_blocks: list = [parked[r][0].c_block for r in ranks]
    if not engine.timing_only:
        a_from_list = (
            list(spec["a_from_idx"]) if shifts > 0 else None
        )
        b_from_list = (
            list(spec["b_from_idx"]) if shifts > 0 else None
        )
        for step in range(steps):
            for i in range(n_ranks):
                if c_blocks[i] is None:
                    c_blocks[i] = a_blocks[i] @ b_blocks[i]
                else:
                    c_blocks[i] += a_blocks[i] @ b_blocks[i]
            if step < shifts:
                a_blocks = [a_blocks[j] for j in a_from_list]
                b_blocks = [b_blocks[j] for j in b_from_list]
    else:
        # Timing-only runs never read block *values* and shapes are
        # uniform, so the rotation is a no-op: keep the entry references.
        # C becomes a zero-cost broadcast view with the product's shape,
        # mirroring what ctx.local_matmul returns in timing-only mode, so
        # downstream communication phases still see correctly-sized blocks.
        c_view = np.broadcast_to(0.0, (a_rows, b_cols))
        c_blocks = [c_view] * n_ranks

    return {
        ranks[i]: (float(T[i]), (a_blocks[i], b_blocks[i], c_blocks[i]))
        for i in range(n_ranks)
    }


# ---------------------------------------------------------------------------
# Collective phases (CollectivePhaseOp)
# ---------------------------------------------------------------------------
#
# The collectives in ``repro.collectives`` declare themselves to the engine
# before running their wire schedule (see ``repro.collectives.phase``).  When
# every active rank is parked on a CollectivePhaseOp with quiet queues, the
# phase decomposes into independent *groups* — one per (kind, schedule,
# member-tuple, tag, root, op) — whose channels are provably disjoint, and
# each group advances through the same recurrence the event path would fold:
#
# * one-port SBT exchange (allgather / alltoall / reduce_scatter):
#   per step ``k``: ``s = max(T, chan_free, port_free)``, ``e = s + d_k``,
#   ``T' = max(e, e[partner_k])``;
# * one-port SBT broadcast / reduce: the binomial tree replayed in
#   BFS / combining-step order with blocking-send and blocking-recv resume
#   rules (``T' = max(T, arrival)``, sends serialize through the port);
# * multi-port rotated trees (all five kinds): round-synchronized — each
#   round reserves one channel per active tree at ``max(T, chan_free)`` and
#   resumes at the max of the round's send ends and arrivals; rounds with no
#   handles leave a rank's clock untouched, exactly like the skipped
#   ``waitall``.
#
# Word counts and result values come from a faithful replay of each
# schedule's moving dicts/chunks (same helper functions, same fold order),
# so makespans, per-channel busy times, message/word counters and returned
# arrays are all bit-identical to the event path.  Any doubt — schedule
# mismatch with the port model, malformed groups, foreign traffic, or any
# exception while planning (which the event path would reproduce verbatim) —
# refuses, and the engine releases every parked rank with
# ``COLLECTIVE_FALLBACK``.  Planning mutates nothing: tracker resources and
# stats are written only after every group has planned successfully.

_EXCHANGE_KINDS = frozenset({"allgather", "alltoall", "reduce_scatter"})
_ROOTED_KINDS = frozenset({"broadcast", "reduce"})


class _Refuse(Exception):
    """Internal: abandon the closed form, fall back to the event path."""


class _CollGroup:
    """One collective operation instance: a member set running one schedule."""

    __slots__ = (
        "kind", "sched", "nodes", "free_dims", "tag", "root", "op",
        "n", "d", "sub", "cr_of_sub", "at", "payloads", "slots",
    )

    def __init__(self, kind, sched, nodes, free_dims, tag, root, op):
        self.kind = kind
        self.sched = sched
        self.nodes = list(nodes)
        self.free_dims = list(free_dims)
        self.tag = tag
        self.root = root
        self.op = op
        self.n = len(nodes)
        self.d = len(free_dims)
        self.sub = None
        self.cr_of_sub = None
        self.at = [0.0] * self.n
        self.payloads = [None] * self.n
        self.slots = [0] * self.n

    def build_tables(self) -> bool:
        """Recompute the subcube-index maps Comm guarantees; False if broken."""
        base = self.nodes[0]
        mask = 0
        for dim in self.free_dims:
            mask |= 1 << dim
        sub = []
        for node in self.nodes:
            if (node ^ base) & ~mask:
                return False
            s_val = 0
            for k, dim in enumerate(self.free_dims):
                if (node >> dim) & 1:
                    s_val |= 1 << k
            sub.append(s_val)
        cr_of_sub = [-1] * self.n
        for cr, s_val in enumerate(sub):
            if cr_of_sub[s_val] != -1:
                return False
            cr_of_sub[s_val] = cr
        self.sub = np.asarray(sub, dtype=np.intp)
        self.cr_of_sub = np.asarray(cr_of_sub, dtype=np.intp)
        return True

    def partner(self, k: int) -> np.ndarray:
        """Comm rank of every member's neighbour across subcube dim ``k``."""
        return self.cr_of_sub[self.sub ^ (1 << k)]


def _collective_groups(engine: "Engine", parked: dict) -> list | None:
    """Partition the parked ops into validated groups, or ``None``."""
    if engine._blocked or engine._parallel or engine._barrier_waiting:
        return None
    active = engine.config.num_nodes - len(engine.done) - len(engine.failed)
    if len(parked) != active:
        return None
    if any(engine._mailbox.values()) or any(engine._pending_recvs.values()):
        return None
    one_port = engine.config.port_model is PortModel.ONE_PORT

    groups: dict[tuple, _CollGroup] = {}
    filled: dict[tuple, int] = {}
    for task, (op, at) in parked.items():
        if isinstance(task, tuple):
            return None
        specs = op.specs
        if not 1 <= len(specs) <= 2:
            return None
        if len(specs) == 2:
            # Fused pairs overlap only on multi-port machines (a one-port
            # node interleaves the two schedules through its single
            # engagement — keep that contention on the event path), and
            # only when the two subcubes use disjoint physical dimensions.
            if one_port:
                return None
            if set(specs[0].free_dims) & set(specs[1].free_dims):
                return None
        for slot, spec in enumerate(specs):
            kind = spec.kind
            if kind in _EXCHANGE_KINDS:
                if spec.root is not None:
                    return None
            elif kind in _ROOTED_KINDS:
                if not isinstance(spec.root, int):
                    return None
            else:
                return None
            if spec.sched != ("sbt" if one_port else "rotated"):
                return None
            n = len(spec.members)
            if n < 2 or n != (1 << len(spec.free_dims)):
                return None
            if not 0 <= spec.rank < n or spec.members[spec.rank] != task:
                return None
            key = (
                kind, spec.sched, spec.members, spec.free_dims,
                spec.tag, spec.root, spec.op,
            )
            g = groups.get(key)
            if g is None:
                g = _CollGroup(
                    kind, spec.sched, spec.members, spec.free_dims,
                    spec.tag, spec.root, spec.op,
                )
                if not g.build_tables():
                    return None
                groups[key] = g
                filled[key] = 0
            cr = spec.rank
            if (filled[key] >> cr) & 1:
                return None
            filled[key] |= 1 << cr
            g.at[cr] = at
            g.payloads[cr] = spec.payload
            g.slots[cr] = slot
    out = []
    for key, g in groups.items():
        if filled[key] != (1 << g.n) - 1:
            return None
        if g.kind in _ROOTED_KINDS and not 0 <= g.root < g.n:
            return None
        out.append(g)
    return out


def _channel_seed(tracker, key: tuple) -> tuple:
    """(next_free, busy_time) of a channel *without* creating it.

    Channel resources are created lazily and ``channels_used`` counts every
    created one, so planning must never instantiate a channel a refused
    attempt would not have touched — creation is deferred to commit.
    """
    i = tracker._channel_ids.get(key)
    if i is None:
        return 0.0, 0.0
    return float(tracker._free[i]), float(tracker._busy[i])


def _copy_value(x):
    from repro.sim.engine import _copy_payload

    return _copy_payload(x)


def _new_plan(n: int):
    return {
        "finish": [0.0] * n,
        "values": [None] * n,
        "channels": {},
        "ports": {},
        "ms": np.zeros(n, dtype=np.int64), "ws": np.zeros(n, dtype=np.int64),
        "mr": np.zeros(n, dtype=np.int64), "wr": np.zeros(n, dtype=np.int64),
    }


# -- one-port SBT planners ---------------------------------------------------


def _replay_sbt_exchange(g: _CollGroup):
    """Per-step word counts + final values of a one-port dimension exchange."""
    n, d = g.n, g.d
    words = []
    if g.kind == "allgather":
        # Recursive doubling over {comm_rank: block} dicts; track held key
        # sets, word counts via the engine's own payload accounting.
        word_of = [payload_words({0: p}) for p in g.payloads]
        held = [{i} for i in range(n)]
        for k in range(d):
            pidx = g.partner(k)
            w = np.array(
                [sum(word_of[s] for s in held[i]) for i in range(n)],
                dtype=np.int64,
            )
            words.append(w)
            held = [held[i] | held[pidx[i]] for i in range(n)]
        values = [
            [g.payloads[src] if src == i else _copy_value(g.payloads[src])
             for src in range(n)]
            for i in range(n)
        ]
        return words, values
    if g.kind == "alltoall":
        blocks = [list(p) for p in g.payloads]
        for b in blocks:
            if len(b) != n:
                raise _Refuse
        word_of = [[payload_words({0: b}) for b in row] for row in blocks]
        held = [{(i, dst) for dst in range(n)} for i in range(n)]
        bit = [[(int(g.sub[i]) >> k) & 1 for k in range(d)] for i in range(n)]
        for k in range(d):
            pidx = g.partner(k)
            moving = [
                {key for key in held[i] if bit[key[1]][k] != bit[i][k]}
                for i in range(n)
            ]
            w = np.array(
                [sum(word_of[s][t] for (s, t) in moving[i]) for i in range(n)],
                dtype=np.int64,
            )
            words.append(w)
            held = [
                (held[i] - moving[i]) | moving[pidx[i]] for i in range(n)
            ]
        for i in range(n):
            if held[i] != {(src, i) for src in range(n)}:
                raise _Refuse
        values = [
            [blocks[i][i] if src == i else _copy_value(blocks[src][i])
             for src in range(n)]
            for i in range(n)
        ]
        return words, values
    # reduce_scatter: recursive halving with real folds (values matter).
    op = g.op
    acc = [
        {dst: np.array(g.payloads[i][dst]) for dst in range(n)}
        for i in range(n)
    ]
    for i in range(n):
        if len(g.payloads[i]) != n:
            raise _Refuse
    for k in range(d):
        pidx = g.partner(k)
        moving = []
        for i in range(n):
            my_bit = (int(g.sub[i]) >> k) & 1
            moving.append({
                dst: acc[i].pop(dst)
                for dst in list(acc[i])
                if (int(g.sub[dst]) >> k) & 1 != my_bit
            })
        words.append(np.array(
            [payload_words(moving[i]) for i in range(n)], dtype=np.int64
        ))
        for i in range(n):
            for dst, arr in moving[pidx[i]].items():
                acc[i][dst] = op(acc[i][dst], arr)
    for i in range(n):
        if set(acc[i]) != {i}:
            raise _Refuse
    return words, [acc[i][i] for i in range(n)]


def _plan_sbt_exchange(engine: "Engine", g: _CollGroup) -> dict:
    n, d = g.n, g.d
    t_s, t_w = engine._t_s, engine._t_w
    tracker = engine.tracker
    words, values = _replay_sbt_exchange(g)
    plan = _new_plan(n)
    plan["values"] = values

    T = np.array(g.at, dtype=np.float64)
    port_free = np.empty(n)
    port_busy = np.empty(n)
    for i, node in enumerate(g.nodes):
        p = tracker._send_port[node]
        port_free[i] = p.next_free
        port_busy[i] = p.busy_time
    sent = np.zeros(n, dtype=np.int64)
    rcvd = np.zeros(n, dtype=np.int64)
    for k in range(d):
        pidx = g.partner(k)
        w = words[k]
        dur = t_s + t_w * w
        dim = g.free_dims[k]
        cf = np.empty(n)
        cb = np.empty(n)
        keys = []
        for i, node in enumerate(g.nodes):
            key = (node, node ^ (1 << dim))
            cf[i], cb[i] = _channel_seed(tracker, key)
            keys.append(key)
        s = np.maximum(T, np.maximum(cf, port_free))
        e = s + dur
        port_busy = port_busy + dur
        port_free = e
        eb = cb + dur
        for i in range(n):
            plan["channels"][keys[i]] = (float(e[i]), float(eb[i]), 1)
        T = np.maximum(e, e[pidx])
        sent += w
        rcvd += w[pidx]
    for i in range(n):
        plan["finish"][i] = float(T[i])
        plan["ports"][g.nodes[i]] = (
            float(port_free[i]), float(port_busy[i]), d
        )
        plan["ms"][i] = d
        plan["mr"][i] = d
        plan["ws"][i] = int(sent[i])
        plan["wr"][i] = int(rcvd[i])
    return plan


def _plan_sbt_broadcast(engine: "Engine", g: _CollGroup) -> dict:
    n, d = g.n, g.d
    t_s, t_w = engine._t_s, engine._t_w
    tracker = engine.tracker
    plan = _new_plan(n)
    root = g.root
    sub_root = int(g.sub[root])
    rel = [int(g.sub[i]) ^ sub_root for i in range(n)]
    data = g.payloads[root]
    m = payload_words(data)
    dur = t_s + t_w * m

    # Identity order: receive at the highest set bit, send every later step.
    t_recv = [r.bit_length() - 1 for r in rel]  # root: -1
    e_send: dict[tuple[int, int], float] = {}
    # Parents (smaller relative index, earlier recv step) resolve first.
    for i in sorted(range(n), key=lambda i: t_recv[i]):
        Ti = g.at[i]
        if rel[i]:
            tr = t_recv[i]
            parent = int(g.cr_of_sub[int(g.sub[i]) ^ (1 << tr)])
            Ti = max(Ti, e_send[(parent, tr)])
            start_t = tr + 1
            plan["mr"][i] = 1
            plan["wr"][i] = m
        else:
            start_t = 0
        node = g.nodes[i]
        if start_t < d:
            port = tracker._send_port[node]
            pf = port.next_free
            pb = port.busy_time
            for t in range(start_t, d):
                v = node ^ (1 << g.free_dims[t])
                cf, cb = _channel_seed(tracker, (node, v))
                s = max(Ti, cf, pf)
                e = s + dur
                pf = e
                pb += dur
                plan["channels"][(node, v)] = (e, cb + dur, 1)
                e_send[(i, t)] = e
                Ti = e  # blocking send: resume at the hop's end
            plan["ports"][node] = (pf, pb, d - start_t)
            plan["ms"][i] = d - start_t
            plan["ws"][i] = m * (d - start_t)
        plan["finish"][i] = Ti
        plan["values"][i] = data if i == root else _copy_value(data)
    return plan


def _plan_sbt_reduce(engine: "Engine", g: _CollGroup) -> dict:
    n, d = g.n, g.d
    t_s, t_w = engine._t_s, engine._t_w
    tracker = engine.tracker
    op = g.op
    plan = _new_plan(n)
    root = g.root
    sub_root = int(g.sub[root])
    rel = [int(g.sub[i]) ^ sub_root for i in range(n)]
    # Identity order: send the accumulator at the lowest set bit; receive
    # (and fold) at every earlier step.
    my_step = [(r & -r).bit_length() - 1 if r else d for r in rel]
    acc = [np.array(g.payloads[i]) for i in range(n)]
    T = list(g.at)
    e_by_receiver: dict[tuple[int, int], tuple[float, int]] = {}
    for t in range(d):
        senders = [i for i in range(n) if my_step[i] == t]
        for i in senders:
            parent = int(g.cr_of_sub[int(g.sub[i]) ^ (1 << t)])
            w = payload_words(acc[i])
            dur = t_s + t_w * w
            node = g.nodes[i]
            v = node ^ (1 << g.free_dims[t])
            port = tracker._send_port[node]
            cf, cb = _channel_seed(tracker, (node, v))
            s = max(T[i], cf, port.next_free)
            e = s + dur
            plan["ports"][node] = (e, port.busy_time + dur, 1)
            plan["channels"][(node, v)] = (e, cb + dur, 1)
            plan["finish"][i] = e
            plan["ms"][i] = 1
            plan["ws"][i] = w
            e_by_receiver[(parent, t)] = (e, i)
        for i in range(n):
            if my_step[i] > t:
                e_child, child = e_by_receiver[(i, t)]
                T[i] = max(T[i], e_child)
                acc[i] = op(acc[i], acc[child])
                plan["mr"][i] += 1
                plan["wr"][i] += payload_words(acc[child])
    plan["finish"][root] = T[root]
    plan["values"][root] = acc[root]
    return plan


# -- multi-port rotated planners --------------------------------------------


def _chunk_sizes(total: int, d: int) -> list[int]:
    """Element counts ``np.array_split`` gives each of ``d`` flat chunks."""
    base, extra = divmod(total, d)
    return [base + 1 if j < extra else base for j in range(d)]


def _rotated_steps(rel: list[int], d: int, combine: bool) -> np.ndarray:
    """Per-(rank, tree) recv step (distribution) or send step (combining).

    Distribution trees receive at the *last* order position of a set bit,
    combining trees send at the *first*.  The root's sentinel is -1
    (distribution: "sends from round 0") or ``d`` (combining: "receives at
    every round").
    """
    n = len(rel)
    out = np.empty((n, d), dtype=np.int64)
    for i, r in enumerate(rel):
        for j in range(d):
            if r == 0:
                out[i, j] = -1 if not combine else d
                continue
            best = -1 if not combine else d
            for b in range(d):
                if (r >> b) & 1:
                    pos = (b - j) % d
                    if combine:
                        if pos < best:
                            best = pos
                    elif pos > best:
                        best = pos
            out[i, j] = best
    return out


def _rotated_round(plan, g, T, Tn, chan_free, chan_busy, chan_used,
                   t, j, senders, receivers, dur, t_w_words):
    """Advance one (round, tree) of a rotated schedule; updates Tn in place.

    ``senders``/``receivers`` are boolean masks; ``dur`` the per-sender hop
    durations (array over members).  Returns the send-end array (NaN where
    inactive) so callers can read arrivals.
    """
    n = g.n
    k = (j + t) % g.d
    e_full = np.full(n, -np.inf)
    idx = np.nonzero(senders)[0]
    if idx.size:
        s = np.maximum(T[idx], chan_free[idx, k])
        e = s + dur[idx]
        chan_free[idx, k] = e
        chan_busy[idx, k] += dur[idx]
        chan_used[idx, k] += 1
        e_full[idx] = e
        np.maximum(Tn, np.where(senders, e_full, -np.inf), out=Tn)
        plan["ms"][idx] += 1
        plan["ws"][idx] += t_w_words[idx].astype(np.int64)
    ridx = np.nonzero(receivers)[0]
    if ridx.size:
        pidx = g.partner(k)
        arrival = e_full[pidx]
        np.maximum(Tn, np.where(receivers, arrival, -np.inf), out=Tn)
        plan["mr"][ridx] += 1
        plan["wr"][ridx] += t_w_words[pidx[ridx]].astype(np.int64)
    return e_full


def _commit_rotated_channels(plan, g, chan_free, chan_busy, chan_used):
    for i, node in enumerate(g.nodes):
        for k in range(g.d):
            used = int(chan_used[i, k])
            if used:
                key = (node, node ^ (1 << g.free_dims[k]))
                plan["channels"][key] = (
                    float(chan_free[i, k]), float(chan_busy[i, k]), used
                )


def _seed_rotated_channels(tracker, g):
    n, d = g.n, g.d
    chan_free = np.empty((n, d))
    chan_busy = np.empty((n, d))
    for i, node in enumerate(g.nodes):
        for k in range(d):
            key = (node, node ^ (1 << g.free_dims[k]))
            chan_free[i, k], chan_busy[i, k] = _channel_seed(tracker, key)
    return chan_free, chan_busy


def _replay_rotated_exchange(g: _CollGroup):
    """Word counts per (round, tree) + final values for rotated exchanges."""
    from repro.collectives.chunking import (
        chunk_header,
        rebuild_from_header,
        split_chunks,
    )

    n, d = g.n, g.d
    words = [[None] * d for _ in range(d)]  # [t][j] -> int array (n,)
    if g.kind == "allgather":
        arrs = [np.asarray(p) for p in g.payloads]
        wchunk = [_chunk_sizes(int(a.size), d) for a in arrs]
        held = [[{i} for _ in range(d)] for i in range(n)]
        for t in range(d):
            for j in range(d):
                k = (j + t) % d
                pidx = g.partner(k)
                w = np.array(
                    [sum(wchunk[s][j] for s in held[i][j]) for i in range(n)],
                    dtype=np.int64,
                )
                words[t][j] = w
                snap = [held[i][j] for i in range(n)]
                for i in range(n):
                    held[i][j] = held[i][j] | snap[pidx[i]]
        # The event path ships each block as d flat chunks and receivers
        # reassemble them (split_chunks -> join_chunks round trip), which
        # reproduces the block exactly; a plain copy is bit-identical and
        # skips ~n^2 array_split calls per group.
        values = [
            [arrs[src].copy() for src in range(n)] for _ in range(n)
        ]
        return words, values
    if g.kind == "alltoall":
        blocks = [list(p) for p in g.payloads]
        for b in blocks:
            if len(b) != n:
                raise _Refuse
        arrs = [[np.asarray(b) for b in row] for row in blocks]
        wchunk = [
            [_chunk_sizes(int(a.size), d) for a in row] for row in arrs
        ]
        bit = [[(int(g.sub[i]) >> k) & 1 for k in range(d)] for i in range(n)]
        held = [
            [{(i, dst) for dst in range(n)} for _ in range(d)]
            for i in range(n)
        ]
        for t in range(d):
            for j in range(d):
                k = (j + t) % d
                pidx = g.partner(k)
                moving = [
                    {key for key in held[i][j] if bit[key[1]][k] != bit[i][k]}
                    for i in range(n)
                ]
                words[t][j] = np.array(
                    [
                        sum(wchunk[s][dst][j] for (s, dst) in moving[i])
                        for i in range(n)
                    ],
                    dtype=np.int64,
                )
                for i in range(n):
                    held[i][j] = (held[i][j] - moving[i]) | moving[pidx[i]]
        for i in range(n):
            for j in range(d):
                if held[i][j] != {(src, i) for src in range(n)}:
                    raise _Refuse
        # Chunked transport round-trips to an exact copy (see allgather).
        values = [
            [arrs[src][i].copy() for src in range(n)] for i in range(n)
        ]
        return words, values
    # reduce_scatter: rotated halving with real folds.
    op = g.op
    for p in g.payloads:
        if len(p) != n:
            raise _Refuse
    arrs = [[np.asarray(b) for b in row] for row in g.payloads]
    # Split each block once; tree j owns chunk j of every destination.
    chunks = [
        [[np.array(c) for c in split_chunks(arrs[i][dst], d)]
         for dst in range(n)]
        for i in range(n)
    ]
    sched = [
        [{dst: chunks[i][dst][j] for dst in range(n)} for j in range(d)]
        for i in range(n)
    ]
    for t in range(d):
        for j in range(d):
            k = (j + t) % d
            pidx = g.partner(k)
            moving = []
            for i in range(n):
                my_bit = (int(g.sub[i]) >> k) & 1
                moving.append({
                    dst: sched[i][j].pop(dst)
                    for dst in list(sched[i][j])
                    if (int(g.sub[dst]) >> k) & 1 != my_bit
                })
            words[t][j] = np.array(
                [payload_words(moving[i]) for i in range(n)], dtype=np.int64
            )
            for i in range(n):
                for dst, arr in moving[pidx[i]].items():
                    sched[i][j][dst] = op(sched[i][j][dst], arr)
    values = []
    for i in range(n):
        for j in range(d):
            if set(sched[i][j]) != {i}:
                raise _Refuse
        values.append(rebuild_from_header(
            [sched[i][j][i] for j in range(d)], chunk_header(arrs[i][i])
        ))
    return words, values


def _plan_rotated_exchange(engine: "Engine", g: _CollGroup) -> dict:
    n, d = g.n, g.d
    t_s, t_w = engine._t_s, engine._t_w
    tracker = engine.tracker
    words, values = _replay_rotated_exchange(g)
    plan = _new_plan(n)
    plan["values"] = values
    T = np.array(g.at, dtype=np.float64)
    chan_free, chan_busy = _seed_rotated_channels(tracker, g)
    chan_used = np.zeros((n, d), dtype=np.int64)
    everyone = np.ones(n, dtype=bool)
    for t in range(d):
        Tn = T.copy()
        for j in range(d):
            w = words[t][j]
            _rotated_round(
                plan, g, T, Tn, chan_free, chan_busy, chan_used,
                t, j, everyone, everyone, t_s + t_w * w, w,
            )
        T = Tn
    plan["finish"] = [float(x) for x in T]
    _commit_rotated_channels(plan, g, chan_free, chan_busy, chan_used)
    return plan


def _plan_rotated_broadcast(engine: "Engine", g: _CollGroup) -> dict:
    from repro.collectives.chunking import (
        chunk_header,
        rebuild_from_header,
        split_chunks,
    )

    n, d = g.n, g.d
    t_s, t_w = engine._t_s, engine._t_w
    tracker = engine.tracker
    plan = _new_plan(n)
    root = g.root
    sub_root = int(g.sub[root])
    rel = [int(g.sub[i]) ^ sub_root for i in range(n)]
    arr = np.asarray(g.payloads[root])
    sizes = _chunk_sizes(int(arr.size), d)
    recv_steps = _rotated_steps(rel, d, combine=False)

    T = np.array(g.at, dtype=np.float64)
    chan_free, chan_busy = _seed_rotated_channels(tracker, g)
    chan_used = np.zeros((n, d), dtype=np.int64)
    for t in range(d):
        Tn = T.copy()
        for j in range(d):
            senders = recv_steps[:, j] < t  # root's sentinel is -1
            receivers = recv_steps[:, j] == t
            w = np.full(n, sizes[j], dtype=np.int64)
            _rotated_round(
                plan, g, T, Tn, chan_free, chan_busy, chan_used,
                t, j, senders, receivers, t_s + t_w * w, w,
            )
        T = Tn
    plan["finish"] = [float(x) for x in T]
    _commit_rotated_channels(plan, g, chan_free, chan_busy, chan_used)
    rebuilt = rebuild_from_header(list(split_chunks(arr, d)), chunk_header(arr))
    for i in range(n):
        plan["values"][i] = (
            g.payloads[root] if i == root else rebuilt.copy()
        )
    return plan


def _replay_rotated_reduce(engine: "Engine", g: _CollGroup, send_steps):
    """Per-(rank, tree) send word counts + root value for rotated reduce."""
    from repro.collectives.chunking import (
        chunk_header,
        rebuild_from_header,
        split_chunks,
    )

    n, d = g.n, g.d
    op = g.op
    arrs = [np.asarray(p) for p in g.payloads]
    shape = arrs[0].shape
    if (
        engine.timing_only
        and op is np.add
        and all(a.shape == shape and a.size and not a.any() for a in arrs)
    ):
        # Timing-only partials are zero views; np.add keeps every chunk an
        # all-zero array of fixed size, so word counts follow from shapes
        # and the root's rebuilt value is plain zeros — skipping the
        # per-rank fold replay that dominates at region-map scale.
        sizes = _chunk_sizes(int(arrs[0].size), d)
        w_send = np.empty((n, d), dtype=np.int64)
        for j in range(d):
            w_send[:, j] = sizes[j]
        return w_send, np.zeros(shape, dtype=arrs[0].dtype)
    chunks = [
        [np.array(c) for c in split_chunks(arrs[i], d)] for i in range(n)
    ]
    w_send = np.zeros((n, d), dtype=np.int64)
    for t in range(d):
        sent: dict[tuple[int, int], object] = {}
        for i in range(n):
            for j in range(d):
                if send_steps[i, j] == t:
                    w_send[i, j] = payload_words(chunks[i][j])
                    sent[(i, j)] = chunks[i][j]
        for i in range(n):
            for j in range(d):
                if send_steps[i, j] > t:
                    k = (j + t) % d
                    child = int(g.partner(k)[i])
                    chunks[i][j] = op(chunks[i][j], sent[(child, j)])
    root = g.root
    return w_send, rebuild_from_header(
        chunks[root], chunk_header(arrs[root])
    )


def _plan_rotated_reduce(engine: "Engine", g: _CollGroup) -> dict:
    n, d = g.n, g.d
    t_s, t_w = engine._t_s, engine._t_w
    tracker = engine.tracker
    plan = _new_plan(n)
    root = g.root
    sub_root = int(g.sub[root])
    rel = [int(g.sub[i]) ^ sub_root for i in range(n)]
    send_steps = _rotated_steps(rel, d, combine=True)  # root sentinel: d
    w_send, root_value = _replay_rotated_reduce(engine, g, send_steps)

    T = np.array(g.at, dtype=np.float64)
    chan_free, chan_busy = _seed_rotated_channels(tracker, g)
    chan_used = np.zeros((n, d), dtype=np.int64)
    for t in range(d):
        Tn = T.copy()
        for j in range(d):
            senders = send_steps[:, j] == t
            receivers = send_steps[:, j] > t
            w = w_send[:, j]
            _rotated_round(
                plan, g, T, Tn, chan_free, chan_busy, chan_used,
                t, j, senders, receivers, t_s + t_w * w, w,
            )
        T = Tn
    plan["finish"] = [float(x) for x in T]
    _commit_rotated_channels(plan, g, chan_free, chan_busy, chan_used)
    plan["values"][root] = root_value
    return plan


_PLANNERS = {
    ("sbt", "allgather"): _plan_sbt_exchange,
    ("sbt", "alltoall"): _plan_sbt_exchange,
    ("sbt", "reduce_scatter"): _plan_sbt_exchange,
    ("sbt", "broadcast"): _plan_sbt_broadcast,
    ("sbt", "reduce"): _plan_sbt_reduce,
    ("rotated", "allgather"): _plan_rotated_exchange,
    ("rotated", "alltoall"): _plan_rotated_exchange,
    ("rotated", "reduce_scatter"): _plan_rotated_exchange,
    ("rotated", "broadcast"): _plan_rotated_broadcast,
    ("rotated", "reduce"): _plan_rotated_reduce,
}


def try_advance_collective(engine: "Engine", parked: dict) -> dict | None:
    """Advance fully-parked collective phases in closed form.

    ``parked`` maps task -> (CollectivePhaseOp, park_time).  Returns
    ``{task: (finish_time, value)}`` (fused pairs get ``[value_a, value_b]``
    at the later finish, like ``ctx.parallel``) or ``None`` when the phase
    must fall back to the event path.  Nothing — tracker state, statistics —
    is mutated unless every group plans successfully, so a refusal leaves
    the engine exactly where the event path would start.
    """
    groups = _collective_groups(engine, parked)
    if groups is None:
        return None
    try:
        plans = [_PLANNERS[(g.sched, g.kind)](engine, g) for g in groups]
        # Assemble outcomes before committing anything: a malformed group
        # surfaced here still refuses cleanly.
        by_task: dict = {}
        for g, plan in zip(groups, plans):
            for i in range(g.n):
                by_task.setdefault(g.nodes[i], {})[g.slots[i]] = (
                    plan["finish"][i], plan["values"][i]
                )
        outcome = {}
        for task, (op, _at) in parked.items():
            per = by_task[task]
            if len(per) != len(op.specs):
                return None
            if len(op.specs) == 1:
                outcome[task] = per[0]
            else:
                fin = max(per[0][0], per[1][0])
                outcome[task] = (fin, [per[0][1], per[1][1]])
    except Exception:
        return None

    tracker = engine.tracker
    stats = engine.stats
    for g, plan in zip(groups, plans):
        chans = plan["channels"]
        if chans:
            # Resolve every slot first (allocation may grow the columns and
            # rebind the arrays), then scatter the phase's channel state in
            # three vectorized writes.  Keys are unique, so += is safe.
            slot = tracker._channel_slot
            rows = np.fromiter(
                (slot(u, v) for u, v in chans), dtype=np.intp, count=len(chans)
            )
            vals = np.fromiter(
                (x for triple in chans.values() for x in triple),
                dtype=np.float64, count=3 * len(chans),
            ).reshape(-1, 3)
            tracker._free[rows] = vals[:, 0]
            tracker._busy[rows] = vals[:, 1]
            tracker._nres[rows] += vals[:, 2].astype(np.int64)
        for u, (free, busy, nres) in plan["ports"].items():
            port = tracker._send_port[u]
            port.next_free = free
            port.busy_time = busy
            port.reservations += nres
        for i in range(g.n):
            st = stats[g.nodes[i]]
            st.messages_sent += int(plan["ms"][i])
            st.words_sent += int(plan["ws"][i])
            st.messages_received += int(plan["mr"][i])
            st.words_received += int(plan["wr"][i])
    return outcome
