"""Heterogeneous and degraded network scenarios: per-link cost models.

Every run used to assume one uniform ``(t_s, t_w)`` on every hypercube
link — the 1994 paper's machine model.  Real large-scale platforms are
heterogeneous and partially degraded: a flaky cable stretches one link's
bandwidth, a hot node's links all slow down under background traffic, a
whole dimension congests when a co-scheduled job shares the backplane.
A :class:`NetworkScenario` describes exactly that, as a declarative,
immutable per-link cost map:

* each :class:`LinkCost` entry multiplies one link's start-up cost
  (``ts_factor``) and per-word cost (``tw_factor``) during a virtual-time
  window ``[start, end)`` — multiple covering entries compose
  multiplicatively, like independent congestion sources,
* named profile constructors build the common shapes — :func:`uniform`,
  :func:`hotspot` (every link of one node), :func:`congested_dimension`
  (every link crossing one cube dimension), :func:`random_heterogeneous`
  (a seeded fraction of links slowed by a severity-scaled draw), and
  :func:`background_traffic` (time-windowed congestion bursts from
  co-scheduled jobs),
* :meth:`NetworkScenario.to_json` / :func:`scenario_from_json` give a
  replayable **condition-trace format**: a scenario captured from one run
  (or hand-written from deployment traces) replays bit-identically as a
  first-class scenario input to sweeps and chaos campaigns.

Scenarios compose with :class:`~repro.sim.faults.FaultPlan`: faults decide
what is *lost* or *dead*, the scenario decides what every surviving hop
*costs*.  The engine multiplies the scenario's ``tw_factor`` with the
fault plan's :class:`~repro.sim.faults.LinkDegradation` multiplier, and
the route layer keys detours on the pair of epochs (see
:meth:`NetworkScenario.epoch` and
:meth:`~repro.sim.faults.FaultState.route_epoch`), so time-windowed cost
changes and fault windows invalidate cached routes independently.

Determinism
-----------
A scenario is a pure value: all randomness happens at *construction* time
(profile constructors draw from a seeded generator in a fixed link order)
and the resulting entry tuple is embedded in the frozen dataclass.  Two
scenarios built from the same arguments are equal, hash equal, digest
equal (:meth:`NetworkScenario.descriptor`), and cost every hop
identically — runs, replays, and parallel sweep shards can never diverge.

The **uniform** scenario (no entries, or all factors exactly 1.0) is
bit-identical to no scenario at all: the engine detects it and keeps the
healthy fast path, so the golden traces and the ``a·t_s + b·t_w``
linearity gates are unaffected.
"""

from __future__ import annotations

import bisect
import json
import math
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import SimulationError

__all__ = [
    "LinkCost",
    "NetworkScenario",
    "uniform",
    "hotspot",
    "congested_dimension",
    "random_heterogeneous",
    "background_traffic",
    "scenario_from_json",
]


def _check_window(start: float, end: float) -> None:
    if start < 0:
        raise SimulationError(f"cost window start must be >= 0, got {start}")
    if end <= start:
        raise SimulationError(
            f"cost window must satisfy start < end, got [{start}, {end})"
        )


@dataclass(frozen=True)
class LinkCost:
    """One link's cost multipliers during ``[start, end)``.

    ``ts_factor`` stretches the hop's start-up cost, ``tw_factor`` its
    per-word cost (1.0 = nominal; factors must be >= 1 — a scenario
    models degradation, never a faster-than-spec link).
    ``directed=False`` (default) covers both directional channels of the
    ``{u, v}`` link.
    """

    u: int
    v: int
    ts_factor: float = 1.0
    tw_factor: float = 1.0
    start: float = 0.0
    end: float = math.inf
    directed: bool = False

    def __post_init__(self):
        _check_window(self.start, self.end)
        if self.ts_factor < 1.0 or self.tw_factor < 1.0:
            raise SimulationError(
                "cost factors must be >= 1 (a slowdown), got "
                f"ts_factor={self.ts_factor}, tw_factor={self.tw_factor}"
            )

    def covers(self, a: int, b: int, time: float) -> bool:
        """True iff this entry applies to channel ``a -> b`` at ``time``."""
        if not self.start <= time < self.end:
            return False
        if (a, b) == (self.u, self.v):
            return True
        return not self.directed and (a, b) == (self.v, self.u)

    @property
    def is_identity(self) -> bool:
        """True iff the entry never changes any hop's cost."""
        return self.ts_factor == 1.0 and self.tw_factor == 1.0

    def to_dict(self) -> dict:
        """JSON-able form (the condition-trace record for this entry)."""
        return {
            "u": self.u, "v": self.v,
            "ts_factor": self.ts_factor, "tw_factor": self.tw_factor,
            "start": self.start,
            "end": None if math.isinf(self.end) else self.end,
            "directed": self.directed,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "LinkCost":
        """Rebuild an entry from its :meth:`to_dict` record."""
        end = record.get("end")
        return cls(
            u=int(record["u"]), v=int(record["v"]),
            ts_factor=float(record.get("ts_factor", 1.0)),
            tw_factor=float(record.get("tw_factor", 1.0)),
            start=float(record.get("start", 0.0)),
            end=math.inf if end is None else float(end),
            directed=bool(record.get("directed", False)),
        )


@dataclass(frozen=True)
class NetworkScenario:
    """An immutable per-link ``(t_s, t_w)`` cost map for one machine.

    Attach it to a :class:`~repro.sim.machine.MachineConfig` (the
    ``scenario`` field / :meth:`~repro.sim.machine.MachineConfig.
    with_scenario`) and every hop over a covered link pays
    ``ts_factor·t_s + tw_factor·t_w·m`` instead of the uniform cost.

    ``adaptive_routing`` (default True) lets the engine route around
    expensive links: when the scenario is non-uniform, point-to-point
    routes are chosen by a deterministic cheapest-path search over the
    current per-link costs instead of blind e-cube order — a degraded
    link is detoured exactly like a congested street.  Set it False to
    keep e-cube routes and only pay the degraded costs (the
    oblivious-routing baseline).

    Build one from a profile constructor, fluently via
    :meth:`with_link_cost`, or from a replayed condition trace
    (:func:`scenario_from_json`).
    """

    name: str = "uniform"
    links: tuple[LinkCost, ...] = ()
    adaptive_routing: bool = True

    # Derived lookup structures (not fields: equality/hash/pickle are by
    # the declared fields; these are rebuilt in __post_init__).
    def __post_init__(self):
        by_channel: dict[tuple[int, int], list[LinkCost]] = {}
        edges: set[float] = set()
        for lc in self.links:
            by_channel.setdefault((lc.u, lc.v), []).append(lc)
            if not lc.directed:
                by_channel.setdefault((lc.v, lc.u), []).append(lc)
            if lc.is_identity:
                continue
            if lc.start > 0.0:
                edges.add(lc.start)
            if math.isfinite(lc.end):
                edges.add(lc.end)
        object.__setattr__(self, "_by_channel", by_channel)
        object.__setattr__(self, "_edges", sorted(edges))

    def __getstate__(self):
        return {
            "name": self.name, "links": self.links,
            "adaptive_routing": self.adaptive_routing,
        }

    def __setstate__(self, state):
        for k, v in state.items():
            object.__setattr__(self, k, v)
        self.__post_init__()

    # -- fluent builder ----------------------------------------------------

    def with_link_cost(
        self,
        u: int,
        v: int,
        *,
        ts_factor: float = 1.0,
        tw_factor: float = 1.0,
        start: float = 0.0,
        end: float = math.inf,
        directed: bool = False,
    ) -> "NetworkScenario":
        """This scenario plus one more :class:`LinkCost` entry."""
        lc = LinkCost(u, v, ts_factor, tw_factor, start, end, directed)
        return replace(self, links=self.links + (lc,))

    def with_adaptive_routing(self, adaptive: bool) -> "NetworkScenario":
        """The same cost map with cheapest-path routing on or off."""
        return replace(self, adaptive_routing=adaptive)

    # -- queries -----------------------------------------------------------

    @property
    def is_uniform(self) -> bool:
        """True iff no entry can ever change a hop's cost.

        The engine treats a uniform scenario exactly like ``None``: the
        healthy fast path stays engaged and runs are bit-identical to a
        machine with no scenario at all.
        """
        return all(lc.is_identity for lc in self.links)

    def factors(self, u: int, v: int, time: float) -> tuple[float, float]:
        """Combined ``(ts_factor, tw_factor)`` on channel ``u -> v`` at
        ``time``; covering entries compose multiplicatively."""
        entries = self._by_channel.get((u, v))
        if not entries:
            return (1.0, 1.0)
        ts_f = tw_f = 1.0
        for lc in entries:
            if lc.start <= time < lc.end:
                ts_f *= lc.ts_factor
                tw_f *= lc.tw_factor
        return (ts_f, tw_f)

    def epoch(self, time: float) -> int:
        """Index of the piecewise-constant cost interval holding ``time``.

        :meth:`factors` is the same function of ``(u, v)`` for every time
        in one epoch (cost windows only open/close at the edges), so
        cheapest routes may be memoized per ``(src, dst, epoch)`` —
        exactly like :meth:`~repro.sim.faults.FaultState.route_epoch`
        does for the dead-link set.
        """
        return bisect.bisect_right(self._edges, time)

    @property
    def time_varying(self) -> bool:
        """True iff some non-identity entry has a finite window edge."""
        return bool(self._edges)

    def worst_case_factor(self) -> float:
        """Upper bound on any single hop's slowdown under this scenario.

        Per directional channel, the product of *all* its entries'
        factors (as if every window overlapped), maximized over channels
        and over the start-up/per-word components.  Conservative by
        construction — this is what timeout budgets derive from, and a
        budget that is too generous only waits, while one that is too
        tight convicts a slow-but-healthy link as dead.
        """
        worst = 1.0
        for entries in self._by_channel.values():
            ts_f = tw_f = 1.0
            for lc in entries:
                ts_f *= lc.ts_factor
                tw_f *= lc.tw_factor
            worst = max(worst, ts_f, tw_f)
        return worst

    # -- cache / replay support -------------------------------------------

    def descriptor(self) -> dict:
        """Canonical JSON-able description for result-cache keys.

        Two scenarios with different cost maps (or routing policies)
        always produce different descriptors, so heterogeneous runs can
        never collide with uniform-cost cached results.
        """
        return {
            "name": self.name,
            "adaptive_routing": self.adaptive_routing,
            "links": [
                {k: (v if v is not None else "inf")
                 for k, v in lc.to_dict().items()}
                for lc in self.links
            ],
        }

    def to_json(self, indent: int | None = None) -> str:
        """Serialize as a replayable network-condition trace."""
        payload = {
            "version": 1,
            "name": self.name,
            "adaptive_routing": self.adaptive_routing,
            "links": [lc.to_dict() for lc in self.links],
        }
        return json.dumps(payload, indent=indent, sort_keys=True)


def scenario_from_json(text: str) -> NetworkScenario:
    """Rebuild a :class:`NetworkScenario` from its condition-trace JSON.

    The inverse of :meth:`NetworkScenario.to_json`; a replayed scenario
    compares equal to the original and costs every hop identically.
    """
    payload = json.loads(text)
    if not isinstance(payload, dict) or "links" not in payload:
        raise SimulationError("condition trace must be an object with 'links'")
    version = payload.get("version", 1)
    if version != 1:
        raise SimulationError(f"unknown condition-trace version {version!r}")
    return NetworkScenario(
        name=str(payload.get("name", "trace")),
        links=tuple(LinkCost.from_dict(r) for r in payload["links"]),
        adaptive_routing=bool(payload.get("adaptive_routing", True)),
    )


# ---------------------------------------------------------------------------
# named profiles
# ---------------------------------------------------------------------------


def _check_nodes(num_nodes: int) -> int:
    if num_nodes < 2 or num_nodes & (num_nodes - 1):
        raise SimulationError(
            f"scenario profiles need a power-of-two node count >= 2, "
            f"got {num_nodes}"
        )
    return num_nodes.bit_length() - 1


def _check_factor(factor: float) -> None:
    if factor < 1.0:
        raise SimulationError(
            f"profile factor must be >= 1 (a slowdown), got {factor}"
        )


def _all_links(num_nodes: int) -> list[tuple[int, int]]:
    """Every undirected hypercube link, in deterministic (u, dim) order."""
    dim = num_nodes.bit_length() - 1
    return [
        (u, u ^ (1 << d))
        for u in range(num_nodes)
        for d in range(dim)
        if u < u ^ (1 << d)
    ]


def uniform() -> NetworkScenario:
    """The identity scenario: every link at nominal cost.

    Attaching it is bit-identical to attaching no scenario — the
    passthrough the uniform-overhead benchmark pins at 1.00x.
    """
    return NetworkScenario(name="uniform")


def hotspot(
    num_nodes: int,
    node: int,
    factor: float = 4.0,
    *,
    ts_factor: float | None = None,
) -> NetworkScenario:
    """Every link incident to ``node`` degraded by ``factor``.

    Models one overloaded node (an oversubscribed NIC, a thermally
    throttled router).  ``ts_factor`` defaults to ``factor`` as well —
    congestion delays small control messages too.
    """
    _check_nodes(num_nodes)
    _check_factor(factor)
    if not 0 <= node < num_nodes:
        raise SimulationError(
            f"hotspot node {node} out of range for {num_nodes} nodes"
        )
    ts_f = factor if ts_factor is None else ts_factor
    dim = num_nodes.bit_length() - 1
    links = tuple(
        LinkCost(node, node ^ (1 << d), ts_factor=ts_f, tw_factor=factor)
        for d in range(dim)
    )
    return NetworkScenario(name=f"hotspot:{node}x{factor:g}", links=links)


def congested_dimension(
    num_nodes: int,
    dimension: int,
    factor: float = 4.0,
    *,
    start: float = 0.0,
    end: float = math.inf,
) -> NetworkScenario:
    """Every link crossing cube ``dimension`` degraded by ``factor``.

    Models a congested backplane stage: on real hypercubes one dimension
    often maps to one physical switch layer, so a busy co-scheduled job
    degrades all of its links together.  ``start``/``end`` window the
    congestion in virtual time.
    """
    d = _check_nodes(num_nodes)
    _check_factor(factor)
    if not 0 <= dimension < d:
        raise SimulationError(
            f"dimension {dimension} out of range for a {d}-cube"
        )
    links = tuple(
        LinkCost(u, u ^ (1 << dimension), tw_factor=factor, ts_factor=factor,
                 start=start, end=end)
        for u in range(num_nodes)
        if u < u ^ (1 << dimension)
    )
    return NetworkScenario(
        name=f"congested-dim:{dimension}x{factor:g}", links=links
    )


def random_heterogeneous(
    num_nodes: int,
    severity: float,
    *,
    fraction: float = 0.2,
    seed: int = 0,
) -> NetworkScenario:
    """A seeded ``fraction`` of links slowed by a severity-scaled draw.

    The robustness question this profile answers: *how do the paper's
    winners shift when the network is 20% heterogeneous?*  Each
    undirected link, visited in deterministic order, draws (1) a
    selection roll against ``fraction`` and (2) two magnitude draws —
    the affected links get ``tw_factor = 1 + severity·d`` and
    ``ts_factor = 1 + severity·d'`` with ``d, d' ~ U[0.5, 1.5)``.  Every
    link consumes its draws whether selected or not, so the *same seed*
    keeps the same affected set and per-link magnitudes across
    severities: overhead curves over ``severity`` are continuous and
    differ only in how slow the slow links are.

    ``severity = 0`` returns a scenario whose entries are all identity
    (``is_uniform``), so the severity axis starts bit-identical to the
    uniform machine.
    """
    _check_nodes(num_nodes)
    if severity < 0:
        raise SimulationError(f"severity must be >= 0, got {severity}")
    if not 0.0 <= fraction <= 1.0:
        raise SimulationError(f"fraction must be in [0, 1], got {fraction}")
    rng = np.random.default_rng((seed, 0x5CE9A810))
    links = []
    for u, v in _all_links(num_nodes):
        select = float(rng.random())
        d_tw = 0.5 + float(rng.random())
        d_ts = 0.5 + float(rng.random())
        if select < fraction:
            links.append(LinkCost(
                u, v,
                ts_factor=1.0 + severity * d_ts,
                tw_factor=1.0 + severity * d_tw,
            ))
    return NetworkScenario(
        name=f"random:s{severity:g}f{fraction:g}#{seed}",
        links=tuple(links),
    )


def background_traffic(
    num_nodes: int,
    *,
    jobs: int = 3,
    horizon: float = 10_000.0,
    factor: float = 3.0,
    seed: int = 0,
) -> NetworkScenario:
    """Time-windowed congestion bursts from co-scheduled jobs.

    Each of ``jobs`` phantom neighbours claims one cube dimension for a
    seeded window inside ``[0, horizon)`` and degrades every link of
    that dimension by ``factor`` while it runs — the shape a sweep sees
    when it shares the machine.  All draws come from a seeded generator
    in job order, so the traffic pattern replays bit-identically.
    """
    d = _check_nodes(num_nodes)
    _check_factor(factor)
    if jobs < 1:
        raise SimulationError(f"jobs must be >= 1, got {jobs}")
    if horizon <= 0:
        raise SimulationError(f"horizon must be positive, got {horizon}")
    rng = np.random.default_rng((seed, 0xBAC6F1C))
    links: list[LinkCost] = []
    for _ in range(jobs):
        dimension = int(rng.integers(d))
        start = float(rng.random() * 0.6 * horizon)
        end = start + float((0.2 + 0.5 * rng.random()) * horizon)
        for u in range(num_nodes):
            v = u ^ (1 << dimension)
            if u < v:
                links.append(LinkCost(
                    u, v, ts_factor=factor, tw_factor=factor,
                    start=start, end=end,
                ))
    return NetworkScenario(
        name=f"background:{jobs}j#{seed}", links=tuple(links)
    )


# Names honoured by profile-string lookups (CLI, chaos, degradation).
PROFILES = ("uniform", "random", "hotspot", "dimension", "background")
