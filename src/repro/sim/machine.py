"""Machine description: cost parameters and the port model.

The paper models the time for a node to send an ``m``-word message to a
neighbour as ``t_s + t_w·m`` where ``t_s`` is the start-up (latency) cost
and ``t_w`` the per-word transmission time.  Computation time, when modelled
at all, is ``t_c`` per floating-point operation; the paper's analysis sets
computation aside and compares pure communication overheads, so ``t_c``
defaults to zero.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import SimulationError
from repro.topology.hypercube import Hypercube

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.faults import FaultPlan
    from repro.sim.scenario import NetworkScenario

__all__ = ["PortModel", "RoutingMode", "MachineParams", "MachineConfig"]


class RoutingMode(enum.Enum):
    """How multi-hop messages traverse the e-cube route.

    ``STORE_AND_FORWARD`` (default)
        Each hop completes before the next begins: an ``M``-word transfer
        over ``h`` hops costs ``h·(t_s + t_w·M)``.  This is the accounting
        behind the paper's one-port expressions (e.g. DNS phase 1's
        ``2·log∛p·(t_s + t_w·m)``).

    ``CUT_THROUGH``
        Hops pipeline behind the header: hop ``i+1`` starts ``t_s`` after
        hop ``i`` (virtual cut-through with ample buffering), so an
        uncontended transfer costs ``h·t_s + t_w·M``.  This matches the
        multi-hop accounting implicit in the paper's *multi-port* rows for
        DNS and 3DD, and is how iPSC/2-class hardware actually routed.
        Each link is still held for its full ``t_s + t_w·M`` occupancy.
    """

    STORE_AND_FORWARD = "store-and-forward"
    CUT_THROUGH = "cut-through"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class PortModel(enum.Enum):
    """How many links a node may drive simultaneously.

    ``ONE_PORT``
        At most one outgoing transfer at any time, full duplex: while
        sending one message a node can simultaneously receive one (possibly
        on a different link — e.g. shifting data around a ring by sending
        right while receiving from the left, the accounting the paper uses
        for Cannon's algorithm).  Only the send side is serialized as a
        resource; see :class:`repro.sim.ports.ContentionTracker` for why.

    ``MULTI_PORT``
        All ``log p`` links usable at once, each full duplex.
    """

    ONE_PORT = "one-port"
    MULTI_PORT = "multi-port"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class MachineParams:
    """Communication/computation cost parameters.

    Attributes
    ----------
    t_s:
        Message start-up cost (per hop).
    t_w:
        Per-word transmission time (per hop).
    t_c:
        Time per floating-point operation (0 = ignore computation, which is
        what the paper's communication-overhead comparison does).
    """

    t_s: float = 150.0
    t_w: float = 3.0
    t_c: float = 0.0

    def __post_init__(self):
        if self.t_s < 0 or self.t_w < 0 or self.t_c < 0:
            raise SimulationError(
                f"machine parameters must be non-negative: {self}"
            )

    def hop_time(self, nwords: int, tw_factor: float = 1.0) -> float:
        """Time for one ``nwords``-word hop between neighbours.

        ``tw_factor`` stretches the per-word part — the fault layer's link
        degradation multiplier (1.0 = healthy link).
        """
        if nwords < 0:
            raise SimulationError(f"message size must be >= 0, got {nwords}")
        if tw_factor < 0:
            raise SimulationError(f"tw_factor must be >= 0, got {tw_factor}")
        return self.t_s + self.t_w * tw_factor * nwords

    def flops_time(self, flops: float) -> float:
        if flops < 0:
            raise SimulationError(f"flop count must be >= 0, got {flops}")
        return self.t_c * flops


# Parameter sets used for the paper's Figures 13/14.  The paper presents
# graphs "for three different sets of values of t_s and t_w", naming
# t_s = 150, t_w = 3 explicitly (iPSC/860-class) and discussing behaviour
# for "very small values of t_s"; the other members below bracket that
# space (balanced and latency-free extremes).
PAPER_PARAMS = {
    "ipsc860": MachineParams(t_s=150.0, t_w=3.0),
    "balanced": MachineParams(t_s=10.0, t_w=3.0),
    "zero_startup": MachineParams(t_s=0.5, t_w=3.0),
}


@dataclass(frozen=True)
class MachineConfig:
    """A simulated machine: topology + costs + port model.

    Parameters
    ----------
    cube:
        The physical topology — a :class:`~repro.topology.hypercube.
        Hypercube` for everything in the paper, or any object with the
        same duck-typed surface (``num_nodes``, ``nodes()``,
        ``are_neighbors``, ``route_hops``), e.g.
        :class:`~repro.topology.torus.Torus2D` for the Cannon-on-torus
        comparison.
    params:
        Cost parameters.
    port_model:
        One-port or multi-port node capability.
    copy_on_send:
        When True (default) message payload arrays are copied at send time,
        so a sender may freely overwrite its buffer after ``send`` returns —
        the same guarantee MPI's blocking send gives.
    faults:
        Optional :class:`~repro.sim.faults.FaultPlan` injecting link
        failures, message drops, link degradation and node fail-stops into
        every run on this machine.  ``None`` (default) simulates a perfect
        network.
    scenario:
        Optional :class:`~repro.sim.scenario.NetworkScenario` assigning
        per-link ``(t_s, t_w)`` cost multipliers — a heterogeneous or
        degraded network.  ``None`` (default) and a uniform scenario both
        cost every link identically.
    """

    cube: Hypercube
    params: MachineParams = field(default_factory=MachineParams)
    port_model: PortModel = PortModel.ONE_PORT
    copy_on_send: bool = True
    routing: RoutingMode = RoutingMode.STORE_AND_FORWARD
    faults: "FaultPlan | None" = None
    scenario: "NetworkScenario | None" = None

    @classmethod
    def create(
        cls,
        num_nodes: int,
        *,
        t_s: float = 150.0,
        t_w: float = 3.0,
        t_c: float = 0.0,
        port_model: PortModel = PortModel.ONE_PORT,
        copy_on_send: bool = True,
        routing: RoutingMode = RoutingMode.STORE_AND_FORWARD,
        faults: "FaultPlan | None" = None,
        scenario: "NetworkScenario | None" = None,
    ) -> "MachineConfig":
        """Convenience constructor from a node count."""
        return cls(
            cube=Hypercube.with_nodes(num_nodes),
            params=MachineParams(t_s=t_s, t_w=t_w, t_c=t_c),
            port_model=port_model,
            copy_on_send=copy_on_send,
            routing=routing,
            faults=faults,
            scenario=scenario,
        )

    @classmethod
    def create_torus(
        cls,
        rows: int,
        cols: int,
        *,
        t_s: float = 150.0,
        t_w: float = 3.0,
        t_c: float = 0.0,
        port_model: PortModel = PortModel.ONE_PORT,
        routing: RoutingMode = RoutingMode.STORE_AND_FORWARD,
        faults: "FaultPlan | None" = None,
        scenario: "NetworkScenario | None" = None,
    ) -> "MachineConfig":
        """A 2-D torus machine (for the Cannon-on-torus comparison)."""
        from repro.topology.torus import Torus2D

        return cls(
            cube=Torus2D(rows, cols),
            params=MachineParams(t_s=t_s, t_w=t_w, t_c=t_c),
            port_model=port_model,
            routing=routing,
            faults=faults,
            scenario=scenario,
        )

    @property
    def num_nodes(self) -> int:
        return self.cube.num_nodes

    @property
    def topology(self):
        """Alias for :attr:`cube` (which may hold a non-hypercube)."""
        return self.cube

    @property
    def dimension(self) -> int:
        return getattr(self.cube, "dimension", 0)

    def with_params(self, params: MachineParams) -> "MachineConfig":
        return MachineConfig(
            self.cube, params, self.port_model, self.copy_on_send,
            self.routing, self.faults, self.scenario,
        )

    def with_port_model(self, port_model: PortModel) -> "MachineConfig":
        return MachineConfig(
            self.cube, self.params, port_model, self.copy_on_send,
            self.routing, self.faults, self.scenario,
        )

    def with_routing(self, routing: RoutingMode) -> "MachineConfig":
        return MachineConfig(
            self.cube, self.params, self.port_model, self.copy_on_send,
            routing, self.faults, self.scenario,
        )

    def with_faults(self, faults: "FaultPlan | None") -> "MachineConfig":
        """The same machine with a (possibly different) fault plan."""
        return MachineConfig(
            self.cube, self.params, self.port_model, self.copy_on_send,
            self.routing, faults, self.scenario,
        )

    def with_scenario(
        self, scenario: "NetworkScenario | None"
    ) -> "MachineConfig":
        """The same machine with a (possibly different) network scenario."""
        return MachineConfig(
            self.cube, self.params, self.port_model, self.copy_on_send,
            self.routing, self.faults, scenario,
        )
