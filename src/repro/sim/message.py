"""Message envelopes and payload word accounting.

A *word* is one matrix element.  Payloads are numpy arrays (any shape) or
``None`` for timing-only messages whose size is given explicitly.  Sizes are
what drive the ``t_s + t_w·m`` hop cost, so they are computed once at send
time and carried with the envelope.

Envelope numerics are stored struct-of-arrays: the engine owns one
:class:`MessageTable` whose preallocated NumPy columns hold the
src/dst/tag/nwords/enqueue-time of every message of a run, and
:class:`Message` is a thin per-message view (payload pointer + row index).
"""

from __future__ import annotations

import itertools
import zlib
from typing import Any

import numpy as np

from repro.errors import SimulationError

__all__ = [
    "Message",
    "MessageTable",
    "payload_words",
    "canonical_bytes",
    "message_crc",
    "CORRUPT_VERDICT",
]

_message_ids = itertools.count()

#: ack-channel payload the destination node sends instead of a plain ack
#: when a message's attached CRC fails verification at delivery (a NACK)
CORRUPT_VERDICT = "__corrupt__"


def _canon(data: Any, out: list[bytes]) -> None:
    if data is None:
        out.append(b"N;")
    elif isinstance(data, np.ndarray):
        out.append(f"A{data.dtype.str}{data.shape};".encode())
        out.append(np.ascontiguousarray(data).tobytes())
    elif isinstance(data, (list, tuple)):
        out.append(f"L{len(data)};".encode())
        for item in data:
            _canon(item, out)
    elif isinstance(data, dict):
        out.append(f"M{len(data)};".encode())
        for k in sorted(data, key=repr):
            out.append(repr(k).encode())
            _canon(data[k], out)
    else:
        out.append(repr(data).encode())


def canonical_bytes(data: Any) -> bytes:
    """Deterministic byte serialization of a payload (structure + array
    contents) — the substrate of end-to-end integrity checksums.  Equal
    payloads always serialize identically; a single flipped bit in any
    float64 leaf changes the bytes."""
    out: list[bytes] = []
    _canon(data, out)
    return b"".join(out)


def message_crc(src: int, dst: int, tag: int, nwords: int, data: Any) -> int:
    """CRC32 over the message header and the payload's canonical bytes.

    This is what :class:`~repro.mpi.integrity.IntegrityContext` attaches
    at send time and what the engine's delivery path re-computes at the
    destination: a mismatch means the payload was perturbed in flight.
    """
    header = f"{src}>{dst}/{tag}#{nwords}|".encode()
    return zlib.crc32(canonical_bytes(data), zlib.crc32(header))


def payload_words(data: Any, nwords: int | None = None) -> int:
    """Word count of a payload.

    numpy arrays count their elements; containers (lists/tuples/dicts) count
    the sum over their array leaves.  Non-array leaves inside containers
    (shape tuples, keys, dtypes) ride free, the way MPI datatype headers are
    absorbed into the start-up cost — this keeps simulated word counts equal
    to the paper's matrix-element counts.  A standalone scalar counts as one
    word; ``None`` requires an explicit ``nwords``.
    """
    if nwords is not None:
        if nwords < 0:
            raise SimulationError(f"explicit nwords must be >= 0, got {nwords}")
        return int(nwords)
    if data is None:
        raise SimulationError("timing-only message needs an explicit nwords")
    if isinstance(data, np.ndarray):
        return int(data.size)
    if isinstance(data, (list, tuple, dict)):
        return _container_words(data)
    if np.isscalar(data):
        return 1
    raise SimulationError(
        f"cannot infer word count for payload of type {type(data).__name__}; "
        "pass nwords explicitly"
    )


def _container_words(data: Any) -> int:
    """Array-element count of the leaves of a nested container."""
    if isinstance(data, np.ndarray):
        return int(data.size)
    if isinstance(data, (list, tuple)):
        return sum(_container_words(item) for item in data)
    if isinstance(data, dict):
        return sum(_container_words(v) for v in data.values())
    return 0  # metadata leaf (int, str, shape tuple member, ...)


class MessageTable:
    """Preallocated struct-of-arrays backing store for message envelopes.

    Columns (``src``/``dst``/``tag``/``nwords`` int64, ``send_time``
    float64, i.e. enqueue time) are indexed by a dense row id handed out in
    message-creation order; capacity doubles on demand and rows never move,
    so :class:`Message` views stay valid across growth.
    """

    __slots__ = ("src", "dst", "tag", "nwords", "send_time", "count")

    def __init__(self, capacity: int = 1024):
        cap = max(1, capacity)
        self.src = np.empty(cap, dtype=np.int64)
        self.dst = np.empty(cap, dtype=np.int64)
        self.tag = np.empty(cap, dtype=np.int64)
        self.nwords = np.empty(cap, dtype=np.int64)
        self.send_time = np.empty(cap, dtype=np.float64)
        self.count = 0

    def append(
        self, src: int, dst: int, tag: int, nwords: int, send_time: float
    ) -> int:
        """Store one envelope; returns its row id."""
        row = self.count
        if row == len(self.src):
            for col in ("src", "dst", "tag", "nwords", "send_time"):
                old = getattr(self, col)
                new = np.empty(2 * len(old), dtype=old.dtype)
                new[:len(old)] = old
                setattr(self, col, new)
        self.src[row] = src
        self.dst[row] = dst
        self.tag[row] = tag
        self.nwords[row] = nwords
        self.send_time[row] = send_time
        self.count = row + 1
        return row


class Message:
    """An in-flight message: a thin view over one :class:`MessageTable` row.

    The payload pointer, id, and integrity fields ride on the view; the
    numeric envelope lives in the table's columns.  Constructed without a
    ``table`` (tests, ad-hoc messages) it allocates a private one-row
    store so the API is identical either way.
    """

    __slots__ = ("_tab", "_row", "msg_id", "data", "ack_tag", "crc")

    def __init__(
        self,
        src: int,
        dst: int,
        tag: int,
        data: Any,
        nwords: int,
        send_time: float,
        msg_id: int | None = None,
        ack_tag: int | None = None,
        crc: int | None = None,
        *,
        table: MessageTable | None = None,
    ):
        if table is None:
            table = MessageTable(1)
        self._tab = table
        self._row = table.append(src, dst, tag, nwords, send_time)
        self.msg_id = next(_message_ids) if msg_id is None else msg_id
        self.data = data
        #: when set, the destination node acks delivery on this tag
        self.ack_tag = ack_tag
        #: when set, the destination node verifies this CRC32 of the
        #: canonical header+payload bytes at delivery; a mismatch is NACK'd
        #: (see :func:`message_crc` and the engine's ``_deliver``)
        self.crc = crc

    @property
    def src(self) -> int:
        """Source rank."""
        return int(self._tab.src[self._row])

    @property
    def dst(self) -> int:
        """Destination rank."""
        return int(self._tab.dst[self._row])

    @property
    def tag(self) -> int:
        """Match tag."""
        return int(self._tab.tag[self._row])

    @property
    def nwords(self) -> int:
        """Payload size in words (drives the ``t_s + t_w·m`` hop cost)."""
        return int(self._tab.nwords[self._row])

    @property
    def send_time(self) -> float:
        """Virtual time the message was enqueued at the source."""
        return float(self._tab.send_time[self._row])

    def __repr__(self) -> str:
        return (
            f"Message(#{self.msg_id} {self.src}->{self.dst} tag={self.tag} "
            f"nwords={self.nwords})"
        )
