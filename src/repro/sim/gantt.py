"""ASCII Gantt rendering of simulation traces.

Turn a traced :class:`~repro.sim.tracing.RunResult` into a per-node
timeline showing link activity (``#`` for transmitting, ``-`` for
forwarding someone else's message, ``.`` idle, ``=`` computing), which
makes port serialization, phase overlap and pipelining visible at a
glance::

    t=0                                                          t=3120
    node  0 |####----....########....=...####....|
    node  1 |....####....####........=...####....|

Use ``run_spmd(..., trace=True)`` (or ``MatmulAlgorithm.run(...,
trace=True)``) to collect the trace.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.tracing import RunResult, TraceRecord

__all__ = ["render_gantt", "lane_activity"]


def lane_activity(
    trace: list[TraceRecord], rank: int, total: float, width: int
) -> str:
    """One node's activity lane as a ``width``-character string."""
    if width < 1:
        raise SimulationError(f"gantt width must be positive, got {width}")
    if total <= 0:
        return "." * width
    lane = ["."] * width
    scale = width / total

    def span(start: float, end: float):
        lo = min(width - 1, int(start * scale))
        hi = min(width - 1, max(lo, int(end * scale - 1e-12)))
        return range(lo, hi + 1)

    for rec in trace:
        if rec.kind == "compute" and rec.rank == rank:
            for i in span(rec.start, rec.end):
                if lane[i] == ".":
                    lane[i] = "="
        elif rec.kind == "hop" and rec.rank == rank:
            if rec.info.get("src") == rank:
                # Own sends over a degraded channel ("slow" from a network
                # scenario, "degraded" from a fault plan) get their own
                # shading: the slow stretch is the thing you are looking for.
                slow = "slow" in rec.info or "degraded" in rec.info
                mark = "%" if slow else "#"
            else:
                mark = "-"
            for i in span(rec.start, rec.end):
                if lane[i] in (".", "=", "-") and not (lane[i] == "#"):
                    if mark in ("#", "%") or lane[i] == ".":
                        lane[i] = mark
    # Fault events overwrite everything: a lost message (x) or a detour
    # around a dead link (~) is the thing you are looking for.
    for rec in trace:
        if rec.rank != rank:
            continue
        if rec.kind in ("drop", "reroute"):
            pos = min(width - 1, int(rec.start * scale))
            lane[pos] = "x" if rec.kind == "drop" else "~"
        elif rec.kind in ("corrupt", "nack"):
            pos = min(width - 1, int(rec.start * scale))
            lane[pos] = "!"
        elif rec.kind == "node_fail":
            pos = min(width - 1, int(rec.start * scale))
            for i in range(pos, width):
                lane[i] = "X"
    return "".join(lane)


def render_gantt(
    result: RunResult,
    *,
    width: int = 72,
    ranks: list[int] | None = None,
) -> str:
    """Render the traced run as an ASCII Gantt chart.

    ``#`` node transmitting its own message, ``-`` forwarding a transit
    message, ``=`` computing, ``.`` idle.  ``ranks`` restricts the lanes
    (defaults to every rank).
    """
    if not result.trace:
        raise SimulationError(
            "no trace recorded; run the simulation with trace=True"
        )
    total = result.total_time
    show = ranks if ranks is not None else sorted(result.stats)
    lines = [f"t=0{' ' * (width + 2)}t={total:g}"]
    degraded_seen = False
    for rank in show:
        lane = lane_activity(result.trace, rank, total, width)
        degraded_seen = degraded_seen or "%" in lane
        lines.append(f"node {rank:3d} |{lane}|")
    lines.append(
        "legend: # sending own message   - forwarding   = computing   . idle"
    )
    if degraded_seen:
        lines.append(
            "        % sending over a degraded link (scenario- or "
            "fault-slowed)"
        )
    net = result.network
    if (
        net.messages_dropped or net.hops_rerouted or net.retransmissions
        or net.corruption_events or net.integrity_rejects
        or result.failed_ranks
    ):
        lines.append(
            "        x message dropped   ~ hop rerouted   X node fail-stopped"
            + ("   ! payload corrupted/rejected"
               if net.corruption_events or net.integrity_rejects else "")
        )
        failed = (
            ", failed ranks " + str(list(result.failed_ranks))
            if result.failed_ranks else ""
        )
        corrupt = (
            f", {net.corruption_events} corrupted"
            f" ({net.integrity_rejects} rejected)"
            if net.corruption_events or net.integrity_rejects else ""
        )
        lines.append(
            f"faults: {net.messages_dropped} dropped, "
            f"{net.hops_rerouted} rerouted, "
            f"{net.retransmissions} retransmitted{corrupt}{failed}"
        )
    if result.phase_times:
        marks = [" "] * width
        for name, (start, _end) in sorted(
            result.phase_times.items(), key=lambda kv: kv[1][0]
        ):
            pos = min(width - 1, int(start / total * width)) if total else 0
            # Failure handling gets its own glyphs: D = a rank convicted a
            # dead peer, R = the survivors entered a recovery round.  When
            # marks collide on one cell, D outranks R outranks ^.
            if name.startswith("detect"):
                marks[pos] = "D"
            elif name.startswith("recover"):
                if marks[pos] != "D":
                    marks[pos] = "R"
            elif marks[pos] == " ":
                marks[pos] = "^"
        lines.append("phases:  " + "".join(marks))
        lines.append(
            "         "
            + ", ".join(
                f"{name}@{start:g}"
                for name, (start, _) in sorted(
                    result.phase_times.items(), key=lambda kv: kv[1][0]
                )
            )
        )
        if "D" in marks or "R" in marks:
            lines.append(
                "         ^ phase start   D failure detected   R recovery round"
            )
    return "\n".join(lines)
