"""FIFO communication resources: node ports and directional links.

Each resource is a single-server queue tracked only by its *next-free time*;
requests arriving (in event order) at time ``t`` start at
``max(t, next_free)``.  A hop needs several resources at once (the sender's
port, the channel, the receiver's port); :class:`ResourceSet` reserves them
jointly: the start time is the max of all next-free times and the request
time, and every resource is then held until ``start + duration``.

Because the engine processes events in non-decreasing time order with a
deterministic tie-break, reservations are FIFO and runs are reproducible.

State is stored struct-of-arrays: the tracker owns preallocated NumPy
columns (next-free time, cumulative busy time, reservation count) indexed
by a dense resource id, and :class:`Resource` is a thin view over one slot.
The hot path (:meth:`ContentionTracker.reserve_hop`) works directly on the
columns through a per-hop id cache; the closed-form superstep planners
read and write whole phases of channel state through the same columns.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.sim.machine import MachineConfig, PortModel

__all__ = ["Resource", "ResourceSet", "ContentionTracker"]


class _Cells:
    """One-slot backing store for a standalone :class:`Resource`."""

    __slots__ = ("_free", "_busy", "_nres")

    def __init__(self) -> None:
        self._free = np.zeros(1)
        self._busy = np.zeros(1)
        self._nres = np.zeros(1, dtype=np.int64)


class Resource:
    """A single-server FIFO resource: a view over one struct-of-arrays slot.

    Constructed standalone (``Resource("x")``) it owns a private one-slot
    store; the :class:`ContentionTracker` hands out views into its shared
    columns instead.  Either way the API is the plain scalar triple
    ``next_free`` / ``busy_time`` / ``reservations``.
    """

    __slots__ = ("name", "_store", "_i")

    def __init__(
        self,
        name: str,
        next_free: float = 0.0,
        busy_time: float = 0.0,
        reservations: int = 0,
        *,
        _store=None,
        _index: int = 0,
    ):
        self.name = name
        if _store is None:
            _store = _Cells()
            _index = 0
            _store._free[0] = next_free
            _store._busy[0] = busy_time
            _store._nres[0] = reservations
        self._store = _store
        self._i = _index

    @property
    def next_free(self) -> float:
        """Earliest time a new reservation may start."""
        return float(self._store._free[self._i])

    @next_free.setter
    def next_free(self, value: float) -> None:
        self._store._free[self._i] = value

    @property
    def busy_time(self) -> float:
        """Cumulative reserved duration."""
        return float(self._store._busy[self._i])

    @busy_time.setter
    def busy_time(self, value: float) -> None:
        self._store._busy[self._i] = value

    @property
    def reservations(self) -> int:
        """Number of reservations taken so far."""
        return int(self._store._nres[self._i])

    @reservations.setter
    def reservations(self, value: int) -> None:
        self._store._nres[self._i] = value

    def earliest_start(self, ready: float) -> float:
        """Start time of a request arriving at ``ready``."""
        free = self._store._free[self._i]
        return ready if ready >= free else float(free)

    def hold(self, start: float, duration: float) -> None:
        """Reserve ``[start, start + duration)``; FIFO order is enforced."""
        if duration < 0:
            raise SimulationError(f"negative hold duration on {self.name}")
        store, i = self._store, self._i
        if start + 1e-12 < store._free[i]:
            raise SimulationError(
                f"resource {self.name} double-booked: start {start} < free "
                f"{float(store._free[i])}"
            )
        store._free[i] = start + duration
        store._busy[i] += duration
        store._nres[i] += 1

    def __repr__(self) -> str:
        return (
            f"Resource({self.name!r}, next_free={self.next_free}, "
            f"busy_time={self.busy_time}, reservations={self.reservations})"
        )


class _ChannelViews:
    """Lazy mapping ``(u, v) -> Resource`` over the tracker's channel slots.

    Channel state is id-first (see :class:`ContentionTracker`); views are
    materialized only when someone actually asks for the object API, and
    cached so repeated lookups return the same view.
    """

    __slots__ = ("_t", "_views")

    def __init__(self, tracker: "ContentionTracker"):
        self._t = tracker
        self._views: dict[tuple[int, int], Resource] = {}

    def _view(self, key: tuple[int, int], index: int) -> Resource:
        res = self._views.get(key)
        if res is None:
            u, v = key
            res = Resource(
                f"channel[{u}->{v}]", _store=self._t, _index=index
            )
            self._views[key] = res
        return res

    def get(self, key, default=None):
        index = self._t._channel_ids.get(key)
        if index is None:
            return default
        return self._view(key, index)

    def __getitem__(self, key):
        return self._view(key, self._t._channel_ids[key])

    def __contains__(self, key):
        return key in self._t._channel_ids

    def __iter__(self):
        return iter(self._t._channel_ids)

    def __len__(self):
        return len(self._t._channel_ids)

    def keys(self):
        return self._t._channel_ids.keys()

    def values(self):
        return (self[k] for k in self._t._channel_ids)

    def items(self):
        return ((k, self[k]) for k in self._t._channel_ids)


class ResourceSet:
    """Joint reservation over several resources."""

    @staticmethod
    def reserve(resources: list[Resource], ready: float, duration: float) -> float:
        """Reserve all ``resources`` for ``duration`` starting no earlier than
        ``ready``; returns the start time."""
        start = ready
        for r in resources:
            start = r.earliest_start(start)
        for r in resources:
            r.hold(start, duration)
        return start


class ContentionTracker:
    """Owns every port/link resource of a simulated machine.

    One-port machines have a per-node ``send`` engagement resource: a node
    injects (or forwards) at most one transfer at a time.  The receive side
    of a transfer is assumed concurrently engaged — the node is full duplex,
    sending one message while receiving one.  Serializing only the sender
    side avoids convoy artefacts (a sender idling its port while waiting for
    a busy receiver) and reproduces the paper's lockstep accounting, where
    every one-port schedule has each node receive at most as many messages
    per step as it sends.

    Multi-port machines are constrained per directional channel only: every
    (link, direction) carries one transfer at a time, and a node may drive
    all its links at once.  Channels are tracked in both models so link
    utilization statistics are always available.

    All resource state lives in three preallocated columns (``_free``,
    ``_busy``, ``_nres``) indexed by a dense id; capacity doubles on demand
    up to the machine's ``p·(d + 1)`` resource ceiling.  Slots never move,
    so ids cached in :class:`Resource` views and the per-hop id cache stay
    valid across growth.
    """

    def __init__(self, config: MachineConfig):
        self.config = config
        one_port = config.port_model is PortModel.ONE_PORT
        p = config.num_nodes
        cap = max(1, (p if one_port else 0) + min(p * config.dimension, 4096))
        self._free = np.zeros(cap)
        self._busy = np.zeros(cap)
        self._nres = np.zeros(cap, dtype=np.int64)
        self._n = 0
        self._send_port: dict[int, Resource] = {}
        # id-first channel bookkeeping: the dict maps a directional link to
        # its column slot; Resource views are materialized lazily through
        # the _channel facade (stats, superstep seeding by object).
        self._channel_ids: dict[tuple[int, int], int] = {}
        self._channel = _ChannelViews(self)
        # hop -> resource-view list, validated once then reused for every
        # message crossing the same directional link; _hop_ids carries the
        # same hops as raw column ids for the reserve_hop fast path.
        self._hop_cache: dict[tuple[int, int], list[Resource]] = {}
        self._hop_ids: dict[tuple[int, int], tuple[int, ...]] = {}
        if one_port:
            for node in config.cube.nodes():
                self._send_port[node] = Resource(
                    f"send_port[{node}]", _store=self, _index=self._alloc()
                )

    def _alloc(self) -> int:
        """Claim one zeroed column slot; returns its id."""
        i = self._n
        if i == len(self._free):
            self._grow()
        self._n = i + 1
        return i

    def _grow(self) -> None:
        for attr in ("_free", "_busy", "_nres"):
            old = getattr(self, attr)
            new = np.zeros(2 * len(old), dtype=old.dtype)
            new[: len(old)] = old
            setattr(self, attr, new)

    def _channel_slot(self, u: int, v: int) -> int:
        """Column id of channel ``u -> v``, allocating the slot on first use."""
        key = (u, v)
        i = self._channel_ids.get(key)
        if i is None:
            i = self._alloc()
            self._channel_ids[key] = i
        return i

    def _channel_resource(self, u: int, v: int) -> Resource:
        return self._channel._view((u, v), self._channel_slot(u, v))

    def hop_resources(self, u: int, v: int) -> list[Resource]:
        """Resources a hop ``u -> v`` must hold for its duration (cached)."""
        key = (u, v)
        resources = self._hop_cache.get(key)
        if resources is None:
            if not self.config.cube.are_neighbors(u, v):
                raise SimulationError(f"hop {u}->{v} is not a hypercube link")
            resources = [self._channel_resource(u, v)]
            if self.config.port_model is PortModel.ONE_PORT:
                resources.append(self._send_port[u])
            self._hop_cache[key] = resources
            self._hop_ids[key] = tuple(r._i for r in resources)
        return resources

    def reserve_hop(self, u: int, v: int, ready: float, duration: float) -> float:
        """Reserve the hop ``u -> v``; returns its start time.

        Semantically ``ResourceSet.reserve(hop_resources(u, v), ...)``, but
        run directly over the struct-of-arrays columns through the cached
        id tuple — this runs once per hop of every message, making it the
        hottest contention-tracking path.
        """
        ids = self._hop_ids.get((u, v))
        if ids is None:
            self.hop_resources(u, v)
            ids = self._hop_ids[(u, v)]
        if duration < 0:
            raise SimulationError(f"negative hold duration on hop {u}->{v}")
        free = self._free
        start = ready
        for i in ids:
            f = free[i]
            if f > start:
                start = f
        start = float(start)
        end = start + duration
        busy = self._busy
        nres = self._nres
        for i in ids:
            free[i] = end
            busy[i] += duration
            nres[i] += 1
        return start

    # -- statistics ----------------------------------------------------

    def channel_utilization(self, horizon: float) -> dict[tuple[int, int], float]:
        """Fraction of ``[0, horizon]`` each used directional channel was busy."""
        if horizon <= 0:
            return {k: 0.0 for k in self._channel_ids}
        busy = self._busy
        return {
            k: float(busy[i]) / horizon for k, i in self._channel_ids.items()
        }

    def max_channel_busy(self) -> float:
        """Longest cumulative busy time over all channels (a lower bound on
        any schedule's completion time)."""
        ids = self._channel_ids
        if not ids:
            return 0.0
        cols = np.fromiter(ids.values(), dtype=np.intp, count=len(ids))
        return float(self._busy[cols].max())

    def total_channel_busy(self) -> float:
        # Summed sequentially in channel-key order, not creation order: the
        # closed-form superstep path may create a phase's channels in rank
        # order while the event path creates them in reservation order, and
        # float addition is order-sensitive.  A fixed order keeps the metric
        # well-defined (and bit-identical) across both.
        ids = self._channel_ids
        busy = self._busy
        return float(sum(busy[ids[k]] for k in sorted(ids)))
