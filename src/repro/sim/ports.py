"""FIFO communication resources: node ports and directional links.

Each resource is a single-server queue tracked only by its *next-free time*;
requests arriving (in event order) at time ``t`` start at
``max(t, next_free)``.  A hop needs several resources at once (the sender's
port, the channel, the receiver's port); :class:`ResourceSet` reserves them
jointly: the start time is the max of all next-free times and the request
time, and every resource is then held until ``start + duration``.

Because the engine processes events in non-decreasing time order with a
deterministic tie-break, reservations are FIFO and runs are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.sim.machine import MachineConfig, PortModel

__all__ = ["Resource", "ResourceSet", "ContentionTracker"]


@dataclass
class Resource:
    """A single-server FIFO resource."""

    name: str
    next_free: float = 0.0
    busy_time: float = 0.0
    reservations: int = 0

    def earliest_start(self, ready: float) -> float:
        return max(ready, self.next_free)

    def hold(self, start: float, duration: float) -> None:
        if duration < 0:
            raise SimulationError(f"negative hold duration on {self.name}")
        if start + 1e-12 < self.next_free:
            raise SimulationError(
                f"resource {self.name} double-booked: start {start} < free "
                f"{self.next_free}"
            )
        self.next_free = start + duration
        self.busy_time += duration
        self.reservations += 1


class ResourceSet:
    """Joint reservation over several resources."""

    @staticmethod
    def reserve(resources: list[Resource], ready: float, duration: float) -> float:
        """Reserve all ``resources`` for ``duration`` starting no earlier than
        ``ready``; returns the start time."""
        start = ready
        for r in resources:
            start = r.earliest_start(start)
        for r in resources:
            r.hold(start, duration)
        return start


class ContentionTracker:
    """Owns every port/link resource of a simulated machine.

    One-port machines have a per-node ``send`` engagement resource: a node
    injects (or forwards) at most one transfer at a time.  The receive side
    of a transfer is assumed concurrently engaged — the node is full duplex,
    sending one message while receiving one.  Serializing only the sender
    side avoids convoy artefacts (a sender idling its port while waiting for
    a busy receiver) and reproduces the paper's lockstep accounting, where
    every one-port schedule has each node receive at most as many messages
    per step as it sends.

    Multi-port machines are constrained per directional channel only: every
    (link, direction) carries one transfer at a time, and a node may drive
    all its links at once.  Channels are tracked in both models so link
    utilization statistics are always available.
    """

    def __init__(self, config: MachineConfig):
        self.config = config
        self._send_port: dict[int, Resource] = {}
        self._channel: dict[tuple[int, int], Resource] = {}
        # hop -> resource list, validated once then reused for every
        # message crossing the same directional link (engine fast path)
        self._hop_cache: dict[tuple[int, int], list[Resource]] = {}
        if config.port_model is PortModel.ONE_PORT:
            for node in config.cube.nodes():
                self._send_port[node] = Resource(f"send_port[{node}]")

    def _channel_resource(self, u: int, v: int) -> Resource:
        key = (u, v)
        res = self._channel.get(key)
        if res is None:
            res = Resource(f"channel[{u}->{v}]")
            self._channel[key] = res
        return res

    def hop_resources(self, u: int, v: int) -> list[Resource]:
        """Resources a hop ``u -> v`` must hold for its duration (cached)."""
        key = (u, v)
        resources = self._hop_cache.get(key)
        if resources is None:
            if not self.config.cube.are_neighbors(u, v):
                raise SimulationError(f"hop {u}->{v} is not a hypercube link")
            resources = [self._channel_resource(u, v)]
            if self.config.port_model is PortModel.ONE_PORT:
                resources.append(self._send_port[u])
            self._hop_cache[key] = resources
        return resources

    def reserve_hop(self, u: int, v: int, ready: float, duration: float) -> float:
        """Reserve the hop ``u -> v``; returns its start time.

        Semantically ``ResourceSet.reserve(hop_resources(u, v), ...)``, but
        inlined over the cached resource list — this runs once per hop of
        every message, making it the hottest contention-tracking path.
        """
        resources = self._hop_cache.get((u, v))
        if resources is None:
            resources = self.hop_resources(u, v)
        if duration < 0:
            raise SimulationError(f"negative hold duration on hop {u}->{v}")
        start = ready
        for r in resources:
            if r.next_free > start:
                start = r.next_free
        end = start + duration
        for r in resources:
            r.next_free = end
            r.busy_time += duration
            r.reservations += 1
        return start

    # -- statistics ----------------------------------------------------

    def channel_utilization(self, horizon: float) -> dict[tuple[int, int], float]:
        """Fraction of ``[0, horizon]`` each used directional channel was busy."""
        if horizon <= 0:
            return {k: 0.0 for k in self._channel}
        return {k: r.busy_time / horizon for k, r in self._channel.items()}

    def max_channel_busy(self) -> float:
        """Longest cumulative busy time over all channels (a lower bound on
        any schedule's completion time)."""
        if not self._channel:
            return 0.0
        return max(r.busy_time for r in self._channel.values())

    def total_channel_busy(self) -> float:
        # Summed in channel-key order, not creation order: the closed-form
        # superstep path may create a phase's channels in rank order while
        # the event path creates them in reservation order, and float
        # addition is order-sensitive.  A fixed order keeps the metric
        # well-defined (and bit-identical) across both.
        return sum(
            self._channel[k].busy_time for k in sorted(self._channel)
        )
