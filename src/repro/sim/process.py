"""Per-rank programming interface for SPMD simulator programs.

A program is a generator function taking a :class:`ProcessContext`.  All
communication helpers are themselves generators and must be delegated to
with ``yield from``::

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, np.ones(4))
        elif ctx.rank == 1:
            data = yield from ctx.recv(0)
            ...

Blocking semantics
------------------
``send`` returns once the message has been injected into the network (the
sender's port is free again); the payload is copied first, so the caller may
immediately reuse its buffer.  ``recv`` returns when the message has fully
arrived.  ``isend``/``irecv`` return :class:`~repro.sim.ops.Handle` objects
for :meth:`ProcessContext.waitall`, which is how full-duplex exchanges
(``sendrecv``) and multi-port concurrent transfers are expressed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

import numpy as np

from repro.errors import CommTimeoutError, SimulationError
from repro.sim.message import payload_words
from repro.sim.ops import (
    SHIFT_FALLBACK,
    TIMED_OUT,
    BarrierOp,
    ElapseOp,
    Handle,
    ParallelOp,
    RecvOp,
    SendOp,
    ShiftPhaseOp,
    WaitOp,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

__all__ = ["ProcessContext", "ANY_SOURCE", "ANY_TAG"]

ANY_SOURCE = -1
ANY_TAG = -1


class ProcessContext:
    """Handle through which a rank's program talks to the engine."""

    __slots__ = ("rank", "engine", "config")

    def __init__(self, rank: int, engine: "Engine"):
        self.rank = rank
        self.engine = engine
        self.config = engine.config

    # -- introspection ---------------------------------------------------

    @property
    def num_ranks(self) -> int:
        return self.config.num_nodes

    @property
    def now(self) -> float:
        """The current task's virtual time (sub-task aware)."""
        return self.engine.time_of(self.rank)

    @property
    def stats(self):
        return self.engine.stats[self.rank]

    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.num_ranks:
            raise SimulationError(
                f"rank {peer} out of range on a {self.num_ranks}-node machine"
            )

    # -- point to point ----------------------------------------------------

    def send(
        self,
        dst: int,
        data: Any,
        tag: int = 0,
        nwords: int | None = None,
        *,
        ack_tag: int | None = None,
        crc: int | None = None,
    ):
        """Blocking send (generator; use ``yield from``).

        ``ack_tag`` requests a delivery acknowledgement from the
        destination node (see :class:`~repro.sim.ops.SendOp`); ``crc``
        additionally asks it to verify the payload's canonical checksum
        at delivery and NACK a corrupted copy.
        """
        self._check_peer(dst)
        yield SendOp(
            dst, data, tag, payload_words(data, nwords),
            blocking=True, ack_tag=ack_tag, crc=crc,
        )

    def isend(
        self,
        dst: int,
        data: Any,
        tag: int = 0,
        nwords: int | None = None,
        *,
        ack_tag: int | None = None,
        crc: int | None = None,
    ):
        """Non-blocking send; returns a :class:`Handle`."""
        self._check_peer(dst)
        handle = yield SendOp(
            dst, data, tag, payload_words(data, nwords),
            blocking=False, ack_tag=ack_tag, crc=crc,
        )
        return handle

    def recv(
        self,
        src: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
    ):
        """Blocking receive; returns the payload.

        With ``timeout`` set, raises :class:`~repro.errors.CommTimeoutError`
        if no matching message arrives within ``timeout`` time units — a
        lost message becomes a typed, catchable failure instead of a
        whole-run :class:`~repro.errors.DeadlockError`.
        """
        if src != ANY_SOURCE:
            self._check_peer(src)
        if timeout is not None and timeout <= 0:
            raise SimulationError(f"recv timeout must be positive, got {timeout}")
        data = yield RecvOp(src, tag, blocking=True, timeout=timeout)
        if data is TIMED_OUT:
            raise CommTimeoutError(self.rank, src, tag, timeout)
        return data

    def irecv(
        self,
        src: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
    ):
        """Non-blocking receive; returns a :class:`Handle`.

        With ``timeout`` set, the handle completes with
        :data:`~repro.sim.ops.TIMED_OUT` (``handle.timed_out`` is True) if
        the window expires first.
        """
        if src != ANY_SOURCE:
            self._check_peer(src)
        if timeout is not None and timeout <= 0:
            raise SimulationError(f"recv timeout must be positive, got {timeout}")
        handle = yield RecvOp(src, tag, blocking=False, timeout=timeout)
        return handle

    def waitall(self, handles: Iterable[Handle]):
        """Wait for every handle; returns their values in order."""
        handles = list(handles)
        for h in handles:
            if not isinstance(h, Handle):
                raise SimulationError(f"waitall expects Handles, got {type(h).__name__}")
            if h.rank != self.rank:
                raise SimulationError(
                    f"rank {self.rank} cannot wait on rank {h.rank}'s handle"
                )
        values = yield WaitOp(handles)
        return values

    def wait(self, handle: Handle):
        """Wait for one handle; returns its value."""
        values = yield from self.waitall([handle])
        return values[0]

    def sendrecv(
        self,
        dst: int,
        data: Any,
        src: int = ANY_SOURCE,
        send_tag: int = 0,
        recv_tag: int = ANY_TAG,
        nwords: int | None = None,
    ):
        """Concurrent send+receive (full duplex); returns the received payload."""
        hs = yield from self.isend(dst, data, send_tag, nwords)
        hr = yield from self.irecv(src, recv_tag)
        values = yield from self.waitall([hs, hr])
        return values[1]

    def exchange(self, peer: int, data: Any, tag: int = 0, nwords: int | None = None):
        """Pairwise exchange with ``peer``: send ``data``, return theirs."""
        return (
            yield from self.sendrecv(peer, data, src=peer, send_tag=tag, recv_tag=tag, nwords=nwords)
        )

    # -- computation -------------------------------------------------------

    def elapse(self, duration: float):
        """Advance this rank's clock by ``duration`` time units."""
        if duration < 0:
            raise SimulationError(f"cannot elapse negative time {duration}")
        yield ElapseOp(duration)

    def compute(self, flops: float):
        """Charge ``flops`` floating-point operations (``t_c`` each)."""
        yield ElapseOp(self.config.params.flops_time(flops), flops)

    def local_matmul(self, A: np.ndarray, B: np.ndarray, C: np.ndarray | None = None):
        """Local block multiply ``A @ B`` (optionally accumulated into ``C``),
        charging ``2·m·k·n`` flops; returns the product (or updated ``C``)."""
        if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[0]:
            raise SimulationError(
                f"local_matmul shape mismatch: {A.shape} @ {B.shape}"
            )
        m, k = A.shape
        n = B.shape[1]
        flops = 2.0 * m * k * n
        if self.engine.timing_only:
            # Timing-only mode: charge the same flops/time, skip the real
            # product (and corruption, which would write into the view).
            # The zero-cost broadcast view keeps the product's shape so
            # later sends/matmuls still size their messages correctly.
            if C is not None and C.shape != (m, n):
                raise SimulationError(
                    f"accumulator shape {C.shape} != product shape {(m, n)}"
                )
            yield ElapseOp(self.config.params.flops_time(flops), flops)
            return C if C is not None else np.broadcast_to(0.0, (m, n))
        if C is None:
            out = A @ B
        else:
            if C.shape != (m, n):
                raise SimulationError(
                    f"accumulator shape {C.shape} != product shape {(m, n)}"
                )
            C += A @ B
            out = C
        yield ElapseOp(self.config.params.flops_time(flops), flops)
        # A pending NodeCorruption fires on the first multiply completing
        # at/after its virtual time: the block this rank just produced is
        # silently perturbed (see FaultPlan.with_node_corruption).
        self.engine.apply_node_corruption(self.rank, out)
        return out

    def shift_phase(
        self,
        *,
        steps: int,
        a_to: int,
        a_from: int,
        b_to: int,
        b_from: int,
        a_block: np.ndarray,
        b_block: np.ndarray,
        tag_a: int,
        tag_b: int,
    ):
        """Run a uniform shift-multiply superstep (generator).

        Equivalent to ``steps`` rounds of ``C (+)= A @ B`` each followed
        (except the last) by a concurrent unit shift of ``A`` to ``a_to``
        / from ``a_from`` and ``B`` to ``b_to`` / from ``b_from``.
        Returns the final ``(a_block, b_block, c_block)``.

        Declaring the phase at each round boundary (a fresh
        :class:`~repro.sim.ops.ShiftPhaseOp` carrying the remaining round
        count and the partial accumulator) lets the engine advance every
        rank's remaining rounds in closed form the moment the whole
        machine sits at a compatible boundary with a quiet network — see
        :mod:`repro.sim.superstep`.  When it cannot (faults, scenarios,
        tracing, residual foreign traffic, anything irregular), the engine
        answers :data:`~repro.sim.ops.SHIFT_FALLBACK` and exactly one
        round runs through the ordinary event machinery before the next
        attempt; both routes produce bit-identical times, stats and
        results.
        """
        if steps < 1:
            raise SimulationError(f"shift_phase needs steps >= 1, got {steps}")
        c_block = None
        for step in range(steps):
            verdict = yield ShiftPhaseOp(
                steps - step, a_to, a_from, b_to, b_from,
                a_block, b_block, tag_a, tag_b, c_block,
            )
            if verdict is not SHIFT_FALLBACK:
                return verdict
            c_block = yield from self.local_matmul(a_block, b_block, c_block)
            if step == steps - 1:
                break
            handles = [
                (yield from self.isend(a_to, a_block, tag_a)),
                (yield from self.irecv(a_from, tag_a)),
                (yield from self.isend(b_to, b_block, tag_b)),
                (yield from self.irecv(b_from, tag_b)),
            ]
            values = yield from self.waitall(handles)
            a_block, b_block = values[1], values[3]
        return a_block, b_block, c_block

    # -- intra-rank concurrency ----------------------------------------------

    def parallel(self, *generators):
        """Run sub-generators concurrently on this node; returns their values.

        Each argument is an already-constructed generator (e.g. a collective
        call).  Their communication overlaps subject to the port model: a
        multi-port node drives them simultaneously, a one-port node
        serializes their transfers through its single engagement — which is
        exactly how the paper accounts for "phases occurring in parallel".

        ::

            a_list, b_val = yield from ctx.parallel(
                allgather(row_comm, a_block, tag=1),
                broadcast(col_comm, b_block, root=0, tag=2),
            )
        """
        values = yield ParallelOp(list(generators))
        return values

    # -- synchronisation and bookkeeping ------------------------------------

    def barrier(self):
        """Zero-cost global barrier (harness use only; see :class:`BarrierOp`)."""
        yield BarrierOp()

    def phase(self, name: str) -> None:
        """Mark the start of a named phase at this rank's current time."""
        self.engine.mark_phase(self.rank, name)

    def note_memory(self, resident_words: int) -> None:
        """Record this rank's current resident words for peak-memory stats."""
        self.engine.stats[self.rank].note_memory(resident_words)

    def note_retransmission(self) -> None:
        """Count one retransmission in the run's network statistics
        (used by the reliable-delivery layer)."""
        self.engine.note_retransmission()
