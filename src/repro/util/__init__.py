"""Low-level utilities: bit manipulation, Gray codes, validation helpers."""

from repro.util.bits import (
    bit,
    gray_code,
    gray_code_inverse,
    hamming_distance,
    is_power_of_two,
    is_power_of_eight,
    is_perfect_cube_pow2,
    is_perfect_square_pow2,
    ilog2,
    icbrt_pow2,
    isqrt_pow2,
    popcount,
    set_bits,
)

__all__ = [
    "bit",
    "gray_code",
    "gray_code_inverse",
    "hamming_distance",
    "is_power_of_two",
    "is_power_of_eight",
    "is_perfect_cube_pow2",
    "is_perfect_square_pow2",
    "ilog2",
    "icbrt_pow2",
    "isqrt_pow2",
    "popcount",
    "set_bits",
]
