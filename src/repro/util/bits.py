"""Bit-manipulation primitives used throughout the hypercube machinery.

Hypercube node addresses are plain non-negative integers whose binary
representation selects a corner of the 2-ary n-cube.  Everything in this
module is exact integer arithmetic; no floating point is involved so the
results are safe to use as array indices and rank numbers.
"""

from __future__ import annotations

__all__ = [
    "popcount",
    "bit",
    "set_bits",
    "hamming_distance",
    "is_power_of_two",
    "is_power_of_eight",
    "is_perfect_square_pow2",
    "is_perfect_cube_pow2",
    "ilog2",
    "isqrt_pow2",
    "icbrt_pow2",
    "gray_code",
    "gray_code_inverse",
]


def popcount(x: int) -> int:
    """Number of set bits in ``x`` (``x >= 0``)."""
    if x < 0:
        raise ValueError(f"popcount requires a non-negative integer, got {x}")
    return x.bit_count()


def bit(x: int, k: int) -> int:
    """The ``k``-th bit (0 = least significant) of ``x``, as 0 or 1."""
    if k < 0:
        raise ValueError(f"bit index must be non-negative, got {k}")
    return (x >> k) & 1


def set_bits(x: int) -> tuple[int, ...]:
    """Indices of the set bits of ``x``, ascending."""
    out = []
    k = 0
    while x:
        if x & 1:
            out.append(k)
        x >>= 1
        k += 1
    return tuple(out)


def hamming_distance(a: int, b: int) -> int:
    """Number of bit positions in which ``a`` and ``b`` differ.

    On a hypercube this is the length of the shortest path between nodes
    ``a`` and ``b``.
    """
    return popcount(a ^ b)


def is_power_of_two(x: int) -> bool:
    """True iff ``x`` is a positive power of two (including ``1``)."""
    return x > 0 and (x & (x - 1)) == 0


def ilog2(x: int) -> int:
    """Exact base-2 logarithm of a power of two."""
    if not is_power_of_two(x):
        raise ValueError(f"ilog2 requires a positive power of two, got {x}")
    return x.bit_length() - 1


def is_perfect_square_pow2(x: int) -> bool:
    """True iff ``x = 4**k`` for some ``k >= 0`` (an even power of two)."""
    return is_power_of_two(x) and ilog2(x) % 2 == 0


def is_power_of_eight(x: int) -> bool:
    """True iff ``x = 8**k`` for some ``k >= 0``."""
    return is_power_of_two(x) and ilog2(x) % 3 == 0


# The paper lays 3-D grids of size ∛p × ∛p × ∛p onto p-processor cubes, so
# ``p`` must be a power of eight there; 2-D grids need a power of four.
is_perfect_cube_pow2 = is_power_of_eight


def isqrt_pow2(x: int) -> int:
    """Exact square root of an even power of two."""
    if not is_perfect_square_pow2(x):
        raise ValueError(f"isqrt_pow2 requires 4**k, got {x}")
    return 1 << (ilog2(x) // 2)


def icbrt_pow2(x: int) -> int:
    """Exact cube root of a power of eight."""
    if not is_power_of_eight(x):
        raise ValueError(f"icbrt_pow2 requires 8**k, got {x}")
    return 1 << (ilog2(x) // 3)


def gray_code(i: int) -> int:
    """The ``i``-th binary-reflected Gray code.

    Consecutive Gray codes differ in exactly one bit, which is what embeds
    rings and grids into hypercubes with dilation 1.
    """
    if i < 0:
        raise ValueError(f"gray_code requires a non-negative index, got {i}")
    return i ^ (i >> 1)


def gray_code_inverse(g: int) -> int:
    """Index ``i`` such that ``gray_code(i) == g``."""
    if g < 0:
        raise ValueError(f"gray_code_inverse requires non-negative input, got {g}")
    i = 0
    while g:
        i ^= g
        g >>= 1
    return i
