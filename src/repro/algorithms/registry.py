"""Registry of the paper's algorithms, keyed for lookup by benches/CLI."""

from __future__ import annotations

from repro.algorithms.base import MatmulAlgorithm
from repro.errors import AlgorithmError

__all__ = ["ALGORITHMS", "get_algorithm", "list_algorithms", "register"]

ALGORITHMS: dict[str, MatmulAlgorithm] = {}


def register(algo: MatmulAlgorithm) -> MatmulAlgorithm:
    """Add an algorithm instance to the registry (key must be unique)."""
    if not algo.key:
        raise AlgorithmError(f"algorithm {algo!r} has no key")
    if algo.key in ALGORITHMS:
        raise AlgorithmError(f"duplicate algorithm key {algo.key!r}")
    ALGORITHMS[algo.key] = algo
    return algo


def get_algorithm(key: str) -> MatmulAlgorithm:
    """Look an algorithm up by key; raises AlgorithmError for unknown keys."""
    try:
        return ALGORITHMS[key]
    except KeyError:
        raise AlgorithmError(
            f"unknown algorithm {key!r}; available: {sorted(ALGORITHMS)}"
        ) from None


def list_algorithms() -> list[str]:
    """All registered algorithm keys, sorted."""
    return sorted(ALGORITHMS)


def _populate() -> None:
    from repro.algorithms.simple import SimpleAlgorithm
    from repro.algorithms.cannon import CannonAlgorithm
    from repro.algorithms.hje import HJEAlgorithm
    from repro.algorithms.berntsen import BerntsenAlgorithm
    from repro.algorithms.dns import DNSAlgorithm
    from repro.algorithms.diagonal2d import Diagonal2DAlgorithm
    from repro.algorithms.diagonal3d import Diagonal3DAlgorithm
    from repro.algorithms.all_trans import AllTransAlgorithm
    from repro.algorithms.all3d import All3DAlgorithm
    from repro.algorithms.dns_cannon import DNSCannonAlgorithm
    from repro.algorithms.diag3d_cannon import Diag3DCannonAlgorithm
    from repro.algorithms.all3d_rect import All3DRectAlgorithm
    from repro.algorithms.fox import FoxAlgorithm

    register(SimpleAlgorithm())
    register(FoxAlgorithm())
    register(DNSCannonAlgorithm())
    register(Diag3DCannonAlgorithm())
    register(All3DRectAlgorithm())
    register(CannonAlgorithm())
    register(HJEAlgorithm())
    register(BerntsenAlgorithm())
    register(DNSAlgorithm())
    register(Diagonal2DAlgorithm())
    register(Diagonal3DAlgorithm())
    register(AllTransAlgorithm())
    register(All3DAlgorithm())


_populate()
