"""Ho-Johnsson-Edelman (§3.3, Algorithm 1): full-bandwidth Cannon variant.

The algorithm works in the *code space* of the Gray embedding: with row
code ``x`` and column code ``y`` (the physical cube bit-fields), the XOR
alignment moves ``A``'s block from ``(x, y)`` to ``(x, y⊕x)`` and ``B``'s
to ``(x⊕y, y)``, one dimension exchange per set bit.  After alignment the
processor at ``(x, y)`` holds matching inner-index blocks, and each of the
``√p`` multiply steps advances the inner index by XORing a Gray-code mask.

The full-bandwidth trick: the local ``A`` block is split into
``d = log √p`` column groups and ``B`` into ``d`` row groups.  Group ``l``
follows the Gray mask sequence *rotated by ``l``*: at step ``t`` it crosses
dimension ``(g_t + l) mod d`` (``g_t`` = the bit where consecutive Gray
codes differ).  The ``d`` groups of ``A`` travel on distinct column
dimensions (and ``B``'s on distinct row dimensions) simultaneously, so a
multi-port node uses all its links and the per-step transfer drops from
``t_w·m`` to ``t_w·m/log √p`` — Table 2's Ho et al. row.  Each group pair
``(A^l, B^l)`` always shares the same inner index, so the per-step update
``C += Σ_l A^l·B^l`` is a valid partial of the block product.

Applicable when ``n/√p ≥ log √p`` (enough columns to split); on one-port
machines the extra start-ups make it strictly worse than Cannon, which is
why Table 2 lists it for multi-port only (we still allow running it
one-port for ablation).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.algorithms.base import MatmulAlgorithm
from repro.algorithms.common import TAG_A, TAG_B, require, require_square_grid
from repro.blocks.partition import BlockPartition2D
from repro.errors import AlgorithmError
from repro.topology.embedding import Grid2DEmbedding
from repro.topology.hypercube import Hypercube
from repro.util.bits import gray_code, ilog2

__all__ = ["HJEAlgorithm"]


def _group_bounds(size: int, d: int) -> list[tuple[int, int]]:
    """Split ``range(size)`` into ``d`` contiguous slices (array_split rule)."""
    base, extra = divmod(size, d)
    bounds = []
    start = 0
    for l in range(d):
        width = base + (1 if l < extra else 0)
        bounds.append((start, start + width))
        start += width
    return bounds


class HJEAlgorithm(MatmulAlgorithm):
    """Ho-Johnsson-Edelman full-bandwidth Cannon variant (see module doc)."""

    key = "hje"
    name = "Ho-Johnsson-Edelman"
    paper_section = "3.3"

    def check_applicable(self, n: int, p: int) -> None:
        q = require_square_grid(n, p, self.name)
        d = ilog2(q)
        require(
            d >= 1 and n // q >= d,
            f"{self.name}: needs n/sqrt(p) >= log sqrt(p) "
            f"(n={n}, sqrt(p)={q}, log sqrt(p)={d})",
        )

    def distribute_inputs(self, A, B, cube: Hypercube):
        grid = Grid2DEmbedding.square(cube)
        part = BlockPartition2D(A.shape[0], grid.rows)
        return {
            grid.node_at(i, j): {
                "A": part.extract(A, i, j),
                "B": part.extract(B, i, j),
            }
            for i in range(grid.rows)
            for j in range(grid.cols)
        }

    def program(self, ctx, n: int, local: dict[str, Any]):
        grid = Grid2DEmbedding.square(ctx.config.cube)
        q = grid.rows
        d = ilog2(q)
        kc = d  # low bits hold the column code
        me = ctx.rank
        y_code = me & ((1 << kc) - 1)
        x_code = me >> kc

        def node(x: int, y: int) -> int:
            return (x << kc) | y

        a_block, b_block = local["A"], local["B"]
        ctx.note_memory(3 * a_block.size)

        # -- XOR alignment: A to (x, y^x), B to (x^y, y) --------------------
        # One pairwise exchange per set bit; both matrices move concurrently.
        ctx.phase("align")
        for bit in range(d):
            handles = []
            a_pending = b_pending = None
            if (x_code >> bit) & 1:  # A moves across column dimension `bit`
                peer = node(x_code, y_code ^ (1 << bit))
                handles.append((yield from ctx.isend(peer, a_block, TAG_A)))
                a_pending = (yield from ctx.irecv(peer, TAG_A))
                handles.append(a_pending)
            if (y_code >> bit) & 1:  # B moves across row dimension `bit`
                peer = node(x_code ^ (1 << bit), y_code)
                handles.append((yield from ctx.isend(peer, b_block, TAG_B)))
                b_pending = (yield from ctx.irecv(peer, TAG_B))
                handles.append(b_pending)
            if handles:
                yield from ctx.waitall(handles)
            if a_pending is not None:
                a_block = a_pending.value
            if b_pending is not None:
                b_block = b_pending.value

        # -- multiply loop over Gray-code masks ------------------------------
        # Group l of A (columns slice) and of B (rows slice); the slices use
        # identical boundaries so each product A^l @ B^l is a full block.
        bounds = _group_bounds(a_block.shape[1], d)
        a_groups = [np.ascontiguousarray(a_block[:, s:e]) for s, e in bounds]
        b_groups = [np.ascontiguousarray(b_block[s:e, :]) for s, e in bounds]

        ctx.phase("multiply")
        c_block = np.zeros((a_block.shape[0], b_block.shape[1]))
        for t in range(q):
            for l in range(d):
                c_block = yield from ctx.local_matmul(
                    a_groups[l], b_groups[l], c_block
                )
            if t == q - 1:
                break
            g_t = ilog2(gray_code(t) ^ gray_code(t + 1))
            handles = []
            a_handles = []
            b_handles = []
            for l in range(d):
                dim = (g_t + l) % d
                col_peer = node(x_code, y_code ^ (1 << dim))
                row_peer = node(x_code ^ (1 << dim), y_code)
                handles.append(
                    (yield from ctx.isend(col_peer, a_groups[l], TAG_A + 16 + l))
                )
                ha = yield from ctx.irecv(col_peer, TAG_A + 16 + l)
                handles.append(ha)
                a_handles.append(ha)
                handles.append(
                    (yield from ctx.isend(row_peer, b_groups[l], TAG_B + 32 + l))
                )
                hb = yield from ctx.irecv(row_peer, TAG_B + 32 + l)
                handles.append(hb)
                b_handles.append(hb)
            yield from ctx.waitall(handles)
            for l in range(d):
                a_groups[l] = a_handles[l].value
                b_groups[l] = b_handles[l].value
        return c_block

    def collect_output(self, n: int, cube: Hypercube, results):
        grid = Grid2DEmbedding.square(cube)
        part = BlockPartition2D(n, grid.rows)
        kc = ilog2(grid.rows)
        blocks = {}
        for node_id, c_block in results.items():
            if c_block is None:
                raise AlgorithmError(f"node {node_id} returned no C block")
            y = node_id & ((1 << kc) - 1)
            x = node_id >> kc
            # The C block at codes (x, y) is C_{inv_gray(x), inv_gray(y)},
            # i.e. exactly the grid position of the node.
            i, j = grid.coords_of(node_id)
            blocks[(i, j)] = c_block
        return part.assemble(blocks)
