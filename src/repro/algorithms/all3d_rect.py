"""Rectangular-grid 3D All (§4.2.2's closing remark, generalized).

The paper notes that mapping a non-cubic 3-D grid onto the hypercube lets
3D All use more processors, trading space and start-up structure.  This
module implements the full generalization: a ``q1 × q2 × q1`` grid
(``p = q1²·q2``; x- and z-sides must match for the inner dimensions of the
outer products to agree — re-deriving the §4.2.2 proof with grid sides
``(qx, qy, qz)`` forces ``qx = qz``).

* ``A`` and ``B`` are partitioned into ``q1`` row-groups × ``q1·q2``
  column-groups; ``p_{i,j,k}`` holds blocks ``A/B_{k, f(i,j)}`` with
  ``f(i,j) = i·q2 + j``.
* Phase 1: all-to-all personalized along y over ``q2`` processors (the
  ``q2`` row-group split of the ``B`` blocks).
* Phase 2: all-to-all broadcasts of ``A`` along x and the re-shuffled
  ``B`` along z — both over ``q1`` processors, overlapped on multi-port.
* Phase 3: all-to-all reduction along y.

``q2 = q1`` recovers the paper's cubic 3D All exactly.  Larger ``q2``
(e.g. the paper's ``∜p × √p × ∜p``) uses processor counts that are *not*
powers of eight — p = 16, 256, 1024, … become reachable — at the price of
more phase-1/3 start-ups; smaller ``q2`` cuts the y-phases short.  The
applicability frontier is ``n ≥ q1·q2`` (a column group needs at least one
column), i.e. ``p ≤ n²·q1 / q2 ≤ ...`` — for the ``q2 = √p`` family this
reads ``p ≤ n^{4/3}``, extending past the cubic variant's divisibility
grid while staying below Table 3's ``p ≤ n^{3/2}`` frontier.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.algorithms.base import MatmulAlgorithm
from repro.algorithms.common import TAG_A, TAG_B, TAG_C, TAG_D, require
from repro.collectives import alltoall, reduce_scatter
from repro.collectives.phase import allgather_call, parallel_pair
from repro.errors import NotApplicableError
from repro.mpi.communicator import Comm
from repro.topology.embedding import Grid3DRectEmbedding
from repro.topology.hypercube import Hypercube
from repro.util.bits import ilog2, is_power_of_two

__all__ = ["All3DRectAlgorithm"]


def _split_sides(p: int, y_side: int | None) -> tuple[int, int] | None:
    """Choose (q1, q2) with ``p = q1²·q2``; returns None if impossible.

    With ``y_side`` given, validates it.  Otherwise picks the smallest
    valid ``q2``: that minimizes both the total start-ups
    (``2·log q1 + 2·log q2 = log p + log q2``) and the divisibility
    pressure ``n % (q1·q2)`` — letting the variant reach processor counts
    the cubic grid cannot (p = 16, 256, 1024, …) with modest matrices.
    """
    if not is_power_of_two(p):
        return None
    k = ilog2(p)
    if y_side is not None:
        if not is_power_of_two(y_side):
            return None
        c2 = ilog2(y_side)
        rem = k - c2
        # y_side = 1 is the degenerate single-plane end of the family,
        # reaching the paper's "up to n^2 processors".
        if c2 < 0 or rem < 2 or rem % 2:
            return None
        return (1 << (rem // 2), y_side)
    for c2 in range(1, k - 1):
        if (k - c2) % 2 == 0:
            return (1 << ((k - c2) // 2), 1 << c2)
    return None


class All3DRectAlgorithm(MatmulAlgorithm):
    """Rectangular-grid 3D All family (see module doc)."""

    key = "3d_all_rect"
    name = "3D All (rectangular)"
    paper_section = "4.2.2 (variant)"

    def __init__(self, y_side: int | None = None):
        self.y_side = y_side

    def _sides_for(self, p: int) -> tuple[int, int]:
        sides = _split_sides(p, self.y_side)
        if sides is None:
            raise NotApplicableError(
                f"{self.name}: p={p} does not split into q1^2*q2 with "
                f"q1, q2 >= 2 (y_side={self.y_side})"
            )
        return sides

    def check_applicable(self, n: int, p: int) -> None:
        q1, q2 = self._sides_for(p)
        require(
            n % (q1 * q2) == 0,
            f"{self.name}: n={n} must be divisible by q1*q2={q1 * q2}",
        )
        # §4.2.2's limit argument: an x-y plane holds q1·q2 processors and
        # at most n can reside there (one column group each).
        require(
            q1 * q2 <= n,
            f"{self.name}: x-y plane has q1*q2={q1 * q2} > n={n} processors",
        )

    # -- data layout ---------------------------------------------------------

    def _grid(self, cube: Hypercube) -> Grid3DRectEmbedding:
        q1, q2 = self._sides_for(cube.num_nodes)
        return Grid3DRectEmbedding(cube, q1, q2, q1)

    @staticmethod
    def _extract(M: np.ndarray, n: int, q1: int, q2: int, k: int, c: int):
        rb = n // q1
        cb = n // (q1 * q2)
        return np.ascontiguousarray(
            M[k * rb:(k + 1) * rb, c * cb:(c + 1) * cb]
        )

    def distribute_inputs(self, A, B, cube: Hypercube):
        q1, q2 = self._sides_for(cube.num_nodes)
        grid = self._grid(cube)
        n = A.shape[0]
        out = {}
        for i in range(q1):
            for j in range(q2):
                c = i * q2 + j
                for k in range(q1):
                    out[grid.node_at(i, j, k)] = {
                        "A": self._extract(A, n, q1, q2, k, c),
                        "B": self._extract(B, n, q1, q2, k, c),
                    }
        return out

    def program(self, ctx, n: int, local: dict[str, Any]):
        q1, q2 = self._sides_for(ctx.config.num_nodes)
        grid = self._grid(ctx.config.cube)
        i, j, k = grid.coords_of(ctx.rank)

        x_comm = Comm(ctx, grid.line_members("x", i, j, k))
        y_comm = Comm(ctx, grid.line_members("y", i, j, k))
        z_comm = Comm(ctx, grid.line_members("z", i, j, k))

        a_block = local["A"]  # (n/q1, n/(q1*q2))
        b_block = local["B"]

        # -- phase 1: all-to-all personalized along y (q2 row groups) ---------
        ctx.phase("alltoall-B")
        row_groups = [
            np.ascontiguousarray(g) for g in np.array_split(b_block, q2, axis=0)
        ]
        received = yield from alltoall(y_comm, row_groups, tag=TAG_B)
        # hstack over the y-line: the (q1*q2)x(q1) - partition block
        # B_{g(k,j), i} with g(k,j) = k*q2 + j.
        b_wide = np.hstack(received)  # (n/(q1*q2), n/q1)

        # -- phase 2: all-to-all broadcasts along x (A) and z (B) -------------
        ctx.phase("broadcasts")
        a_list, b_list = yield from parallel_pair(
            ctx,
            allgather_call(x_comm, a_block, tag=TAG_C),
            allgather_call(z_comm, b_wide, tag=TAG_D),
        )
        ctx.note_memory(q1 * a_block.size + q1 * b_wide.size + (n // q1) ** 2)

        # -- compute I_{k,i} = sum_m A_{k,f(m,j)} B_{g(m,j),i} -----------------
        ctx.phase("compute")
        partial = None
        for m in range(q1):
            partial = yield from ctx.local_matmul(a_list[m], b_list[m], partial)

        # -- phase 3: all-to-all reduction along y -----------------------------
        ctx.phase("reduce")
        pieces = [
            np.ascontiguousarray(piece)
            for piece in np.array_split(partial, q2, axis=1)
        ]
        c_block = yield from reduce_scatter(y_comm, pieces, tag=TAG_A)
        return c_block

    def collect_output(self, n: int, cube: Hypercube, results):
        q1, q2 = self._sides_for(cube.num_nodes)
        grid = self._grid(cube)
        rb = n // q1
        cb = n // (q1 * q2)
        C = np.zeros((n, n))
        for i in range(q1):
            for j in range(q2):
                c = i * q2 + j
                for k in range(q1):
                    C[k * rb:(k + 1) * rb, c * cb:(c + 1) * cb] = results[
                        grid.node_at(i, j, k)
                    ]
        return C
