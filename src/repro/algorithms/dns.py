"""Dekel-Nassimi-Sahni (§3.5): the 3-D mesh algorithm.

On the ``∛p × ∛p × ∛p`` grid, ``A`` and ``B`` start block-partitioned on
the ``z = 0`` plane (``p_{i,j,0}`` holds ``A_{ij}`` and ``B_{ij}``).
Three phases:

1. ``p_{i,j,0}`` sends ``A_{ij}`` to ``p_{i,j,j}`` and ``B_{ij}`` to
   ``p_{i,j,i}`` — both point-to-point along the z-direction, so they
   cannot overlap even on a multi-port machine (same links).
2. ``p_{i,j,j}`` broadcasts ``A_{ij}`` along the y-direction and
   ``p_{i,j,i}`` broadcasts ``B_{ij}`` along the x-direction; these two
   *can* overlap on multi-port nodes.  Afterwards ``p_{i,j,k}`` holds
   ``A_{ik}`` and ``B_{kj}`` and multiplies them.
3. All-to-one reduction along the z-direction accumulates
   ``C_{ij} = Σ_k A_{ik} B_{kj}`` back on the ``z = 0`` plane.

Costs: Table 2's ``(5/3·log p, (n²/p^{2/3})·(5/3·log p))`` one-port and
``(4/3·log p, 4n²/p^{2/3})`` multi-port rows.
"""

from __future__ import annotations

from typing import Any

from repro.algorithms.base import MatmulAlgorithm
from repro.algorithms.common import (
    GridView3D,
    TAG_A,
    TAG_B,
    TAG_C,
    TAG_D,
    require,
    require_cubic_grid,
)
from repro.blocks.partition import BlockPartition2D
from repro.collectives import reduce
from repro.collectives.phase import broadcast_call, parallel_pair
from repro.topology.embedding import Grid3DEmbedding
from repro.topology.hypercube import Hypercube

__all__ = ["DNSAlgorithm"]


class DNSAlgorithm(MatmulAlgorithm):
    """Dekel-Nassimi-Sahni 3-D mesh algorithm (see module doc)."""

    key = "dns"
    name = "DNS"
    paper_section = "3.5"

    def check_applicable(self, n: int, p: int) -> None:
        q = require_cubic_grid(n, p, self.name)
        require(p <= n ** 3, f"{self.name}: requires p <= n^3 (p={p}, n={n})")

    def distribute_inputs(self, A, B, cube: Hypercube):
        grid = Grid3DEmbedding(cube)
        q = grid.side
        part = BlockPartition2D(A.shape[0], q)
        return {
            grid.node_at(i, j, 0): {
                "A": part.extract(A, i, j),
                "B": part.extract(B, i, j),
            }
            for i in range(q)
            for j in range(q)
        }

    def program(self, ctx, n: int, local: dict[str, Any]):
        view = GridView3D.create(ctx)
        grid, q = view.grid, view.q
        i, j, k = view.x, view.y, view.z
        block_words = (n // q) ** 2

        # -- phase 1: lift A and B off the z=0 plane -------------------------
        ctx.phase("lift")
        if k == 0:
            # Sequential sends along z (same direction, cannot overlap).
            yield from ctx.send(grid.node_at(i, j, j), local["A"], TAG_A)
            yield from ctx.send(grid.node_at(i, j, i), local["B"], TAG_B)
        a_root = None
        b_root = None
        if k == j:
            a_root = yield from ctx.recv(grid.node_at(i, j, 0), TAG_A)
        if k == i:
            b_root = yield from ctx.recv(grid.node_at(i, j, 0), TAG_B)

        # -- phase 2: broadcasts along y (A) and x (B), overlapped -----------
        # p_{i,j,k} gets A_{ik} from p_{i,k,k} (root y=k of its y-line) and
        # B_{kj} from p_{k,j,k} (root x=k of its x-line).
        ctx.phase("broadcasts")
        a_block, b_block = yield from parallel_pair(
            ctx,
            broadcast_call(view.y_comm, a_root, root=k, tag=TAG_C),
            broadcast_call(view.x_comm, b_root, root=k, tag=TAG_D),
        )
        ctx.note_memory(3 * block_words)  # A, B, and the partial-C block

        # -- multiply ---------------------------------------------------------
        ctx.phase("compute")
        partial = yield from ctx.local_matmul(a_block, b_block)

        # -- phase 3: reduce along z back to the z=0 plane --------------------
        ctx.phase("reduce")
        c_block = yield from reduce(view.z_comm, partial, root=0, tag=TAG_A)
        return c_block if k == 0 else None

    def collect_output(self, n: int, cube: Hypercube, results):
        grid = Grid3DEmbedding(cube)
        q = grid.side
        part = BlockPartition2D(n, q)
        return part.assemble(
            {
                (i, j): results[grid.node_at(i, j, 0)]
                for i in range(q)
                for j in range(q)
            }
        )
