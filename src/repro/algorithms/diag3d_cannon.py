"""The 3DD × Cannon combination (extension; §3.5's remark made concrete).

After describing the DNS × Cannon supernode scheme, the paper argues that
"the combination of any proposed new algorithm with Cannon's algorithm
would yield an algorithm better than the combination algorithm of the DNS
and Cannon".  This module builds that better combination: the 3-D Diagonal
algorithm at the supernode level, Cannon's algorithm inside each
supernode.

Layout as in :mod:`repro.algorithms.supernode`: ``p = 8^a·4^b``, supernode
grid side ``σ = 2^a``, mesh side ``ρ = 2^b``.  The 3DD phases move the
``(n/σ) × (n/σ)`` supernode blocks processor-wise (every message is a
``(n/(σρ))²`` sub-block between corresponding processors, and all
supernode-level collectives run on subcubes); each supernode then runs
Cannon over its mesh.

Versus DNS × Cannon it saves one supernode hop per operand in phase 1 and
one broadcast's worth of traffic — exactly the 3DD-vs-DNS improvement of
Table 2, now with Cannon's space savings: the benchmark claim is verified
in ``tests/algorithms/test_combinations.py``.
"""

from __future__ import annotations

from typing import Any

from repro.algorithms.base import MatmulAlgorithm
from repro.algorithms.common import TAG_A, TAG_B, TAG_C, TAG_D, cannon_kernel, require
from repro.algorithms.supernode import SupernodeLayout, decompose
from repro.blocks.partition import BlockPartition2D
from repro.collectives import reduce
from repro.collectives.phase import broadcast_call, parallel_pair
from repro.errors import NotApplicableError
from repro.mpi.communicator import Comm
from repro.topology.hypercube import Hypercube

__all__ = ["Diag3DCannonAlgorithm"]


class Diag3DCannonAlgorithm(MatmulAlgorithm):
    """3DD x Cannon supernode combination (see module doc)."""

    key = "3dd_cannon"
    name = "3DD x Cannon"
    paper_section = "3.5/4.1.2 (combination)"

    def __init__(self, mesh_size: int | None = None):
        self.mesh_size = mesh_size

    def _layout_for(self, p: int) -> SupernodeLayout:
        split = decompose(p, self.mesh_size)
        if split is None:
            raise NotApplicableError(
                f"{self.name}: p={p} does not split into 8^a * 4^b with "
                f"a, b >= 1 (mesh_size={self.mesh_size})"
            )
        return SupernodeLayout(*split)

    def check_applicable(self, n: int, p: int) -> None:
        layout = self._layout_for(p)
        side = layout.sigma * layout.rho
        require(
            n % side == 0,
            f"{self.name}: n={n} must be divisible by cbrt(s)*sqrt(r)={side}",
        )
        require(p <= n ** 3, f"{self.name}: requires p <= n^3 (p={p}, n={n})")

    def distribute_inputs(self, A, B, cube: Hypercube):
        layout = self._layout_for(cube.num_nodes)
        sigma, rho = layout.sigma, layout.rho
        part = BlockPartition2D(A.shape[0], sigma * rho)
        out = {}
        # Diagonal supernode (i, i, k) holds supernode blocks A_{k,i} and
        # B_{k,i}; processor (u, v) of it holds their (u, v) sub-blocks.
        for i in range(sigma):
            for k in range(sigma):
                for u in range(rho):
                    for v in range(rho):
                        out[layout.node(i, i, k, u, v)] = {
                            "A": part.extract(A, k * rho + u, i * rho + v),
                            "B": part.extract(B, k * rho + u, i * rho + v),
                        }
        return out

    def program(self, ctx, n: int, local: dict[str, Any]):
        layout = self._layout_for(ctx.config.num_nodes)
        sigma, rho = layout.sigma, layout.rho
        I, J, K, u, v = layout.coords(ctx.rank)

        # -- phase 1: move B within the diagonal plane (processor-wise) -------
        ctx.phase("point-to-point")
        if I == J:
            yield from ctx.send(layout.node(I, K, K, u, v), local["B"], TAG_B)
        b_root = None
        if J == K:
            b_root = yield from ctx.recv(layout.node(I, I, J, u, v), TAG_B)

        # -- phase 2: supernode broadcasts, A along x and B along z -----------
        x_comm = Comm(ctx, layout.x_line(J, K, u, v))
        z_comm = Comm(ctx, layout.z_line(I, J, u, v))
        a_src = local.get("A") if I == J else None
        ctx.phase("broadcasts")
        a_block, b_block = yield from parallel_pair(
            ctx,
            broadcast_call(x_comm, a_src, root=J, tag=TAG_C),
            broadcast_call(z_comm, b_root, root=J, tag=TAG_D),
        )
        ctx.note_memory(3 * a_block.size)

        # -- phase 3: Cannon within the supernode ------------------------------
        # Supernode (I,J,K) holds A_{K,J} x B_{J,I}; this processor holds
        # their (u, v) sub-blocks.
        ctx.phase("cannon")

        def mesh_node(uu: int, vv: int) -> int:
            return layout.node(I, J, K, uu, vv)

        partial = yield from cannon_kernel(
            ctx, mesh_node, rho, u, v, a_block, b_block
        )

        # -- phase 4: reduce along supernode-y onto the diagonal ---------------
        y_comm = Comm(ctx, layout.y_line(I, K, u, v))
        ctx.phase("reduce")
        c_block = yield from reduce(y_comm, partial, root=I, tag=TAG_A)
        return c_block if I == J else None

    def collect_output(self, n: int, cube: Hypercube, results):
        layout = self._layout_for(cube.num_nodes)
        sigma, rho = layout.sigma, layout.rho
        part = BlockPartition2D(n, sigma * rho)
        blocks = {}
        for i in range(sigma):
            for k in range(sigma):
                for u in range(rho):
                    for v in range(rho):
                        blocks[(k * rho + u, i * rho + v)] = results[
                            layout.node(i, i, k, u, v)
                        ]
        return part.assemble(blocks)
