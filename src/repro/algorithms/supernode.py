"""Supernode layouts: a 3-D grid of supernodes, each a 2-D Cannon mesh.

Shared by the DNS × Cannon and 3DD × Cannon combination algorithms
(§3.5's combined scheme and the paper's remark that combining the *new*
algorithms with Cannon dominates it).

``p = s · r`` with ``s = 8^a`` supernodes arranged ``∛s × ∛s × ∛s`` and
``r = 4^b`` processors per supernode arranged ``√r × √r``.  The low ``2b``
cube bits Gray-encode the mesh position, the high ``3a`` bits the
supernode coordinates, so

* each supernode's rows/columns are subcubes (Cannon's ring shifts are
  neighbour transfers), and
* *corresponding* processors of the supernodes along any grid axis form a
  subcube (supernode-level collectives run at full speed).
"""

from __future__ import annotations

from repro.util.bits import gray_code, gray_code_inverse, ilog2, is_power_of_two

__all__ = ["decompose", "SupernodeLayout"]


def decompose(p: int, mesh_size: int | None) -> tuple[int, int] | None:
    """Split ``p = 8^a * 4^b`` (a, b >= 1); returns ``(a, b)`` or ``None``.

    Without an explicit ``mesh_size = 4^b``, prefers the largest supernode
    grid (smallest mesh) — fewest Cannon start-ups.
    """
    if not is_power_of_two(p):
        return None
    k = ilog2(p)
    if mesh_size is not None:
        if not is_power_of_two(mesh_size) or ilog2(mesh_size) % 2:
            return None
        b = ilog2(mesh_size) // 2
        rem = k - 2 * b
        if b < 1 or rem < 3 or rem % 3:
            return None
        return (rem // 3, b)
    for b in range(1, k // 2 + 1):
        rem = k - 2 * b
        if rem >= 3 and rem % 3 == 0:
            return (rem // 3, b)
    return None


class SupernodeLayout:
    """Coordinate helpers for the ``(I, J, K) × (u, v)`` addressing."""

    __slots__ = ("a", "b", "sigma", "rho")

    def __init__(self, a: int, b: int):
        self.a = a
        self.b = b
        self.sigma = 1 << a  # supernode grid side (∛s)
        self.rho = 1 << b    # internal mesh side (√r)

    def node(self, I: int, J: int, K: int, u: int, v: int) -> int:
        a, b = self.a, self.b
        sigma, rho = self.sigma, self.rho
        mesh = (gray_code(u % rho) << b) | gray_code(v % rho)
        sup = (
            (gray_code(I % sigma) << (2 * a))
            | (gray_code(J % sigma) << a)
            | gray_code(K % sigma)
        )
        return (sup << (2 * b)) | mesh

    def coords(self, node: int) -> tuple[int, int, int, int, int]:
        a, b = self.a, self.b
        mesh = node & ((1 << (2 * b)) - 1)
        sup = node >> (2 * b)
        v = gray_code_inverse(mesh & ((1 << b) - 1))
        u = gray_code_inverse(mesh >> b)
        mask = (1 << a) - 1
        K = gray_code_inverse(sup & mask)
        J = gray_code_inverse((sup >> a) & mask)
        I = gray_code_inverse(sup >> (2 * a))
        return I, J, K, u, v

    def x_line(self, J: int, K: int, u: int, v: int) -> list[int]:
        """Corresponding processors along the supernode x-axis."""
        return [self.node(x, J, K, u, v) for x in range(self.sigma)]

    def y_line(self, I: int, K: int, u: int, v: int) -> list[int]:
        return [self.node(I, y, K, u, v) for y in range(self.sigma)]

    def z_line(self, I: int, J: int, u: int, v: int) -> list[int]:
        return [self.node(I, J, z, u, v) for z in range(self.sigma)]
