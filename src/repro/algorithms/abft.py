"""Huang–Abraham checksum matmul (ABFT) over any paper algorithm.

Algorithm-based fault tolerance encodes redundancy *into the operands*
so a fail-stop costs a reconstruction, not a rerun.  With decode-grid
side ``g`` and checksum width ``e`` (``m = g·e``, inputs zero-padded to
``(g-1)·e``), the augmented operands are built from ``e × e`` sub-blocks:

* ``A″`` carries a checksum **row**-block: ``A″[g-1][j] = Σ_i A[i][j]``,
  and a zero **column**-block ``A″[i][g-1] = 0``,
* ``B″`` carries a checksum **column**-block: ``B″[i][g-1] = Σ_j B[i][j]``,
  and a zero **row**-block ``B″[g-1][j] = 0``.

Then every decode row and column of ``C″ = A″·B″`` satisfies a checksum
relation — ``C″[i][g-1] = Σ_{j<g-1} C″[i][j]`` and
``C″[g-1][j] = Σ_{i<g-1} C″[i][j]``, *including* the checksum lines
themselves — so any loss pattern reducible to one unknown per line is
recoverable by iterated Gaussian elimination over the relations.  The
zero padding keeps ``A″``/``B″`` square, which lets the paper's
algorithms run on them **unchanged**: the wrapper only grows the problem
from ``n`` to ``m`` and post-processes the collected product.

Coverage.  The decode side ``g`` is chosen to match the wrapped
algorithm's block layout (``√p`` for the 2-D grids, ``∛p`` for the 3-D
ones), so one fail-stopped rank contaminates exactly one decode
row ∪ column — the recoverable pattern — for Cannon (row/column rings)
and 3D All (the corpse's x-line and z-plane collectives).  Losses the
relations cannot pin down (two ranks on distinct rows *and* columns,
or an algorithm whose communication structure spreads NaN further) fall
back to coordinated checkpoint/restart
(:class:`~repro.mpi.checkpoint.CheckpointedMatmul`).

The run itself uses the failure detector in ``substitute`` mode:
survivors finish with NaN-poisoned blocks rather than aborting, which
is what makes the lost region identifiable at collect time.

Beyond erasures, the same checksum relations support Huang–Abraham
**error correction** for *silent* corruption (no NaN marker, no failed
rank — just a wrong block): a corrupted decode block at unknown position
leaves a nonzero residual in exactly one checksum row and one checksum
column, so intersecting the inconsistent lines locates it and the clean
line relation reconstructs it (:func:`abft_correct_errors`).  Patterns
the residuals cannot pin down — two corrupted blocks sharing a decode
row or column — fall back to checkpoint/restart like undecodable
erasures.  Combining an erasure and a silent corruption in the same
decode line is outside the coverage: the erasure reconstruction would
bake the corruption into the rebuilt block.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Any

import numpy as np

from repro.algorithms.base import MatmulAlgorithm
from repro.errors import (
    AlgorithmError,
    CommTimeoutError,
    CorruptionError,
    RankFailedError,
)
from repro.mpi.checkpoint import CheckpointedMatmul, RecoveryRun
from repro.mpi.detector import FailureDetectorContext, lost_like
from repro.sim.engine import run_spmd
from repro.sim.machine import MachineConfig

__all__ = [
    "ABFTMatmul",
    "abft_geometry",
    "abft_encode",
    "abft_decode",
    "abft_correct_errors",
]

#: algorithms whose decode grid follows the ∛p (3-D) layout
_CUBIC_KEYS = frozenset(
    {"3d_all", "all_trans", "berntsen", "dns", "diagonal3d",
     "dns_cannon", "diag3d_cannon"}
)


def abft_geometry(key: str, n: int, p: int) -> tuple[int, int, int]:
    """Decode-grid side ``g``, checksum width ``e`` and augmented size
    ``m = g·e`` for wrapping algorithm ``key`` at problem size ``n`` on
    ``p`` ranks.

    ``g`` matches the algorithm's block grid (``√p`` or ``∛p``) so that
    per-rank losses land on whole decode rows/columns; ``e`` is the
    smallest width whose padded input ``(g-1)·e`` covers ``n`` while
    keeping ``m`` compatible with the algorithm's divisibility rules
    (``m % g²`` for the 3-D family's Fig. 8 row groups).
    """
    if key in _CUBIC_KEYS:
        g = round(p ** (1 / 3))
    else:
        g = math.isqrt(p)
    if g < 2:
        raise AlgorithmError(
            f"ABFT needs a block grid of side >= 2, got p={p} for {key!r}"
        )
    e = -(-n // (g - 1)) if g > 1 else n
    if key in _CUBIC_KEYS:
        e = -(-e // g) * g  # m = g*e must be divisible by g^2
    return g, e, g * e


def _sum_blocks(M: np.ndarray, axis: int, g: int, e: int) -> np.ndarray:
    """Sum the ``g-1`` size-``e`` slabs of ``M`` along ``axis``."""
    slabs = [
        M.take(range(i * e, (i + 1) * e), axis=axis) for i in range(g - 1)
    ]
    return np.sum(slabs, axis=0)


def abft_encode(
    A: np.ndarray, B: np.ndarray, g: int, e: int
) -> tuple[np.ndarray, np.ndarray]:
    """Zero-pad to ``(g-1)·e`` and append the checksum slabs (see module doc)."""
    n = A.shape[0]
    npad = (g - 1) * e
    m = g * e
    Ap = np.zeros((m, m))
    Bp = np.zeros((m, m))
    Ap[:n, :n] = A
    Bp[:n, :n] = B
    Ap[npad:m, :npad] = _sum_blocks(Ap[:npad, :npad], 0, g, e)
    Bp[:npad, npad:m] = _sum_blocks(Bp[:npad, :npad], 1, g, e)
    return Ap, Bp


def abft_decode(
    C: np.ndarray, g: int, e: int
) -> tuple[np.ndarray, int, int]:
    """Reconstruct NaN-marked ``e × e`` decode blocks of the augmented
    product in place (on a copy).

    Iterates the row and column checksum relations, each pass solving
    every line with exactly one unknown block, until a fixpoint.  Returns
    ``(C_fixed, lost, unrecovered)`` — ``lost`` blocks initially marked,
    ``unrecovered`` still missing at the fixpoint (0 means full recovery).
    """
    C = np.array(C, dtype=float)

    def blk(r: int, c: int) -> np.ndarray:
        return C[r * e:(r + 1) * e, c * e:(c + 1) * e]

    lost = [
        [bool(np.isnan(blk(r, c)).any()) for c in range(g)] for r in range(g)
    ]
    total_lost = sum(sum(row) for row in lost)

    def solve(line_lost, get, put):
        """One line: reconstruct its single unknown from the relation
        ``block[g-1] == Σ_{j<g-1} block[j]``."""
        missing = [i for i in range(g) if line_lost[i]]
        if len(missing) != 1:
            return False
        (idx,) = missing
        if idx == g - 1:
            val = np.sum([get(j) for j in range(g - 1)], axis=0)
        else:
            val = get(g - 1) - np.sum(
                [get(j) for j in range(g - 1) if j != idx], axis=0
            )
        put(idx, val)
        line_lost[idx] = False
        return True

    progress = True
    while progress:
        progress = False
        for r in range(g):
            row_lost = [lost[r][c] for c in range(g)]
            if solve(
                row_lost,
                lambda c, r=r: blk(r, c),
                lambda c, v, r=r: blk(r, c).__setitem__(slice(None), v),
            ):
                for c in range(g):
                    lost[r][c] = row_lost[c]
                progress = True
        for c in range(g):
            col_lost = [lost[r][c] for r in range(g)]
            if solve(
                col_lost,
                lambda r, c=c: blk(r, c),
                lambda r, v, c=c: blk(r, c).__setitem__(slice(None), v),
            ):
                for r in range(g):
                    lost[r][c] = col_lost[r]
                progress = True

    unrecovered = sum(sum(row) for row in lost)
    return C, total_lost, unrecovered


def _line_bad(res: np.ndarray, tol: float) -> bool:
    """True iff a checksum-line residual is inconsistent (non-finite
    entries count as inconsistent; ``nan > tol`` alone would not)."""
    if not np.isfinite(res).all():
        return True
    return float(np.abs(res).max()) > tol


def _errors_match(er: np.ndarray, ec: np.ndarray, tol: float) -> bool:
    """True iff the row- and column-derived error hypotheses agree.

    Non-finite entries (a flipped exponent can push a word to inf/nan)
    must agree exactly in position and value; finite entries within
    ``tol``.  ``er - ec`` alone would turn matching infs into NaNs.
    """
    fin_r = np.isfinite(er)
    if not np.array_equal(fin_r, np.isfinite(ec)):
        return False
    if not np.array_equal(er[~fin_r], ec[~fin_r], equal_nan=True):
        return False
    if fin_r.any() and float(np.abs(er[fin_r] - ec[fin_r]).max()) > tol:
        return False
    return True


def abft_correct_errors(
    C: np.ndarray, g: int, e: int, *, tol: float | None = None
) -> tuple[np.ndarray, int, int]:
    """Locate and correct silently corrupted ``e × e`` decode blocks of
    the augmented product (on a copy).

    A corruption +E in block ``(r, c)`` leaves residual ``E`` in checksum
    row ``r`` and checksum column ``c`` (sign-flipped when the corrupted
    block *is* the line's checksum block), so the corrupted position is
    the intersection of the inconsistent row and column whose
    sign-adjusted error hypotheses agree.  The located block is then
    reconstructed from its clean row relation — erasure decode at a
    position the residuals discovered — which also repairs non-finite
    corruption that subtraction could not.  Iterates for multiple errors
    in distinct rows and columns; co-linear errors (two corrupted blocks
    sharing a decode line) are ambiguous and left for the caller's
    fallback.

    ``tol`` separates float rounding noise from injected errors; the
    default is ``1e-8 · max(1, |C|_max)``.  Returns ``(C_fixed,
    corrected, suspect)`` — blocks corrected, and inconsistent checksum
    lines remaining at the fixpoint (0 means all clean).
    """
    C = np.array(C, dtype=float)
    if tol is None:
        finite = C[np.isfinite(C)]
        scale = float(np.abs(finite).max()) if finite.size else 1.0
        tol = 1e-8 * max(1.0, scale)

    def blk(r: int, c: int) -> np.ndarray:
        return C[r * e:(r + 1) * e, c * e:(c + 1) * e]

    corrected = 0
    while True:
        row_res = [
            np.sum([blk(r, c) for c in range(g - 1)], axis=0) - blk(r, g - 1)
            for r in range(g)
        ]
        col_res = [
            np.sum([blk(r, c) for r in range(g - 1)], axis=0) - blk(g - 1, c)
            for c in range(g)
        ]
        bad_rows = [r for r in range(g) if _line_bad(row_res[r], tol)]
        bad_cols = [c for c in range(g) if _line_bad(col_res[c], tol)]
        if not bad_rows and not bad_cols:
            return C, corrected, 0
        matches = []
        for r in bad_rows:
            for c in bad_cols:
                er = row_res[r] if c < g - 1 else -row_res[r]
                ec = col_res[c] if r < g - 1 else -col_res[c]
                if _errors_match(er, ec, tol):
                    matches.append((r, c))
        row_uses = {r: sum(1 for m in matches if m[0] == r) for r, _ in matches}
        col_uses = {c: sum(1 for m in matches if m[1] == c) for _, c in matches}
        progress = False
        for r, c in matches:
            # Only unambiguous locations: a row or column claimed by two
            # candidate positions cannot be trusted this round.
            if row_uses[r] != 1 or col_uses[c] != 1:
                continue
            if c == g - 1:
                val = np.sum([blk(r, j) for j in range(g - 1)], axis=0)
            else:
                val = blk(r, g - 1) - np.sum(
                    [blk(r, j) for j in range(g - 1) if j != c], axis=0
                )
            blk(r, c)[:] = val
            corrected += 1
            progress = True
        if not progress:
            return C, corrected, len(bad_rows) + len(bad_cols)


class ABFTMatmul:
    """Run a :class:`~repro.algorithms.base.MatmulAlgorithm` with
    node-failure recovery.

    Parameters
    ----------
    algorithm:
        The wrapped algorithm (runs unmodified on the augmented operands).
    mode:
        ``"abft"`` (checksum encode + reconstruct, checkpoint/restart as
        fallback), ``"checkpoint"`` (restart-only), or ``"none"``
        (detection only: a fail-stop raises
        :class:`~repro.errors.RankFailedError`).
    checkpoint_fallback:
        In ``"abft"`` mode, whether an undecodable loss pattern (or an
        ambiguous corruption pattern) falls back to checkpoint/restart
        (default) or raises.
    detector_opts:
        Extra keyword arguments for each rank's
        :class:`~repro.mpi.detector.FailureDetectorContext`.
    correct_errors:
        In ``"abft"`` mode, run :func:`abft_correct_errors` on the
        decoded product to locate and repair silently corrupted blocks
        (default).  Patterns the residuals cannot disambiguate follow
        ``checkpoint_fallback``.
    residual_tol:
        Tolerance separating rounding noise from injected errors in the
        checksum residuals (default: ``1e-8 · max(1, |C|_max)``).
    context_factory:
        Optional wrapper applied to each rank's raw context *under* the
        failure detector — e.g.
        :class:`~repro.mpi.integrity.IntegrityContext` for end-to-end
        message integrity alongside ABFT compute protection.  Also
        forwarded to the checkpoint fallback.
    """

    MODES = ("abft", "checkpoint", "none")

    def __init__(
        self,
        algorithm: MatmulAlgorithm,
        mode: str = "abft",
        *,
        checkpoint_fallback: bool = True,
        detector_opts: dict | None = None,
        max_epochs: int | None = None,
        correct_errors: bool = True,
        residual_tol: float | None = None,
        context_factory=None,
    ):
        if mode not in self.MODES:
            raise AlgorithmError(
                f"recovery mode must be one of {self.MODES}, got {mode!r}"
            )
        self.algorithm = algorithm
        self.mode = mode
        self.checkpoint_fallback = checkpoint_fallback
        self.detector_opts = dict(detector_opts or {})
        self.max_epochs = max_epochs
        self.correct_errors = correct_errors
        self.residual_tol = residual_tol
        self.context_factory = context_factory

    # -- harness -----------------------------------------------------------

    def run(
        self,
        A: np.ndarray,
        B: np.ndarray,
        config: MachineConfig,
        *,
        trace: bool = False,
        max_events: int | None = None,
        max_virtual_time: float | None = None,
    ) -> RecoveryRun:
        A = np.asarray(A, dtype=float)
        B = np.asarray(B, dtype=float)
        if A.ndim != 2 or A.shape[0] != A.shape[1] or B.shape != A.shape:
            raise AlgorithmError(
                f"A and B must be square and equal-shaped, got {A.shape} / {B.shape}"
            )
        if self.mode == "checkpoint":
            return CheckpointedMatmul(
                self.algorithm,
                max_epochs=self.max_epochs,
                detector_opts=self.detector_opts,
                context_factory=self.context_factory,
            ).run(
                A, B, config, trace=trace,
                max_events=max_events, max_virtual_time=max_virtual_time,
            )
        if self.mode == "none":
            return self._run_detect_only(
                A, B, config, trace=trace,
                max_events=max_events, max_virtual_time=max_virtual_time,
            )
        return self._run_abft(
            A, B, config, trace=trace,
            max_events=max_events, max_virtual_time=max_virtual_time,
        )

    def _run_detect_only(self, A, B, config, **run_kwargs):
        n = A.shape[0]
        algo = self.algorithm
        algo.check_applicable(n, config.num_nodes)
        initial = algo.distribute_inputs(A, B, config.cube)
        opts = dict(self.detector_opts)
        opts["on_dead"] = "raise"
        factory = self.context_factory

        def spmd(ctx):
            base = ctx if factory is None else factory(ctx)
            det = FailureDetectorContext(base, **opts)
            return algo.program(det, n, initial.get(ctx.rank, {}))

        result = run_spmd(config, spmd, **run_kwargs)
        C = algo.collect_output(n, config.cube, result.results)
        return RecoveryRun(
            algorithm=algo.key, n=n, config=config, C=C, result=result,
            mode="none", machine="full", recovered=False,
        )

    def _run_abft(self, A, B, config, **run_kwargs):
        n = A.shape[0]
        p = config.num_nodes
        algo = self.algorithm
        g, e, m = abft_geometry(algo.key, n, p)
        algo.check_applicable(m, p)
        Ap, Bp = abft_encode(A, B, g, e)
        initial = algo.distribute_inputs(Ap, Bp, config.cube)
        opts = dict(self.detector_opts)
        opts.setdefault("on_dead", "substitute")
        factory = self.context_factory

        def spmd(ctx):
            base = ctx if factory is None else factory(ctx)
            det = FailureDetectorContext(base, **opts)
            try:
                return (yield from algo.program(det, m, initial.get(ctx.rank, {})))
            except (RankFailedError, CommTimeoutError, CorruptionError):
                # This rank's block is unrecoverable in-band; mark it lost
                # and let the checksum decode (or the fallback) handle it.
                return None

        result = run_spmd(config, spmd, **run_kwargs)

        # -- collect with NaN holes for dead / aborted ranks ---------------
        blocks = {r: b for r, b in result.results.items() if b is not None}
        if not blocks:
            raise AlgorithmError("ABFT: every rank lost its block")
        template = next(iter(blocks.values()))
        filled = {
            r: blocks.get(r, None) for r in range(p)
        }
        for r in range(p):
            if filled[r] is None:
                filled[r] = lost_like(template)
        Cp = algo.collect_output(m, config.cube, filled)

        dead = tuple(sorted(set(range(p)) - set(result.results)))
        Cfix, n_lost, n_unrecovered = abft_decode(Cp, g, e)
        n_corrected = 0
        undecodable = n_unrecovered > 0
        ambiguous = False
        if not undecodable and self.correct_errors:
            Cfix, n_corrected, n_suspect = abft_correct_errors(
                Cfix, g, e, tol=self.residual_tol
            )
            ambiguous = n_suspect > 0

        if not undecodable and not ambiguous:
            return RecoveryRun(
                algorithm=algo.key, n=n, config=config,
                C=Cfix[:n, :n], result=result,
                mode="abft", dead=dead, machine="full",
                recovered=n_lost > 0 or n_corrected > 0,
            )

        if not self.checkpoint_fallback:
            if undecodable:
                raise RankFailedError(
                    -1, -1,
                    detail=(
                        f"ABFT decode left {n_unrecovered}/{g * g} blocks "
                        f"unrecovered (dead ranks {list(dead)})"
                    ),
                )
            raise CorruptionError(
                detail=(
                    "ABFT error correction could not locate the corrupted "
                    "blocks (co-linear or inconsistent residual pattern)"
                ),
            )
        plan = config.faults
        if plan is not None and plan.node_corruptions:
            # NodeCorruption is a one-shot transient and the restart runs
            # *after* the failed attempt (attempt_time accounts for it), so
            # the planned compute transients are already spent — replaying
            # them on the fallback's fresh FaultState would corrupt the
            # restart with faults that have already fired.
            config = config.with_faults(replace(plan, node_corruptions=()))
        ckpt = CheckpointedMatmul(
            algo, max_epochs=self.max_epochs,
            detector_opts={
                k: v for k, v in self.detector_opts.items() if k != "on_dead"
            },
            context_factory=self.context_factory,
        ).run(A, B, config, **run_kwargs)
        ckpt.mode = "abft+checkpoint"
        ckpt.attempt_time = result.total_time
        return ckpt
