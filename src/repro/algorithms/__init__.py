"""The paper's distributed matrix-multiplication algorithms.

Every algorithm is an SPMD program executed on the hypercube simulator.
Use the registry to look algorithms up by key::

    from repro.algorithms import get_algorithm, ALGORITHMS

    algo = get_algorithm("3d_all")
    run = algo.run(A, B, config)
    assert np.allclose(run.C, A @ B)

Keys: ``simple``, ``cannon``, ``hje``, ``berntsen``, ``dns``,
``diagonal2d``, ``3dd``, ``3d_all_trans``, ``3d_all``.
"""

from repro.algorithms.base import AlgorithmRun, MatmulAlgorithm
from repro.algorithms.registry import ALGORITHMS, get_algorithm, list_algorithms
from repro.algorithms.abft import ABFTMatmul

__all__ = [
    "AlgorithmRun",
    "MatmulAlgorithm",
    "ALGORITHMS",
    "get_algorithm",
    "list_algorithms",
    "ABFTMatmul",
]
