"""Algorithm Simple (§3.1): row/column all-to-all broadcasts.

``A`` and ``B`` are block partitioned ``√p × √p`` (Fig. 1) with ``A_{ij}``
and ``B_{ij}`` on ``p_{ij}``.  Every row performs an all-to-all broadcast of
its ``A`` blocks and every column an all-to-all broadcast of its ``B``
blocks; afterwards ``p_{ij}`` holds row ``i`` of ``A``-blocks and column
``j`` of ``B``-blocks and computes ``C_{ij} = Σ_k A_{ik} B_{kj}`` locally.

The two phases are issued concurrently: a one-port machine serializes them
(Table 2's ``(log p, 2·(n²/√p)(1-1/√p))``) while a multi-port machine
overlaps them and uses rotated-tree allgathers
(``(½·log p, (n²/(√p·log√p))(1-1/√p))``).  The price is space: ``2n²/√p``
words per processor (Table 3).
"""

from __future__ import annotations

from typing import Any

from repro.algorithms.base import MatmulAlgorithm
from repro.algorithms.common import GridView2D, TAG_A, TAG_B, require_square_grid
from repro.blocks.partition import BlockPartition2D
from repro.collectives.phase import allgather_call, parallel_pair
from repro.topology.embedding import Grid2DEmbedding
from repro.topology.hypercube import Hypercube

__all__ = ["SimpleAlgorithm"]


class SimpleAlgorithm(MatmulAlgorithm):
    """Algorithm Simple: row/column all-to-all broadcasts (see module doc)."""

    key = "simple"
    name = "Simple"
    paper_section = "3.1"

    def check_applicable(self, n: int, p: int) -> None:
        require_square_grid(n, p, self.name)

    def distribute_inputs(self, A, B, cube: Hypercube):
        grid = Grid2DEmbedding.square(cube)
        part = BlockPartition2D(A.shape[0], grid.rows)
        out = {}
        for i in range(grid.rows):
            for j in range(grid.cols):
                out[grid.node_at(i, j)] = {
                    "A": part.extract(A, i, j),
                    "B": part.extract(B, i, j),
                }
        return out

    def program(self, ctx, n: int, local: dict[str, Any]):
        view = GridView2D.create(ctx)
        q = view.q
        a_block, b_block = local["A"], local["B"]
        block_words = a_block.size

        ctx.phase("broadcasts")
        a_row, b_col = yield from parallel_pair(
            ctx,
            allgather_call(view.row_comm, a_block, tag=TAG_A),
            allgather_call(view.col_comm, b_block, tag=TAG_B),
        )
        # Resident: full A-row + full B-column + the C block being built.
        ctx.note_memory(2 * q * block_words + block_words)

        ctx.phase("compute")
        c_block = None
        for k in range(q):
            c_block = yield from ctx.local_matmul(a_row[k], b_col[k], c_block)
        return c_block

    def collect_output(self, n: int, cube: Hypercube, results):
        grid = Grid2DEmbedding.square(cube)
        part = BlockPartition2D(n, grid.rows)
        return part.assemble(
            {
                (i, j): results[grid.node_at(i, j)]
                for i in range(grid.rows)
                for j in range(grid.cols)
            }
        )
