"""Berntsen's algorithm (§3.4): ∛p outer products + all-to-all reduction.

``A`` is split by columns and ``B`` by rows into ``∛p`` sets; subcube ``m``
(of ``p^{2/3}`` processors, viewed as a ``∛p × ∛p`` grid) computes the
outer product of column-set ``m`` of ``A`` with row-set ``m`` of ``B``
using Cannon's algorithm on rectangular blocks.  The ``∛p`` outer products
are then summed by an all-to-all reduction among *corresponding* processors
of the subcubes (which form a ``∛p``-node subcube across the high address
bits), leaving each processor with an ``n²/p``-word piece of ``C``.

The result is **not** aligned like the inputs (the paper lists this as the
algorithm's drawback): processor ``(m, r, c)`` ends with row-slice ``m`` of
the ``(r, c)`` block of ``C``.  Applicability: ``p ≤ n^{3/2}`` (Table 3).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.algorithms.base import MatmulAlgorithm
from repro.algorithms.common import TAG_C, cannon_kernel, require, require_cubic_grid
from repro.blocks.partition import ColumnGroups, RowGroups
from repro.collectives import reduce_scatter
from repro.errors import AlgorithmError
from repro.mpi.communicator import Comm
from repro.topology.embedding import SubcubeGrid2D
from repro.topology.hypercube import Hypercube

__all__ = ["BerntsenAlgorithm"]


def _layout(cube: Hypercube):
    """Split the cube into ∛p subcubes of p^{2/3} nodes, each a 2-D grid."""
    total = cube.dimension  # = 3k
    k = total // 3
    split_dims = tuple(range(2 * k, 3 * k))  # high k bits select the subcube
    subcubes = cube.split(split_dims)
    grids = [SubcubeGrid2D(sc) for sc in subcubes]
    return k, grids


class BerntsenAlgorithm(MatmulAlgorithm):
    """Berntsen's subcube outer-product algorithm (see module doc)."""

    key = "berntsen"
    name = "Berntsen"
    paper_section = "3.4"

    def check_applicable(self, n: int, p: int) -> None:
        q = require_cubic_grid(n, p, self.name)
        require(
            n % (q * q) == 0,
            f"{self.name}: n={n} must be divisible by p^(2/3)={q * q} "
            "(block columns of the A column-sets)",
        )
        require(
            p <= round(n ** 1.5),
            f"{self.name}: requires p <= n^(3/2) (p={p}, n={n})",
        )

    def distribute_inputs(self, A, B, cube: Hypercube):
        n = A.shape[0]
        k, grids = _layout(cube)
        q = 1 << k
        a_cols = ColumnGroups(n, q)
        b_rows = RowGroups(n, q)
        out = {}
        for m, grid in enumerate(grids):
            a_set = a_cols.extract(A, m)  # n x n/q
            b_set = b_rows.extract(B, m)  # n/q x n
            # Block partition the sets over the subcube's q x q grid:
            # A-set blocks are (n/q) x (n/q**2), B-set blocks (n/q**2) x (n/q).
            ra, ca = n // q, n // (q * q)
            for r in range(q):
                for c in range(q):
                    out[grid.node_at(r, c)] = {
                        "A": np.ascontiguousarray(
                            a_set[r * ra:(r + 1) * ra, c * ca:(c + 1) * ca]
                        ),
                        "B": np.ascontiguousarray(
                            b_set[r * ca:(r + 1) * ca, c * ra:(c + 1) * ra]
                        ),
                    }
        return out

    def program(self, ctx, n: int, local: dict[str, Any]):
        cube = ctx.config.cube
        k, grids = _layout(cube)
        q = 1 << k
        m = ctx.rank >> (2 * k)  # subcube index (high bits)
        grid = grids[m]
        r, c = grid.coords_of(ctx.rank)

        a_block, b_block = local["A"], local["B"]
        # A column-set block + B row-set block + outer-product block.
        ctx.note_memory(2 * a_block.size + (n // q) ** 2)

        # -- Cannon within the subcube ----------------------------------------
        ctx.phase("cannon")
        outer = yield from cannon_kernel(
            ctx, grid.node_at, q, r, c, a_block, b_block
        )

        # -- all-to-all reduction across corresponding processors -------------
        # The group {(m', r, c) : m'} varies the high k bits: a subcube.
        ctx.phase("reduce")
        low = ctx.rank & ((1 << (2 * k)) - 1)
        members = [(mm << (2 * k)) | low for mm in range(q)]
        cross = Comm(ctx, members)
        pieces = np.array_split(outer, q, axis=0)  # row-slices, one per dest
        c_piece = yield from reduce_scatter(cross, pieces, tag=TAG_C)
        return c_piece

    def collect_output(self, n: int, cube: Hypercube, results):
        k, grids = _layout(cube)
        q = 1 << k
        block = n // q  # side of a C block on the subcube grid
        piece_rows = block // q
        C = np.zeros((n, n))
        for m, grid in enumerate(grids):
            for r in range(q):
                for c in range(q):
                    node = grid.node_at(r, c)
                    piece = results[node]
                    if piece is None:
                        raise AlgorithmError(f"node {node} returned no C piece")
                    row0 = r * block + m * piece_rows
                    C[row0:row0 + piece_rows, c * block:(c + 1) * block] = piece
        return C
