"""The 3-D Diagonal algorithm — 3DD (§4.1.2, Algorithm 3).

One of the paper's two new algorithms.  ``A`` and ``B`` are ``∛p × ∛p``
block partitioned and both mapped onto the diagonal plane ``x = y``:
``p_{i,i,k}`` holds ``A_{k,i}`` and ``B_{k,i}`` — identical distributions,
unlike DNS or Berntsen.  Plane ``y = j`` computes the outer product of
column-set ``j`` of ``A`` with row-set ``j`` of ``B``.

1. **Point-to-point**: ``p_{i,i,k}`` sends ``B_{k,i}`` to ``p_{i,k,k}``
   (a z-diagonal move within the plane ``x = i``).
2. **Broadcasts**: ``p_{i,i,k}`` broadcasts ``A_{k,i}`` along the
   x-direction; ``p_{i,k,k}`` broadcasts its received ``B_{k,i}`` along the
   z-direction.  Both overlap on multi-port nodes.  Afterwards
   ``p_{i,j,k}`` holds ``A_{k,j}`` and ``B_{j,i}``.
3. **Compute + reduce**: each processor forms ``A_{k,j}·B_{j,i}`` and an
   all-to-one reduction along the y-direction accumulates
   ``C_{k,i} = Σ_j A_{k,j} B_{j,i}`` on ``p_{i,i,k}`` — aligned exactly
   like the inputs.

Cost (Table 2): ``(4/3·log p, (n²/p^{2/3})·(4/3·log p))`` one-port,
``(log p, 3n²/p^{2/3})`` multi-port.  Applicable for ``p ≤ n³``
(``n² ≥ p^{2/3} log ∛p`` for full multi-port bandwidth); 3DD is the only
algorithm of the eight that reaches into the ``n² < p ≤ n³`` region.
"""

from __future__ import annotations

from typing import Any

from repro.algorithms.base import MatmulAlgorithm
from repro.algorithms.common import (
    GridView3D,
    TAG_A,
    TAG_B,
    TAG_C,
    TAG_D,
    require,
    require_cubic_grid,
)
from repro.blocks.partition import BlockPartition2D
from repro.collectives import reduce
from repro.collectives.phase import broadcast_call, parallel_pair
from repro.errors import AlgorithmError
from repro.topology.embedding import Grid3DEmbedding
from repro.topology.hypercube import Hypercube

__all__ = ["Diagonal3DAlgorithm"]


class Diagonal3DAlgorithm(MatmulAlgorithm):
    """The paper's new 3-D Diagonal (3DD) algorithm (see module doc)."""

    key = "3dd"
    name = "3-D Diagonal"
    paper_section = "4.1.2"

    def check_applicable(self, n: int, p: int) -> None:
        q = require_cubic_grid(n, p, self.name)
        require(p <= n ** 3, f"{self.name}: requires p <= n^3 (p={p}, n={n})")

    def distribute_inputs(self, A, B, cube: Hypercube):
        grid = Grid3DEmbedding(cube)
        q = grid.side
        part = BlockPartition2D(A.shape[0], q)
        return {
            grid.node_at(i, i, k): {
                "A": part.extract(A, k, i),
                "B": part.extract(B, k, i),
            }
            for i in range(q)
            for k in range(q)
        }

    def program(self, ctx, n: int, local: dict[str, Any]):
        view = GridView3D.create(ctx)
        grid, q = view.grid, view.q
        i, j, k = view.x, view.y, view.z
        block_words = (n // q) ** 2

        # -- phase 1: move B within the diagonal plane ------------------------
        ctx.phase("point-to-point")
        if i == j:
            yield from ctx.send(grid.node_at(i, k, k), local["B"], TAG_B)
        b_root = None
        if j == k:
            b_root = yield from ctx.recv(grid.node_at(i, i, j), TAG_B)

        # -- phase 2: broadcast A along x, B along z (overlapped) -------------
        # My x-line {p_{*,j,k}} root is the diagonal member x = j (p_{j,j,k},
        # holding A_{k,j}); my z-line {p_{i,j,*}} root is z = j (p_{i,j,j},
        # holding B_{j,i} from phase 1).
        ctx.phase("broadcasts")
        a_src = local.get("A") if i == j else None
        a_block, b_block = yield from parallel_pair(
            ctx,
            broadcast_call(view.x_comm, a_src, root=j, tag=TAG_C),
            broadcast_call(view.z_comm, b_root, root=j, tag=TAG_D),
        )
        ctx.note_memory(3 * block_words)  # A, B, and the partial-C block

        # -- compute -----------------------------------------------------------
        ctx.phase("compute")
        partial = yield from ctx.local_matmul(a_block, b_block)

        # -- phase 3: reduce along y onto the diagonal plane -------------------
        ctx.phase("reduce")
        c_block = yield from reduce(view.y_comm, partial, root=i, tag=TAG_A)
        if i == j:
            if c_block is None:
                raise AlgorithmError(f"p_({i},{j},{k}) missing C block")
            return c_block
        return None

    def collect_output(self, n: int, cube: Hypercube, results):
        grid = Grid3DEmbedding(cube)
        q = grid.side
        part = BlockPartition2D(n, q)
        return part.assemble(
            {
                (k, i): results[grid.node_at(i, i, k)]
                for i in range(q)
                for k in range(q)
            }
        )
