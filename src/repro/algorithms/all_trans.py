"""The 3-D All_Trans algorithm (§4.2.1, Algorithm 4).

The 2-D Diagonal scheme extended to use *every* column of the 3-D grid:
``A`` is partitioned ``∛p × p^{2/3}`` (Fig. 8) and ``B`` — transposed in
spirit — ``p^{2/3} × ∛p`` (Fig. 9); ``p_{i,j,k}`` holds ``A_{k,f(i,j)}``
and ``B_{f(i,j),k}`` with ``f(i,j) = i·∛p + j``.

1. **Collect B rows**: ``p_{i,j,k}`` sends ``B_{f(i,j),k}`` to
   ``p_{k,j,k}`` — an all-to-one collection along the x-direction (the
   inverse of a one-to-all personalized broadcast).
2. **Broadcasts**: all processors all-to-all broadcast their ``A`` blocks
   along the x-direction, while ``p_{k,j,k}`` one-to-all broadcasts its
   collected ``B_{f(*,j),k}`` along the z-direction; the two overlap on
   multi-port nodes.  Afterwards ``p_{i,j,k}`` holds ``A_{k,f(*,j)}`` and
   ``B_{f(*,j),i}`` and computes the outer-product block
   ``I_{k,i} = Σ_l A_{k,f(l,j)}·B_{f(l,j),i}``.
3. **All-to-all reduction** along the y-direction scatters column groups of
   ``I_{k,i}`` so that ``p_{i,j,k}`` accumulates ``C_{k,f(i,j)}`` — aligned
   like ``A``.

Cost (Table 2): ``(4/3·log p, (n²/p^{2/3})(3(1-1/∛p) + log p/3))``
one-port; the 3D All variant below strictly improves the last term.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.algorithms.base import MatmulAlgorithm
from repro.algorithms.common import (
    GridView3D,
    TAG_A,
    TAG_B,
    TAG_C,
    TAG_D,
    require,
    require_cubic_grid,
)
from repro.blocks.partition import PartitionFig8, PartitionFig9, f_index
from repro.collectives import allgather, broadcast, gather, reduce_scatter
from repro.topology.embedding import Grid3DEmbedding
from repro.topology.hypercube import Hypercube

__all__ = ["AllTransAlgorithm"]


class AllTransAlgorithm(MatmulAlgorithm):
    """The 3D All_Trans algorithm (see module doc)."""

    key = "3d_all_trans"
    name = "3D All_Trans"
    paper_section = "4.2.1"

    def check_applicable(self, n: int, p: int) -> None:
        q = require_cubic_grid(n, p, self.name)
        require(
            n % (q * q) == 0,
            f"{self.name}: n={n} must be divisible by p^(2/3)={q * q} "
            "(Fig. 8/9 partitions)",
        )
        require(
            p <= round(n ** 1.5),
            f"{self.name}: requires p <= n^(3/2) (p={p}, n={n})",
        )

    def distribute_inputs(self, A, B, cube: Hypercube):
        grid = Grid3DEmbedding(cube)
        q = grid.side
        n = A.shape[0]
        fig8 = PartitionFig8(n, q)
        fig9 = PartitionFig9(n, q)
        out = {}
        for i in range(q):
            for j in range(q):
                c = f_index(i, j, q)
                for k in range(q):
                    out[grid.node_at(i, j, k)] = {
                        "A": fig8.extract(A, k, c),
                        "B": fig9.extract(B, c, k),
                    }
        return out

    def program(self, ctx, n: int, local: dict[str, Any]):
        view = GridView3D.create(ctx)
        q = view.q
        i, j, k = view.x, view.y, view.z

        a_block = local["A"]  # A_{k, f(i,j)}:  (n/q, n/q^2)
        b_block = local["B"]  # B_{f(i,j), k}:  (n/q^2, n/q)

        # -- phase 1: gather B blocks to the x-line member x == k -------------
        ctx.phase("collect-B")
        b_set = yield from gather(view.x_comm, b_block, root=k, tag=TAG_B)
        # On the root (i == k): b_set[l] = B_{f(l,j),k}, stacked for transit.
        b_root = np.stack(b_set) if b_set is not None else None

        # -- phase 2: allgather A along x, broadcast B-set along z ------------
        # My z-line root for the B-set is the member z == i (node p_{i,j,i}),
        # which gathered B_{f(*,j),i} in phase 1.
        ctx.phase("broadcasts")
        a_list, b_stack = yield from ctx.parallel(
            allgather(view.x_comm, a_block, tag=TAG_C),
            broadcast(view.z_comm, b_root, root=i, tag=TAG_D),
        )
        ctx.note_memory(q * a_block.size + q * b_block.size + (n // q) ** 2)

        # -- compute I_{k,i} = sum_l A_{k,f(l,j)} B_{f(l,j),i} ----------------
        ctx.phase("compute")
        partial = None
        for l in range(q):
            partial = yield from ctx.local_matmul(a_list[l], b_stack[l], partial)

        # -- phase 3: all-to-all reduction along y ----------------------------
        # Column group l of I_{k,i} belongs to p_{i,l,k} (as C_{k,f(i,l)}).
        ctx.phase("reduce")
        pieces = [
            np.ascontiguousarray(piece)
            for piece in np.array_split(partial, q, axis=1)
        ]
        c_block = yield from reduce_scatter(view.y_comm, pieces, tag=TAG_A)
        return c_block

    def collect_output(self, n: int, cube: Hypercube, results):
        grid = Grid3DEmbedding(cube)
        q = grid.side
        fig8 = PartitionFig8(n, q)
        blocks = {}
        for i in range(q):
            for j in range(q):
                for k in range(q):
                    blocks[(k, f_index(i, j, q))] = results[grid.node_at(i, j, k)]
        return fig8.assemble(blocks)
