"""The DNS × Cannon combination algorithm (§3.5, extension).

Dekel, Nassimi and Sahni also proposed combining the basic DNS scheme with
Cannon's algorithm: the hypercube is viewed as a ``∛s × ∛s × ∛s`` grid of
*supernodes*, each supernode being a ``√r × √r`` mesh of processors
(``p = s·r``).  The three DNS phases move whole supernode blocks — realized
processor-wise, since corresponding processors of supernodes along a grid
axis form subcubes — and each supernode then multiplies its
``(n/∛s) × (n/∛s)`` operands with Cannon's algorithm on its internal mesh.

The attraction is space: replication along the supernode z-axis costs a
factor ``∛s`` instead of DNS's ``∛p``, trading it for Cannon's ``O(√r)``
extra start-ups.  The paper notes that combining its *new* algorithms with
Cannon the same way dominates this scheme — which is why only the basic
algorithms appear in its tables — but implements it here as the natural
baseline for that claim.

Requires ``p = 8^a · 4^b`` with ``a, b ≥ 1`` (choose ``mesh_size = 4^b``
explicitly or let the constructor pick the largest valid supernode count)
and ``n`` divisible by ``∛s·√r``.
"""

from __future__ import annotations

from typing import Any

from repro.algorithms.base import MatmulAlgorithm
from repro.algorithms.common import (
    TAG_A,
    TAG_B,
    TAG_C,
    TAG_D,
    cannon_kernel,
    require,
)
from repro.blocks.partition import BlockPartition2D
from repro.collectives import reduce
from repro.collectives.phase import broadcast_call, parallel_pair
from repro.algorithms.supernode import SupernodeLayout, decompose
from repro.errors import NotApplicableError
from repro.mpi.communicator import Comm
from repro.topology.hypercube import Hypercube

__all__ = ["DNSCannonAlgorithm"]

# Backwards-compatible aliases (the layout machinery moved to
# repro.algorithms.supernode once the 3DD x Cannon combination shared it).
_decompose = decompose
_Layout = SupernodeLayout


class DNSCannonAlgorithm(MatmulAlgorithm):
    """DNS x Cannon supernode combination (see module doc)."""

    key = "dns_cannon"
    name = "DNS x Cannon"
    paper_section = "3.5 (combination)"

    def __init__(self, mesh_size: int | None = None):
        self.mesh_size = mesh_size

    def _layout_for(self, p: int) -> SupernodeLayout:
        split = decompose(p, self.mesh_size)
        if split is None:
            raise NotApplicableError(
                f"{self.name}: p={p} does not split into 8^a * 4^b with "
                f"a, b >= 1 (mesh_size={self.mesh_size})"
            )
        return SupernodeLayout(*split)

    def check_applicable(self, n: int, p: int) -> None:
        layout = self._layout_for(p)
        side = layout.sigma * layout.rho
        require(
            n % side == 0,
            f"{self.name}: n={n} must be divisible by cbrt(s)*sqrt(r)={side}",
        )
        require(p <= n ** 3, f"{self.name}: requires p <= n^3 (p={p}, n={n})")

    def distribute_inputs(self, A, B, cube: Hypercube):
        layout = self._layout_for(cube.num_nodes)
        sigma, rho = layout.sigma, layout.rho
        part = BlockPartition2D(A.shape[0], sigma * rho)
        out = {}
        for I in range(sigma):
            for J in range(sigma):
                for u in range(rho):
                    for v in range(rho):
                        out[layout.node(I, J, 0, u, v)] = {
                            "A": part.extract(A, I * rho + u, J * rho + v),
                            "B": part.extract(B, I * rho + u, J * rho + v),
                        }
        return out

    def program(self, ctx, n: int, local: dict[str, Any]):
        layout = self._layout_for(ctx.config.num_nodes)
        sigma, rho = layout.sigma, layout.rho
        I, J, K, u, v = layout.coords(ctx.rank)

        # -- phase 1: lift supernode blocks off the K=0 plane (processor-wise)
        ctx.phase("lift")
        if K == 0:
            yield from ctx.send(layout.node(I, J, J, u, v), local["A"], TAG_A)
            yield from ctx.send(layout.node(I, J, I, u, v), local["B"], TAG_B)
        a_root = b_root = None
        if K == J:
            a_root = yield from ctx.recv(layout.node(I, J, 0, u, v), TAG_A)
        if K == I:
            b_root = yield from ctx.recv(layout.node(I, J, 0, u, v), TAG_B)

        # -- phase 2: supernode broadcasts along y (A) and x (B) --------------
        y_comm = Comm(ctx, [layout.node(I, y, K, u, v) for y in range(sigma)])
        x_comm = Comm(ctx, [layout.node(x, J, K, u, v) for x in range(sigma)])
        ctx.phase("broadcasts")
        a_block, b_block = yield from parallel_pair(
            ctx,
            broadcast_call(y_comm, a_root, root=K, tag=TAG_C),
            broadcast_call(x_comm, b_root, root=K, tag=TAG_D),
        )
        ctx.note_memory(3 * a_block.size)

        # -- phase 3: Cannon within the supernode ------------------------------
        # This processor now holds sub-block (u, v) of A_{IK} and B_{KJ}.
        ctx.phase("cannon")

        def mesh_node(uu: int, vv: int) -> int:
            return layout.node(I, J, K, uu, vv)

        partial = yield from cannon_kernel(
            ctx, mesh_node, rho, u, v, a_block, b_block
        )

        # -- phase 4: reduce along the supernode z-axis ------------------------
        z_comm = Comm(ctx, [layout.node(I, J, z, u, v) for z in range(sigma)])
        ctx.phase("reduce")
        c_block = yield from reduce(z_comm, partial, root=0, tag=TAG_A)
        return c_block if K == 0 else None

    def collect_output(self, n: int, cube: Hypercube, results):
        layout = self._layout_for(cube.num_nodes)
        sigma, rho = layout.sigma, layout.rho
        part = BlockPartition2D(n, sigma * rho)
        blocks = {}
        for I in range(sigma):
            for J in range(sigma):
                for u in range(rho):
                    for v in range(rho):
                        blocks[(I * rho + u, J * rho + v)] = results[
                            layout.node(I, J, 0, u, v)
                        ]
        return part.assemble(blocks)
