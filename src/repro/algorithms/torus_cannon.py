"""Cannon's algorithm on a genuine 2-D torus (no hypercube shortcuts).

Cannon [2] was designed for 2-D meshes; the paper runs it on hypercubes
via the Gray-code embedding and notes that the shift-multiply phase costs
the same on both machines (§3.3) — the unit shifts are neighbour transfers
either way.  The machines differ in the *alignment* phase: a shift by
``i`` positions is ``min(i, q-i)`` ring hops on the torus but at most
``log q`` e-cube hops on the hypercube.

:func:`run_cannon_on_torus` executes the identical Cannon kernel used by
the hypercube :class:`~repro.algorithms.cannon.CannonAlgorithm`, on a
``q × q`` :class:`~repro.topology.torus.Torus2D` machine, so the two
phase timings are directly comparable (see
``tests/algorithms/test_torus_cannon.py`` and
``benchmarks/bench_torus_vs_hypercube.py``).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import AlgorithmRun
from repro.algorithms.common import cannon_kernel
from repro.blocks.partition import BlockPartition2D
from repro.errors import AlgorithmError, NotApplicableError
from repro.sim.engine import run_spmd
from repro.sim.machine import MachineConfig
from repro.topology.torus import Torus2D

__all__ = ["run_cannon_on_torus", "torus_machine_like"]


def torus_machine_like(config: MachineConfig, q: int) -> MachineConfig:
    """A ``q × q`` torus with the same cost parameters as ``config``."""
    return MachineConfig(
        cube=Torus2D(q, q),
        params=config.params,
        port_model=config.port_model,
        copy_on_send=config.copy_on_send,
        routing=config.routing,
    )


def run_cannon_on_torus(
    A: np.ndarray,
    B: np.ndarray,
    config: MachineConfig,
    *,
    verify: bool = False,
    trace: bool = False,
) -> AlgorithmRun:
    """Run Cannon's algorithm on a square-torus machine.

    ``config.cube`` must be a square :class:`Torus2D`; blocks are laid out
    by grid coordinate exactly as on the hypercube grid.
    """
    torus = config.cube
    if not isinstance(torus, Torus2D):
        raise AlgorithmError("run_cannon_on_torus needs a Torus2D machine")
    if torus.rows != torus.cols:
        raise NotApplicableError(
            f"Cannon needs a square torus, got {torus.rows}x{torus.cols}"
        )
    q = torus.rows
    A = np.asarray(A, dtype=float)
    B = np.asarray(B, dtype=float)
    n = A.shape[0]
    if A.shape != B.shape or A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise AlgorithmError(f"bad operand shapes {A.shape} / {B.shape}")
    if n % q:
        raise NotApplicableError(f"n={n} not divisible by torus side {q}")

    part = BlockPartition2D(n, q)
    initial = {
        torus.node_at(r, c): {
            "A": part.extract(A, r, c),
            "B": part.extract(B, r, c),
        }
        for r in range(q)
        for c in range(q)
    }

    def program(ctx):
        r, c = torus.coords_of(ctx.rank)
        local = initial[ctx.rank]
        ctx.phase("cannon")
        c_block = yield from cannon_kernel(
            ctx, torus.node_at, q, r, c, local["A"], local["B"]
        )
        return c_block

    result = run_spmd(config, program, trace=trace)
    C = part.assemble(
        {
            (r, cc): result.results[torus.node_at(r, cc)]
            for r in range(q)
            for cc in range(q)
        }
    )
    if verify and not np.allclose(C, A @ B):
        raise AlgorithmError("torus Cannon produced a wrong product")
    return AlgorithmRun(
        algorithm="cannon@torus", n=n, config=config, C=C, result=result
    )
