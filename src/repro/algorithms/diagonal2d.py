"""The 2-D Diagonal algorithm (§4.1.1, Algorithm 2).

On a ``q × q`` grid (``q = √p``) only the diagonal processors ``p_{j,j}``
hold data initially: the ``j``-th column group of ``A`` (``n × n/q``) and
the ``j``-th row group of ``B`` (``n/q × n``).  Column ``j`` of processors
computes the outer product ``A_j · B_j``:

1. ``p_{j,j}`` *scatters* ``B_j`` by column groups along the x-direction
   (processor ``p_{i,j}`` receives the ``n/q × n/q`` piece ``B_j^{(i)}``)
   and *broadcasts* ``A_j`` along the same direction — concurrently, so a
   multi-port machine overlaps them.
2. Every processor computes ``I_{ij} = A_j · B_j^{(i)}`` (an ``n × n/q``
   slab — everyone does the same ``2n³/p`` flops).
3. All-to-one reduction along the y-direction sums ``C[:, group i] =
   Σ_j I_{ij}`` onto the diagonal processor ``p_{i,i}``, so ``C`` ends up
   aligned exactly like ``A`` was.

This is the paper's stepping stone to the 3-D Diagonal algorithm; it is
presented for exposition (it needs ``n²/√p`` words per processor).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.algorithms.base import MatmulAlgorithm
from repro.algorithms.common import GridView2D, TAG_A, TAG_B, TAG_C, require, require_square_grid
from repro.blocks.partition import ColumnGroups, RowGroups
from repro.collectives import broadcast, reduce, scatter
from repro.errors import AlgorithmError
from repro.topology.embedding import Grid2DEmbedding
from repro.topology.hypercube import Hypercube

__all__ = ["Diagonal2DAlgorithm"]


class Diagonal2DAlgorithm(MatmulAlgorithm):
    """The 2-D Diagonal stepping-stone algorithm (see module doc)."""

    key = "diagonal2d"
    name = "2-D Diagonal"
    paper_section = "4.1.1"

    def check_applicable(self, n: int, p: int) -> None:
        q = require_square_grid(n, p, self.name)
        require(
            n % (q * q) == 0 or n % q == 0,
            f"{self.name}: n={n} must be divisible by sqrt(p)={q}",
        )

    def distribute_inputs(self, A, B, cube: Hypercube):
        n = A.shape[0]
        grid = Grid2DEmbedding.square(cube)
        q = grid.rows
        a_cols = ColumnGroups(n, q)
        b_rows = RowGroups(n, q)
        return {
            grid.node_at(j, j): {
                "A": a_cols.extract(A, j),
                "B": b_rows.extract(B, j),
            }
            for j in range(q)
        }

    def program(self, ctx, n: int, local: dict[str, Any]):
        view = GridView2D.create(ctx)
        q = view.q
        i, j = view.row, view.col  # I am p_{i,j}
        on_diagonal = i == j

        # -- phase 1: scatter B pieces and broadcast A along the column -------
        # col_comm members are ordered by row coordinate; the root is the
        # diagonal member, comm rank j.
        ctx.phase("distribute")
        b_pieces = None
        a_group = local.get("A")
        if on_diagonal:
            b_pieces = [
                np.ascontiguousarray(piece)
                for piece in np.array_split(local["B"], q, axis=1)
            ]
        my_b_piece, a_group = yield from ctx.parallel(
            scatter(view.col_comm, b_pieces, root=j, tag=TAG_B),
            broadcast(view.col_comm, a_group, root=j, tag=TAG_A),
        )
        ctx.note_memory(a_group.size + my_b_piece.size + a_group.shape[0] * my_b_piece.shape[1])

        # -- phase 2: local outer-product slab --------------------------------
        ctx.phase("compute")
        partial = yield from ctx.local_matmul(a_group, my_b_piece)

        # -- phase 3: reduce along the row onto the diagonal ------------------
        ctx.phase("reduce")
        c_group = yield from reduce(view.row_comm, partial, root=i, tag=TAG_C)
        if on_diagonal:
            if c_group is None:
                raise AlgorithmError(f"diagonal node p_{i},{j} got no C group")
            return c_group
        return None

    def collect_output(self, n: int, cube: Hypercube, results):
        grid = Grid2DEmbedding.square(cube)
        q = grid.rows
        cols = ColumnGroups(n, q)
        return cols.assemble(
            {i: results[grid.node_at(i, i)] for i in range(q)}
        )
