"""Shared helpers for the algorithm implementations.

Grid views (2-D and 3-D coordinates plus row/column/line communicators),
applicability predicates, and the Cannon kernel reused by Berntsen's
algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NotApplicableError
from repro.mpi.communicator import Comm
from repro.sim.process import ProcessContext
from repro.topology.embedding import Grid2DEmbedding, Grid3DEmbedding
from repro.util.bits import ilog2, is_power_of_eight, is_power_of_two

__all__ = [
    "require",
    "require_square_grid",
    "require_cubic_grid",
    "GridView2D",
    "GridView3D",
    "cannon_kernel",
    "TAG_A",
    "TAG_B",
]

# Tag bases used across algorithms; collectives namespace their own subtags
# beneath these, so concurrent collectives need distinct bases.
TAG_A = 1
TAG_B = 2
TAG_C = 3
TAG_D = 4


def require(condition: bool, message: str) -> None:
    """Raise :class:`NotApplicableError` with ``message`` unless ``condition``."""
    if not condition:
        raise NotApplicableError(message)


def require_square_grid(n: int, p: int, algo: str) -> int:
    """Check p = 4^k (a √p×√p grid) and n divisible by √p; returns √p."""
    require(
        is_power_of_two(p) and ilog2(p) % 2 == 0 and p >= 4,
        f"{algo}: p must be 4^k with k >= 1 to form a square 2-D grid, got p={p}",
    )
    q = 1 << (ilog2(p) // 2)
    require(n % q == 0, f"{algo}: n={n} must be divisible by sqrt(p)={q}")
    require(p <= n * n, f"{algo}: requires p <= n^2 (p={p}, n={n})")
    return q


def require_cubic_grid(n: int, p: int, algo: str) -> int:
    """Check p = 8^k (a ∛p³ grid) and n divisible by ∛p; returns ∛p."""
    require(
        is_power_of_eight(p) and p >= 8,
        f"{algo}: p must be 8^k with k >= 1 to form a 3-D grid, got p={p}",
    )
    q = 1 << (ilog2(p) // 3)
    require(n % q == 0, f"{algo}: n={n} must be divisible by cbrt(p)={q}")
    return q


@dataclass
class GridView2D:
    """A rank's view of the √p×√p grid: coordinates and communicators.

    The row/column communicators are built on first use: algorithms that
    only shift along grid edges (Cannon) never pay for ``p·√p``-scale
    member enumeration during per-rank setup.
    """

    grid: Grid2DEmbedding
    row: int
    col: int
    _ctx: ProcessContext
    _row_comm: Comm | None = None
    _col_comm: Comm | None = None

    @classmethod
    def create(cls, ctx: ProcessContext) -> "GridView2D":
        grid = Grid2DEmbedding.square(ctx.config.cube)
        r, c = grid.coords_of(ctx.rank)
        return cls(grid=grid, row=r, col=c, _ctx=ctx)

    @property
    def row_comm(self) -> Comm:
        """Members ordered by column coordinate."""
        if self._row_comm is None:
            self._row_comm = Comm(self._ctx, self.grid.row_members(self.row))
        return self._row_comm

    @property
    def col_comm(self) -> Comm:
        """Members ordered by row coordinate."""
        if self._col_comm is None:
            self._col_comm = Comm(self._ctx, self.grid.col_members(self.col))
        return self._col_comm

    @property
    def q(self) -> int:
        return self.grid.rows


@dataclass
class GridView3D:
    """A rank's view of the ∛p³ grid, with the paper's ``p_{i,j,k}`` names.

    ``x_comm`` spans ``p_{*,j,k}`` ordered by ``x``; ``y_comm`` spans
    ``p_{i,*,k}`` ordered by ``y``; ``z_comm`` spans ``p_{i,j,*}`` ordered
    by ``z``.
    """

    grid: Grid3DEmbedding
    x: int
    y: int
    z: int
    x_comm: Comm
    y_comm: Comm
    z_comm: Comm

    @classmethod
    def create(cls, ctx: ProcessContext) -> "GridView3D":
        grid = Grid3DEmbedding(ctx.config.cube)
        x, y, z = grid.coords_of(ctx.rank)
        return cls(
            grid=grid,
            x=x,
            y=y,
            z=z,
            x_comm=Comm(ctx, grid.line_members("x", x, y, z)),
            y_comm=Comm(ctx, grid.line_members("y", x, y, z)),
            z_comm=Comm(ctx, grid.line_members("z", x, y, z)),
        )

    @property
    def q(self) -> int:
        return self.grid.side


def cannon_kernel(
    ctx: ProcessContext,
    node_at,
    q: int,
    row: int,
    col: int,
    a_block: np.ndarray,
    b_block: np.ndarray,
    tag_a: int = TAG_A,
    tag_b: int = TAG_B,
):
    """Cannon's algorithm on a ``q × q`` grid of nodes (generator).

    ``node_at(r, c)`` maps (wrapped) grid coordinates to cube nodes; this
    runs equally on the top-level grid and on Berntsen's subcube grids.
    ``a_block``/``b_block`` are this processor's ``A_{row,col}`` and
    ``B_{row,col}``; returns the accumulated ``C_{row,col}``.

    The initial alignment skews ``A_{r,c}`` to ``p_{r, c-r}`` and
    ``B_{r,c}`` to ``p_{r-c, c}`` (the paper describes the mirror-image
    skew, which does not pair matching inner indices; the standard
    left/up skew is used here — communication costs are identical by
    symmetry).  Both matrices move concurrently: a one-port machine
    serializes the transfers (the paper's ``2(t_s + t_w m)`` per step),
    a multi-port machine overlaps them (halving the time, as in §3.2).
    """
    me = ctx.rank

    # -- alignment: A left by `row`, B up by `col` --------------------------
    a_dst = node_at(row, col - row)
    a_src = node_at(row, col + row)
    b_dst = node_at(row - col, col)
    b_src = node_at(row + col, col)
    handles = [
        (yield from ctx.isend(a_dst, a_block, tag_a)),
        (yield from ctx.irecv(a_src, tag_a)),
        (yield from ctx.isend(b_dst, b_block, tag_b)),
        (yield from ctx.irecv(b_src, tag_b)),
    ]
    values = yield from ctx.waitall(handles)
    a_block, b_block = values[1], values[3]

    # -- q steps of multiply-accumulate + unit shift -------------------------
    left, right = node_at(row, col - 1), node_at(row, col + 1)
    up, down = node_at(row - 1, col), node_at(row + 1, col)
    if type(ctx) is ProcessContext:
        # Plain simulator context: declare the loop as one superstep so
        # the engine can advance it in closed form (or fall back to the
        # identical per-message loop) — see ProcessContext.shift_phase.
        _a, _b, c_block = yield from ctx.shift_phase(
            steps=q, a_to=left, a_from=right, b_to=up, b_from=down,
            a_block=a_block, b_block=b_block, tag_a=tag_a, tag_b=tag_b,
        )
        return c_block
    # Wrapped contexts (reliable/integrity/detector layers) override the
    # point-to-point calls with their own protocols; keep the explicit
    # loop so every message goes through them.
    c_block = None
    for step in range(q):
        c_block = yield from ctx.local_matmul(a_block, b_block, c_block)
        if step == q - 1:
            break
        handles = [
            (yield from ctx.isend(left, a_block, tag_a)),
            (yield from ctx.irecv(right, tag_a)),
            (yield from ctx.isend(up, b_block, tag_b)),
            (yield from ctx.irecv(down, tag_b)),
        ]
        values = yield from ctx.waitall(handles)
        a_block, b_block = values[1], values[3]
    return c_block
