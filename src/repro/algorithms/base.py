"""Algorithm protocol and the run/verify harness.

A :class:`MatmulAlgorithm` bundles four things:

* an applicability check (the ``p ≤ n^k`` / power-of-two conditions of the
  paper's Table 3 plus divisibility constraints of the block partitions),
* the initial data distribution (which blocks of ``A`` and ``B`` each cube
  node holds before the clock starts),
* the per-processor SPMD program (a generator exercising the simulator),
* output collection (reassembling ``C`` from the per-node results).

Distribution and collection happen *outside* the simulated clock — the
paper's timing likewise assumes operands pre-distributed in each
algorithm's required layout.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import AlgorithmError, NotApplicableError
from repro.sim.engine import run_spmd
from repro.sim.machine import MachineConfig
from repro.sim.tracing import RunResult
from repro.topology.hypercube import Hypercube

__all__ = ["MatmulAlgorithm", "AlgorithmRun"]


@dataclass
class AlgorithmRun:
    """Outcome of one simulated distributed multiplication."""

    algorithm: str
    n: int
    config: MachineConfig
    C: np.ndarray
    result: RunResult

    @property
    def total_time(self) -> float:
        return self.result.total_time

    @property
    def comm_time(self) -> float:
        """Communication part of the runtime (total minus max compute)."""
        max_compute = max(
            (s.compute_time for s in self.result.stats.values()), default=0.0
        )
        return self.result.total_time - max_compute


class MatmulAlgorithm(abc.ABC):
    """A distributed dense-matmul algorithm runnable on the simulator."""

    #: registry key, e.g. ``"3d_all"``
    key: str = ""
    #: human-readable name, e.g. ``"3D All"``
    name: str = ""
    #: paper section implementing it, e.g. ``"4.2.2"``
    paper_section: str = ""

    # -- contract ----------------------------------------------------------

    @abc.abstractmethod
    def check_applicable(self, n: int, p: int) -> None:
        """Raise :class:`NotApplicableError` if (n, p) violates the
        algorithm's conditions (Table 3 plus partition divisibility)."""

    def applicable(self, n: int, p: int) -> bool:
        """True iff :meth:`check_applicable` passes for (n, p)."""
        try:
            self.check_applicable(n, p)
        except NotApplicableError:
            return False
        return True

    @abc.abstractmethod
    def distribute_inputs(
        self, A: np.ndarray, B: np.ndarray, cube: Hypercube
    ) -> dict[int, dict[str, Any]]:
        """Initial per-node local data (``{node: {...blocks...}}``)."""

    @abc.abstractmethod
    def program(self, ctx, n: int, local: dict[str, Any]):
        """The SPMD generator for one processor; returns its output locals."""

    @abc.abstractmethod
    def collect_output(
        self, n: int, cube: Hypercube, results: dict[int, Any]
    ) -> np.ndarray:
        """Reassemble the product matrix from per-node program returns."""

    # -- harness -----------------------------------------------------------

    def run(
        self,
        A: np.ndarray,
        B: np.ndarray,
        config: MachineConfig,
        *,
        verify: bool = False,
        trace: bool = False,
        context_factory=None,
        max_events: int | None = None,
        max_virtual_time: float | None = None,
        superstep: bool = True,
        timing_only: bool = False,
        event_queue: str = "heap",
    ) -> AlgorithmRun:
        """Distribute inputs, simulate, collect (and optionally verify) C.

        ``context_factory`` optionally wraps each rank's
        :class:`~repro.sim.process.ProcessContext` (e.g.
        :class:`~repro.mpi.reliable.ReliableContext` for retransmitting
        delivery on a lossy machine).  ``max_events`` /
        ``max_virtual_time`` are the engine's watchdog caps.
        ``superstep``/``timing_only``/``event_queue`` pass through to the
        engine (see :class:`~repro.sim.engine.Engine`); a timing-only run
        returns ``C = None`` and cannot be verified.
        """
        if timing_only and verify:
            raise AlgorithmError("timing_only runs produce no C to verify")
        A = np.asarray(A, dtype=float)
        B = np.asarray(B, dtype=float)
        if A.ndim != 2 or A.shape[0] != A.shape[1]:
            raise AlgorithmError(f"A must be square, got shape {A.shape}")
        if B.shape != A.shape:
            raise AlgorithmError(
                f"A and B must have equal shapes, got {A.shape} vs {B.shape}"
            )
        n = A.shape[0]
        self.check_applicable(n, config.num_nodes)

        initial = self.distribute_inputs(A, B, config.cube)
        algo = self

        def spmd(ctx):
            if context_factory is not None:
                ctx = context_factory(ctx)
            return algo.program(ctx, n, initial.get(ctx.rank, {}))

        result = run_spmd(
            config, spmd, trace=trace,
            max_events=max_events, max_virtual_time=max_virtual_time,
            superstep=superstep, timing_only=timing_only,
            event_queue=event_queue,
        )
        if timing_only:
            # Per-rank returns are shape-only broadcast views; there is no
            # product to reassemble.
            C = None
        else:
            C = self.collect_output(n, config.cube, result.results)

        if verify:
            expected = A @ B
            if not np.allclose(C, expected):
                err = float(np.max(np.abs(C - expected)))
                raise AlgorithmError(
                    f"{self.name}: result mismatch (max abs error {err:g})"
                )
        return AlgorithmRun(
            algorithm=self.key, n=n, config=config, C=C, result=result
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} key={self.key!r} section={self.paper_section}>"
