"""Fox-Otto-Hey algorithm ([4] in the paper's references; baseline).

The paper's §1 lists Fox, Otto and Hey's "Matrix algorithms on a hypercube
I" among the prior distributed matmul algorithms but does not carry it
into Table 2 (Cannon dominates it on hypercubes).  Implemented here as a
baseline: broadcast-multiply-roll on the ``√p × √p`` grid.

At step ``k`` (``k = 0 … √p-1``):

1. in every row ``i``, the processor holding ``A_{i, i+k}`` (column
   ``(i + k) mod √p``) broadcasts it across the row,
2. every processor multiplies the broadcast block with its current ``B``
   block and accumulates,
3. ``B`` blocks roll up one position along the columns.

Per step this costs a one-to-all broadcast (``log √p`` start-ups) plus a
unit shift, so Fox pays ``O(√p·log √p)`` start-ups against Cannon's
``O(√p)`` — the reason the paper's lineup skips it; the relation is pinned
in ``tests/algorithms/test_fox.py``.
"""

from __future__ import annotations

from typing import Any

from repro.algorithms.base import MatmulAlgorithm
from repro.algorithms.common import GridView2D, TAG_A, TAG_B, require_square_grid
from repro.blocks.partition import BlockPartition2D
from repro.collectives import broadcast
from repro.topology.embedding import Grid2DEmbedding
from repro.topology.hypercube import Hypercube

__all__ = ["FoxAlgorithm"]


class FoxAlgorithm(MatmulAlgorithm):
    """Fox-Otto-Hey broadcast-multiply-roll baseline (see module doc)."""

    key = "fox"
    name = "Fox-Otto-Hey"
    paper_section = "1 (reference [4])"

    def check_applicable(self, n: int, p: int) -> None:
        require_square_grid(n, p, self.name)

    def distribute_inputs(self, A, B, cube: Hypercube):
        grid = Grid2DEmbedding.square(cube)
        part = BlockPartition2D(A.shape[0], grid.rows)
        return {
            grid.node_at(i, j): {
                "A": part.extract(A, i, j),
                "B": part.extract(B, i, j),
            }
            for i in range(grid.rows)
            for j in range(grid.cols)
        }

    def program(self, ctx, n: int, local: dict[str, Any]):
        view = GridView2D.create(ctx)
        q = view.q
        i, j = view.row, view.col
        a_block, b_block = local["A"], local["B"]
        ctx.note_memory(4 * a_block.size)  # A, roaming A, B, C

        up = view.grid.node_at(i - 1, j)
        down = view.grid.node_at(i + 1, j)

        ctx.phase("fox")
        c_block = None
        for k in range(q):
            # 1. broadcast A_{i, i+k} across row i from its holder.
            root = (i + k) % q  # row_comm is ordered by column coordinate
            roaming = a_block if j == root else None
            roaming = yield from broadcast(
                view.row_comm, roaming, root=root, tag=TAG_A
            )
            # 2. multiply-accumulate with the resident B block.
            c_block = yield from ctx.local_matmul(roaming, b_block, c_block)
            # 3. roll B up one position along the column.
            if k < q - 1:
                b_block = yield from ctx.sendrecv(
                    up, b_block, src=down, send_tag=TAG_B, recv_tag=TAG_B
                )
        return c_block

    def collect_output(self, n: int, cube: Hypercube, results):
        grid = Grid2DEmbedding.square(cube)
        part = BlockPartition2D(n, grid.rows)
        return part.assemble(
            {
                (i, j): results[grid.node_at(i, j)]
                for i in range(grid.rows)
                for j in range(grid.cols)
            }
        )
