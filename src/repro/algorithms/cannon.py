"""Cannon's algorithm (§3.2) on the Gray-embedded ``√p × √p`` grid.

Initial skew followed by ``√p - 1`` shift-multiply-add steps; every shift
moves ``A`` one position along the row ring and ``B`` one position along
the column ring (dilation-1 neighbour transfers under the Gray embedding).
Constant storage — ``3n²`` words overall (Table 3) — at the price of
``O(√p)`` message start-ups (Table 2).

The initial alignment sends each block up to ``log √p`` hops through the
cube (e-cube routed, store-and-forward), which is the ``2·log√p·(t_s +
t_w·n²/p)`` term of §3.2; simultaneous skew messages can contend for links,
so the simulated alignment can exceed the paper's contention-free bound —
see EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any

from repro.algorithms.base import MatmulAlgorithm
from repro.algorithms.common import GridView2D, cannon_kernel, require_square_grid
from repro.blocks.partition import BlockPartition2D
from repro.topology.embedding import Grid2DEmbedding
from repro.topology.hypercube import Hypercube

__all__ = ["CannonAlgorithm"]


class CannonAlgorithm(MatmulAlgorithm):
    """Cannon's algorithm on the Gray-embedded 2-D grid (see module doc)."""

    key = "cannon"
    name = "Cannon"
    paper_section = "3.2"

    def check_applicable(self, n: int, p: int) -> None:
        require_square_grid(n, p, self.name)

    def distribute_inputs(self, A, B, cube: Hypercube):
        grid = Grid2DEmbedding.square(cube)
        part = BlockPartition2D(A.shape[0], grid.rows)
        return {
            grid.node_at(i, j): {
                "A": part.extract(A, i, j),
                "B": part.extract(B, i, j),
            }
            for i in range(grid.rows)
            for j in range(grid.cols)
        }

    def program(self, ctx, n: int, local: dict[str, Any]):
        view = GridView2D.create(ctx)
        a_block, b_block = local["A"], local["B"]
        # Constant storage: A, B, and C blocks only.
        ctx.note_memory(3 * a_block.size)
        ctx.phase("cannon")
        c_block = yield from cannon_kernel(
            ctx, view.grid.node_at, view.q, view.row, view.col, a_block, b_block
        )
        return c_block

    def collect_output(self, n: int, cube: Hypercube, results):
        grid = Grid2DEmbedding.square(cube)
        part = BlockPartition2D(n, grid.rows)
        return part.assemble(
            {
                (i, j): results[grid.node_at(i, j)]
                for i in range(grid.rows)
                for j in range(grid.cols)
            }
        )
