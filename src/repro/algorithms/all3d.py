"""The 3D All algorithm (§4.2.2, Algorithm 5) — the paper's headline result.

Like 3D All_Trans but with *identical* initial distributions for ``A`` and
``B``: ``p_{i,j,k}`` holds ``A_{k,f(i,j)}`` and ``B_{k,f(i,j)}``, both in
the Fig. 8 partition.  The only new machinery is the first phase, which
re-shuffles ``B`` with an all-to-all personalized exchange instead of
All_Trans's gather:

1. **All-to-all personalized along y**: ``p_{i,j,k}`` sends ``B^l`` (the
   ``l``-th row group of its ``B`` block, ``n²/(p·∛p)`` words) to
   ``p_{i,l,k}``.  The received set ``B^j_{k,f(i,*)}`` *is* the Fig. 9
   block ``B_{f(k,j),i}`` (the paper's proof of correctness, reproduced in
   the implementation below).
2. **Two all-to-all broadcasts**: the re-shuffled ``B`` blocks along the
   z-direction and the ``A`` blocks along the x-direction, overlapped on
   multi-port nodes.  Afterwards ``p_{i,j,k}`` holds ``A_{k,f(*,j)}`` and
   ``B_{f(*,j),i}`` and computes ``I_{k,i}``.
3. **All-to-all reduction along y** — identical to All_Trans — leaving
   ``C_{k,f(i,j)}`` on ``p_{i,j,k}``: output aligned exactly like input.

Cost (Table 2, one-port): ``(4/3·log p, (n²/p^{2/3})(3(1-1/∛p) +
log p/(6∛p)))`` — the least communication overhead of all eight algorithms
whenever ``p ≤ n^{3/2}`` and ``p ≥ 8``.  Multi-port: ``(log p,
(n²/p^{2/3})(6/log p·(1-1/∛p) + 1/(2∛p)))`` when the phase-1 messages are
big enough for full bandwidth (``n² ≥ p^{4/3}·log ∛p``).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.algorithms.base import MatmulAlgorithm
from repro.algorithms.common import (
    GridView3D,
    TAG_A,
    TAG_B,
    TAG_C,
    TAG_D,
    require,
    require_cubic_grid,
)
from repro.blocks.partition import PartitionFig8, f_index
from repro.collectives import alltoall, reduce_scatter
from repro.collectives.phase import allgather_call, parallel_pair
from repro.topology.embedding import Grid3DEmbedding
from repro.topology.hypercube import Hypercube

__all__ = ["All3DAlgorithm"]


class All3DAlgorithm(MatmulAlgorithm):
    """The paper's headline 3D All algorithm (see module doc)."""

    key = "3d_all"
    name = "3D All"
    paper_section = "4.2.2"

    def check_applicable(self, n: int, p: int) -> None:
        q = require_cubic_grid(n, p, self.name)
        require(
            n % (q * q) == 0,
            f"{self.name}: n={n} must be divisible by p^(2/3)={q * q} "
            "(Fig. 8 partition and row-group splits)",
        )
        require(
            p <= round(n ** 1.5),
            f"{self.name}: requires p <= n^(3/2) (p={p}, n={n})",
        )

    def distribute_inputs(self, A, B, cube: Hypercube):
        grid = Grid3DEmbedding(cube)
        q = grid.side
        n = A.shape[0]
        fig8 = PartitionFig8(n, q)
        out = {}
        for i in range(q):
            for j in range(q):
                c = f_index(i, j, q)
                for k in range(q):
                    out[grid.node_at(i, j, k)] = {
                        "A": fig8.extract(A, k, c),
                        "B": fig8.extract(B, k, c),
                    }
        return out

    def program(self, ctx, n: int, local: dict[str, Any]):
        view = GridView3D.create(ctx)
        q = view.q
        i, j, k = view.x, view.y, view.z

        a_block = local["A"]  # A_{k, f(i,j)}: (n/q, n/q^2)
        b_block = local["B"]  # B_{k, f(i,j)}: (n/q, n/q^2)

        # -- phase 1: all-to-all personalized along y --------------------------
        # Row group l of my B block goes to p_{i,l,k}.
        ctx.phase("alltoall-B")
        row_groups = [
            np.ascontiguousarray(g) for g in np.array_split(b_block, q, axis=0)
        ]
        received = yield from alltoall(view.y_comm, row_groups, tag=TAG_B)
        # received[l] = B^j_{k, f(i,l)}; concatenated over l this is the
        # Fig. 9 block B_{f(k,j), i} (row group j of A's row-block k spans
        # Fig. 9 row f(k,j); column groups f(i,0..q-1) span column i).
        b_fig9 = np.hstack(received)  # (n/q^2, n/q)

        # -- phase 2: all-to-all broadcasts along z (B) and x (A) --------------
        ctx.phase("broadcasts")
        a_list, b_list = yield from parallel_pair(
            ctx,
            allgather_call(view.x_comm, a_block, tag=TAG_C),
            allgather_call(view.z_comm, b_fig9, tag=TAG_D),
        )
        # a_list[l] = A_{k, f(l,j)};  b_list[m] = B_{f(m,j), i}.
        ctx.note_memory(q * a_block.size + q * b_fig9.size + (n // q) ** 2)

        # -- compute I_{k,i} ----------------------------------------------------
        ctx.phase("compute")
        partial = None
        for l in range(q):
            partial = yield from ctx.local_matmul(a_list[l], b_list[l], partial)

        # -- phase 3: all-to-all reduction along y -----------------------------
        ctx.phase("reduce")
        pieces = [
            np.ascontiguousarray(piece)
            for piece in np.array_split(partial, q, axis=1)
        ]
        c_block = yield from reduce_scatter(view.y_comm, pieces, tag=TAG_A)
        return c_block

    def collect_output(self, n: int, cube: Hypercube, results):
        grid = Grid3DEmbedding(cube)
        q = grid.side
        fig8 = PartitionFig8(n, q)
        blocks = {}
        for i in range(q):
            for j in range(q):
                for k in range(q):
                    blocks[(k, f_index(i, j, q))] = results[grid.node_at(i, j, k)]
        return fig8.assemble(blocks)
