"""Communicators: ordered groups of cube nodes forming a subcube.

Every collective pattern in the paper runs inside a one-dimensional chain of
processors (a grid row, column, or axis line), and under the Gray-code
embedding each such chain *is* a subcube of the physical hypercube.  A
:class:`Comm` captures one of these groups:

* ``members`` is the caller's semantic ordering (e.g. grid-column order for
  a row communicator) — collective results are indexed by this order;
* internally, members are also indexed by their *subcube index* (the integer
  formed from the free-dimension bits), which is the coordinate system in
  which recursive doubling / binomial-tree schedules talk to physical
  neighbours.

A rank participates in a communicator by constructing the same ``Comm`` in
its program; there is no global registration.  Tags passed to the point-to-
point helpers are namespaced by the caller, not the communicator.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Sequence

from repro.errors import CommunicatorError
from repro.sim.process import ProcessContext
from repro.util.bits import set_bits

__all__ = ["Comm"]


@lru_cache(maxsize=65536)
def _subcube_structure(
    members: tuple[int, ...],
) -> tuple[tuple[int, ...], dict[int, int], tuple[int, ...], tuple[int, ...]]:
    """Validated subcube structure shared by every rank of a communicator.

    The derived maps depend only on the member tuple, and every member of a
    grid line constructs the identical communicator — caching turns the
    per-rank O(size) validation into a lookup.  Returned containers are
    shared across ranks and must be treated as read-only.
    """
    if not members:
        raise CommunicatorError("communicator needs at least one member")
    if len(set(members)) != len(members):
        raise CommunicatorError(f"duplicate members in {list(members)}")
    size = len(members)
    if size & (size - 1):
        raise CommunicatorError(
            f"communicator size must be a power of two, got {size}"
        )
    base = members[0]
    varying = 0
    for node in members:
        varying |= node ^ base
    free_dims = tuple(set_bits(varying))
    if 1 << len(free_dims) != size:
        raise CommunicatorError(
            f"members {list(members)} do not form a subcube: {len(free_dims)} "
            f"varying bits for {size} nodes"
        )

    index_of_node: dict[int, int] = {}
    subidx_of_commrank: list[int] = []
    for cr, node in enumerate(members):
        sub = 0
        for k, dim in enumerate(free_dims):
            if (node >> dim) & 1:
                sub |= 1 << k
        index_of_node[node] = cr
        subidx_of_commrank.append(sub)
    commrank_of_subidx = [0] * size
    seen = set()
    for cr, sub in enumerate(subidx_of_commrank):
        if sub in seen:
            raise CommunicatorError(
                f"members {list(members)} do not form a subcube"
            )
        seen.add(sub)
        commrank_of_subidx[sub] = cr
    return (
        free_dims,
        index_of_node,
        tuple(subidx_of_commrank),
        tuple(commrank_of_subidx),
    )


class Comm:
    """An ordered subcube communicator bound to one rank's context.

    Parameters
    ----------
    ctx:
        The calling rank's process context.
    members:
        Cube-node addresses, in the semantic order that collective results
        should use.  Must form a subcube (size a power of two, all
        free-bit combinations present) and must contain ``ctx.rank``.
    """

    __slots__ = (
        "ctx",
        "members",
        "rank",
        "free_dims",
        "_index_of_node",
        "_subidx_of_commrank",
        "_commrank_of_subidx",
    )

    def __init__(self, ctx: ProcessContext, members: Sequence[int]):
        members = tuple(members)
        (
            free_dims,
            index_of_node,
            subidx_of_commrank,
            commrank_of_subidx,
        ) = _subcube_structure(members)

        if ctx.rank not in index_of_node:
            raise CommunicatorError(
                f"rank {ctx.rank} is not a member of communicator {list(members)}"
            )

        self.ctx = ctx
        self.members = members
        self.free_dims = free_dims
        self._index_of_node = index_of_node
        self._subidx_of_commrank = subidx_of_commrank
        self._commrank_of_subidx = commrank_of_subidx
        self.rank = index_of_node[ctx.rank]

    # -- shape -------------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def dimension(self) -> int:
        """Subcube dimension: ``log2(size)``."""
        return len(self.free_dims)

    def node_of(self, comm_rank: int) -> int:
        """Cube-node address of a comm rank."""
        return self.members[comm_rank]

    def comm_rank_of(self, node: int) -> int:
        """Comm rank of a cube node (KeyError if not a member)."""
        return self._index_of_node[node]

    # -- subcube-index coordinates ------------------------------------------

    def subindex_of(self, comm_rank: int) -> int:
        """Subcube index (free-dimension bits) of a member."""
        return self._subidx_of_commrank[comm_rank]

    def from_subindex(self, subindex: int) -> int:
        """Comm rank whose subcube index is ``subindex``."""
        return self._commrank_of_subidx[subindex]

    def rel_index(self, comm_rank: int, root: int = 0) -> int:
        """Subcube index relative to ``root`` (so ``root`` maps to 0)."""
        return self.subindex_of(comm_rank) ^ self.subindex_of(root)

    def from_rel(self, rel: int, root: int = 0) -> int:
        """Inverse of :meth:`rel_index`."""
        return self.from_subindex(rel ^ self.subindex_of(root))

    def dim_partner(self, comm_rank: int, k: int) -> int:
        """Comm rank of the physical neighbour across subcube dimension ``k``."""
        if not 0 <= k < self.dimension:
            raise CommunicatorError(
                f"subcube dimension {k} out of range (communicator has "
                f"{self.dimension} dimensions)"
            )
        return self.from_subindex(self.subindex_of(comm_rank) ^ (1 << k))

    # -- point-to-point in comm-rank space -----------------------------------

    def send(self, dst: int, data: Any, tag: int = 0, nwords: int | None = None):
        """Blocking send to comm rank ``dst`` (generator)."""
        yield from self.ctx.send(self.node_of(dst), data, tag, nwords)

    def isend(self, dst: int, data: Any, tag: int = 0, nwords: int | None = None):
        """Non-blocking send to comm rank ``dst``; returns a Handle."""
        return (yield from self.ctx.isend(self.node_of(dst), data, tag, nwords))

    def recv(self, src: int, tag: int = -1):
        """Blocking receive from comm rank ``src``; returns the payload."""
        return (yield from self.ctx.recv(self.node_of(src), tag))

    def irecv(self, src: int, tag: int = -1):
        """Non-blocking receive from comm rank ``src``; returns a Handle."""
        return (yield from self.ctx.irecv(self.node_of(src), tag))

    def sendrecv(
        self,
        dst: int,
        data: Any,
        src: int,
        send_tag: int = 0,
        recv_tag: int = -1,
        nwords: int | None = None,
    ):
        """Concurrent send to ``dst`` + receive from ``src`` (comm ranks)."""
        return (
            yield from self.ctx.sendrecv(
                self.node_of(dst), data, self.node_of(src), send_tag, recv_tag, nwords
            )
        )

    def exchange(self, peer: int, data: Any, tag: int = 0, nwords: int | None = None):
        """Full-duplex pairwise exchange with comm rank ``peer``."""
        return (
            yield from self.ctx.exchange(self.node_of(peer), data, tag, nwords)
        )

    def __repr__(self) -> str:
        return f"Comm(rank={self.rank}/{self.size}, members={self.members})"
