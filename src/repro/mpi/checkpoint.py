"""Coordinated checkpoint/restart: the recovery path of last resort.

ABFT checksums (:mod:`repro.algorithms.abft`) reconstruct lost output
cheaply, but only up to their encoding's coverage.  When more ranks die
than the checksums span — or for algorithms whose loss pattern the
encoding cannot confine — the fallback is the classic scheme: snapshot a
consistent cut, and on failure *restart from it on the machine that is
left*.

The simulator's natural consistent cut is the operation start: the input
blocks every rank holds before the clock runs (the paper's timing model
likewise assumes operands pre-distributed).  A restart therefore means:

1. **agree** — all survivors run the dead-set consensus
   (:func:`repro.mpi.recovery.agree`), discovering failures they had not
   personally observed,
2. **shrink** — map the survivors onto the largest sub-hypercube on
   which the wrapped algorithm is still applicable
   (:func:`repro.mpi.recovery.shrink`); if none exists, the lowest
   surviving rank computes the product serially,
3. **restore** — each participant charges the modeled cost of re-reading
   its input blocks from the checkpoint store (one network hop per
   block volume — the snapshot lives one hop away), then
4. **re-run** the algorithm's unmodified program on a
   :class:`~repro.mpi.recovery.RecoveryContext` over the sub-machine,
   with tags shifted so stale first-attempt messages are never consumed.

Survivors that completed their first attempt still join every round of
consensus — otherwise ranks stuck behind the corpse could never
distinguish "peer finished" from "peer left the protocol" — and their
first-attempt results are discarded when a re-run happens.  The loop
repeats while new deaths keep appearing (a rank can die mid-recovery),
bounded by ``max_epochs``.

Snapshot-cadence trade-off: writing the cut costs one charge of
``snapshot_cost`` up front; restoring costs the same per restart epoch.
Because the cut is the operation start, a failure loses *all* progress
since then — the cost of the coarsest possible cadence.  Finer cadences
(periodic mid-run snapshots) would shrink the lost-work term at the
price of more snapshot charges; with matmul's short phase structure the
paper-level model gains little from them, so this module keeps the
single-cut model and documents the trade-off in ``docs/FAULTS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import AlgorithmRun, MatmulAlgorithm
from repro.errors import AlgorithmError, CommTimeoutError, RankFailedError
from repro.mpi.detector import FailureDetectorContext
from repro.mpi.recovery import RecoveryContext, agree, shrink
from repro.sim.engine import run_spmd
from repro.sim.machine import MachineConfig
from repro.topology.hypercube import Hypercube

__all__ = ["RecoveryRun", "CheckpointedMatmul", "EPOCH_TAG_STRIDE"]

#: per-epoch tag namespace stride for re-runs (above every collective subtag)
EPOCH_TAG_STRIDE = 1 << 12


@dataclass
class RecoveryRun(AlgorithmRun):
    """An :class:`~repro.algorithms.base.AlgorithmRun` plus recovery facts."""

    #: recovery mode that produced the result: "abft", "checkpoint", "none"
    mode: str = "checkpoint"
    #: number of restart epochs taken (0 = first attempt sufficed)
    epochs: int = 0
    #: fail-stopped ranks agreed on by the survivors
    dead: tuple[int, ...] = ()
    #: machine that produced the final result: "full", "sub", or "serial"
    machine: str = "full"
    #: True iff a failure occurred and the result was still produced
    recovered: bool = False
    #: virtual time burnt on failed attempts before ``result`` (e.g. an
    #: undecodable ABFT run that fell back to checkpoint/restart)
    attempt_time: float = 0.0

    @property
    def total_time(self) -> float:
        return self.result.total_time + self.attempt_time


def _input_words(local: dict) -> int:
    return sum(
        int(v.size) for v in local.values() if isinstance(v, np.ndarray)
    )


class CheckpointedMatmul:
    """Run a :class:`~repro.algorithms.base.MatmulAlgorithm` under
    checkpoint/restart recovery (see module doc).

    Parameters
    ----------
    algorithm:
        Any registered algorithm; its program runs unmodified.
    max_epochs:
        Restart attempts before giving up; default covers one epoch per
        planned node failure plus slack.
    detector_opts:
        Extra keyword arguments for each rank's
        :class:`~repro.mpi.detector.FailureDetectorContext`.
    context_factory:
        Optional wrapper applied to each rank's raw context *under* the
        failure detector (e.g.
        :class:`~repro.mpi.integrity.IntegrityContext` so restarted
        epochs keep end-to-end message integrity).
    """

    def __init__(
        self,
        algorithm: MatmulAlgorithm,
        *,
        max_epochs: int | None = None,
        detector_opts: dict | None = None,
        context_factory=None,
    ):
        self.algorithm = algorithm
        self.max_epochs = max_epochs
        self.detector_opts = dict(detector_opts or {})
        self.detector_opts.setdefault("on_dead", "raise")
        self.context_factory = context_factory

    # -- machine planning (pure, identical on every survivor) -------------

    def _plan_machine(self, n: int, cube: Hypercube, dead: frozenset):
        """What machine does the epoch run on, given the agreed dead set?"""
        if not dead:
            return ("full", None)
        sub = shrink(
            cube, dead,
            require=lambda s: self.algorithm.applicable(n, s.num_nodes),
        )
        if sub is None:
            alive = [r for r in range(cube.num_nodes) if r not in dead]
            return ("serial", min(alive))
        return ("sub", sub)

    # -- harness -----------------------------------------------------------

    def run(
        self,
        A: np.ndarray,
        B: np.ndarray,
        config: MachineConfig,
        *,
        trace: bool = False,
        max_events: int | None = None,
        max_virtual_time: float | None = None,
    ) -> RecoveryRun:
        A = np.asarray(A, dtype=float)
        B = np.asarray(B, dtype=float)
        if A.ndim != 2 or A.shape[0] != A.shape[1] or B.shape != A.shape:
            raise AlgorithmError(
                f"A and B must be square and equal-shaped, got {A.shape} / {B.shape}"
            )
        n = A.shape[0]
        algo = self.algorithm
        algo.check_applicable(n, config.num_nodes)
        cube = config.cube
        plan = config.faults
        planned_deaths = len(plan.node_failures) if plan is not None else 0
        max_epochs = (
            self.max_epochs if self.max_epochs is not None
            else planned_deaths + 2
        )
        det_opts = self.detector_opts
        params = config.params

        # The consistent cut is the initial distribution on the full machine;
        # writing it costs one snapshot charge before the clock-relevant work.
        full_inputs = algo.distribute_inputs(A, B, cube)

        factory = self.context_factory

        def spmd(ctx):
            base = ctx if factory is None else factory(ctx)
            det = FailureDetectorContext(base, **det_opts)
            me = ctx.rank
            dead_used: frozenset = frozenset()
            last_exc: Exception | None = None
            for epoch in range(max_epochs + 1):
                kind, desc = self._plan_machine(n, cube, dead_used)
                desc_out = desc
                ok = False
                out = None
                vrank = None
                try:
                    if kind == "full":
                        local = full_inputs.get(me, {})
                        if epoch == 0:
                            # write the consistent cut (one hop per word)
                            yield from det.elapse(
                                params.hop_time(_input_words(local))
                            )
                        vrank = me
                        out = yield from algo.program(det, n, local)
                        ok = True
                    elif kind == "sub":
                        desc_out = (tuple(desc.free_dims), desc.anchor)
                        if desc.contains(me):
                            rctx = RecoveryContext(
                                det, desc, tag_shift=epoch * EPOCH_TAG_STRIDE
                            )
                            vcube = rctx.config.cube
                            local = algo.distribute_inputs(A, B, vcube).get(
                                rctx.rank, {}
                            )
                            # restore the inputs from the checkpoint store
                            yield from det.elapse(
                                params.hop_time(_input_words(local))
                            )
                            vrank = rctx.rank
                            out = yield from algo.program(rctx, n, local)
                        ok = True
                    else:  # serial fallback on the lowest survivor
                        if me == desc:
                            yield from det.elapse(
                                params.hop_time(int(A.size + B.size))
                            )
                            vrank = 0
                            out = yield from det.local_matmul(A, B)
                        ok = True
                except (RankFailedError, CommTimeoutError) as exc:
                    last_exc = exc
                    ok = False
                if not det.active:
                    return ("done", kind, desc_out, vrank, out, epoch)
                if not ok or dead_used:
                    det.phase("recover")
                dead = yield from agree(det)
                if dead == dead_used:
                    if ok:
                        return ("done", kind, desc_out, vrank, out, epoch)
                    # same machine, same dead set, still failing: a peer is
                    # alive but out of protocol — restarting cannot help.
                    raise last_exc
                dead_used = dead
            raise RankFailedError(
                ctx.rank, -1, detail=f"gave up after {max_epochs} restart epochs"
            )

        result = run_spmd(
            config, spmd, trace=trace,
            max_events=max_events, max_virtual_time=max_virtual_time,
        )

        # -- collect -------------------------------------------------------
        tuples = {r: t for r, t in result.results.items() if t is not None}
        if not tuples:
            raise AlgorithmError("checkpoint restart: no rank returned a result")
        machines = {(t[1], str(t[2])) for t in tuples.values()}
        if len(machines) > 1:
            raise AlgorithmError(
                f"checkpoint restart: survivors disagree on the final machine "
                f"({sorted(machines)})"
            )
        kind = next(iter(tuples.values()))[1]
        blocks = {
            t[3]: t[4] for t in tuples.values() if t[3] is not None
        }
        if kind == "full":
            C = algo.collect_output(n, cube, blocks)
        elif kind == "sub":
            free_dims, anchor = next(iter(tuples.values()))[2]
            vcube = Hypercube(len(free_dims))
            C = algo.collect_output(n, vcube, blocks)
        else:
            C = np.asarray(blocks[0])

        dead = tuple(sorted(set(range(cube.num_nodes)) - set(result.results)))
        epochs = max(t[5] for t in tuples.values())
        return RecoveryRun(
            algorithm=algo.key,
            n=n,
            config=config,
            C=C,
            result=result,
            mode="checkpoint",
            epochs=epochs,
            dead=dead,
            machine=kind,
            recovered=bool(dead),
        )
