"""End-to-end message integrity over a corrupting simulated network.

:class:`~repro.mpi.reliable.ReliableContext` recovers from *lost*
messages, but a :class:`~repro.sim.faults.LinkCorruption` fault does not
lose anything — it silently flips payload bits in flight and the message
arrives looking perfectly healthy.  :class:`IntegrityContext` closes that
hole with the classic checksum-at-send / verify-at-delivery pattern:

* every data envelope carries a **CRC32 of the canonical header+payload
  bytes** (:func:`~repro.sim.message.message_crc`), computed at send time
  over the uncorrupted buffer,
* the destination *node* re-computes the checksum at delivery (the same
  hardware-style hook that generates delivery acks); a mismatch discards
  the corrupted copy — it never reaches the application — and sends a
  **NACK** (:data:`~repro.sim.message.CORRUPT_VERDICT` on the ack
  channel) so the sender retransmits immediately,
* lost messages and lost verdicts still fall through to the inherited
  timeout / exponential-backoff retransmission ladder, so the layer
  handles drops *and* corruption with one protocol,
* a transfer that keeps failing verification past ``max_nacks``
  retransmissions escalates to :class:`~repro.errors.CorruptionError` —
  corruption this persistent is a deterministic fault (e.g. a corrupting
  sender), not line noise, and retrying forever would livelock.

The checksum covers the full reliable-delivery envelope (sequence number,
sender, tag and payload), so corruption anywhere in the message is
detected.  Note the injected fault model only perturbs float64 payload
words — protocol integers ride in the envelope's header fields, which is
the simulated analogue of link-level CRCs already protecting headers on
real interconnects.

Like its base class, :class:`IntegrityContext` duck-types the
:class:`~repro.sim.process.ProcessContext` surface and fast-paths to
plain delivery when the machine's fault plan can neither lose nor corrupt
messages, so fault-free runs cost exactly 1.0x baseline::

    result = algorithm.run(A, B, config, context_factory=IntegrityContext)
"""

from __future__ import annotations

from typing import Any

from repro.errors import CommTimeoutError, CommunicatorError, CorruptionError
from repro.mpi.reliable import (
    ACK_BASE,
    DATA_BASE,
    ReliableContext,
    _nothing_to_wait_for,
    _ReliableHandle,
)
from repro.sim.message import CORRUPT_VERDICT, message_crc, payload_words
from repro.sim.process import ProcessContext

__all__ = ["IntegrityContext"]


class IntegrityContext(ReliableContext):
    """A :class:`~repro.mpi.reliable.ReliableContext` whose transfers are
    additionally protected by end-to-end checksums (CRC attach / verify /
    NACK / retransmit).

    Parameters are those of :class:`~repro.mpi.reliable.ReliableContext`
    plus ``max_nacks``: the number of integrity-rejected retransmissions
    tolerated per message before the send raises
    :class:`~repro.errors.CorruptionError`.
    """

    __slots__ = ("max_nacks",)

    def __init__(
        self,
        ctx: ProcessContext,
        *,
        ack_timeout: float | None = None,
        max_retries: int = 10,
        backoff: float = 2.0,
        slack: float = 4.0,
        force_protocol: bool = False,
        max_nacks: int = 10,
    ):
        if max_nacks < 1:
            raise CommunicatorError(f"max_nacks must be >= 1, got {max_nacks}")
        super().__init__(
            ctx,
            ack_timeout=ack_timeout,
            max_retries=max_retries,
            backoff=backoff,
            slack=slack,
            force_protocol=force_protocol,
        )
        self.max_nacks = max_nacks
        plan = getattr(ctx.config, "faults", None)
        # The base class fast-paths whenever the plan cannot *lose*
        # messages; integrity must also stay engaged when it can corrupt.
        self._passthrough = not force_protocol and (
            plan is None or (plan.lossless and not plan.can_corrupt)
        )

    # -- checksummed sends -------------------------------------------------

    def send(self, dst: int, data: Any, tag: int = 0, nwords: int | None = None):
        """Integrity-protected blocking send (generator).

        Resends on NACK (corrupted delivery) or ack timeout (lost
        delivery); raises :class:`~repro.errors.CorruptionError` after
        ``max_nacks`` integrity rejections,
        :class:`~repro.errors.CommTimeoutError` after ``max_retries``
        silent losses.
        """
        if self._passthrough:
            yield from self._ctx.send(dst, data, tag, nwords)
            return
        self._check_tag(tag)
        words = payload_words(data, nwords)
        seq = self._next_seq.get(dst, 0)
        self._next_seq[dst] = seq + 1
        envelope = ("D", seq, self.rank, tag, data)
        if dst == self.rank:
            # Self-sends bypass the network: nothing can corrupt them.
            yield from self._ctx.send(dst, envelope, DATA_BASE + tag, nwords=words)
            return
        crc = message_crc(self.rank, dst, DATA_BASE + tag, words, envelope)
        yield from self._ctx.send(
            dst, envelope, DATA_BASE + tag, nwords=words,
            ack_tag=ACK_BASE + seq, crc=crc,
        )
        yield from self._await_verdict(dst, tag, words, seq, envelope, crc)

    def isend(self, dst: int, data: Any, tag: int = 0, nwords: int | None = None):
        """Nonblocking integrity-protected send; complete with ``waitall``."""
        if self._passthrough:
            return (yield from self._ctx.isend(dst, data, tag, nwords))
        self._check_tag(tag)
        words = payload_words(data, nwords)
        seq = self._next_seq.get(dst, 0)
        self._next_seq[dst] = seq + 1
        envelope = ("D", seq, self.rank, tag, data)
        if dst == self.rank:
            yield from self._ctx.isend(dst, envelope, DATA_BASE + tag, nwords=words)
            return _ReliableHandle("send", _nothing_to_wait_for())
        crc = message_crc(self.rank, dst, DATA_BASE + tag, words, envelope)
        yield from self._ctx.isend(
            dst, envelope, DATA_BASE + tag, nwords=words,
            ack_tag=ACK_BASE + seq, crc=crc,
        )
        return _ReliableHandle(
            "send", self._await_verdict(dst, tag, words, seq, envelope, crc)
        )

    def _await_verdict(
        self, dst: int, tag: int, words: int, seq: int, envelope, crc: int
    ):
        """Protocol tail: wait for the destination node's verdict.

        ``None`` on the ack channel is a plain delivery ack (done);
        :data:`~repro.sim.message.CORRUPT_VERDICT` is a NACK (the copy
        was rejected — resend at once); silence is a loss (resend after
        the backed-off timeout, exactly as in the base protocol).
        """
        timeout = self._rtt_estimate(words)
        attempt = 0
        nacks = 0
        while True:
            try:
                verdict = yield from self._ctx.recv(
                    dst, ACK_BASE + seq, timeout=timeout
                )
            except CommTimeoutError:
                attempt += 1
                if attempt > self.max_retries:
                    raise CommTimeoutError(
                        self.rank, dst, tag, timeout,
                        detail=f"no verdict for seq {seq} after {attempt} attempts",
                    ) from None
                self._ctx.note_retransmission()
                timeout *= self.backoff
                yield from self._ctx.send(
                    dst, envelope, DATA_BASE + tag, nwords=words,
                    ack_tag=ACK_BASE + seq, crc=crc,
                )
                continue
            if verdict is None:
                return  # clean delivery acknowledged
            if verdict == CORRUPT_VERDICT:
                nacks += 1
                if nacks >= self.max_nacks:
                    raise CorruptionError(
                        self.rank, dst, tag, attempts=nacks,
                        detail=f"seq {seq} rejected by every integrity check",
                    )
                self._ctx.note_retransmission()
                yield from self._ctx.send(
                    dst, envelope, DATA_BASE + tag, nwords=words,
                    ack_tag=ACK_BASE + seq, crc=crc,
                )
                continue
            raise CommunicatorError(
                f"unexpected verdict payload {verdict!r} on ack tag {ACK_BASE + seq}"
            )

    def __repr__(self) -> str:
        return (
            f"IntegrityContext(rank={self.rank}, retries={self.max_retries}, "
            f"nacks={self.max_nacks})"
        )
