"""MPI-flavoured communicator layer over hypercube subcubes."""

from repro.mpi.communicator import Comm
from repro.mpi.reliable import ACK_BASE, DATA_BASE, ReliableContext

__all__ = ["Comm", "ReliableContext", "DATA_BASE", "ACK_BASE"]
