"""MPI-flavoured communicator layer over hypercube subcubes."""

from repro.mpi.checkpoint import CheckpointedMatmul, RecoveryRun
from repro.mpi.communicator import Comm
from repro.mpi.detector import (
    LOST_PAYLOAD,
    FailureDetectorContext,
    lost_like,
)
from repro.mpi.integrity import IntegrityContext
from repro.mpi.recovery import AGREE_TAG, RecoveryContext, agree, shrink
from repro.mpi.reliable import ACK_BASE, DATA_BASE, ReliableContext

__all__ = [
    "Comm",
    "ReliableContext",
    "IntegrityContext",
    "DATA_BASE",
    "ACK_BASE",
    "FailureDetectorContext",
    "LOST_PAYLOAD",
    "lost_like",
    "agree",
    "shrink",
    "AGREE_TAG",
    "RecoveryContext",
    "CheckpointedMatmul",
    "RecoveryRun",
]
