"""MPI-flavoured communicator layer over hypercube subcubes."""

from repro.mpi.communicator import Comm

__all__ = ["Comm"]
