"""ULFM-style communicator recovery: agree on the dead, shrink, remap.

After the failure detector (:mod:`repro.mpi.detector`) convicts peers,
the survivors must *jointly* decide who is gone and regroup onto a
machine that still looks like a hypercube, because every embedding in
this package assumes one.  This module provides the three pieces, named
after their User-Level Failure Mitigation (ULFM) MPI counterparts:

``agree``
    A deterministic consensus collective: survivors gossip their locally
    convicted dead-sets in ordered all-pairs rounds until everyone holds
    the union.  Exchanging with a corpse itself yields a conviction, so
    the protocol also *discovers* failures its caller did not know about.

``shrink``
    A pure function from (cube, dead-set) to the largest all-alive
    subcube (optionally subject to an applicability predicate, e.g.
    "even dimension" for a square grid).  Because
    :func:`~repro.topology.embedding.largest_live_subcube` enumerates
    candidates in a fixed order, every survivor computes the same answer
    with no further communication.

``RecoveryContext``
    An address-translating context proxy presenting the chosen subcube
    as a fresh, smaller hypercube machine: virtual rank ``v`` is physical
    node ``subcube.member(v)``.  The paper's algorithms run on it
    unchanged — Gray-code rings over subcube member indices map to
    dilation-1 physical rings, since a subcube of a hypercube is a
    hypercube.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Iterable, Sequence

from repro.errors import CommunicatorError
from repro.mpi.detector import LOST_PAYLOAD, FailureDetectorContext
from repro.sim.process import ANY_SOURCE, ANY_TAG
from repro.topology.embedding import largest_live_subcube
from repro.topology.hypercube import Hypercube, Subcube

__all__ = ["AGREE_TAG", "agree", "shrink", "RecoveryContext"]

#: tag namespace for the agreement collective; rounds use AGREE_TAG + round.
#: Sits above every algorithm tag (collective subtags stay below 1 << 12).
AGREE_TAG = 9000


def agree(
    det: FailureDetectorContext,
    participants: Sequence[int] | None = None,
    *,
    rounds: int = 2,
    max_leases: int | None = 256,
):
    """Deterministic dead-set consensus over the presumed-alive ranks.

    Generator (run under ``det``'s rank).  Returns a ``frozenset`` of
    fail-stopped ranks that — provided every surviving participant calls
    ``agree`` with the same arguments — is identical on all survivors.

    Each round walks the participants in ascending order and exchanges
    the local dead-set with every peer not yet convicted.  Sends complete
    on node-level delivery acknowledgement (a corpse's silence is handled
    by the detector, not by blocking), and the ascending walk makes the
    waits-for relation well-founded, so the rounds are deadlock-free.
    Two rounds give gossip completeness: round one spreads every
    pre-existing conviction to all survivors, and a death *discovered
    during* round one (an exchange that comes back
    :data:`~repro.mpi.detector.LOST_PAYLOAD`) is spread by round two.  A
    rank that dies in the middle of the *last* round can leave survivors
    with momentarily different answers; callers that must converge run
    agree/shrink in an epoch loop (see :mod:`repro.mpi.checkpoint`).

    ``max_leases`` bounds how long to humor an alive-but-silent peer
    (one that crashed out of the protocol without fail-stopping); when
    exhausted the generic timeout propagates rather than hanging.
    """
    me = det.rank
    if participants is None:
        participants = range(det.num_ranks)
    order = sorted(participants)
    dead: set[int] = set(det.known_dead)
    for rnd in range(rounds):
        tag = AGREE_TAG + rnd
        for peer in order:
            if peer == me or peer in dead:
                continue
            got = yield from det.exchange(
                peer, frozenset(dead), tag,
                nwords=len(order),
                on_dead="substitute", max_leases=max_leases,
            )
            if got is LOST_PAYLOAD:
                dead.add(peer)
            else:
                dead |= got
    return frozenset(dead)


def shrink(
    cube: Hypercube,
    dead: Iterable[int],
    *,
    require=None,
) -> Subcube | None:
    """Largest all-alive subcube after removing ``dead`` nodes.

    Pure and deterministic: survivors holding the same ``dead`` set (the
    point of :func:`agree`) compute the same subcube independently.
    ``require`` filters candidates by applicability (e.g. the wrapped
    algorithm's grid constraint).  Returns ``None`` when nothing
    acceptable survives — the caller falls back to serial execution.
    """
    dead_set = set(dead)
    alive = [n for n in range(cube.num_nodes) if n not in dead_set]
    if not alive:
        return None
    return largest_live_subcube(cube, alive, require=require)


class RecoveryContext:
    """Present a surviving subcube as a fresh, smaller hypercube machine.

    Wraps any context (normally a
    :class:`~repro.mpi.detector.FailureDetectorContext`) and translates
    between *virtual* ranks ``0 .. 2**d - 1`` on the shrunken machine and
    the physical subcube members that host them.  ``ctx.config`` reports
    a ``MachineConfig`` whose cube is the virtual ``d``-cube (same link
    parameters, same port model), so grid embeddings, communicators and
    cost accounting in the algorithms work unchanged.  The mapping is
    dilation-preserving: virtual-cube neighbours differ in one subcube
    free dimension, hence are physical neighbours too.

    Only ranks inside the subcube may construct one; survivors left out
    of the shrunken machine simply do not participate in the rerun.

    ``tag_shift`` relocates every user tag into a fresh namespace
    (``tag + tag_shift``).  A recovery rerun reuses the wrapped
    algorithm's tags, and an aborted first attempt can leave stale
    messages in survivor mailboxes (their receives were cancelled when a
    sibling raised); shifting by a per-epoch stride keeps a rerun from
    ever consuming a first-attempt message.  User tags must stay below
    :data:`~repro.mpi.reliable.DATA_BASE` after shifting.
    """

    __slots__ = ("_inner", "subcube", "tag_shift", "_vconfig", "_vrank")

    def __init__(self, inner, subcube: Subcube, *, tag_shift: int = 0):
        self._inner = inner
        self.subcube = subcube
        self.tag_shift = tag_shift
        phys = inner.rank
        if not subcube.contains(phys):
            raise CommunicatorError(
                f"rank {phys} is not a member of the recovery subcube "
                f"(free dims {subcube.free_dims}, anchor {subcube.anchor})"
            )
        self._vrank = subcube.index_of(phys)
        self._vconfig = replace(
            inner.config, cube=Hypercube(subcube.dimension)
        )

    # -- identity ----------------------------------------------------------

    @property
    def rank(self) -> int:
        """Virtual rank on the shrunken machine."""
        return self._vrank

    @property
    def physical_rank(self) -> int:
        return self._inner.rank

    @property
    def config(self):
        """Machine config of the *virtual* (shrunken) machine."""
        return self._vconfig

    @property
    def inner(self):
        return self._inner

    @property
    def engine(self):
        return self._inner.engine

    @property
    def num_ranks(self) -> int:
        return self.subcube.num_nodes

    @property
    def now(self) -> float:
        return self._inner.now

    @property
    def stats(self):
        return self._inner.stats

    def _phys(self, virtual: int) -> int:
        if virtual < 0:  # ANY_SOURCE passes through
            return virtual
        return self.subcube.member(virtual)

    def _tag(self, tag: int) -> int:
        if tag < 0:  # ANY_TAG passes through
            return tag
        return tag + self.tag_shift

    # -- local ops delegate ------------------------------------------------

    def elapse(self, duration: float):
        yield from self._inner.elapse(duration)

    def compute(self, flops: float):
        yield from self._inner.compute(flops)

    def local_matmul(self, A, B, C=None):
        return (yield from self._inner.local_matmul(A, B, C))

    def parallel(self, *generators):
        return (yield from self._inner.parallel(*generators))

    def barrier(self):
        # The engine barrier excludes finished and fail-stopped ranks from
        # its quorum, so the physical barrier is safe on a shrunken machine.
        yield from self._inner.barrier()

    def phase(self, name: str) -> None:
        self._inner.phase(name)

    def note_memory(self, resident_words: int) -> None:
        self._inner.note_memory(resident_words)

    def note_retransmission(self) -> None:
        self._inner.note_retransmission()

    # -- point to point, address-translated --------------------------------

    def send(self, dst: int, data: Any, tag: int = 0, nwords: int | None = None):
        yield from self._inner.send(self._phys(dst), data, self._tag(tag), nwords)

    def isend(self, dst: int, data: Any, tag: int = 0, nwords: int | None = None):
        return (
            yield from self._inner.isend(
                self._phys(dst), data, self._tag(tag), nwords
            )
        )

    def recv(
        self,
        src: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
    ):
        return (
            yield from self._inner.recv(
                self._phys(src), self._tag(tag), timeout=timeout
            )
        )

    def irecv(
        self,
        src: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
    ):
        return (
            yield from self._inner.irecv(
                self._phys(src), self._tag(tag), timeout=timeout
            )
        )

    def waitall(self, handles):
        return (yield from self._inner.waitall(handles))

    def wait(self, handle):
        return (yield from self._inner.wait(handle))

    def sendrecv(
        self,
        dst: int,
        data: Any,
        src: int = ANY_SOURCE,
        send_tag: int = 0,
        recv_tag: int = ANY_TAG,
        nwords: int | None = None,
    ):
        return (
            yield from self._inner.sendrecv(
                self._phys(dst), data, self._phys(src),
                self._tag(send_tag), self._tag(recv_tag), nwords,
            )
        )

    def exchange(self, peer: int, data: Any, tag: int = 0, nwords: int | None = None):
        return (
            yield from self._inner.exchange(
                self._phys(peer), data, self._tag(tag), nwords
            )
        )

    def __repr__(self) -> str:
        return (
            f"RecoveryContext(virtual_rank={self._vrank}, "
            f"physical_rank={self.physical_rank}, "
            f"dimension={self.subcube.dimension})"
        )
