"""Exception hierarchy for the repro package.

Everything raised deliberately by this library derives from
:class:`ReproError` so callers can catch library failures without also
swallowing programming errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TopologyError",
    "UnreachableError",
    "SimulationError",
    "DeadlockError",
    "LivelockError",
    "CommunicatorError",
    "CommTimeoutError",
    "CorruptionError",
    "RankFailedError",
    "LinkFailedError",
    "DistributionError",
    "AlgorithmError",
    "NotApplicableError",
    "ModelError",
    "ServiceError",
    "ServiceOverloadError",
    "JournalCorruptError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TopologyError(ReproError):
    """Invalid hypercube/grid construction or addressing."""


class UnreachableError(TopologyError):
    """No surviving route exists between two nodes.

    Raised by the fault-tolerant router when permanent/windowed link
    failures (or node fail-stops) disconnect the surviving topology.
    Carries ``src``, ``dst`` and, when known, the virtual ``time`` at which
    routing was attempted.
    """

    def __init__(self, src: int, dst: int, time: float | None = None, detail: str = ""):
        self.src = src
        self.dst = dst
        self.time = time
        when = "" if time is None else f" at t={time:g}"
        extra = f" ({detail})" if detail else ""
        super().__init__(
            f"no surviving route from node {src} to node {dst}{when}: "
            f"the fault plan disconnects them{extra}"
        )


class SimulationError(ReproError):
    """Errors in the discrete-event engine (bad ops, misuse of handles)."""


class LinkFailedError(SimulationError):
    """A transfer was scheduled over a link the fault plan has killed.

    Only raised when fault-tolerant rerouting is disabled or impossible;
    with rerouting enabled the engine detours instead.
    """

    def __init__(self, u: int, v: int, time: float):
        self.u = u
        self.v = v
        self.time = time
        super().__init__(f"link {u}->{v} is failed at t={time:g}")


class DeadlockError(SimulationError):
    """All ranks are blocked and no events remain: the SPMD program hung.

    ``blocked`` maps each blocked rank to a one-line description (multiple
    blocked tasks of the same rank are joined with ``"; "``);
    ``blocked_tasks`` maps each rank to the full list of its blocked
    sub-task descriptions, so a rank whose ``ctx.parallel`` children are
    stuck on different receives reports *every* stuck task, not just one.
    ``failed_ranks`` lists fail-stopped ranks (from a fault plan) that other
    ranks may be waiting on.
    """

    def __init__(
        self,
        blocked: dict[int, str | list[str]],
        failed_ranks: tuple[int, ...] = (),
    ):
        self.blocked_tasks: dict[int, list[str]] = {
            r: list(v) if isinstance(v, (list, tuple)) else [v]
            for r, v in blocked.items()
        }
        self.blocked: dict[int, str] = {
            r: "; ".join(v) for r, v in self.blocked_tasks.items()
        }
        self.failed_ranks = tuple(failed_ranks)
        detail = ", ".join(
            f"rank {r}: {w}" for r, w in sorted(self.blocked.items())[:16]
        )
        more = "" if len(blocked) <= 16 else f" (+{len(blocked) - 16} more)"
        failed = (
            f"; fail-stopped ranks: {list(self.failed_ranks)}"
            if self.failed_ranks
            else ""
        )
        super().__init__(
            f"deadlock: {len(blocked)} rank(s) blocked — {detail}{more}{failed}"
        )


class LivelockError(SimulationError):
    """The simulation exceeded its watchdog caps without finishing.

    Unlike :class:`DeadlockError` (no events remain), a livelock keeps
    generating events — e.g. an unbounded retransmission loop.  The error
    carries a per-rank progress snapshot taken when the cap tripped.

    Attributes
    ----------
    reason:
        Which cap tripped (``"max_events"`` or ``"max_virtual_time"``).
    events_processed:
        Number of engine events handled so far.
    virtual_time:
        Virtual time of the event that tripped the cap.
    progress:
        ``{rank: description}`` snapshot of each unfinished rank's state.
    """

    def __init__(
        self,
        reason: str,
        events_processed: int,
        virtual_time: float,
        progress: dict[int, str],
    ):
        self.reason = reason
        self.events_processed = events_processed
        self.virtual_time = virtual_time
        self.progress = dict(progress)
        lines = ", ".join(
            f"rank {r}: {p}" for r, p in sorted(progress.items())[:8]
        )
        more = "" if len(progress) <= 8 else f" (+{len(progress) - 8} more)"
        super().__init__(
            f"livelock: {reason} cap exceeded after {events_processed} events "
            f"at t={virtual_time:g} — {lines}{more}"
        )


class CommunicatorError(ReproError):
    """Misuse of a communicator (rank out of range, self-send, etc.)."""


class CommTimeoutError(CommunicatorError):
    """A timed receive (or reliable delivery) gave up waiting.

    Raised by ``ctx.recv(..., timeout=...)`` when no matching message
    arrives within the window, and by
    :class:`~repro.mpi.reliable.ReliableContext` when retransmission
    retries are exhausted.
    """

    def __init__(self, rank: int, src: int, tag: int, timeout: float, detail: str = ""):
        self.rank = rank
        self.src = src
        self.tag = tag
        self.timeout = timeout
        src_s = "ANY" if src == -1 else str(src)
        tag_s = "ANY" if tag == -1 else str(tag)
        extra = f" ({detail})" if detail else ""
        super().__init__(
            f"rank {rank}: receive from src={src_s} tag={tag_s} timed out "
            f"after {timeout:g} time units{extra}"
        )


class CorruptionError(CommunicatorError):
    """Silent data corruption persisted past every correction attempt.

    Raised by :class:`~repro.mpi.integrity.IntegrityContext` when the
    receiver's CRC check keeps rejecting retransmitted copies of a message
    (the retry cap is exhausted), and by
    :class:`~repro.algorithms.abft.ABFTMatmul` when the checksum residuals
    flag corruption the row/column relations cannot locate and no fallback
    is allowed.  The distinction from :class:`CommTimeoutError` matters:
    a timeout means *silence* (maybe transient), a corruption error means
    the channel or a compute unit is actively mangling data.
    """

    def __init__(
        self,
        rank: int = -1,
        peer: int = -1,
        tag: int = -1,
        attempts: int = 0,
        detail: str = "",
    ):
        self.rank = rank
        self.peer = peer
        self.tag = tag
        self.attempts = attempts
        self.detail = detail
        where = (
            f"rank {rank}: transfer to rank {peer} tag={tag}"
            if rank >= 0
            else "corruption"
        )
        tries = f" after {attempts} attempts" if attempts else ""
        extra = f" ({detail})" if detail else ""
        super().__init__(f"{where} kept failing integrity checks{tries}{extra}")


class RankFailedError(CommunicatorError):
    """A peer rank has fail-stopped (confirmed by the failure detector).

    Raised instead of the generic :class:`CommTimeoutError` when silence
    from a peer is *probed* and the peer turns out to be dead — the
    distinction matters because a fail-stop is permanent (recovery must
    regroup or reconstruct) while a timeout may be transient (retry).

    Attributes
    ----------
    rank:
        The detecting rank.
    peer:
        The fail-stopped rank.
    time:
        Virtual time of detection (when known).
    """

    def __init__(
        self, rank: int, peer: int, time: float | None = None, detail: str = ""
    ):
        self.rank = rank
        self.peer = peer
        self.time = time
        self.detail = detail
        when = "" if time is None else f" (detected at t={time:g})"
        extra = f": {detail}" if detail else ""
        super().__init__(
            f"rank {rank}: peer rank {peer} has fail-stopped{when}{extra}"
        )


class DistributionError(ReproError):
    """A matrix distribution does not fit the grid or matrix shape."""


class AlgorithmError(ReproError):
    """Algorithm-level failures (bad configuration, internal invariant)."""


class NotApplicableError(AlgorithmError):
    """The algorithm's applicability condition (Table 3) is not met.

    For example Cannon requires ``p <= n**2`` and the 3D algorithms require
    ``p`` to be a power of eight with ``p <= n**(3/2)``.
    """


class ModelError(ReproError):
    """Analytic cost-model misuse (e.g. evaluating outside a model's domain)."""


class ServiceError(ReproError):
    """Failures in the durable sweep-execution service layer."""


class ServiceOverloadError(ServiceError):
    """The service shed a request instead of queueing it unboundedly.

    Raised by the admission controller when the pending-job queue is full
    or a tenant's token bucket is empty.  ``retry_after`` is the caller's
    hint: seconds to wait before the request would plausibly be admitted.
    Shedding is deliberate — the alternative is unbounded memory growth
    and eventual collapse under a burst.
    """

    def __init__(self, reason: str, retry_after: float, tenant: str = "default"):
        self.reason = reason
        self.retry_after = float(retry_after)
        self.tenant = tenant
        super().__init__(
            f"service overloaded ({reason}); tenant {tenant!r} should retry "
            f"after {self.retry_after:.2f}s"
        )


class JournalCorruptError(ServiceError):
    """The write-ahead journal is corrupt somewhere other than its tail.

    A torn *final* record is expected after a crash and is dropped with a
    warning; a CRC mismatch or unparsable record in the *middle* of the
    journal means history itself is untrustworthy, so replay fails loudly
    instead of resuming from a lie.  Carries the segment file and
    1-based line number of the offending record.
    """

    def __init__(self, segment: str, line: int, detail: str = ""):
        self.segment = segment
        self.line = line
        extra = f": {detail}" if detail else ""
        super().__init__(
            f"journal corrupt at {segment}:{line} (not the tail — refusing "
            f"to resume from damaged history){extra}"
        )
