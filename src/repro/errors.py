"""Exception hierarchy for the repro package.

Everything raised deliberately by this library derives from
:class:`ReproError` so callers can catch library failures without also
swallowing programming errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TopologyError",
    "SimulationError",
    "DeadlockError",
    "CommunicatorError",
    "DistributionError",
    "AlgorithmError",
    "NotApplicableError",
    "ModelError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TopologyError(ReproError):
    """Invalid hypercube/grid construction or addressing."""


class SimulationError(ReproError):
    """Errors in the discrete-event engine (bad ops, misuse of handles)."""


class DeadlockError(SimulationError):
    """All ranks are blocked and no events remain: the SPMD program hung.

    Carries the set of blocked ranks and what each is waiting on, which is
    usually enough to spot a mismatched send/recv pair.
    """

    def __init__(self, blocked: dict[int, str]):
        self.blocked = dict(blocked)
        detail = ", ".join(f"rank {r}: {w}" for r, w in sorted(blocked.items())[:16])
        more = "" if len(blocked) <= 16 else f" (+{len(blocked) - 16} more)"
        super().__init__(f"deadlock: {len(blocked)} rank(s) blocked — {detail}{more}")


class CommunicatorError(ReproError):
    """Misuse of a communicator (rank out of range, self-send, etc.)."""


class DistributionError(ReproError):
    """A matrix distribution does not fit the grid or matrix shape."""


class AlgorithmError(ReproError):
    """Algorithm-level failures (bad configuration, internal invariant)."""


class NotApplicableError(AlgorithmError):
    """The algorithm's applicability condition (Table 3) is not met.

    For example Cannon requires ``p <= n**2`` and the 3D algorithms require
    ``p`` to be a power of eight with ``p <= n**(3/2)``.
    """


class ModelError(ReproError):
    """Analytic cost-model misuse (e.g. evaluating outside a model's domain)."""
