"""The 2-ary n-cube (binary hypercube) and its subcubes.

A *d*-dimensional hypercube has ``2**d`` nodes addressed ``0 .. 2**d - 1``;
two nodes are neighbours iff their addresses differ in exactly one bit.  A
*subcube* is the set of nodes obtained by fixing some address bits and
letting the remaining ``k`` bits range freely — itself a k-cube.  The
algorithms in the paper rely on the fact that every row, column, or line of
a Gray-code-embedded grid is such a subcube, so collective operations within
a row/column/line enjoy full hypercube connectivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import TopologyError
from repro.util.bits import hamming_distance, ilog2, is_power_of_two

__all__ = ["Hypercube", "Subcube"]


class Hypercube:
    """A binary hypercube of ``2**dimension`` nodes.

    Parameters
    ----------
    dimension:
        Number of cube dimensions (``log2`` of the node count).  ``0`` is
        allowed and denotes the single-node "cube".
    """

    __slots__ = ("_dimension",)

    def __init__(self, dimension: int):
        if dimension < 0:
            raise TopologyError(f"hypercube dimension must be >= 0, got {dimension}")
        self._dimension = int(dimension)

    @classmethod
    def with_nodes(cls, num_nodes: int) -> "Hypercube":
        """Build the hypercube with exactly ``num_nodes`` (a power of two)."""
        if not is_power_of_two(num_nodes):
            raise TopologyError(
                f"hypercube node count must be a power of two, got {num_nodes}"
            )
        return cls(ilog2(num_nodes))

    @property
    def dimension(self) -> int:
        """Number of dimensions (links per node)."""
        return self._dimension

    @property
    def num_nodes(self) -> int:
        return 1 << self._dimension

    @property
    def num_links(self) -> int:
        """Number of undirected links: ``d * 2**(d-1)``."""
        return self._dimension << (self._dimension - 1) if self._dimension else 0

    def nodes(self) -> range:
        """Iterable over all node addresses."""
        return range(self.num_nodes)

    def contains(self, node: int) -> bool:
        """True iff ``node`` is a valid address in this cube."""
        return 0 <= node < self.num_nodes

    def _check_node(self, node: int) -> None:
        if not self.contains(node):
            raise TopologyError(
                f"node {node} outside {self.num_nodes}-node hypercube"
            )

    def neighbor(self, node: int, dim: int) -> int:
        """The neighbour of ``node`` across dimension ``dim``."""
        self._check_node(node)
        if not 0 <= dim < self._dimension:
            raise TopologyError(
                f"dimension {dim} out of range for a {self._dimension}-cube"
            )
        return node ^ (1 << dim)

    def neighbors(self, node: int) -> list[int]:
        """All ``dimension`` neighbours of ``node``."""
        self._check_node(node)
        return [node ^ (1 << d) for d in range(self._dimension)]

    def are_neighbors(self, a: int, b: int) -> bool:
        """True iff ``a`` and ``b`` share a hypercube link."""
        self._check_node(a)
        self._check_node(b)
        return hamming_distance(a, b) == 1

    def distance(self, a: int, b: int) -> int:
        """Shortest-path (Hamming) distance between two nodes."""
        self._check_node(a)
        self._check_node(b)
        return hamming_distance(a, b)

    def link_dimension(self, a: int, b: int) -> int:
        """The dimension of the link joining neighbours ``a`` and ``b``."""
        if not self.are_neighbors(a, b):
            raise TopologyError(f"nodes {a} and {b} are not hypercube neighbours")
        return ilog2(a ^ b)

    def route_hops(self, src: int, dst: int) -> list[tuple[int, int]]:
        """Store-and-forward route between any two nodes: the e-cube path.

        Part of the duck-typed topology surface the simulator engine uses
        (shared with :class:`repro.topology.torus.Torus2D`).
        """
        self._check_node(src)
        self._check_node(dst)
        from repro.topology.routing import ecube_hops

        return ecube_hops(src, dst)

    def subcube(self, free_dims: tuple[int, ...] | list[int], anchor: int) -> "Subcube":
        """The subcube spanned by ``free_dims`` through node ``anchor``."""
        return Subcube(self, tuple(free_dims), anchor)

    def split(self, split_dims: tuple[int, ...] | list[int]) -> list["Subcube"]:
        """Partition the cube into ``2**len(split_dims)`` disjoint subcubes.

        The returned subcubes have the *other* dimensions free; subcube ``i``
        fixes the split dimensions to the bits of ``i``.
        """
        split_dims = tuple(split_dims)
        for d in split_dims:
            if not 0 <= d < self._dimension:
                raise TopologyError(f"split dimension {d} out of range")
        if len(set(split_dims)) != len(split_dims):
            raise TopologyError(f"duplicate split dimensions in {split_dims}")
        free = tuple(d for d in range(self._dimension) if d not in split_dims)
        cubes = []
        for i in range(1 << len(split_dims)):
            anchor = 0
            for k, d in enumerate(split_dims):
                if (i >> k) & 1:
                    anchor |= 1 << d
            cubes.append(Subcube(self, free, anchor))
        return cubes

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Hypercube) and other._dimension == self._dimension

    def __hash__(self) -> int:
        return hash(("Hypercube", self._dimension))

    def __repr__(self) -> str:
        return f"Hypercube(dimension={self._dimension})"


@dataclass(frozen=True)
class Subcube:
    """A subcube of a parent hypercube.

    ``free_dims`` are the dimensions allowed to vary; all other address bits
    are frozen to the corresponding bits of ``anchor``.  Members are ordered
    by the integer formed by their free-dimension bits, which makes a
    subcube usable as a little hypercube in its own right (member index ⇄
    node address conversions are :meth:`member` and :meth:`index_of`).
    """

    parent: Hypercube
    free_dims: tuple[int, ...]
    anchor: int

    def __post_init__(self):
        d = self.parent.dimension
        seen = set()
        for dim in self.free_dims:
            if not 0 <= dim < d:
                raise TopologyError(f"free dimension {dim} out of range for {d}-cube")
            if dim in seen:
                raise TopologyError(f"duplicate free dimension {dim}")
            seen.add(dim)
        self.parent._check_node(self.anchor)
        # Normalize the anchor: clear the free bits so equal subcubes compare equal.
        mask = 0
        for dim in self.free_dims:
            mask |= 1 << dim
        object.__setattr__(self, "anchor", self.anchor & ~mask)

    @property
    def dimension(self) -> int:
        return len(self.free_dims)

    @property
    def num_nodes(self) -> int:
        return 1 << len(self.free_dims)

    def member(self, index: int) -> int:
        """Parent-node address of the ``index``-th member."""
        if not 0 <= index < self.num_nodes:
            raise TopologyError(
                f"member index {index} out of range for {self.num_nodes}-node subcube"
            )
        node = self.anchor
        for k, dim in enumerate(self.free_dims):
            if (index >> k) & 1:
                node |= 1 << dim
        return node

    def index_of(self, node: int) -> int:
        """Member index of a parent node (raises if not a member)."""
        if not self.contains(node):
            raise TopologyError(f"node {node} not in subcube {self}")
        idx = 0
        for k, dim in enumerate(self.free_dims):
            if (node >> dim) & 1:
                idx |= 1 << k
        return idx

    def contains(self, node: int) -> bool:
        if not self.parent.contains(node):
            return False
        mask = 0
        for dim in self.free_dims:
            mask |= 1 << dim
        return (node & ~mask) == self.anchor

    def members(self) -> Iterator[int]:
        for i in range(self.num_nodes):
            yield self.member(i)

    def __repr__(self) -> str:
        return (
            f"Subcube(free_dims={self.free_dims}, anchor={self.anchor:#b}, "
            f"parent_dim={self.parent.dimension})"
        )
