"""Dimension-ordered (e-cube) routing on the hypercube.

Messages between non-neighbouring nodes are forwarded store-and-forward
along the e-cube path: correct the differing address bits in ascending
dimension order.  The path length equals the Hamming distance, so a
point-to-point transfer of ``m`` words over distance ``h`` costs
``h * (t_s + t_w * m)`` — exactly the store-and-forward accounting the paper
uses (e.g. the ``log ∛p (t_s + t_w n²/p^{2/3})`` first phase of 3DD).

E-cube routing is deterministic and deadlock-free; determinism matters here
because the simulator must produce identical timings on every run.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.util.bits import set_bits

__all__ = ["ecube_path", "ecube_next_hop", "ecube_hops"]


def ecube_next_hop(current: int, dest: int) -> int:
    """The next node on the e-cube path from ``current`` to ``dest``."""
    diff = current ^ dest
    if diff == 0:
        raise TopologyError(f"no next hop: already at destination {dest}")
    lowest = diff & -diff
    return current ^ lowest


def ecube_path(src: int, dest: int) -> list[int]:
    """All nodes on the e-cube path from ``src`` to ``dest``, inclusive."""
    if src < 0 or dest < 0:
        raise TopologyError("node addresses must be non-negative")
    path = [src]
    cur = src
    while cur != dest:
        cur = ecube_next_hop(cur, dest)
        path.append(cur)
    return path


def ecube_hops(src: int, dest: int) -> list[tuple[int, int]]:
    """The (from, to) hop pairs of the e-cube path; empty for ``src == dest``."""
    nodes = ecube_path(src, dest)
    return list(zip(nodes[:-1], nodes[1:]))


def ecube_dimensions(src: int, dest: int) -> tuple[int, ...]:
    """Dimensions crossed by the e-cube route, in traversal order."""
    return set_bits(src ^ dest)
