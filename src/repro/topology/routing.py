"""Dimension-ordered (e-cube) routing on the hypercube, healthy and faulty.

Messages between non-neighbouring nodes are forwarded store-and-forward
along the e-cube path: correct the differing address bits in ascending
dimension order.  The path length equals the Hamming distance, so a
point-to-point transfer of ``m`` words over distance ``h`` costs
``h * (t_s + t_w * m)`` — exactly the store-and-forward accounting the paper
uses (e.g. the ``log ∛p (t_s + t_w n²/p^{2/3})`` first phase of 3DD).

E-cube routing is deterministic and deadlock-free; determinism matters here
because the simulator must produce identical timings on every run.

Fault tolerance
---------------
When a :class:`~repro.sim.faults.FaultPlan` kills links, the e-cube next
hop may be dead.  :func:`fault_tolerant_hops` then detours
deterministically: it first tries the *alternative dimension orderings* —
among the address bits still to correct, take the lowest whose link is
alive (every such step still shortens the path, so the route stays
minimal whenever a minimal surviving route exists along distance-reducing
links).  If every profitable link at some node is dead, it falls back to a
breadth-first search over the surviving graph (neighbours visited in
ascending dimension order, so the result is unique and reproducible) and
raises :class:`~repro.errors.UnreachableError` when the surviving graph
disconnects source from destination.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable

from repro.errors import TopologyError, UnreachableError
from repro.util.bits import set_bits

__all__ = [
    "ecube_path",
    "ecube_next_hop",
    "ecube_hops",
    "ecube_next_hop_avoiding",
    "fault_tolerant_path",
    "fault_tolerant_hops",
    "cheapest_path",
    "cheapest_hops",
    "RouteCache",
]

LinkPredicate = Callable[[int, int], bool]
LinkWeight = Callable[[int, int], float]


def ecube_next_hop(current: int, dest: int) -> int:
    """The next node on the e-cube path from ``current`` to ``dest``."""
    diff = current ^ dest
    if diff == 0:
        raise TopologyError(f"no next hop: already at destination {dest}")
    lowest = diff & -diff
    return current ^ lowest


def ecube_path(src: int, dest: int) -> list[int]:
    """All nodes on the e-cube path from ``src`` to ``dest``, inclusive."""
    if src < 0 or dest < 0:
        raise TopologyError("node addresses must be non-negative")
    path = [src]
    cur = src
    while cur != dest:
        cur = ecube_next_hop(cur, dest)
        path.append(cur)
    return path


def ecube_hops(src: int, dest: int) -> list[tuple[int, int]]:
    """The (from, to) hop pairs of the e-cube path; empty for ``src == dest``."""
    nodes = ecube_path(src, dest)
    return list(zip(nodes[:-1], nodes[1:]))


def ecube_dimensions(src: int, dest: int) -> tuple[int, ...]:
    """Dimensions crossed by the e-cube route, in traversal order."""
    return set_bits(src ^ dest)


# ---------------------------------------------------------------------------
# Fault-tolerant routing
# ---------------------------------------------------------------------------


def ecube_next_hop_avoiding(
    current: int, dest: int, alive: LinkPredicate
) -> int | None:
    """The first distance-reducing next hop whose link is alive.

    Tries the differing address bits in ascending dimension order (the
    e-cube order first, then its deterministic alternatives).  Returns
    ``None`` when every profitable link out of ``current`` is dead — the
    caller must then detour through a non-minimal route.
    """
    diff = current ^ dest
    if diff == 0:
        raise TopologyError(f"no next hop: already at destination {dest}")
    for dim in set_bits(diff):
        nxt = current ^ (1 << dim)
        if alive(current, nxt):
            return nxt
    return None


def _bfs_path(topology, src: int, dest: int, alive: LinkPredicate) -> list[int] | None:
    """Deterministic shortest surviving path, or ``None`` if disconnected.

    Neighbours are expanded in the topology's order (ascending dimension
    for hypercubes), so ties always break the same way.
    """
    if src == dest:
        return [src]
    parent: dict[int, int] = {src: src}
    queue = deque([src])
    while queue:
        node = queue.popleft()
        for nxt in topology.neighbors(node):
            if nxt in parent or not alive(node, nxt):
                continue
            parent[nxt] = node
            if nxt == dest:
                path = [dest]
                while path[-1] != src:
                    path.append(parent[path[-1]])
                path.reverse()
                return path
            queue.append(nxt)
    return None


def fault_tolerant_path(
    topology, src: int, dest: int, alive: LinkPredicate
) -> list[int]:
    """All nodes on a deterministic surviving route ``src -> dest``.

    Strategy: greedy alternative-dimension-order routing (hypercubes only;
    each step corrects one address bit over a live link), with a BFS detour
    over the surviving graph when the greedy router is stuck or the
    topology is not a hypercube.  Raises
    :class:`~repro.errors.UnreachableError` when no surviving route exists.
    """
    if src == dest:
        return [src]
    # Fast path: the topology's native route, untouched when fully alive,
    # so enabling a fault plan never perturbs healthy routes.
    native = topology.route_hops(src, dest)
    if all(alive(u, v) for u, v in native):
        return [src] + [v for _u, v in native]
    if hasattr(topology, "link_dimension"):  # hypercube-shaped address space
        path = [src]
        cur = src
        while cur != dest:
            nxt = ecube_next_hop_avoiding(cur, dest, alive)
            if nxt is None:
                path = None
                break
            path.append(nxt)
            cur = nxt
        if path is not None:
            return path
    path = _bfs_path(topology, src, dest, alive)
    if path is None:
        raise UnreachableError(src, dest)
    return path


def fault_tolerant_hops(
    topology, src: int, dest: int, alive: LinkPredicate
) -> list[tuple[int, int]]:
    """The (from, to) hop pairs of :func:`fault_tolerant_path`."""
    nodes = fault_tolerant_path(topology, src, dest, alive)
    return list(zip(nodes[:-1], nodes[1:]))


# ---------------------------------------------------------------------------
# Cost-aware routing (heterogeneous / degraded networks)
# ---------------------------------------------------------------------------


def cheapest_path(
    topology,
    src: int,
    dest: int,
    weight: LinkWeight,
    alive: LinkPredicate | None = None,
) -> list[int]:
    """Deterministic minimum-cost route ``src -> dest`` under ``weight``.

    Dijkstra over the (optionally ``alive``-filtered) topology with fully
    deterministic tie-breaking: heap entries order by ``(distance, node)``
    so equal-cost frontiers expand lowest-node-first, neighbours are
    visited in the topology's order (ascending dimension on hypercubes),
    and a node's parent only changes on a *strict* cost improvement — the
    same inputs always yield the same path, which the simulator requires.

    ``weight(u, v)`` must return the cost of traversing the directional
    channel ``u -> v`` (the scenario layer passes the degraded cost of a
    one-word hop, ``ts_factor·t_s + tw_factor·t_w``).  Raises
    :class:`~repro.errors.UnreachableError` when ``alive`` disconnects the
    pair.
    """
    if src == dest:
        return [src]
    dist: dict[int, float] = {src: 0.0}
    parent: dict[int, int] = {src: src}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, src)]
    while heap:
        d, node = heapq.heappop(heap)
        if node in settled:
            continue
        if node == dest:
            break
        settled.add(node)
        for nxt in topology.neighbors(node):
            if nxt in settled:
                continue
            if alive is not None and not alive(node, nxt):
                continue
            nd = d + weight(node, nxt)
            if nxt not in dist or nd < dist[nxt]:
                dist[nxt] = nd
                parent[nxt] = node
                heapq.heappush(heap, (nd, nxt))
    if dest not in parent:
        raise UnreachableError(src, dest)
    path = [dest]
    while path[-1] != src:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def cheapest_hops(
    topology,
    src: int,
    dest: int,
    weight: LinkWeight,
    alive: LinkPredicate | None = None,
) -> list[tuple[int, int]]:
    """The (from, to) hop pairs of :func:`cheapest_path`."""
    nodes = cheapest_path(topology, src, dest, weight, alive)
    return list(zip(nodes[:-1], nodes[1:]))


# ---------------------------------------------------------------------------
# Route caching
# ---------------------------------------------------------------------------


class RouteCache:
    """Memoized routes for one topology: the engine's per-message fast path.

    Routing is deterministic, so the hop list for a ``(src, dst)`` pair
    never changes on a healthy machine — yet the engine used to recompute
    the e-cube walk for *every* message.  :meth:`healthy` computes each
    pair once and returns an immutable tuple shared by all transfers.

    Under a fault plan the dead-link set is a piecewise-constant function
    of time: it only changes at fault window edges and node fail-stop
    times.  :meth:`detour` therefore memoizes fault-tolerant routes per
    ``(src, dst, plan-epoch)``, where the *epoch* (see
    :meth:`repro.sim.faults.FaultState.route_epoch`) counts how many such
    edges lie at or before the current time.  Within an epoch the alive
    predicate is constant, so the cached detour is exactly what
    :func:`fault_tolerant_hops` would have recomputed.

    The cache is scoped to whoever owns it (the engine builds one per
    run), so no staleness can leak between machines or fault plans.

    Under a :class:`~repro.sim.scenario.NetworkScenario` the per-link cost
    map is likewise piecewise-constant in time (cost windows open and close
    at fixed edges — see :meth:`repro.sim.scenario.NetworkScenario.epoch`),
    so :meth:`cheapest` memoizes cost-aware routes per
    ``(src, dst, epoch-key)`` where the caller's epoch key combines every
    epoch counter the weight/alive functions depend on — the scenario
    epoch alone on a healthy machine, the ``(fault-epoch, scenario-epoch)``
    pair when a fault plan is active too, so either kind of window edge
    invalidates the cached route.
    """

    __slots__ = ("topology", "_healthy", "_detours", "_cheapest")

    def __init__(self, topology):
        self.topology = topology
        self._healthy: dict[tuple[int, int], tuple[tuple[int, int], ...]] = {}
        self._detours: dict[
            tuple[int, int, int], tuple[tuple[int, int], ...]
        ] = {}
        self._cheapest: dict[tuple, tuple[tuple[int, int], ...]] = {}

    def healthy(self, src: int, dst: int) -> tuple[tuple[int, int], ...]:
        """The topology's native route ``src -> dst`` (cached, immutable)."""
        key = (src, dst)
        hops = self._healthy.get(key)
        if hops is None:
            hops = tuple(self.topology.route_hops(src, dst))
            self._healthy[key] = hops
        return hops

    def detour(
        self, src: int, dst: int, alive: LinkPredicate, epoch: int
    ) -> tuple[tuple[int, int], ...]:
        """A surviving route ``src -> dst`` under ``alive``, cached per epoch.

        ``alive`` must be constant within ``epoch`` (the caller derives the
        epoch from the same fault plan that backs the predicate).  Raises
        :class:`~repro.errors.UnreachableError`, uncached, when the
        surviving graph disconnects the pair.
        """
        key = (src, dst, epoch)
        hops = self._detours.get(key)
        if hops is None:
            hops = tuple(fault_tolerant_hops(self.topology, src, dst, alive))
            self._detours[key] = hops
        return hops

    def cheapest(
        self,
        src: int,
        dst: int,
        weight: LinkWeight,
        epoch,
        alive: LinkPredicate | None = None,
    ) -> tuple[tuple[int, int], ...]:
        """The minimum-cost route ``src -> dst``, cached per epoch key.

        ``weight`` (and ``alive``, when given) must be constant for the
        lifetime of ``epoch`` — the caller derives the key from the same
        scenario/fault plan that backs the functions, combining both epoch
        counters when both layers are active.  Raises
        :class:`~repro.errors.UnreachableError`, uncached, when ``alive``
        disconnects the pair.
        """
        key = (src, dst, epoch)
        hops = self._cheapest.get(key)
        if hops is None:
            hops = tuple(cheapest_hops(self.topology, src, dst, weight, alive))
            self._cheapest[key] = hops
        return hops
