"""Hypercube topology: addressing, subcubes, grid embeddings, routing."""

from repro.topology.hypercube import Hypercube, Subcube
from repro.topology.embedding import Grid2DEmbedding, Grid3DEmbedding, RingEmbedding
from repro.topology.routing import ecube_path, ecube_next_hop

__all__ = [
    "Hypercube",
    "Subcube",
    "RingEmbedding",
    "Grid2DEmbedding",
    "Grid3DEmbedding",
    "ecube_path",
    "ecube_next_hop",
]
