"""Gray-code embeddings of rings and grids into hypercubes.

All the paper's algorithms run on a *virtual* 1-D ring, 2-D mesh, or 3-D
mesh of processors laid over the physical hypercube.  The standard
binary-reflected Gray-code embedding maps grid coordinate ``x`` to cube bits
``gray_code(x)``, so that adjacent grid positions are cube neighbours
(dilation 1) and — crucially for the collective-communication costs — every
grid row/column/line occupies a full subcube of the hypercube.

Dimension-bit layout
--------------------
For a 2-D ``q × q`` grid on a ``2k``-cube (``q = 2**k``) we assign the low
``k`` cube dimensions to the grid's *column* coordinate ``j`` and the high
``k`` dimensions to the *row* coordinate ``i``.  For a 3-D ``q × q × q``
grid on a ``3k``-cube the low bits hold ``z`` (k), then ``y`` (k), then
``x`` (k).  Axis order in coordinates is always ``(row, col)`` for 2-D and
``(x, y, z)`` for 3-D, matching the paper's ``p_{i,j}`` / ``p_{i,j,k}``
subscripts.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Iterable

from repro.errors import TopologyError
from repro.topology.hypercube import Hypercube, Subcube
from repro.util.bits import gray_code, gray_code_inverse, ilog2, is_power_of_two

__all__ = [
    "RingEmbedding",
    "Grid2DEmbedding",
    "Grid3DEmbedding",
    "Grid3DRectEmbedding",
    "SubcubeGrid2D",
    "largest_live_subcube",
]

# line_members memo shared by every embedding instance of the same shape:
# a grid line's node list depends only on the grid signature, the axis, and
# the fixed coordinates, and every rank on the line asks for the same list
# (p·3 asks for p·3/q distinct lines on a 3-D grid).  Values are tuples;
# the public methods return fresh lists.
_line_cache: dict[tuple, tuple[int, ...]] = {}


def largest_live_subcube(
    cube: Hypercube,
    alive: Iterable[int],
    *,
    require: Callable[[Subcube], bool] | None = None,
) -> Subcube | None:
    """Largest subcube of ``cube`` whose members are all in ``alive``.

    Used by communicator recovery: after fail-stops, the survivors must be
    regrouped onto a machine that is still a hypercube so the paper's
    Gray-code embeddings keep their dilation-1 guarantee.  The search is a
    pure function of its arguments and enumerates candidates in a fixed
    order — descending dimension, then lexicographic free-dimension sets,
    then ascending anchor — so every surviving rank computes the *same*
    subcube from the same alive-set without further communication.

    ``require`` optionally rejects candidates (e.g. "dimension divisible
    by 3" for the 3-D algorithms); the first acceptable candidate wins.
    Returns ``None`` when no alive node forms an acceptable subcube.
    """
    alive_set = frozenset(alive)
    for node in alive_set:
        cube._check_node(node)
    k = cube.dimension
    all_dims = range(k)
    for d in range(k, -1, -1):
        for free_dims in combinations(all_dims, d):
            free_mask = 0
            for dim in free_dims:
                free_mask |= 1 << dim
            fixed_dims = [dim for dim in all_dims if dim not in free_dims]
            for bits in range(1 << (k - d)):
                anchor = 0
                for pos, dim in enumerate(fixed_dims):
                    if bits >> pos & 1:
                        anchor |= 1 << dim
                sub = Subcube(cube, free_dims, anchor)
                if all(m in alive_set for m in sub.members()):
                    if require is None or require(sub):
                        return sub
    return None


class RingEmbedding:
    """A ``2**k``-node ring embedded into a ``k``-cube with dilation 1."""

    __slots__ = ("cube", "_k")

    def __init__(self, cube: Hypercube):
        self.cube = cube
        self._k = cube.dimension

    @property
    def length(self) -> int:
        return self.cube.num_nodes

    def node_at(self, position: int) -> int:
        """Cube node of the ring position (positions wrap modulo length)."""
        return gray_code(position % self.length)

    def position_of(self, node: int) -> int:
        self.cube._check_node(node)
        return gray_code_inverse(node)

    def shift(self, position: int, by: int) -> int:
        """Cube node that is ``by`` ring-steps after ``position``."""
        return self.node_at(position + by)


def _check_side(q: int, what: str) -> int:
    if not is_power_of_two(q):
        raise TopologyError(f"{what} side must be a power of two, got {q}")
    return ilog2(q)


class Grid2DEmbedding:
    """A ``rows × cols`` grid embedded in a hypercube via Gray codes.

    ``rows`` and ``cols`` must be powers of two and their product must equal
    the cube size.  Each row and each column of the grid is a subcube, so a
    row-wise collective among ``cols`` processors runs on a ``log cols``-cube.
    """

    __slots__ = ("cube", "rows", "cols", "_kr", "_kc")

    def __init__(self, cube: Hypercube, rows: int, cols: int):
        self._kr = _check_side(rows, "grid row")
        self._kc = _check_side(cols, "grid column")
        if self._kr + self._kc != cube.dimension:
            raise TopologyError(
                f"{rows}x{cols} grid does not tile a {cube.num_nodes}-node cube"
            )
        self.cube = cube
        self.rows = rows
        self.cols = cols

    @classmethod
    def square(cls, cube: Hypercube) -> "Grid2DEmbedding":
        """The ``√p × √p`` embedding (cube dimension must be even)."""
        if cube.dimension % 2:
            raise TopologyError(
                f"square 2-D grid needs an even cube dimension, got {cube.dimension}"
            )
        q = 1 << (cube.dimension // 2)
        return cls(cube, q, q)

    def node_at(self, row: int, col: int) -> int:
        """Cube node of grid position ``(row, col)`` (coordinates wrap)."""
        row %= self.rows
        col %= self.cols
        return (gray_code(row) << self._kc) | gray_code(col)

    def coords_of(self, node: int) -> tuple[int, int]:
        self.cube._check_node(node)
        col_bits = node & ((1 << self._kc) - 1)
        row_bits = node >> self._kc
        return gray_code_inverse(row_bits), gray_code_inverse(col_bits)

    def row_subcube(self, row: int) -> Subcube:
        """The subcube holding grid row ``row`` (column coordinate free)."""
        anchor = self.node_at(row, 0)
        return Subcube(self.cube, tuple(range(self._kc)), anchor)

    def col_subcube(self, col: int) -> Subcube:
        """The subcube holding grid column ``col`` (row coordinate free)."""
        anchor = self.node_at(0, col)
        return Subcube(self.cube, tuple(range(self._kc, self._kc + self._kr)), anchor)

    def row_members(self, row: int) -> list[int]:
        """Cube nodes of row ``row`` ordered by column coordinate."""
        return [self.node_at(row, c) for c in range(self.cols)]

    def col_members(self, col: int) -> list[int]:
        return [self.node_at(r, col) for r in range(self.rows)]


class Grid3DRectEmbedding:
    """A rectangular ``sx × sy × sz`` grid on a hypercube, Gray-coded per axis.

    Generalizes :class:`Grid3DEmbedding` to unequal power-of-two sides —
    needed by the rectangular 3D All variant sketched at the end of §4.2.2,
    which trades the cubic ``∛p³`` grid for ``∜p × √p × ∜p`` to reach more
    processors.  Axis order matches the paper's ``p_{i,j,k}``: ``(x, y, z)``.
    """

    __slots__ = ("cube", "sx", "sy", "sz", "_kx", "_ky", "_kz")

    def __init__(self, cube: Hypercube, sx: int, sy: int, sz: int):
        self._kx = _check_side(sx, "grid x")
        self._ky = _check_side(sy, "grid y")
        self._kz = _check_side(sz, "grid z")
        if self._kx + self._ky + self._kz != cube.dimension:
            raise TopologyError(
                f"{sx}x{sy}x{sz} grid does not tile a {cube.num_nodes}-node cube"
            )
        self.cube = cube
        self.sx, self.sy, self.sz = sx, sy, sz

    def node_at(self, x: int, y: int, z: int) -> int:
        x %= self.sx
        y %= self.sy
        z %= self.sz
        return (
            (gray_code(x) << (self._ky + self._kz))
            | (gray_code(y) << self._kz)
            | gray_code(z)
        )

    def coords_of(self, node: int) -> tuple[int, int, int]:
        self.cube._check_node(node)
        z_bits = node & ((1 << self._kz) - 1)
        y_bits = (node >> self._kz) & ((1 << self._ky) - 1)
        x_bits = node >> (self._ky + self._kz)
        return (
            gray_code_inverse(x_bits),
            gray_code_inverse(y_bits),
            gray_code_inverse(z_bits),
        )

    def line_members(self, axis: str, x: int = 0, y: int = 0, z: int = 0) -> list[int]:
        sig = ("rect", self.cube.dimension, self._kx, self._ky, self._kz)
        if axis == "x":
            key = sig + ("x", y % self.sy, z % self.sz)
        elif axis == "y":
            key = sig + ("y", x % self.sx, z % self.sz)
        elif axis == "z":
            key = sig + ("z", x % self.sx, y % self.sy)
        else:
            raise TopologyError(f"axis must be 'x', 'y' or 'z', got {axis!r}")
        cached = _line_cache.get(key)
        if cached is None:
            if axis == "x":
                cached = tuple(self.node_at(c, y, z) for c in range(self.sx))
            elif axis == "y":
                cached = tuple(self.node_at(x, c, z) for c in range(self.sy))
            else:
                cached = tuple(self.node_at(x, y, c) for c in range(self.sz))
            _line_cache[key] = cached
        return list(cached)


class SubcubeGrid2D:
    """A square 2-D grid Gray-embedded into a *subcube* of a larger machine.

    Berntsen's algorithm runs Cannon inside each of the ``∛p`` subcubes of
    ``p^{2/3}`` processors; this helper lays a ``p^{1/3} × p^{1/3}`` grid on
    such a subcube.  Grid coordinate ``(row, col)`` maps to the subcube
    member whose member-index bits are ``gray(row) << k | gray(col)``, so
    rows and columns are themselves sub-subcubes with dilation-1 rings.
    """

    __slots__ = ("subcube", "side", "_k")

    def __init__(self, subcube: Subcube):
        if subcube.dimension % 2:
            raise TopologyError(
                f"square grid needs an even subcube dimension, got {subcube.dimension}"
            )
        self.subcube = subcube
        self._k = subcube.dimension // 2
        self.side = 1 << self._k

    def node_at(self, row: int, col: int) -> int:
        row %= self.side
        col %= self.side
        return self.subcube.member((gray_code(row) << self._k) | gray_code(col))

    def coords_of(self, node: int) -> tuple[int, int]:
        idx = self.subcube.index_of(node)
        col_bits = idx & ((1 << self._k) - 1)
        row_bits = idx >> self._k
        return gray_code_inverse(row_bits), gray_code_inverse(col_bits)

    def row_members(self, row: int) -> list[int]:
        return [self.node_at(row, c) for c in range(self.side)]

    def col_members(self, col: int) -> list[int]:
        return [self.node_at(r, col) for r in range(self.side)]


class Grid3DEmbedding:
    """A ``q × q × q`` grid on a ``3k``-cube (``q = 2**k``), Gray-coded per axis.

    Coordinates follow the paper's ``p_{i,j,k}`` convention: the first
    coordinate is ``x`` (= ``i``), the second ``y`` (= ``j``), the third
    ``z`` (= ``k``).  Lines along each axis are subcubes.
    """

    __slots__ = ("cube", "side", "_k")

    def __init__(self, cube: Hypercube):
        if cube.dimension % 3:
            raise TopologyError(
                f"3-D grid needs a cube dimension divisible by 3, got {cube.dimension}"
            )
        self.cube = cube
        self._k = cube.dimension // 3
        self.side = 1 << self._k

    def node_at(self, x: int, y: int, z: int) -> int:
        q = self.side
        x %= q
        y %= q
        z %= q
        k = self._k
        return (gray_code(x) << (2 * k)) | (gray_code(y) << k) | gray_code(z)

    def coords_of(self, node: int) -> tuple[int, int, int]:
        self.cube._check_node(node)
        k = self._k
        mask = (1 << k) - 1
        z_bits = node & mask
        y_bits = (node >> k) & mask
        x_bits = node >> (2 * k)
        return (
            gray_code_inverse(x_bits),
            gray_code_inverse(y_bits),
            gray_code_inverse(z_bits),
        )

    def _axis_dims(self, axis: str) -> tuple[int, ...]:
        k = self._k
        if axis == "z":
            return tuple(range(0, k))
        if axis == "y":
            return tuple(range(k, 2 * k))
        if axis == "x":
            return tuple(range(2 * k, 3 * k))
        raise TopologyError(f"axis must be 'x', 'y' or 'z', got {axis!r}")

    def line_subcube(self, axis: str, x: int = 0, y: int = 0, z: int = 0) -> Subcube:
        """Subcube of the grid line along ``axis`` through ``(x, y, z)``."""
        anchor = self.node_at(x, y, z)
        return Subcube(self.cube, self._axis_dims(axis), anchor)

    def line_members(self, axis: str, x: int = 0, y: int = 0, z: int = 0) -> list[int]:
        """Cube nodes along ``axis``, ordered by that grid coordinate."""
        q = self.side
        if axis == "x":
            key = ("3d", self.cube.dimension, "x", y % q, z % q)
        elif axis == "y":
            key = ("3d", self.cube.dimension, "y", x % q, z % q)
        elif axis == "z":
            key = ("3d", self.cube.dimension, "z", x % q, y % q)
        else:
            raise TopologyError(f"axis must be 'x', 'y' or 'z', got {axis!r}")
        cached = _line_cache.get(key)
        if cached is None:
            if axis == "x":
                cached = tuple(self.node_at(c, y, z) for c in range(q))
            elif axis == "y":
                cached = tuple(self.node_at(x, c, z) for c in range(q))
            else:
                cached = tuple(self.node_at(x, y, c) for c in range(q))
            _line_cache[key] = cached
        return list(cached)

    def plane_members(self, axis: str, value: int) -> list[int]:
        """All nodes with the ``axis`` coordinate fixed to ``value``.

        Ordered lexicographically by the remaining two coordinates.
        """
        q = self.side
        if axis == "x":
            return [self.node_at(value, b, c) for b in range(q) for c in range(q)]
        if axis == "y":
            return [self.node_at(a, value, c) for a in range(q) for c in range(q)]
        if axis == "z":
            return [self.node_at(a, b, value) for a in range(q) for b in range(q)]
        raise TopologyError(f"axis must be 'x', 'y' or 'z', got {axis!r}")
