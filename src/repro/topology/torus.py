"""2-D torus topology — the machine Cannon's algorithm was designed for.

The paper remarks (§3.3) that the shift-multiply phase of Cannon's
algorithm performs the same on 2-D tori and hypercubes; only the initial
alignment (arbitrary-distance shifts) and the richer collectives
distinguish the cube.  This substrate lets the simulator check that claim
directly: a ``rows × cols`` wrap-around mesh whose nodes are numbered
row-major, with unit Grid links only (no Gray-code shortcuts).

A :class:`Torus2D` exposes the same duck-typed surface the engine needs
from :class:`~repro.topology.hypercube.Hypercube`: ``num_nodes``,
``nodes()``, ``are_neighbors``, ``_check_node`` and ``route_hops`` —
dimension-ordered routing taking the shorter way around each ring.
"""

from __future__ import annotations

from repro.errors import TopologyError

__all__ = ["Torus2D"]


class Torus2D:
    """A ``rows × cols`` wrap-around mesh, nodes numbered row-major."""

    __slots__ = ("rows", "cols")

    def __init__(self, rows: int, cols: int):
        if rows < 1 or cols < 1:
            raise TopologyError(f"torus sides must be positive, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols

    @property
    def num_nodes(self) -> int:
        return self.rows * self.cols

    def nodes(self) -> range:
        return range(self.num_nodes)

    def contains(self, node: int) -> bool:
        return 0 <= node < self.num_nodes

    def _check_node(self, node: int) -> None:
        if not self.contains(node):
            raise TopologyError(
                f"node {node} outside {self.rows}x{self.cols} torus"
            )

    # -- coordinates ---------------------------------------------------------

    def node_at(self, r: int, c: int) -> int:
        """Node at (row, col); coordinates wrap."""
        return (r % self.rows) * self.cols + (c % self.cols)

    def coords_of(self, node: int) -> tuple[int, int]:
        self._check_node(node)
        return divmod(node, self.cols)

    # -- adjacency -------------------------------------------------------------

    def neighbors(self, node: int) -> list[int]:
        r, c = self.coords_of(node)
        out = []
        for rr, cc in ((r - 1, c), (r + 1, c), (r, c - 1), (r, c + 1)):
            nb = self.node_at(rr, cc)
            if nb != node and nb not in out:
                out.append(nb)
        return out

    def are_neighbors(self, a: int, b: int) -> bool:
        self._check_node(a)
        self._check_node(b)
        return b in self.neighbors(a)

    @staticmethod
    def _ring_steps(frm: int, to: int, size: int) -> list[int]:
        """Coordinates visited going the shorter way around a ring."""
        forward = (to - frm) % size
        backward = (frm - to) % size
        steps = []
        cur = frm
        if forward <= backward:
            for _ in range(forward):
                cur = (cur + 1) % size
                steps.append(cur)
        else:
            for _ in range(backward):
                cur = (cur - 1) % size
                steps.append(cur)
        return steps

    def distance(self, a: int, b: int) -> int:
        ra, ca = self.coords_of(a)
        rb, cb = self.coords_of(b)
        dr = min((rb - ra) % self.rows, (ra - rb) % self.rows)
        dc = min((cb - ca) % self.cols, (ca - cb) % self.cols)
        return dr + dc

    # -- routing -----------------------------------------------------------------

    def route_hops(self, src: int, dst: int) -> list[tuple[int, int]]:
        """Dimension-ordered route: correct the column, then the row, each
        the shorter way around its ring.  Deterministic and deadlock-free
        under the simulator's FIFO links."""
        self._check_node(src)
        self._check_node(dst)
        if src == dst:
            return []
        r0, c0 = self.coords_of(src)
        r1, c1 = self.coords_of(dst)
        path = [src]
        for c in self._ring_steps(c0, c1, self.cols):
            path.append(self.node_at(r0, c))
        for r in self._ring_steps(r0, r1, self.rows):
            path.append(self.node_at(r, c1))
        return list(zip(path[:-1], path[1:]))

    def __repr__(self) -> str:
        return f"Torus2D({self.rows}x{self.cols})"
