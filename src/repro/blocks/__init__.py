"""Matrix block partitions used by the paper's data distributions."""

from repro.blocks.partition import (
    BlockPartition2D,
    ColumnGroups,
    RowGroups,
    PartitionFig8,
    PartitionFig9,
    f_index,
)

__all__ = [
    "BlockPartition2D",
    "ColumnGroups",
    "RowGroups",
    "PartitionFig8",
    "PartitionFig9",
    "f_index",
]
