"""Matrix partitions from the paper's figures.

* :class:`BlockPartition2D` — Figure 1: an ``n × n`` matrix cut into
  ``q × q`` square blocks ``M_{ij}``.
* :class:`ColumnGroups` / :class:`RowGroups` — Berntsen's and the 2-D
  Diagonal algorithm's splits of ``A`` by columns and ``B`` by rows into
  ``q`` groups.
* :class:`PartitionFig8` — Figure 8: the 3D All family's partition of ``A``
  into ``∛p × p^{2/3}`` blocks ``A_{k, f(i,j)}`` with ``f(i,j) = i·∛p + j``.
* :class:`PartitionFig9` — Figure 9: the transposed layout for ``B``
  (``p^{2/3} × ∛p`` blocks ``B_{f(i,j), k}``).

Extraction methods return *copies* (C-contiguous) so simulator payloads are
independent of the source matrix; assembly methods rebuild full matrices
from per-block dictionaries and are the inverse of extraction.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DistributionError

__all__ = [
    "BlockPartition2D",
    "ColumnGroups",
    "RowGroups",
    "PartitionFig8",
    "PartitionFig9",
    "f_index",
]


def f_index(i: int, j: int, q: int) -> int:
    """The paper's ``f(i, j) = i·∛p + j`` column-group index (Fig. 8/9)."""
    return i * q + j


def _check_divisible(n: int, q: int, what: str) -> int:
    if q <= 0:
        raise DistributionError(f"{what}: group count must be positive, got {q}")
    if n % q:
        raise DistributionError(
            f"{what}: matrix size {n} not divisible into {q} groups"
        )
    return n // q


class BlockPartition2D:
    """Figure 1: ``q × q`` square blocks of an ``n × n`` matrix."""

    def __init__(self, n: int, q: int):
        self.n = n
        self.q = q
        self.block = _check_divisible(n, q, "2-D block partition")

    @property
    def block_shape(self) -> tuple[int, int]:
        return (self.block, self.block)

    def extract(self, matrix: np.ndarray, i: int, j: int) -> np.ndarray:
        """Block ``M_{ij}`` (row block ``i``, column block ``j``)."""
        self._check_index(i, j)
        b = self.block
        return np.ascontiguousarray(matrix[i * b:(i + 1) * b, j * b:(j + 1) * b])

    def assemble(self, blocks: dict[tuple[int, int], np.ndarray]) -> np.ndarray:
        """Rebuild the full matrix from ``{(i, j): block}``."""
        out = np.zeros((self.n, self.n))
        b = self.block
        for (i, j), blk in blocks.items():
            self._check_index(i, j)
            if blk.shape != (b, b):
                raise DistributionError(
                    f"block ({i},{j}) has shape {blk.shape}, expected {(b, b)}"
                )
            out[i * b:(i + 1) * b, j * b:(j + 1) * b] = blk
        return out

    def _check_index(self, i: int, j: int) -> None:
        if not (0 <= i < self.q and 0 <= j < self.q):
            raise DistributionError(
                f"block index ({i},{j}) out of range for {self.q}x{self.q} blocks"
            )


class ColumnGroups:
    """``q`` groups of consecutive columns (``n × n/q`` slabs)."""

    def __init__(self, n: int, q: int):
        self.n = n
        self.q = q
        self.width = _check_divisible(n, q, "column groups")

    def extract(self, matrix: np.ndarray, j: int) -> np.ndarray:
        self._check_index(j)
        w = self.width
        return np.ascontiguousarray(matrix[:, j * w:(j + 1) * w])

    def assemble(self, groups: dict[int, np.ndarray]) -> np.ndarray:
        out = np.zeros((self.n, self.n))
        w = self.width
        for j, g in groups.items():
            self._check_index(j)
            out[:, j * w:(j + 1) * w] = g
        return out

    def _check_index(self, j: int) -> None:
        if not 0 <= j < self.q:
            raise DistributionError(f"column group {j} out of range for q={self.q}")


class RowGroups:
    """``q`` groups of consecutive rows (``n/q × n`` slabs)."""

    def __init__(self, n: int, q: int):
        self.n = n
        self.q = q
        self.height = _check_divisible(n, q, "row groups")

    def extract(self, matrix: np.ndarray, i: int) -> np.ndarray:
        self._check_index(i)
        h = self.height
        return np.ascontiguousarray(matrix[i * h:(i + 1) * h, :])

    def assemble(self, groups: dict[int, np.ndarray]) -> np.ndarray:
        out = np.zeros((self.n, self.n))
        h = self.height
        for i, g in groups.items():
            self._check_index(i)
            out[i * h:(i + 1) * h, :] = g
        return out

    def _check_index(self, i: int) -> None:
        if not 0 <= i < self.q:
            raise DistributionError(f"row group {i} out of range for q={self.q}")


class PartitionFig8:
    """Figure 8: ``A`` cut into ``q`` row blocks × ``q²`` column blocks.

    Block ``A_{k, c}`` has shape ``(n/q, n/q²)``; processor ``p_{i,j,k}``
    initially holds ``A_{k, f(i,j)}``.
    """

    def __init__(self, n: int, q: int):
        self.n = n
        self.q = q
        self.row_block = _check_divisible(n, q, "Fig. 8 rows")
        self.col_block = _check_divisible(n, q * q, "Fig. 8 columns")

    @property
    def block_shape(self) -> tuple[int, int]:
        return (self.row_block, self.col_block)

    def extract(self, matrix: np.ndarray, k: int, c: int) -> np.ndarray:
        """Block ``A_{k, c}`` with ``0 <= k < q`` and ``0 <= c < q²``."""
        self._check_index(k, c)
        rb, cb = self.row_block, self.col_block
        return np.ascontiguousarray(
            matrix[k * rb:(k + 1) * rb, c * cb:(c + 1) * cb]
        )

    def assemble(self, blocks: dict[tuple[int, int], np.ndarray]) -> np.ndarray:
        out = np.zeros((self.n, self.n))
        rb, cb = self.row_block, self.col_block
        for (k, c), blk in blocks.items():
            self._check_index(k, c)
            out[k * rb:(k + 1) * rb, c * cb:(c + 1) * cb] = blk
        return out

    def _check_index(self, k: int, c: int) -> None:
        if not (0 <= k < self.q and 0 <= c < self.q * self.q):
            raise DistributionError(
                f"Fig. 8 block ({k},{c}) out of range for q={self.q}"
            )


class PartitionFig9:
    """Figure 9: ``B`` cut into ``q²`` row blocks × ``q`` column blocks.

    Block ``B_{r, k}`` has shape ``(n/q², n/q)``; in the 3D All_Trans
    algorithm processor ``p_{i,j,k}`` initially holds ``B_{f(i,j), k}``.
    """

    def __init__(self, n: int, q: int):
        self.n = n
        self.q = q
        self.row_block = _check_divisible(n, q * q, "Fig. 9 rows")
        self.col_block = _check_divisible(n, q, "Fig. 9 columns")

    @property
    def block_shape(self) -> tuple[int, int]:
        return (self.row_block, self.col_block)

    def extract(self, matrix: np.ndarray, r: int, k: int) -> np.ndarray:
        """Block ``B_{r, k}`` with ``0 <= r < q²`` and ``0 <= k < q``."""
        self._check_index(r, k)
        rb, cb = self.row_block, self.col_block
        return np.ascontiguousarray(
            matrix[r * rb:(r + 1) * rb, k * cb:(k + 1) * cb]
        )

    def assemble(self, blocks: dict[tuple[int, int], np.ndarray]) -> np.ndarray:
        out = np.zeros((self.n, self.n))
        rb, cb = self.row_block, self.col_block
        for (r, k), blk in blocks.items():
            self._check_index(r, k)
            out[r * rb:(r + 1) * rb, k * cb:(k + 1) * cb] = blk
        return out

    def _check_index(self, r: int, k: int) -> None:
        if not (0 <= r < self.q * self.q and 0 <= k < self.q):
            raise DistributionError(
                f"Fig. 9 block ({r},{k}) out of range for q={self.q}"
            )
