"""Reproduce **Figure 13**: one-port best-algorithm region maps.

Panels (a)-(d) evaluate the Table 2 expressions over the (log₂ n, log₂ p)
lattice for four ``(t_s, t_w)`` settings (the paper names t_s=150, t_w=3;
the others scan the start-up/bandwidth ratio downward) and mark each point
with the algorithm of least communication overhead — exactly what the
paper's analysis program did.

ASCII renderings are written to ``benchmarks/results/fig13_*.txt``; the
benchmark times the map computation.  Assertions pin the paper's stated
region structure.
"""

import pytest

from _report import format_table, write_report
from repro.analysis.figures import PANELS, render_ascii
from repro.analysis.measure import measure_cell
from repro.analysis.parallel import run_grid
from repro.analysis.regions import best_algorithm, region_map
from repro.sim import PortModel

LOG2N, LOG2P = 13, 20


@pytest.mark.parametrize("panel", sorted(PANELS))
def test_fig13_panel(benchmark, panel, jobs):
    t_s, t_w = PANELS[panel]
    rm = benchmark(
        region_map, PortModel.ONE_PORT, t_s, t_w,
        log2_n_max=LOG2N, log2_p_max=LOG2P, jobs=jobs,
    )
    art = render_ascii(
        rm, f"Figure 13({panel}) reproduction: one-port, t_s={t_s:g}, t_w={t_w:g}"
    )
    write_report(f"fig13_{panel}", art)
    benchmark.extra_info.update(counts=rm.counts())

    # Paper §5.1: 3D All wins its whole applicability region (p >= 8).
    assert rm.fraction_won("3d_all", where=lambda n, p: 8 <= p <= n ** 1.5) == 1.0
    # 3DD is the only algorithm beyond p = n^2.
    assert rm.fraction_won("3dd", where=lambda n, p: n * n < p <= n ** 3) == 1.0


#: simulation-backed validation lattice: every one-port Figure 13
#: candidate that can actually run at these (n, p) grid points
MEASURED_NS = (16, 32)
MEASURED_PS = (16, 64)


def _measured_cells():
    from repro.algorithms import ALGORITHMS
    from repro.analysis.regions import candidates

    cells = []
    for n in MEASURED_NS:
        for p in MEASURED_PS:
            for key in candidates(PortModel.ONE_PORT):
                if ALGORITHMS[key].applicable(n, p):
                    cells.append((key, n, p, PortModel.ONE_PORT))
    return cells


def test_fig13_measured_winners(benchmark, jobs):
    """Validate the region map's t_s=150 winners against *simulated* runs.

    This is the expensive, simulation-backed counterpart of the analytic
    panels: every applicable candidate is executed in the event simulator
    at each lattice cell and its measured (a, b) coefficients decide the
    winner.  The sweep shards across ``--jobs`` worker processes through
    run_grid — per-cell results are bit-identical for any job count, so
    the flag only moves wall clock.
    """
    cells = _measured_cells()
    t_s, t_w = PANELS["a"]

    measured = benchmark(run_grid, measure_cell, cells, jobs=jobs)

    by_cell = {}
    for key, n, p, (a, b) in measured:
        by_cell.setdefault((n, p), {})[key] = a * t_s + b * t_w
    rows = []
    for (n, p), times in sorted(by_cell.items()):
        sim_winner = min(times, key=times.get)
        analytic = best_algorithm(n, p, PortModel.ONE_PORT, t_s, t_w)
        rows.append(
            [n, p, sim_winner, f"{times[sim_winner]:.0f}",
             analytic[0] if analytic else "-"]
        )
        # The models are schedule approximations (and the analytic winner
        # may not even be *runnable* at a cell — 3D All needs cubic p),
        # so the pin is: wherever the analytic winner executes, its
        # measured time is within 25% of the measured best.  A bigger gap
        # means the Table 2 ranking and the simulator have diverged.
        if analytic is not None and analytic[0] in times:
            assert times[analytic[0]] <= 1.25 * times[sim_winner], (
                f"analytic winner {analytic[0]} measures "
                f"{times[analytic[0]]:.0f} vs simulated best "
                f"{sim_winner}={times[sim_winner]:.0f} at n={n}, p={p}"
            )
    write_report(
        "fig13_measured",
        format_table(
            ["n", "p", "simulated winner", "sim time", "analytic winner"],
            rows,
            title=f"Figure 13(a) winners, simulated vs Table 2 "
                  f"(t_s={t_s:g}, t_w={t_w:g})",
        ),
    )


def test_fig13_crossover_with_ts(benchmark):
    """The middle band n^1.5 < p <= n^2 flips from 3DD to Cannon as t_s
    shrinks — the crossover the paper highlights."""

    def fractions():
        out = {}
        for t_s in (150.0, 0.5):
            rm = region_map(
                PortModel.ONE_PORT, t_s, 3.0, log2_n_max=12, log2_p_max=18
            )
            out[t_s] = rm.fraction_won(
                "3dd", where=lambda n, p: max(8, n ** 1.5) < p <= n * n
            )
        return out

    frac = benchmark(fractions)
    assert frac[150.0] == 1.0
    assert frac[0.5] < 0.5
