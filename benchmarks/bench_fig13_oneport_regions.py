"""Reproduce **Figure 13**: one-port best-algorithm region maps.

Panels (a)-(d) evaluate the Table 2 expressions over the (log₂ n, log₂ p)
lattice for four ``(t_s, t_w)`` settings (the paper names t_s=150, t_w=3;
the others scan the start-up/bandwidth ratio downward) and mark each point
with the algorithm of least communication overhead — exactly what the
paper's analysis program did.

ASCII renderings are written to ``benchmarks/results/fig13_*.txt``; the
benchmark times the map computation.  Assertions pin the paper's stated
region structure.
"""

import pytest

from _report import write_report
from repro.analysis.figures import PANELS, render_ascii
from repro.analysis.regions import region_map
from repro.sim import PortModel

LOG2N, LOG2P = 13, 20


@pytest.mark.parametrize("panel", sorted(PANELS))
def test_fig13_panel(benchmark, panel):
    t_s, t_w = PANELS[panel]
    rm = benchmark(
        region_map, PortModel.ONE_PORT, t_s, t_w,
        log2_n_max=LOG2N, log2_p_max=LOG2P,
    )
    art = render_ascii(
        rm, f"Figure 13({panel}) reproduction: one-port, t_s={t_s:g}, t_w={t_w:g}"
    )
    write_report(f"fig13_{panel}", art)
    benchmark.extra_info.update(counts=rm.counts())

    # Paper §5.1: 3D All wins its whole applicability region (p >= 8).
    assert rm.fraction_won("3d_all", where=lambda n, p: 8 <= p <= n ** 1.5) == 1.0
    # 3DD is the only algorithm beyond p = n^2.
    assert rm.fraction_won("3dd", where=lambda n, p: n * n < p <= n ** 3) == 1.0


def test_fig13_crossover_with_ts(benchmark):
    """The middle band n^1.5 < p <= n^2 flips from 3DD to Cannon as t_s
    shrinks — the crossover the paper highlights."""

    def fractions():
        out = {}
        for t_s in (150.0, 0.5):
            rm = region_map(
                PortModel.ONE_PORT, t_s, 3.0, log2_n_max=12, log2_p_max=18
            )
            out[t_s] = rm.fraction_won(
                "3dd", where=lambda n, p: max(8, n ** 1.5) < p <= n * n
            )
        return out

    frac = benchmark(fractions)
    assert frac[150.0] == 1.0
    assert frac[0.5] < 0.5
