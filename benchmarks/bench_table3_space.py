"""Reproduce **Table 3**: overall space usage and processor limits.

For each algorithm the simulator's per-node peak-resident-words counters
are summed and compared with the paper's ``2n²√p`` / ``3n²`` / ``2n²∛p``
formulas; the ``p ≤ n^k`` applicability limits are probed by attempting
runs just inside and outside each bound.

Written to ``benchmarks/results/table3.txt``.
"""

import numpy as np
import pytest

from _report import format_table, write_report
from repro.algorithms import ALGORITHMS, get_algorithm
from repro.errors import NotApplicableError
from repro.models.table3 import SPACE_MODELS, overall_space
from repro.sim import MachineConfig

# (key, n, p): all eight Table 3 algorithms at a comparable size.
CASES = [
    ("simple", 32, 16),
    ("cannon", 32, 16),
    ("hje", 32, 16),
    ("berntsen", 32, 8),
    ("dns", 32, 8),
    ("3dd", 32, 8),
    ("3d_all_trans", 32, 8),
    ("3d_all", 32, 8),
]

_rows: list[list[str]] = []


def _measure_space(key, n, p):
    rng = np.random.default_rng(1)
    A = rng.standard_normal((n, n))
    B = rng.standard_normal((n, n))
    run = get_algorithm(key).run(A, B, MachineConfig.create(p))
    return run.result.total_peak_memory_words()


@pytest.mark.parametrize("key,n,p", CASES, ids=[c[0] for c in CASES])
def test_table3_row(benchmark, key, n, p):
    measured = benchmark(_measure_space, key, n, p)
    model = overall_space(key, n, p)
    benchmark.extra_info.update(measured=measured, model=model)
    _rows.append(
        [
            ALGORITHMS[key].name,
            SPACE_MODELS[key].formula,
            f"{model:.0f}",
            f"{measured}",
            f"{measured / model:.2f}",
        ]
    )
    # The accounting granularity (result blocks, staging buffers) allows a
    # modest constant factor; the scaling term must match.
    assert 0.65 * model <= measured <= 1.7 * model


def test_processor_limits_enforced(benchmark):
    """Table 3's p <= n^k columns: runs beyond the limit must refuse."""

    def probe():
        failures = []
        # Cannon p <= n^2: n=4, p=64 violates
        for key, n, p in [("cannon", 4, 64), ("berntsen", 32, 512),
                          ("3d_all", 32, 512), ("3d_all_trans", 32, 512)]:
            try:
                get_algorithm(key).check_applicable(n, p)
                failures.append((key, n, p))
            except NotApplicableError:
                pass
        # 3DD allows up to n^3
        get_algorithm("3dd").check_applicable(8, 512)
        return failures

    failures = benchmark(probe)
    assert failures == []


def test_write_table3_report(benchmark):
    def render():
        return format_table(
            ["algorithm", "formula", "model words", "measured words", "ratio"],
            _rows,
            title="Table 3 reproduction: overall space (sum of per-node peaks)",
        )

    text = benchmark(render)
    assert write_report("table3", text).exists()
