"""Reproduce **Figure 14**: multi-port best-algorithm region maps.

Same lattice sweep as Figure 13 with the multi-port Table 2 column, with
Ho-Johnsson-Edelman joining the candidate set.  ASCII renderings go to
``benchmarks/results/fig14_*.txt``.
"""

import pytest

from _report import write_report
from repro.analysis.figures import PANELS, render_ascii
from repro.analysis.regions import region_map
from repro.sim import PortModel

LOG2N, LOG2P = 13, 20


@pytest.mark.parametrize("panel", sorted(PANELS))
def test_fig14_panel(benchmark, panel):
    t_s, t_w = PANELS[panel]
    rm = benchmark(
        region_map, PortModel.MULTI_PORT, t_s, t_w,
        log2_n_max=LOG2N, log2_p_max=LOG2P,
    )
    art = render_ascii(
        rm,
        f"Figure 14({panel}) reproduction: multi-port, t_s={t_s:g}, t_w={t_w:g}",
    )
    write_report(f"fig14_{panel}", art)
    benchmark.extra_info.update(counts=rm.counts())

    # §5.2: 3D All wins (almost) everywhere it applies; HJE may take a few
    # small-p points.
    frac = rm.fraction_won("3d_all", where=lambda n, p: 8 <= p <= n ** 1.5)
    assert frac >= 0.95
    # 3DD alone beyond n^2.
    assert rm.fraction_won("3dd", where=lambda n, p: n * n < p <= n ** 3) == 1.0


def test_fig14_hje_wins_somewhere(benchmark):
    """§5.2: HJE 'might perform better than 3D All for very small p'."""

    def count_hje():
        total = 0
        for t_s, t_w in PANELS.values():
            rm = region_map(
                PortModel.MULTI_PORT, t_s, t_w, log2_n_max=13, log2_p_max=8
            )
            total += rm.counts().get("hje", 0)
        return total

    assert benchmark(count_hje) > 0


def test_fig14_vs_fig13_3d_all_extends(benchmark):
    """Multi-port widens 3D All's winning share at fixed parameters."""

    def shares():
        one = region_map(PortModel.ONE_PORT, 150, 3, log2_n_max=12, log2_p_max=16)
        multi = region_map(PortModel.MULTI_PORT, 150, 3, log2_n_max=12, log2_p_max=16)
        return one.counts().get("3d_all", 0), multi.counts().get("3d_all", 0)

    one, multi = benchmark(shares)
    assert multi >= one * 0.9  # shares are comparable; 3D All dominant in both
