"""Integrity / ABFT overhead bench: what does corruption protection cost?

Measures the *fault-free* path of each protection stack — the price paid
on every run for resilience that is only needed on the bad ones:

* ``raw``        no protection (the baseline),
* ``reliable``   :class:`~repro.mpi.reliable.ReliableContext`,
* ``integrity``  :class:`~repro.mpi.integrity.IntegrityContext`,
* ``integrity!`` the same with ``force_protocol=True`` (the CRC/ack
  protocol engaged even though nothing can go wrong),
* ``abft``       :class:`~repro.algorithms.abft.ABFTMatmul` over an
  integrity context (the full ``protected`` chaos stack).

The headline invariant: on a fault-free machine ``reliable`` and
``integrity`` both fast-path to plain delivery, so their simulated time
is **bit-identical** to raw — overhead exactly 1.00x.  The forced
protocol and the ABFT wrapper quantify what the fast path saves.

Written to ``benchmarks/results/corruption.txt``.  Also runnable
directly::

    python benchmarks/bench_corruption.py [--smoke]

``--smoke`` restricts to one (n, p) point (the CI budget).
"""

import sys

import numpy as np
import pytest

from _report import format_table, write_report
from repro.algorithms import get_algorithm
from repro.algorithms.abft import ABFTMatmul
from repro.mpi.integrity import IntegrityContext
from repro.mpi.reliable import ReliableContext
from repro.sim.machine import MachineConfig

#: (n, p) points swept; all use Cannon (every stack supports it)
POINTS = [(8, 16), (16, 16), (16, 64)]


def _forced_integrity(ctx):
    return IntegrityContext(ctx, force_protocol=True)


STACKS = [
    ("raw", None),
    ("reliable", ReliableContext),
    ("integrity", IntegrityContext),
    ("integrity!", _forced_integrity),
]


def _matrices(n: int):
    rng = np.random.default_rng(7)
    return (rng.integers(-4, 5, (n, n)).astype(float),
            rng.integers(-4, 5, (n, n)).astype(float))


def run_point(n: int, p: int) -> list[dict]:
    """Fault-free timings for every stack at one (n, p); rows for the table."""
    A, B = _matrices(n)
    config = MachineConfig.create(p)
    algo = get_algorithm("cannon")
    oracle = A @ B
    rows = []
    base = None
    for name, factory in STACKS:
        run = algo.run(A, B, config, context_factory=factory)
        t = run.result.total_time
        if base is None:
            base = t
        rows.append({
            "n": n, "p": p, "stack": name, "time": t,
            "overhead": t / base, "exact": bool(np.array_equal(run.C, oracle)),
        })
    abft = ABFTMatmul(algo, mode="abft", context_factory=IntegrityContext)
    run = abft.run(A, B, config)
    rows.append({
        "n": n, "p": p, "stack": "abft", "time": run.total_time,
        "overhead": run.total_time / base,
        "exact": bool(np.array_equal(run.C, oracle)),
    })
    return rows


_rows: list[list[str]] = []


def _record(rows) -> None:
    for r in rows:
        row = [
            str(r["n"]), str(r["p"]), r["stack"],
            f"{r['time']:.1f}", f"{r['overhead']:.2f}x", str(r["exact"]),
        ]
        if row not in _rows:
            _rows.append(row)


@pytest.mark.parametrize("n,p", POINTS)
def test_corruption_overhead(benchmark, n, p):
    rows = benchmark(run_point, n, p)
    _record(rows)
    by_stack = {r["stack"]: r for r in rows}
    # fault-free fast path: bit-identical, not merely close
    assert by_stack["reliable"]["time"] == by_stack["raw"]["time"]
    assert by_stack["integrity"]["time"] == by_stack["raw"]["time"]
    # every stack still computes the exact product
    for r in rows:
        assert r["exact"], r
    # engaging the protocol costs real time; ABFT adds checksum rows/cols
    assert by_stack["integrity!"]["overhead"] > 1.0
    assert by_stack["abft"]["overhead"] > 1.0


def test_write_corruption_report(benchmark):
    def render():
        return format_table(
            ["n", "p", "stack", "time", "overhead", "exact"],
            _rows,
            title="Corruption-protection overhead on the fault-free path "
                  "(baseline = raw contexts; reliable/integrity fast-path "
                  "to 1.00x)",
        )

    assert write_report("corruption", benchmark(render)).exists()


def main(argv=None) -> int:
    """Standalone entry: run the sweep and print/write the table."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="one (n, p) point (CI budget)"
    )
    args = parser.parse_args(argv)
    points = POINTS[:1] if args.smoke else POINTS
    all_rows = []
    for n, p in points:
        all_rows += run_point(n, p)
    _record(all_rows)
    text = format_table(
        ["n", "p", "stack", "time", "overhead", "exact"], _rows,
        title="Corruption-protection overhead on the fault-free path",
    )
    print(text)
    bad = [r for r in all_rows if not r["exact"]]
    bad += [
        r for r in all_rows
        if r["stack"] in ("reliable", "integrity") and r["overhead"] != 1.0
    ]
    if bad:
        print(f"FAILED cells: {len(bad)}", file=sys.stderr)
        return 1
    if not args.smoke:
        write_report("corruption_cli", text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
