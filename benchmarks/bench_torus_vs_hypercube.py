"""Extension bench: Cannon on a 2-D torus vs the hypercube embedding.

§3.3 notes that Cannon's shift-multiply phase performs identically on both
machines; only the alignment differs (arbitrary shifts cost up to ``q/2``
ring hops on the torus vs ``≤ log q`` e-cube hops).  This bench measures
both machines with the identical Cannon kernel and separates the phases.

Written to ``benchmarks/results/torus_vs_hypercube.txt``.
"""

import numpy as np
import pytest

from _report import format_table, write_report
from repro.algorithms import get_algorithm
from repro.algorithms.torus_cannon import run_cannon_on_torus, torus_machine_like
from repro.sim import MachineConfig

TS, TW = 10.0, 1.0

_rows: list[list[str]] = []


def _measure(n, q):
    rng = np.random.default_rng(17)
    A = rng.standard_normal((n, n))
    B = rng.standard_normal((n, n))
    hyper_cfg = MachineConfig.create(q * q, t_s=TS, t_w=TW)
    hyper = get_algorithm("cannon").run(A, B, hyper_cfg, verify=True)
    torus = run_cannon_on_torus(A, B, torus_machine_like(hyper_cfg, q), verify=True)
    return hyper.total_time, torus.total_time


@pytest.mark.parametrize("n,q", [(8, 2), (16, 4), (32, 8), (64, 16)])
def test_torus_vs_hypercube(benchmark, n, q):
    t_hyper, t_torus = benchmark(_measure, n, q)
    m = (n // q) ** 2
    shift_phase = 2 * (q - 1) * (TS + TW * m)
    row = [
        f"{q}x{q}",
        str(n),
        f"{shift_phase:.0f}",
        f"{t_hyper - shift_phase:.0f}",
        f"{t_torus - shift_phase:.0f}",
        f"{t_torus / t_hyper:.2f}",
    ]
    if row not in _rows:
        _rows.append(row)
    # Shift phase identical by construction; hypercube alignment never
    # slower than the torus ring alignment.
    assert t_hyper <= t_torus


def test_write_torus_report(benchmark):
    def render():
        return format_table(
            ["grid", "n", "shift phase (both)", "align (hypercube)",
             "align (torus)", "torus/hypercube total"],
            _rows,
            title=(
                "Cannon: torus vs Gray-embedded hypercube "
                f"(t_s={TS:g}, t_w={TW:g}); shift-multiply phase is machine-"
                "independent (§3.3)"
            ),
        )

    assert write_report("torus_vs_hypercube", benchmark(render)).exists()
