"""Service overhead and determinism: SweepService vs direct run_grid.

The crash-safe service wraps every sweep in a WAL journal, a supervised
worker pool, and a content-addressed chunk cache.  That machinery must
be (a) *correct* — the service's report digest is bit-identical to the
direct evaluation path — and (b) *cheap* — journaling and chunk
bookkeeping add bounded overhead on top of the actual simulation work.

This bench times three configurations of the same sweep:

* ``direct``   — in-process sequential evaluation (the floor),
* ``service``  — cold SweepService run (journal + workers + cache),
* ``resume``   — a second ``run_pending`` pass over the same state dir
  (every chunk cached: pure journal-replay + finalize cost).

Run directly for the CI service-smoke gate::

    PYTHONPATH=src python benchmarks/bench_service.py --smoke

which asserts digest equality and prints the overhead table.
Written to ``benchmarks/results/service.txt``.
"""

from __future__ import annotations

import shutil
import sys
import tempfile
import time

from _report import format_table, write_report

PARAMS = {
    "algorithms": ["cannon", "berntsen", "3dd", "3d_all"],
    "variable": "n",
    "values": [64.0, 128.0, 256.0, 512.0, 1024.0],
    "p": 64.0,
}


def _direct_digest() -> tuple[str, float]:
    from repro.service.jobs import build_cells, evaluate_chunk, finalize, make_spec

    spec = make_spec("sweep", PARAMS)
    cells = build_cells(spec)
    start = time.perf_counter()
    records = evaluate_chunk(spec.kind, spec.params, cells)
    report = finalize(spec, records)
    return report["digest"], time.perf_counter() - start


def _service_run(state_dir, workers: int) -> tuple[str, float, float]:
    """Returns (digest, cold_seconds, resume_seconds)."""
    from repro.service import SweepService

    start = time.perf_counter()
    with SweepService(state_dir, workers=workers) as svc:
        svc.submit("sweep", PARAMS)
        report = svc.run_pending()[0]
    cold = time.perf_counter() - start

    # Warm pass: drop the job_done fact so the service re-finalizes the
    # job purely from journal + cache (the resume path, no simulation).
    segments = sorted((state_dir / "wal").glob("wal-*.jsonl"))
    raw = segments[-1].read_bytes().splitlines(keepends=True)
    segments[-1].write_bytes(b"".join(raw[:-1]))
    start = time.perf_counter()
    with SweepService(state_dir, workers=workers) as svc:
        resumed = svc.run_pending()[0]
    warm = time.perf_counter() - start
    assert resumed["digest"] == report["digest"]
    return report["digest"], cold, warm


def main(argv=None) -> int:
    import argparse
    import pathlib

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="assert digest equality and bounded overhead (CI budget)",
    )
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)

    direct_digest, direct_s = _direct_digest()
    tmp = pathlib.Path(tempfile.mkdtemp(prefix="bench-service-"))
    try:
        svc_digest, cold_s, warm_s = _service_run(tmp / "state", args.workers)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    rows = [
        ["direct", f"{direct_s:.3f}s", "1.00x", direct_digest],
        ["service (cold)", f"{cold_s:.3f}s",
         f"{cold_s / direct_s:.2f}x", svc_digest],
        ["service (resume)", f"{warm_s:.3f}s",
         f"{warm_s / direct_s:.2f}x", svc_digest],
    ]
    text = format_table(
        ["path", "wall", "vs direct", "digest"], rows,
        title=f"Crash-safe service overhead ({args.workers} workers, "
              f"{len(PARAMS['values'])}-point sweep)",
    )
    print(text)

    if svc_digest != direct_digest:
        print(
            f"FAILED: service digest {svc_digest} != direct {direct_digest}",
            file=sys.stderr,
        )
        return 1
    if not args.smoke:
        write_report("service", text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
