"""Ablation: one-port vs multi-port speedup, per collective and algorithm.

The paper's multi-port column promises a ``log N``-fold reduction of the
data-transmission terms plus phase overlap.  This bench quantifies the
realized end-to-end speedup on the simulator at several start-up/bandwidth
ratios, showing the speedup grow from ~1 (start-up bound) towards the
bandwidth bound as messages grow.

Written to ``benchmarks/results/ablation_ports.txt``.
"""

import numpy as np
import pytest

from _report import format_table, write_report
from repro.analysis.measure import measure_comm_time
from repro.collectives import allgather, broadcast
from repro.mpi import Comm
from repro.sim import MachineConfig, PortModel, run_spmd

_rows: list[list[str]] = []


def _collective_time(op, p, M, port):
    def prog(ctx):
        comm = Comm(ctx, list(range(p)))
        if op == "broadcast":
            data = np.ones(M) if comm.rank == 0 else None
            yield from broadcast(comm, data, root=0)
        else:
            yield from allgather(comm, np.ones(M))
        return ctx.now

    cfg = MachineConfig.create(p, t_s=150, t_w=3, port_model=port)
    return run_spmd(cfg, prog).total_time


@pytest.mark.parametrize("op", ["broadcast", "allgather"])
@pytest.mark.parametrize("M", [8, 64, 4096], ids=lambda m: f"M{m}")
def test_collective_speedup_grows_with_message_size(benchmark, op, M):
    p = 16

    def measure():
        one = _collective_time(op, p, M, PortModel.ONE_PORT)
        multi = _collective_time(op, p, M, PortModel.MULTI_PORT)
        return one / multi

    speedup = benchmark(measure)
    row = [op, str(M), f"{speedup:.2f}"]
    if row not in _rows:
        _rows.append(row)
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= 0.99
    if M >= 4096:
        # bandwidth-bound: speedup approaches log sqrt-free log N = 4
        assert speedup > 2.5


@pytest.mark.parametrize(
    "key,n,p",
    [
        ("cannon", 64, 64),
        ("simple", 64, 64),
        ("berntsen", 64, 64),
        ("3dd", 64, 64),
        ("3d_all", 64, 64),
        ("dns", 64, 64),
    ],
)
def test_algorithm_port_speedup(benchmark, key, n, p):
    def measure():
        one = measure_comm_time(key, n, p, PortModel.ONE_PORT, 150, 3)
        multi = measure_comm_time(key, n, p, PortModel.MULTI_PORT, 150, 3)
        return one, multi

    one, multi = benchmark(measure)
    speedup = one / multi
    row = [key, f"n={n} p={p}", f"{speedup:.2f}"]
    if row not in _rows:
        _rows.append(row)
    assert multi <= one + 1e-9


def test_write_ablation_ports_report(benchmark):
    def render():
        return format_table(
            ["workload", "size", "one-port / multi-port speedup"],
            _rows,
            title="Ablation: multi-port speedup (t_s=150, t_w=3)",
        )

    assert write_report("ablation_ports", benchmark(render)).exists()
