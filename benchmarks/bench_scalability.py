"""Extension bench: isoefficiency of the Table 2 models.

Not a table in the paper, but the asymptotic restatement of its
conclusion: 3D All needs the slowest-growing problem size to keep a fixed
parallel efficiency, because its communication overhead has both the
fewest start-ups (``O(log p)``) and the smallest data term.  The paper
cites Gupta & Kumar's scalability methodology [5]; this regenerates that
style of analysis from our Table 2 implementation.

Written to ``benchmarks/results/scalability.txt``.
"""

import pytest

from _report import format_table, write_report
from repro.analysis.scalability import isoefficiency_n
from repro.sim import PortModel

ONE = PortModel.ONE_PORT
KEYS = ["cannon", "berntsen", "3dd", "3d_all"]
PS = [8, 64, 512, 4096, 32768]

_rows: list[list[str]] = []


def test_isoefficiency_table(benchmark):
    def compute():
        table = {}
        for p in PS:
            table[p] = {
                key: isoefficiency_n(key, p, 0.8, ONE, 150, 3, 1.0)
                for key in KEYS
            }
        return table

    table = benchmark(compute)
    _rows.clear()
    for p in PS:
        _rows.append(
            [str(p)]
            + [
                f"{table[p][key]:.0f}" if table[p][key] else "-"
                for key in KEYS
            ]
        )

    # 3D All needs the smallest matrix at every processor count.
    for p in PS:
        vals = {k: v for k, v in table[p].items() if v is not None}
        assert min(vals, key=vals.get) == "3d_all"

    # Cannon's O(sqrt p) start-ups show: its required n grows faster than
    # 3D All's by an increasing factor.
    r_small = table[64]["cannon"] / table[64]["3d_all"]
    r_big = table[32768]["cannon"] / table[32768]["3d_all"]
    assert r_big > r_small


def test_write_scalability_report(benchmark):
    def render():
        return format_table(
            ["p"] + KEYS,
            _rows,
            title=(
                "Isoefficiency (extension): smallest n with efficiency 0.8 "
                "(one-port, t_s=150, t_w=3, t_c=1)"
            ),
        )

    assert write_report("scalability", benchmark(render)).exists()
