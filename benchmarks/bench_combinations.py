"""Extension bench: supernode combination algorithms (§3.5).

Regenerates the comparison behind the paper's remark that combining its
new algorithms with Cannon dominates the DNS × Cannon combination, and
quantifies the space-for-startups trade against the plain 3-D algorithms.

Written to ``benchmarks/results/combinations.txt``.
"""

import numpy as np
import pytest

from _report import format_table, write_report
from repro.algorithms import get_algorithm
from repro.sim import MachineConfig, PortModel

_rows: list[list[str]] = []


def _run(key, n, p, t_s=150.0, t_w=3.0):
    rng = np.random.default_rng(13)
    A = rng.standard_normal((n, n))
    B = rng.standard_normal((n, n))
    cfg = MachineConfig.create(p, t_s=t_s, t_w=t_w)
    return get_algorithm(key).run(A, B, cfg)


@pytest.mark.parametrize("key", ["dns", "3dd", "dns_cannon", "3dd_cannon"])
def test_combination_profile(benchmark, key):
    n, p = 64, 512
    run = benchmark(_run, key, n, p)
    row = [
        key,
        f"{run.total_time:.0f}",
        f"{run.result.total_peak_memory_words()}",
        f"{run.result.total_messages()}",
    ]
    if row not in _rows:
        _rows.append(row)


def test_claims(benchmark):
    def check():
        n, p = 64, 512
        combo_new = _run("3dd_cannon", n, p)
        combo_dns = _run("dns_cannon", n, p)
        plain_3dd = _run("3dd", n, p)
        return {
            "new_beats_dns_combo": combo_new.total_time < combo_dns.total_time,
            "combo_saves_space": (
                combo_new.result.total_peak_memory_words()
                < plain_3dd.result.total_peak_memory_words()
            ),
        }

    verdicts = benchmark(check)
    assert all(verdicts.values()), verdicts


def test_write_combinations_report(benchmark):
    def render():
        return format_table(
            ["algorithm", "time (ts=150, tw=3)", "total space (words)", "messages"],
            _rows,
            title="Supernode combinations at n=64, p=512, one-port",
        )

    assert write_report("combinations", benchmark(render)).exists()
