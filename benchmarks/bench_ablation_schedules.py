"""Ablation: SBT vs rotated-tree schedules on each machine type.

DESIGN.md calls out the schedule choice as the load-bearing design
decision behind the Table 1 multi-port column.  This bench runs *both*
schedules on *both* machines: the rotated schedule only pays off on
multi-port hardware with large-enough messages (the paper's ``M ≥ log N``
condition); on one-port machines or tiny messages its extra start-ups
lose.

Written to ``benchmarks/results/ablation_schedules.txt``.
"""

import numpy as np
import pytest

from _report import format_table, write_report
from repro.collectives import Schedule, broadcast
from repro.mpi import Comm
from repro.sim import MachineConfig, PortModel, run_spmd

_rows: list[list[str]] = []


def _time(schedule, port, M, p=16):
    def prog(ctx):
        comm = Comm(ctx, list(range(p)))
        data = np.ones(M) if comm.rank == 0 else None
        yield from broadcast(comm, data, root=0, schedule=schedule)
        return ctx.now

    cfg = MachineConfig.create(p, t_s=150, t_w=3, port_model=port)
    return run_spmd(cfg, prog).total_time


@pytest.mark.parametrize("M", [2, 16, 256, 4096], ids=lambda m: f"M{m}")
@pytest.mark.parametrize("port", list(PortModel), ids=str)
def test_schedule_choice(benchmark, M, port):
    def measure():
        return (
            _time(Schedule.SBT, port, M),
            _time(Schedule.ROTATED, port, M),
        )

    sbt, rotated = benchmark(measure)
    row = [str(port), str(M), f"{sbt:.0f}", f"{rotated:.0f}",
           "rotated" if rotated < sbt else "sbt"]
    if row not in _rows:
        _rows.append(row)

    if port is PortModel.ONE_PORT:
        # Chunking can't beat the one-port optimum.
        assert sbt <= rotated + 1e-9
    elif M >= 256:
        # Multi-port with M >= log N: rotated wins.
        assert rotated < sbt


def test_rotated_breakeven_message_size(benchmark):
    """Find the multi-port message size where rotated starts to win."""

    def breakeven():
        for M in range(1, 600):
            if _time(Schedule.ROTATED, PortModel.MULTI_PORT, M) < _time(
                Schedule.SBT, PortModel.MULTI_PORT, M
            ):
                return M
        return None

    M = benchmark.pedantic(breakeven, rounds=1, iterations=1)
    benchmark.extra_info["breakeven_M"] = M
    row = ["multi-port", "breakeven", str(M), "-", "-"]
    if row not in _rows:
        _rows.append(row)
    # On a multi-port machine the SBT already drives all children links
    # concurrently (same t_s depth as the rotated trees), so chunking wins
    # as soon as a message has enough words to split at all.
    assert M is not None
    assert 1 <= M <= 4  # log N = 4


def test_write_schedule_report(benchmark):
    def render():
        return format_table(
            ["machine", "M (words)", "SBT time", "rotated time", "winner"],
            _rows,
            title="Ablation: broadcast schedule choice, N=16, t_s=150, t_w=3",
        )

    assert write_report("ablation_schedules", benchmark(render)).exists()
