"""Engine throughput: wall-clock cost of the simulator itself.

Not a paper artefact — these keep the discrete-event core honest as the
library evolves (events/second on reference workloads, scaling with rank
count).  pytest-benchmark's statistics are the product here; no report
file is written.

Run directly for the CI perf-smoke gate::

    PYTHONPATH=src python benchmarks/bench_engine_performance.py --smoke \
        --jobs 2 --check

``--check`` compares against the committed ``benchmarks/BENCH_engine.json``
baseline and exits non-zero on a >25% regression; ``--update`` rewrites
the baseline's ``after`` numbers after an intentional change.
``--cache-check`` instead verifies the result cache in an ephemeral
directory: cold-computed and warm-served Figure 13 artefacts must be
bit-identical and the warm fetch faster than the cold one.
"""

import argparse
import json
import pathlib
import shutil
import sys
import tempfile
import time

import numpy as np
import pytest

from repro.algorithms import get_algorithm
from repro.analysis.cache import ResultCache, cached_coefficients, cached_figure
from repro.analysis.measure import measure_cell
from repro.analysis.parallel import run_grid
from repro.analysis.regions import region_map
from repro.mpi import Comm
from repro.sim import MachineConfig, PortModel, run_spmd

BASELINE_PATH = pathlib.Path(__file__).parent / "BENCH_engine.json"

#: tolerated slowdown vs the committed baseline before --check fails
REGRESSION_THRESHOLD = 1.25


@pytest.mark.parametrize("p", [64, 256, 1024], ids=lambda p: f"p{p}")
def test_pairwise_exchange_rounds(benchmark, p):
    """10 rounds of full-machine neighbour exchanges: ~20·p messages."""

    def workload():
        def prog(ctx):
            for k in range(10):
                peer = ctx.rank ^ (1 << (k % ctx.config.dimension))
                yield from ctx.exchange(peer, np.ones(4), tag=k)
            return None

        return run_spmd(MachineConfig.create(p, t_s=1, t_w=1), prog)

    result = benchmark(workload)
    assert result.total_messages() == 10 * p


@pytest.mark.parametrize("p", [16, 64, 256], ids=lambda p: f"p{p}")
def test_allgather_throughput(benchmark, p):
    def workload():
        def prog(ctx):
            comm = Comm(ctx, list(range(p)))
            from repro.collectives import allgather

            out = yield from allgather(comm, np.ones(8))
            return len(out)

        return run_spmd(MachineConfig.create(p, t_s=1, t_w=1), prog)

    result = benchmark(workload)
    assert all(v == p for v in result.results.values())


def test_3d_all_end_to_end_p512(benchmark):
    """The heaviest standard workload: n=64 on 512 ranks."""
    rng = np.random.default_rng(0)
    A = rng.standard_normal((64, 64))
    B = rng.standard_normal((64, 64))
    cfg = MachineConfig.create(512, t_s=150, t_w=3)

    run = benchmark(lambda: get_algorithm("3d_all").run(A, B, cfg))
    assert np.allclose(run.C, A @ B)


def test_cannon_many_steps(benchmark):
    """Cannon at q=16: 16 multiply steps x 256 ranks of 4-message rounds."""
    rng = np.random.default_rng(1)
    A = rng.standard_normal((64, 64))
    B = rng.standard_normal((64, 64))
    cfg = MachineConfig.create(256, t_s=150, t_w=3)

    run = benchmark(lambda: get_algorithm("cannon").run(A, B, cfg))
    assert np.allclose(run.C, A @ B)


# ---------------------------------------------------------------------------
# Standalone smoke runner (CI perf gate; see module docstring)
# ---------------------------------------------------------------------------


def _wl_pairwise():
    def prog(ctx):
        for k in range(10):
            peer = ctx.rank ^ (1 << (k % ctx.config.dimension))
            yield from ctx.exchange(peer, np.ones(4), tag=k)
        return None

    run_spmd(MachineConfig.create(256, t_s=1, t_w=1), prog)


def _wl_allgather():
    def prog(ctx):
        from repro.collectives import allgather

        comm = Comm(ctx, list(range(64)))
        out = yield from allgather(comm, np.ones(8))
        return len(out)

    run_spmd(MachineConfig.create(64, t_s=1, t_w=1), prog)


def _wl_cannon():
    rng = np.random.default_rng(0)
    A = rng.standard_normal((64, 64))
    B = rng.standard_normal((64, 64))
    get_algorithm("cannon").run(A, B, MachineConfig.create(256, t_s=150, t_w=3))


def _wl_3d_all():
    rng = np.random.default_rng(0)
    A = rng.standard_normal((64, 64))
    B = rng.standard_normal((64, 64))
    get_algorithm("3d_all").run(A, B, MachineConfig.create(512, t_s=150, t_w=3))


def _wl_cannon_fastpath():
    """Fault-free Cannon at p=4096 through the superstep closed form.

    The 'before' number in the baseline is the same run with
    ``superstep=False`` (the pure event path) measured interleaved on
    the same host — the ratio is the phase-algebra speed-up the
    conformance suite proves bit-identical.
    """
    rng = np.random.default_rng(0)
    A = rng.standard_normal((128, 128))
    B = rng.standard_normal((128, 128))
    get_algorithm("cannon").run(
        A, B, MachineConfig.create(4096, t_s=150, t_w=3, t_c=0.5)
    )


def _wl_3d_all_fastpath():
    """Fault-free 3d_all at p=4096 (multi-port) via the collective closed form.

    Like the Cannon fast-path entry, the 'before' number is the identical
    run with ``superstep=False`` (pure event path) measured interleaved on
    the same host; the conformance suite proves the two paths bit-identical,
    so the ratio is the collective phase algebra's speed-up.
    """
    rng = np.random.default_rng(0)
    A = rng.standard_normal((256, 256))
    B = rng.standard_normal((256, 256))
    get_algorithm("3d_all").run(
        A, B,
        MachineConfig.create(
            4096, t_s=150, t_w=3, t_c=0.5, port_model=PortModel.MULTI_PORT
        ),
    )


def _wl_regionmap_sim_p32768():
    """One simulation-backed region-map cell at p = 2^15.

    Infeasible for the event path at any tolerable budget; the superstep
    engine makes the row complete in tens of seconds.  No 'before'
    column for the same reason the cache entries have none.
    """
    region_map(
        PortModel.ONE_PORT, 150.0, 3.0, backend="sim",
        algorithms=("3dd",),
        log2_n_min=9, log2_n_max=9, log2_p_min=15, log2_p_max=15,
    )


def _wl_regionmap_sim_p262144():
    """One simulation-backed region-map cell at p = 2^18 (multi-port 3dd).

    The stretch target of the collective phase algebra: a quarter-million
    simulated ranks per cell.  Runs in the dedicated ``regionmap-sim-smoke``
    CI step (via ``--only``) so the main perf-smoke job stays fast.
    """
    region_map(
        PortModel.MULTI_PORT, 150.0, 3.0, backend="sim",
        algorithms=("3dd",),
        log2_n_min=9, log2_n_max=9, log2_p_min=18, log2_p_max=18,
    )


def _wl_fig13_panels():
    for t_s in (150.0, 30.0, 5.0, 0.5):
        region_map(PortModel.ONE_PORT, t_s, 3.0, log2_n_max=13, log2_p_max=20)


#: oversized figure lattice for the vectorization / cache workloads — big
#: enough that per-point Python dispatch (the 'before' numbers) dominates
_BIG_LATTICE = {"log2_n_max": 60, "log2_p_max": 120}


def _wl_fig13_panels_big():
    """Figure 13 panels on a 60x119 lattice (vectorized backend)."""
    for t_s in (150.0, 30.0, 5.0, 0.5):
        region_map(PortModel.ONE_PORT, t_s, 3.0, **_BIG_LATTICE)


def _wl_fig13_cache_cold():
    """Big-lattice Figure 13 into a fresh cache: compute + store."""
    root = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        cached_figure(ResultCache(root), 13, **_BIG_LATTICE)
    finally:
        shutil.rmtree(root, ignore_errors=True)


_WARM_ROOT: str | None = None


def _prime_warm_cache() -> None:
    """Populate the shared cache the warm workloads read from."""
    global _WARM_ROOT
    if _WARM_ROOT is None:
        _WARM_ROOT = tempfile.mkdtemp(prefix="repro-bench-cache-")
        cache = ResultCache(_WARM_ROOT)
        cached_figure(cache, 13, **_BIG_LATTICE)
        for key, n, p in _SWEEP_CELLS:
            cached_coefficients(cache, key, n, p, PortModel.ONE_PORT)


def _wl_fig13_cache_warm():
    """Big-lattice Figure 13 from a primed cache: one digest + one read."""
    _prime_warm_cache()
    cached_figure(ResultCache(_WARM_ROOT), 13, **_BIG_LATTICE)


def _wl_coeff_cache_cold():
    """Simulation-measured (a, b) coefficients into a fresh cache.

    The cold side runs the actual simulator (two runs per cell), so this
    pair shows the cache's headline win: seconds of simulation served
    back as a sub-millisecond read.
    """
    root = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        cache = ResultCache(root)
        for key, n, p in _SWEEP_CELLS:
            cached_coefficients(cache, key, n, p, PortModel.ONE_PORT)
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _wl_coeff_cache_warm():
    """The same coefficient cells served from the primed cache."""
    _prime_warm_cache()
    cache = ResultCache(_WARM_ROOT)
    for key, n, p in _SWEEP_CELLS:
        cached_coefficients(cache, key, n, p, PortModel.ONE_PORT)


_SWEEP_CELLS = [
    ("cannon", 16, 16), ("cannon", 32, 64), ("3d_all", 16, 64),
    ("3dd", 16, 64), ("berntsen", 16, 8), ("dns", 16, 64),
    ("simple", 16, 16), ("fox", 16, 16),
]


def _wl_measured_sweep(jobs):
    run_grid(
        measure_cell,
        [(k, n, p, PortModel.ONE_PORT) for k, n, p in _SWEEP_CELLS],
        jobs=jobs,
    )


def _workloads(jobs):
    return [
        ("pairwise_p256", _wl_pairwise),
        ("allgather_p64", _wl_allgather),
        ("cannon_n64_p256", _wl_cannon),
        ("3d_all_n64_p512", _wl_3d_all),
        ("cannon_fastpath_n128_p4096", _wl_cannon_fastpath),
        ("3d_all_fastpath_p4096", _wl_3d_all_fastpath),
        ("regionmap_sim_3dd_p32768", _wl_regionmap_sim_p32768),
        ("regionmap_sim_3dd_p262144", _wl_regionmap_sim_p262144),
        ("fig13_panels_x4", _wl_fig13_panels),
        ("fig13_panels_x4_big", _wl_fig13_panels_big),
        ("fig13_cache_cold", _wl_fig13_cache_cold),
        ("fig13_cache_warm", _wl_fig13_cache_warm),
        ("coeff_cache_cold", _wl_coeff_cache_cold),
        ("coeff_cache_warm", _wl_coeff_cache_warm),
        ("coeff_sweep_8cells", lambda: _wl_measured_sweep(1)),
        (f"coeff_sweep_8cells_jobs{jobs}", lambda: _wl_measured_sweep(jobs)),
    ]


def _best_of(fn, reps):
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _cache_check() -> int:
    """Assert the cache serves bit-identical artefacts, faster than cold.

    Runs entirely in an ephemeral directory: computes the big-lattice
    Figure 13 panels directly, then cold (populate) and warm (serve)
    through the cache, and checks all three agree array-for-array and that
    the warm fetch beats the cold one.  Returns a process exit code.
    """
    root = tempfile.mkdtemp(prefix="repro-cache-check-")
    try:
        direct = cached_figure(None, 13, **_BIG_LATTICE)
        t0 = time.perf_counter()
        cold = cached_figure(ResultCache(root), 13, **_BIG_LATTICE)
        t_cold = time.perf_counter() - t0
        t_warm = _best_of(
            lambda: cached_figure(ResultCache(root), 13, **_BIG_LATTICE), 3
        )
        warm = cached_figure(ResultCache(root), 13, **_BIG_LATTICE)
        for panel in direct:
            for name, other in (("cold", cold[panel]), ("warm", warm[panel])):
                same = np.array_equal(
                    direct[panel].winner_idx, other.winner_idx
                ) and np.array_equal(
                    direct[panel].times, other.times, equal_nan=True
                )
                if not same:
                    print(
                        f"CACHE CHECK FAILED: {name} panel {panel!r} is not "
                        f"bit-identical to the direct computation",
                        file=sys.stderr,
                    )
                    return 1
        print(f"cache check: cold {t_cold:.4f}s, warm {t_warm:.4f}s "
              f"({t_cold / t_warm:.1f}x), artefacts bit-identical")
        if t_warm >= t_cold:
            print("CACHE CHECK FAILED: warm fetch not faster than cold",
                  file=sys.stderr)
            return 1
        return 0
    finally:
        shutil.rmtree(root, ignore_errors=True)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="engine perf smoke runner (CI gate)"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced repetitions (best of 2 instead of best of 5)",
    )
    parser.add_argument(
        "--jobs", type=int, default=2,
        help="worker processes for the parallel-sweep workload",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail on a >25%% regression vs the committed baseline",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the committed baseline's 'after' numbers",
    )
    parser.add_argument(
        "--only", action="append", default=None, metavar="NAME",
        help="run only the named workload(s); repeatable.  Used by the "
             "regionmap-sim-smoke CI step to gate the p=2^18 row alone",
    )
    parser.add_argument(
        "--skip", action="append", default=None, metavar="NAME",
        help="skip the named workload(s); repeatable",
    )
    parser.add_argument(
        "--cache-check", action="store_true",
        help="only verify cold/warm cache bit-identity and warm speed-up "
             "(ephemeral cache dir), then exit",
    )
    args = parser.parse_args(argv)

    if args.cache_check:
        return _cache_check()

    reps = 2 if args.smoke else 5
    selected = _workloads(args.jobs)
    if args.only:
        unknown = set(args.only) - {name for name, _ in selected}
        if unknown:
            print(f"unknown workload(s): {sorted(unknown)}", file=sys.stderr)
            return 2
        selected = [(n, f) for n, f in selected if n in args.only]
    if args.skip:
        selected = [(n, f) for n, f in selected if n not in args.skip]
    results = {}
    try:
        for name, fn in selected:
            if name.endswith("_warm"):
                _prime_warm_cache()  # priming stays outside the timing
            results[name] = round(_best_of(fn, reps), 4)
            print(f"{name:32s} {results[name]:8.4f}s")
    finally:
        if _WARM_ROOT is not None:
            shutil.rmtree(_WARM_ROOT, ignore_errors=True)

    baseline = (
        json.loads(BASELINE_PATH.read_text()) if BASELINE_PATH.exists()
        else {"workloads": {}}
    )
    if args.update:
        for name, t in results.items():
            entry = baseline["workloads"].setdefault(name, {})
            entry["after"] = t
        BASELINE_PATH.write_text(json.dumps(baseline, indent=1) + "\n")
        print(f"baseline updated: {BASELINE_PATH}")
        return 0
    if args.check:
        failed = []
        for name, t in results.items():
            # The jobs-suffixed sweep demonstrates parallel dispatch; its
            # wall clock is dominated by pool start-up on small grids (and
            # its name varies with --jobs), so it informs but never gates.
            # The cache workloads are mkdtemp/disk-bound sub-10ms timings —
            # far too noisy for a 25% relative gate; --cache-check asserts
            # their invariants (bit-identity, warm < cold) robustly instead.
            if "_jobs" in name or "_cache_" in name:
                continue
            want = baseline["workloads"].get(name, {}).get("after")
            if want is None:
                continue
            if t > want * REGRESSION_THRESHOLD:
                failed.append((name, t, want))
        if failed:
            for name, t, want in failed:
                print(
                    f"REGRESSION: {name} took {t:.4f}s vs baseline "
                    f"{want:.4f}s (>{REGRESSION_THRESHOLD:.0%})",
                    file=sys.stderr,
                )
            return 1
        print(f"perf check OK vs {BASELINE_PATH.name} "
              f"(threshold {REGRESSION_THRESHOLD:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
