"""Engine throughput: wall-clock cost of the simulator itself.

Not a paper artefact — these keep the discrete-event core honest as the
library evolves (events/second on reference workloads, scaling with rank
count).  pytest-benchmark's statistics are the product here; no report
file is written.
"""

import numpy as np
import pytest

from repro.algorithms import get_algorithm
from repro.mpi import Comm
from repro.sim import MachineConfig, PortModel, run_spmd


@pytest.mark.parametrize("p", [64, 256, 1024], ids=lambda p: f"p{p}")
def test_pairwise_exchange_rounds(benchmark, p):
    """10 rounds of full-machine neighbour exchanges: ~20·p messages."""

    def workload():
        def prog(ctx):
            for k in range(10):
                peer = ctx.rank ^ (1 << (k % ctx.config.dimension))
                yield from ctx.exchange(peer, np.ones(4), tag=k)
            return None

        return run_spmd(MachineConfig.create(p, t_s=1, t_w=1), prog)

    result = benchmark(workload)
    assert result.total_messages() == 10 * p


@pytest.mark.parametrize("p", [16, 64, 256], ids=lambda p: f"p{p}")
def test_allgather_throughput(benchmark, p):
    def workload():
        def prog(ctx):
            comm = Comm(ctx, list(range(p)))
            from repro.collectives import allgather

            out = yield from allgather(comm, np.ones(8))
            return len(out)

        return run_spmd(MachineConfig.create(p, t_s=1, t_w=1), prog)

    result = benchmark(workload)
    assert all(v == p for v in result.results.values())


def test_3d_all_end_to_end_p512(benchmark):
    """The heaviest standard workload: n=64 on 512 ranks."""
    rng = np.random.default_rng(0)
    A = rng.standard_normal((64, 64))
    B = rng.standard_normal((64, 64))
    cfg = MachineConfig.create(512, t_s=150, t_w=3)

    run = benchmark(lambda: get_algorithm("3d_all").run(A, B, cfg))
    assert np.allclose(run.C, A @ B)


def test_cannon_many_steps(benchmark):
    """Cannon at q=16: 16 multiply steps x 256 ranks of 4-message rounds."""
    rng = np.random.default_rng(1)
    A = rng.standard_normal((64, 64))
    B = rng.standard_normal((64, 64))
    cfg = MachineConfig.create(256, t_s=150, t_w=3)

    run = benchmark(lambda: get_algorithm("cannon").run(A, B, cfg))
    assert np.allclose(run.C, A @ B)
