"""Shared reporting for the benchmark harness.

Every bench module regenerates one of the paper's tables/figures.  Besides
the pytest-benchmark timings, each writes its reproduced artefact (a
formatted text table or ASCII region map) into ``benchmarks/results/`` so
the paper-vs-measured comparison survives the run.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_report(name: str, text: str) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text)
    return path


def format_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines) + "\n"
