"""Network-scenario overhead bench: what does heterogeneity cost?

Two questions, one table:

* **Passthrough** — a machine carrying the explicit ``uniform()``
  scenario must be indistinguishable from the seed engine: the engine
  normalizes identity scenarios away at construction, so the simulated
  time and the product are **bit-identical** and the wall-clock ratio is
  pinned at ~1.00x (<= 1.05x tolerance for timer noise).
* **Degraded** — the same runs under hotspot / random-heterogeneous
  scenarios quantify the simulated-time overhead the graceful-degradation
  analysis ranks, and what the per-hop factor lookups cost in wall time.

Written to ``benchmarks/results/degradation.txt``.  Also runnable
directly::

    python benchmarks/bench_degradation.py [--smoke]

``--smoke`` restricts to one (n, p) point (the CI budget).
"""

import sys
import time

import numpy as np
import pytest

from _report import format_table, write_report
from repro.algorithms import get_algorithm
from repro.sim.machine import MachineConfig
from repro.sim.scenario import hotspot, random_heterogeneous, uniform

#: (n, p) points swept; Cannon everywhere (applicable at each point)
POINTS = [(8, 16), (16, 16), (16, 64)]

#: wall-clock ratio ceiling for the uniform-scenario passthrough
PASSTHROUGH_LIMIT = 1.05

#: best-of repeats for wall-clock ratios (min absorbs scheduler noise)
REPEATS = 3


def _matrices(n: int):
    rng = np.random.default_rng(7)
    return (rng.integers(-4, 5, (n, n)).astype(float),
            rng.integers(-4, 5, (n, n)).astype(float))


def _timed_run(algo, A, B, config):
    """(run, best wall seconds) over REPEATS identical simulations."""
    best = float("inf")
    run = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        run = algo.run(A, B, config)
        best = min(best, time.perf_counter() - t0)
    return run, best


def run_point(n: int, p: int) -> list[dict]:
    """Seed engine vs uniform passthrough vs degraded scenarios at (n, p)."""
    A, B = _matrices(n)
    algo = get_algorithm("cannon")
    base_cfg = MachineConfig.create(p)
    scenarios = [
        ("seed", None),
        ("uniform", uniform()),
        ("hotspot 4x", hotspot(p, 0, 4.0)),
        ("random s=1", random_heterogeneous(p, 1.0, seed=0)),
    ]
    rows = []
    base_run = base_wall = None
    for name, scenario in scenarios:
        cfg = base_cfg if scenario is None else base_cfg.with_scenario(scenario)
        run, wall = _timed_run(algo, A, B, cfg)
        if base_run is None:
            base_run, base_wall = run, wall
        rows.append({
            "n": n, "p": p, "scenario": name,
            "time": run.result.total_time,
            "sim_overhead": run.result.total_time / base_run.result.total_time,
            "wall_ratio": wall / base_wall,
            "identical": bool(
                run.result.total_time == base_run.result.total_time
                and np.array_equal(run.C, base_run.C)
            ),
        })
    return rows


_rows: list[list[str]] = []


def _record(rows) -> None:
    for r in rows:
        row = [
            str(r["n"]), str(r["p"]), r["scenario"],
            f"{r['time']:.1f}", f"{r['sim_overhead']:.2f}x",
            f"{r['wall_ratio']:.2f}x", str(r["identical"]),
        ]
        if row not in _rows:
            _rows.append(row)


@pytest.mark.parametrize("n,p", POINTS)
def test_degradation_overhead(benchmark, n, p):
    rows = benchmark(run_point, n, p)
    _record(rows)
    by_name = {r["scenario"]: r for r in rows}
    # uniform passthrough: bit-identical simulation, pinned wall ratio
    assert by_name["uniform"]["identical"]
    assert by_name["uniform"]["sim_overhead"] == 1.0
    assert by_name["uniform"]["wall_ratio"] <= PASSTHROUGH_LIMIT
    # degraded scenarios genuinely slow the simulated network down
    assert by_name["hotspot 4x"]["sim_overhead"] > 1.0
    assert by_name["random s=1"]["sim_overhead"] > 1.0


def test_write_degradation_report(benchmark):
    def render():
        return format_table(
            ["n", "p", "scenario", "time", "sim_overhead", "wall_ratio",
             "identical"],
            _rows,
            title="Network-scenario overhead (baseline = seed engine, no "
                  "scenario; uniform passthrough pinned bit-identical, "
                  f"wall <= {PASSTHROUGH_LIMIT:.2f}x)",
        )

    assert write_report("degradation", benchmark(render)).exists()


def main(argv=None) -> int:
    """Standalone entry: run the sweep and print/write the table."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="one (n, p) point (CI budget)"
    )
    args = parser.parse_args(argv)
    points = POINTS[:1] if args.smoke else POINTS
    all_rows = []
    for n, p in points:
        all_rows += run_point(n, p)
    _record(all_rows)
    text = format_table(
        ["n", "p", "scenario", "time", "sim_overhead", "wall_ratio",
         "identical"],
        _rows,
        title="Network-scenario overhead (baseline = seed engine)",
    )
    print(text)
    bad = [
        r for r in all_rows
        if r["scenario"] == "uniform"
        and not (r["identical"] and r["wall_ratio"] <= PASSTHROUGH_LIMIT)
    ]
    if bad:
        print(f"FAILED passthrough cells: {len(bad)}", file=sys.stderr)
        return 1
    if not args.smoke:
        write_report("degradation_cli", text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
