"""Node fail-stop recovery bench: kill ranks mid-run, demand the product.

Sweeps kill-time × algorithm × recovery mode with the failure-detection /
recovery stack (:mod:`repro.algorithms.abft`) and records

* completion (the recovering modes must finish; ``none`` must fail with a
  diagnosed :class:`~repro.errors.RankFailedError` — never a hang),
* correctness (a recovered product must equal ``A @ B`` bit-exactly —
  the sweep uses integer-valued operands),
* recovery overhead (time relative to the fault-free run of the same
  wrapper) and the machine that produced the result.

Written to ``benchmarks/results/recovery.txt``.  Also runnable directly::

    python benchmarks/bench_recovery.py [--smoke]

``--smoke`` restricts to one algorithm and one kill time (the CI budget).
"""

import sys

import pytest

from _report import format_table, write_report
from repro.analysis.resilience import format_recovery_table, recovery_sweep

#: algorithm -> an applicable (n, p) point on a small machine
CASES = {
    "cannon": (12, 16),
    "fox": (12, 16),
    "3d_all": (4, 8),
}
KILL_FRACS = [0.3, 0.7]
MODES = ("abft", "checkpoint", "none")

_rows: list[list[str]] = []


def _record(points) -> None:
    for pt in points:
        row = [
            pt.algorithm,
            pt.mode,
            f"{pt.kill_frac:.2f}",
            ",".join(str(v) for v in pt.victims),
            "ok" if pt.completed else (pt.error or "").split(":")[0],
            str(pt.exact) if pt.completed else "-",
            f"{pt.overhead:.2f}" if pt.completed else "-",
            str(pt.epochs) if pt.completed else "-",
            pt.machine,
        ]
        if row not in _rows:
            _rows.append(row)


@pytest.mark.parametrize("key", sorted(CASES))
def test_recovery_sweep(benchmark, key):
    n, p = CASES[key]
    points = benchmark(
        recovery_sweep, [key], n, p, KILL_FRACS, MODES, plan_seed=1
    )
    _record(points)
    for pt in points:
        if pt.mode == "none":
            # detection without recovery: a diagnosed failure, not a hang
            assert not pt.completed
            assert "RankFailedError" in (pt.error or "")
        else:
            assert pt.completed, pt.error
            assert pt.exact
            assert pt.recovered
            assert pt.overhead is not None and pt.overhead >= 1.0


def test_write_recovery_report(benchmark):
    def render():
        return format_table(
            ["algorithm", "mode", "kill", "victims", "status", "exact",
             "overhead", "epochs", "machine"],
            _rows,
            title="Node fail-stop recovery: one victim killed mid-run "
                  "(baseline = fault-free run of the same wrapper)",
        )

    assert write_report("recovery", benchmark(render)).exists()


def main(argv=None) -> int:
    """Standalone entry: run the sweep and print/write the table."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="one algorithm, one kill time (CI budget)",
    )
    args = parser.parse_args(argv)
    cases = {"cannon": CASES["cannon"]} if args.smoke else CASES
    fracs = [0.3] if args.smoke else KILL_FRACS
    all_points = []
    for key, (n, p) in sorted(cases.items()):
        all_points += recovery_sweep([key], n, p, fracs, MODES, plan_seed=1)
    text = format_recovery_table(all_points)
    print(text)
    bad = [
        pt for pt in all_points
        if (pt.mode == "none") == pt.completed
        or (pt.completed and not pt.exact)
    ]
    if bad:
        print(f"FAILED cells: {len(bad)}", file=sys.stderr)
        return 1
    if not args.smoke:
        write_report("recovery_cli", text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
