"""Fault-tolerance bench: completion and overhead on a lossy machine.

Sweeps drop-rate × algorithm with the reliable-delivery layer
(:class:`~repro.mpi.reliable.ReliableContext`) over the deterministic
fault-injection subsystem, and records

* completion rate (every cell must finish and verify),
* slowdown vs the fault-free baseline,
* retransmission overhead (resends per application message),

plus a smoke check of the canonical transient scenario (windowed link
failure + 1% drops) that the CI runs on every push.

Written to ``benchmarks/results/fault_tolerance.txt``.
"""

import pytest

from _report import format_table, write_report
from repro.analysis.resilience import (
    completion_rate,
    degradation_sweep,
    transient_scenario,
)
from repro.mpi.reliable import ReliableContext
from repro.sim.machine import MachineConfig

#: algorithm -> an applicable (n, p) point on a small machine
CASES = {
    "cannon": (16, 16),
    "fox": (16, 16),
    "berntsen": (8, 8),
    "3d_all": (8, 8),
}
DROP_RATES = [0.0, 0.01, 0.05]

_rows: list[list[str]] = []


@pytest.mark.parametrize("key", sorted(CASES))
def test_degradation_sweep(benchmark, key):
    n, p = CASES[key]
    points = benchmark(
        degradation_sweep, [key], n, p, DROP_RATES, plan_seed=3
    )
    assert completion_rate(points) == 1.0
    for pt in points:
        assert pt.completed, pt.error
        assert pt.slowdown is not None and pt.slowdown >= 1.0
        if pt.drop_rate == 0.0:
            # nothing to lose: the reliable layer never retransmits
            assert pt.retransmissions == 0
        row = [
            key,
            f"{pt.drop_rate:.3f}",
            f"{pt.total_time:.0f}",
            f"{pt.slowdown:.2f}",
            f"{pt.retransmissions}",
            f"{pt.retransmission_overhead:.4f}",
        ]
        if row not in _rows:
            _rows.append(row)


@pytest.mark.parametrize("key", sorted(CASES))
def test_transient_scenario_smoke(benchmark, key):
    """The canonical transient fault (windowed link death + 1% drops)."""
    import numpy as np

    from repro.algorithms.registry import get_algorithm

    n, p = CASES[key]
    rng = np.random.default_rng(0)
    A = rng.standard_normal((n, n))
    B = rng.standard_normal((n, n))
    cfg = MachineConfig.create(p, faults=transient_scenario(seed=5))
    algo = get_algorithm(key)

    run = benchmark(
        algo.run, A, B, cfg,
        verify=True, context_factory=ReliableContext, max_events=2_000_000,
    )
    net = run.result.network
    # every loss must have been recovered by a resend (the run verified)
    if net.messages_dropped:
        assert net.retransmissions >= 1


def test_write_fault_report(benchmark):
    def render():
        return format_table(
            ["algorithm", "drop rate", "time", "slowdown",
             "retrans", "retrans/msg"],
            _rows,
            title="Fault tolerance: reliable delivery on lossy small cubes "
                  "(baseline = fault-free run)",
        )

    assert write_report("fault_tolerance", benchmark(render)).exists()
