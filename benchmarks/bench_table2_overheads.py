"""Reproduce **Table 2**: per-algorithm communication overheads.

For each algorithm and port model, the simulator extracts the measured
``(a, b)`` coefficient pair (total communication time ``a·t_s + b·t_w``)
and compares it with the paper's closed form.  Representative operating
point: ``n = 64`` on a ``p = 64`` hypercube (all eight Table 2 algorithms
are applicable, since 64 = 4³ = 8² is both a square and a cubic grid size,
and ``64 = 64^{3/2}``... i.e. p = n^1.5 exactly at the 3D All boundary).

Measured-vs-model is exact except for the cases documented in
EXPERIMENTS.md (3DD/DNS store-and-forward multi-hop accounting and
cross-phase overlap).  Written to ``benchmarks/results/table2.txt``.
"""

import pytest

from _report import format_table, write_report
from repro.algorithms import ALGORITHMS
from repro.analysis.measure import extract_coefficients, measure_comm_time
from repro.models.table2 import overhead_coefficients
from repro.sim import PortModel

N_REF, P_REF = 64, 64
TABLE2_KEYS = [
    "simple", "cannon", "hje", "berntsen", "dns",
    "3dd", "3d_all_trans", "3d_all",
]

_rows: list[list[str]] = []


@pytest.mark.parametrize("port", list(PortModel), ids=str)
@pytest.mark.parametrize("key", TABLE2_KEYS)
def test_table2_row(benchmark, key, port):
    measured = extract_coefficients(key, N_REF, P_REF, port)
    model = overhead_coefficients(key, N_REF, P_REF, port)

    benchmark(measure_comm_time, key, N_REF, P_REF, port, 150.0, 3.0)
    benchmark.extra_info.update(measured=measured, model=model)

    _rows.append(
        [
            ALGORITHMS[key].name,
            str(port),
            f"{measured[0]:.1f}",
            f"{model[0]:.1f}" if model else "-",
            f"{measured[1]:.1f}",
            f"{model[1]:.1f}" if model else "-",
        ]
    )

    if model is None:  # HJE one-port: no Table 2 entry
        return
    # Start-up coefficient never exceeds the model (overlap can reduce it);
    # t_w coefficient within the documented store-and-forward allowance.
    assert measured[0] <= model[0] + 1e-9
    assert measured[1] <= model[1] * 1.55 + 1e-9
    assert measured[1] >= model[1] * 0.6 - 1e-9


def test_write_table2_report(benchmark):
    def render():
        return format_table(
            ["algorithm", "port model", "a meas", "a model", "b meas", "b model"],
            _rows,
            title=(
                f"Table 2 reproduction: n={N_REF}, p={P_REF} "
                "(communication time = a*t_s + b*t_w)"
            ),
        )

    text = benchmark(render)
    assert write_report("table2", text).exists()
