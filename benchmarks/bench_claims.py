"""Reproduce the paper's §5/§6 headline claims on the *simulator* (not just
the closed forms): who wins, by what factor, where the crossovers fall.

These are the claims:

1. 3DD ≥ DNS and 3D All ≥ 3D All_Trans for both port models, any (n, p)
   — the reason the paper only carries the two new algorithms forward.
2. 3D All has the least communication overhead among all applicable
   algorithms for p ≥ 8, p ≤ n^1.5 (both port models).
3. HJE beats Cannon on multi-port machines wherever applicable.
4. In n^1.5 < p ≤ n², 3DD beats Cannon at t_s=150/t_w=3 but loses at
   very small t_s.

Written to ``benchmarks/results/claims.txt``.
"""

import pytest

from _report import format_table, write_report
from repro.analysis.measure import measure_comm_time
from repro.sim import PortModel

ONE, MULTI = PortModel.ONE_PORT, PortModel.MULTI_PORT
TS, TW = 150.0, 3.0

_rows: list[list[str]] = []


def _note(claim, detail, holds):
    row = [claim, detail, "HOLDS" if holds else "VIOLATED"]
    if row not in _rows:  # benchmarked closures run repeatedly; record once
        _rows.append(row)
    return holds


@pytest.mark.parametrize("port", [ONE, MULTI], ids=str)
def test_claim_new_algorithms_dominate_predecessors(benchmark, port):
    def check():
        ok = True
        for n, p in [(16, 8), (32, 64), (64, 64)]:
            t_3dd = measure_comm_time("3dd", n, p, port, TS, TW)
            t_dns = measure_comm_time("dns", n, p, port, TS, TW)
            ok &= _note(
                "3DD <= DNS", f"n={n} p={p} {port}: {t_3dd:.0f} vs {t_dns:.0f}",
                t_3dd <= t_dns,
            )
            t_all = measure_comm_time("3d_all", n, p, port, TS, TW)
            t_trans = measure_comm_time("3d_all_trans", n, p, port, TS, TW)
            ok &= _note(
                "3D All <= All_Trans",
                f"n={n} p={p} {port}: {t_all:.0f} vs {t_trans:.0f}",
                t_all <= t_trans,
            )
        return ok

    assert benchmark(check)


@pytest.mark.parametrize("port", [ONE, MULTI], ids=str)
def test_claim_3d_all_least_overhead_in_region(benchmark, port):
    def check():
        ok = True
        for n, p in [(16, 8), (32, 64), (64, 64), (64, 512)]:
            if p > n ** 1.5:
                continue
            t_all = measure_comm_time("3d_all", n, p, port, TS, TW)
            rivals = ["berntsen", "3dd", "dns", "3d_all_trans"]
            if (p ** 0.5).is_integer() and round(p ** 0.5) ** 2 == p:
                rivals.append("cannon")
            for rival in rivals:
                try:
                    t_rival = measure_comm_time(rival, n, p, port, TS, TW)
                except Exception:
                    continue
                ok &= _note(
                    "3D All best in region",
                    f"vs {rival} n={n} p={p} {port}: "
                    f"{t_all:.0f} vs {t_rival:.0f}",
                    t_all <= t_rival,
                )
        return ok

    assert benchmark(check)


def test_claim_hje_beats_cannon_multiport(benchmark):
    def check():
        ok = True
        for n, p in [(32, 16), (64, 64), (128, 64)]:
            t_hje = measure_comm_time("hje", n, p, MULTI, TS, TW)
            t_cannon = measure_comm_time("cannon", n, p, MULTI, TS, TW)
            ok &= _note(
                "HJE < Cannon (multi-port)",
                f"n={n} p={p}: {t_hje:.0f} vs {t_cannon:.0f}",
                t_hje < t_cannon,
            )
        return ok

    assert benchmark(check)


def test_claim_middle_band_crossover(benchmark):
    """n^1.5 < p <= n^2: 3DD wins at t_s=150 and loses at t_s ~ 0."""

    def check():
        n, p = 8, 64  # p = n^2, above n^1.5 ≈ 22.6
        slow_start = [
            measure_comm_time("3dd", n, p, ONE, 150, 3),
            measure_comm_time("cannon", n, p, ONE, 150, 3),
        ]
        free_start = [
            measure_comm_time("3dd", n, p, ONE, 0.01, 3),
            measure_comm_time("cannon", n, p, ONE, 0.01, 3),
        ]
        ok = _note(
            "3DD < Cannon at t_s=150",
            f"n={n} p={p}: {slow_start[0]:.0f} vs {slow_start[1]:.0f}",
            slow_start[0] < slow_start[1],
        )
        ok &= _note(
            "Cannon < 3DD at t_s→0",
            f"n={n} p={p}: {free_start[1]:.2f} vs {free_start[0]:.2f}",
            free_start[1] < free_start[0],
        )
        return ok

    assert benchmark(check)


def test_write_claims_report(benchmark):
    def render():
        return format_table(
            ["claim", "instance", "verdict"],
            _rows,
            title="Paper claims verified on the simulator "
            f"(t_s={TS:g}, t_w={TW:g} unless stated)",
        )

    text = benchmark(render)
    assert write_report("claims", text).exists()
